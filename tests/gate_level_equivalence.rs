//! Gate-level end-to-end equivalence: the multi-bit tree search of the
//! core crate, driven through each of the five gate-level matching
//! circuits, must return exactly what the software reference returns —
//! the proof that the RTL-style netlists and the behavioural model are
//! the same machine.

use proptest::prelude::*;

use wfq_sorter::matcher::{MatcherCircuit, MatcherKind};
use wfq_sorter::tagsort::{Geometry, MultiBitTrie, Tag};

fn check_kind(kind: MatcherKind, values: &[u32], probes: &[u32]) {
    let geometry = Geometry::paper();
    let circuit = MatcherCircuit::build(kind, geometry.branching() as usize);
    let mut reference_tree = MultiBitTrie::new(geometry);
    let mut gate_tree = MultiBitTrie::new(geometry);
    for &v in values {
        reference_tree.insert_marker(Tag(v));
        gate_tree.insert_marker(Tag(v));
    }
    for &p in probes {
        let want = reference_tree.closest_at_or_below(Tag(p));
        let got =
            gate_tree.closest_at_or_below_with(Tag(p), |word, lit| circuit.evaluate(word, lit));
        assert_eq!(got, want, "{kind}: probe {p}, values {values:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_search_identical_through_all_five_matchers(
        values in proptest::collection::vec(0u32..4096, 0..60),
        probes in proptest::collection::vec(0u32..4096, 1..40),
    ) {
        for kind in MatcherKind::ALL {
            check_kind(kind, &values, &probes);
        }
    }
}

/// The paper's own worked examples, through every design.
#[test]
fn paper_walkthroughs_through_every_design() {
    for kind in MatcherKind::ALL {
        let geometry = Geometry::new(2, 3);
        let circuit = MatcherCircuit::build(kind, 4);
        let mut tree = MultiBitTrie::new(geometry);
        for v in [0b001001u32, 0b110101, 0b110111] {
            tree.insert_marker(Tag(v));
        }
        let fig4 = tree.closest_at_or_below_with(Tag(0b110110), |w, l| circuit.evaluate(w, l));
        assert_eq!(fig4, Some(Tag(0b110101)), "{kind}: Fig. 4");
        let fig5 = tree.closest_at_or_below_with(Tag(0b110100), |w, l| circuit.evaluate(w, l));
        assert_eq!(fig5, Some(Tag(0b001001)), "{kind}: Fig. 5 backup path");
    }
}

// Wide-node geometries: the 32-bit-node variant the paper prices
// (15-bit tags) and an 8-way tree, both through the fabricated design.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn wide_geometries_match_reference(
        values in proptest::collection::vec(0u32..32768, 0..40),
        probes in proptest::collection::vec(0u32..32768, 1..25),
    ) {
        for geometry in [Geometry::paper_wide(), Geometry::new(3, 5)] {
            let circuit = MatcherCircuit::build(
                MatcherKind::SelectLookAhead,
                geometry.branching() as usize,
            );
            let mask = (geometry.tag_space() - 1) as u32;
            let mut reference_tree = MultiBitTrie::new(geometry);
            let mut gate_tree = MultiBitTrie::new(geometry);
            for &v in &values {
                reference_tree.insert_marker(Tag(v & mask));
                gate_tree.insert_marker(Tag(v & mask));
            }
            for &p in &probes {
                let p = Tag(p & mask);
                let want = reference_tree.closest_at_or_below(p);
                let got = gate_tree
                    .closest_at_or_below_with(p, |word, lit| circuit.evaluate(word, lit));
                prop_assert_eq!(got, want, "{:?} probe {}", geometry, p);
            }
        }
    }
}

/// Sparse trees exercise the backup path hard: few markers, many misses.
#[test]
fn sparse_tree_backup_paths() {
    let geometry = Geometry::paper();
    let circuit = MatcherCircuit::build(MatcherKind::SelectLookAhead, 16);
    let mut tree = MultiBitTrie::new(geometry);
    // One marker per section, at awkward offsets.
    let values: Vec<u32> = (0..16u32).map(|s| s * 256 + (s * 37) % 256).collect();
    for &v in &values {
        tree.insert_marker(Tag(v));
    }
    for probe in (0..4096u32).step_by(13) {
        let want = values
            .iter()
            .copied()
            .filter(|&v| v <= probe)
            .max()
            .map(Tag);
        let got = tree.closest_at_or_below_with(Tag(probe), |w, l| circuit.evaluate(w, l));
        assert_eq!(got, want, "probe {probe}");
    }
}
