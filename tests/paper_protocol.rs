//! The paper's operating protocol, end to end: section recycling as the
//! virtual clock wraps (Fig. 6), lazy marker cleanup within a lap, and
//! the contract boundaries between the two.
//!
//! One finding of this reproduction (EXPERIMENTS.md, "gaps found"):
//! cross-lap value reuse with *lazy* cleanup is only safe under the
//! recycle-before-entry discipline, which the circuit cannot verify
//! locally — so the lazy policy conservatively refuses wrapped restarts,
//! and the safe implementation of Fig. 6's circular reuse is eager
//! cleanup + the quantizer's recycling, which these tests drive.

use wfq_sorter::tagsort::{CleanupPolicy, Geometry, PacketRef, SortRetrieveCircuit, Tag};

/// Fig. 6's circular reuse over ~20 laps: a monotone tag stream wraps
/// the 12-bit space again and again; each section is recycled as the
/// stream enters it; the sorted list stays coherent throughout (the
/// only permitted anomaly is the wrap-boundary inversion of a linear
/// sorter, which is bounded to the boundary itself).
#[test]
fn circuit_survives_many_laps_with_section_recycling() {
    let geometry = Geometry::paper();
    let mut circuit = SortRetrieveCircuit::new(geometry, 256);
    let space = geometry.tag_space();
    let section_ticks = space / u64::from(geometry.sections());

    let mut tick = 0u64; // unbounded "virtual time" in ticks
    let mut prepared_through = space - 1;
    let mut payload = 0u32;
    let mut served = 0u64;
    let mut expected_next_value: Option<u64> = None;

    // ~20 laps of the 4096-value space with a small backlog. Boundary
    // inversions make a linear sorter serve freshly wrapped tags before
    // the old lap's stragglers; those stragglers must depart before the
    // stream re-enters their section one lap later, so the run includes
    // the periodic full drains (service lulls) that real operation
    // provides — the same live-window constraint the quantizer's slack
    // assertion enforces in the `scheduler` crate.
    for round in 0..5000u64 {
        tick += 7 + (round % 23); // strictly increasing, uneven strides
                                  // Fig. 6 protocol: recycle sections the stream newly enters.
        while prepared_through < tick {
            let base = prepared_through + 1;
            let section = ((base / section_ticks) % u64::from(geometry.sections())) as u32;
            circuit.recycle_section(section);
            prepared_through = base + section_ticks - 1;
        }
        let tag = Tag((tick % space) as u32);
        match circuit.insert(tag, PacketRef(payload)) {
            Ok(()) => payload += 1,
            Err(e) => panic!("round {round}: {e}"),
        }
        if circuit.len() > 16 {
            let (t, _) = circuit.pop_min().expect("backlogged");
            // Serving order within the lap window is ascending in
            // unwrapped tick terms: reconstruct and check monotonicity
            // lap by lap (the window is far smaller than a lap).
            let v = u64::from(t.value());
            if let Some(prev) = expected_next_value {
                // Either same-lap ascending, or wrapped to a new lap.
                let ascending = v >= prev;
                let wrapped = prev > space - 2 * section_ticks && v < 2 * section_ticks;
                assert!(
                    ascending || wrapped,
                    "round {round}: served {v} after {prev}"
                );
            }
            expected_next_value = Some(v);
            served += 1;
        }
        if round % 100 == 99 {
            // Service lull: drain boundary stragglers.
            while circuit.pop_min().is_some() {
                served += 1;
            }
            expected_next_value = None;
        }
    }
    while circuit.pop_min().is_some() {
        served += 1;
    }
    assert_eq!(served, u64::from(payload));
    assert_eq!(circuit.stats().cycles_per_op(), 4.0);
}

/// Lazy mode enforces its contract rather than corrupting: a tag below
/// the live minimum is refused, and after a drain the restart floor is
/// the highest stale marker.
#[test]
fn lazy_contract_violations_are_refused_not_corrupted() {
    let mut c = SortRetrieveCircuit::with_policy(Geometry::paper(), 64, CleanupPolicy::Lazy);
    c.insert(Tag(100), PacketRef(0)).unwrap();
    c.insert(Tag(200), PacketRef(1)).unwrap();
    assert!(c.insert(Tag(50), PacketRef(2)).is_err());
    while c.pop_min().is_some() {}
    // Stale markers at 100 and 200 gate the restart floor.
    assert!(c.insert(Tag(150), PacketRef(3)).is_err());
    c.insert(Tag(200), PacketRef(4)).unwrap(); // at the floor: fine
    assert_eq!(c.pop_min(), Some((Tag(200), PacketRef(4))));
    // Recycling the stale section clears the floor entirely.
    while c.pop_min().is_some() {}
    c.recycle_section(0);
    c.insert(Tag(1), PacketRef(5)).unwrap();
    assert_eq!(c.pop_min(), Some((Tag(1), PacketRef(5))));
}

/// Within one lap, the lazy circuit's stale markers pile up exactly as
/// the paper describes and are reclaimed in bulk by recycling the
/// drained sections behind the live window.
#[test]
fn recycling_reclaims_stale_markers_within_a_lap() {
    let geometry = Geometry::paper();
    let mut c = SortRetrieveCircuit::with_policy(geometry, 64, CleanupPolicy::Lazy);
    let sections = geometry.sections();
    let section_span = (geometry.tag_space() / u64::from(sections)) as u32;
    // March a monotone window through the first 12 sections.
    let mut tick = 0u32;
    for inserted in 0..1200u32 {
        tick += 3; // stays inside the lap: 3600 < 4096
        c.insert(Tag(tick), PacketRef(inserted)).unwrap();
        if c.len() > 8 {
            c.pop_min().unwrap();
        }
    }
    while c.pop_min().is_some() {}
    // Everything departed, nothing recycled: the tree is saturated with
    // stale markers — the Fig. 6 situation just before reuse.
    let mut reclaimed_total = 0usize;
    for s in 0..sections {
        reclaimed_total += c.recycle_section(s);
    }
    assert!(
        reclaimed_total > (tick / section_span) as usize,
        "expected a lap's worth of stale markers, got {reclaimed_total}"
    );
    // The range is clean for the next lap.
    c.insert(Tag(1), PacketRef(9999)).unwrap();
    assert_eq!(c.pop_min(), Some((Tag(1), PacketRef(9999))));
}

/// The conservative boundary this reproduction documents: a *wrapped*
/// restart under lazy cleanup is refused (the circuit cannot verify the
/// recycle-before-entry discipline locally), while the identical
/// sequence under eager cleanup proceeds.
#[test]
fn lazy_refuses_wrapped_restart_eager_accepts_it() {
    for (policy, expect_ok) in [(CleanupPolicy::Lazy, false), (CleanupPolicy::Eager, true)] {
        let mut c = SortRetrieveCircuit::with_policy(Geometry::paper(), 64, policy);
        c.insert(Tag(4000), PacketRef(0)).unwrap();
        c.pop_min().unwrap();
        // The stream wraps: next tag is small.
        let r = c.insert(Tag(15), PacketRef(1));
        assert_eq!(r.is_ok(), expect_ok, "{policy:?}");
    }
}
