//! Documented `wfqsim` invocations must actually run.
//!
//! README.md and POLICIES.md show fenced `wfqsim` command lines; this
//! check extracts every one of them and executes it against the built
//! binary, so a flag rename or a policy removal cannot silently rot
//! the docs. CI runs this with the rest of the workspace test suite.
//!
//! Extraction rules, kept deliberately simple so the docs stay plain:
//! inside fenced code blocks, a command is any line whose first token
//! sequence is `cargo run --bin wfqsim --` (the documented form) or
//! bare `wfqsim`; trailing-backslash continuations are joined first;
//! arguments are whitespace-split (documented examples use no shell
//! quoting). Each command runs in its own scratch directory so
//! artifact-writing examples (`--metrics`, `--fault-report`, ...)
//! exercise their output paths without littering the repo.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Joins backslash-continued lines, then yields the command lines of
/// every fenced code block.
fn fenced_commands(markdown: &str) -> Vec<String> {
    let mut joined = String::new();
    let mut fenced = false;
    let mut pending = String::new();
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if !fenced {
            continue;
        }
        if let Some(head) = line.strip_suffix('\\') {
            pending.push_str(head);
            pending.push(' ');
            continue;
        }
        pending.push_str(line);
        joined.push_str(&pending);
        joined.push('\n');
        pending.clear();
    }
    joined.lines().map(str::to_owned).collect()
}

/// The `wfqsim` argument vector of a documented command line, if it is
/// one.
fn wfqsim_args(command: &str) -> Option<Vec<String>> {
    let tokens: Vec<&str> = command.split_whitespace().collect();
    let rest = if tokens.first() == Some(&"wfqsim") {
        &tokens[1..]
    } else if tokens.len() >= 5 && tokens[..5] == ["cargo", "run", "--bin", "wfqsim", "--"] {
        &tokens[5..]
    } else {
        return None;
    };
    Some(rest.iter().map(|t| (*t).to_owned()).collect())
}

fn repo_file(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(name)
}

/// Runs every documented invocation from `doc`, in a scratch dir.
fn check_doc(doc: &str) {
    let text =
        std::fs::read_to_string(repo_file(doc)).unwrap_or_else(|e| panic!("read {doc}: {e}"));
    let commands: Vec<(String, Vec<String>)> = fenced_commands(&text)
        .into_iter()
        .filter_map(|line| wfqsim_args(&line).map(|args| (line, args)))
        .collect();
    assert!(
        !commands.is_empty(),
        "{doc} documents no wfqsim invocations — extractor or docs broken"
    );
    let scratch =
        std::env::temp_dir().join(format!("wfqsim_doc_examples_{}", doc.replace('.', "_")));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    for (line, args) in commands {
        let out = Command::new(env!("CARGO_BIN_EXE_wfqsim"))
            .args(&args)
            .current_dir(&scratch)
            .output()
            .expect("run wfqsim");
        assert!(
            out.status.success(),
            "documented command failed ({doc}):\n  {line}\nstderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn every_readme_wfqsim_example_runs() {
    check_doc("README.md");
}

#[test]
fn every_policies_wfqsim_example_runs() {
    check_doc("POLICIES.md");
}

#[test]
fn extractor_handles_continuations_and_prefixes() {
    let md = "\
intro text
```sh
# comment
cargo run --bin wfqsim -- --scheduler hw \\
    --flows 4
wfqsim --help
cargo test --workspace
```
not fenced: wfqsim --ignored
";
    let cmds: Vec<Vec<String>> = fenced_commands(md)
        .iter()
        .filter_map(|l| wfqsim_args(l))
        .collect();
    assert_eq!(
        cmds,
        vec![vec!["--scheduler", "hw", "--flows", "4"], vec!["--help"],]
    );
}
