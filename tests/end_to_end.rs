//! End-to-end pipeline tests: traffic generation → WFQ tag computation →
//! quantization → the sort/retrieve circuit → service, compared against
//! the pure-software scheduler and the Table I baselines.

use proptest::prelude::*;

use wfq_sorter::baselines::{exact_methods, reference_order};
use wfq_sorter::scheduler::{HwScheduler, SchedulerConfig};
use wfq_sorter::tagsort::{Geometry, PacketRef, SortRetrieveCircuit, Tag};
use wfq_sorter::traffic::{generate, profiles, FlowId, FlowSpec, Packet, Time};

/// The hardware scheduler and the software WFQ reference serve identical
/// traces in an order that never violates quantized-tag monotonicity,
/// across the ready-made traffic profiles.
#[test]
fn hardware_scheduler_sorts_all_profiles() {
    for (name, flows) in [
        ("voip", profiles::voip(6)),
        ("video", profiles::video(3, 1_500_000.0)),
        ("bulk", profiles::bulk(4, 800_000.0)),
        ("mix", profiles::diverse_mix(6, 600_000.0)),
    ] {
        let trace = generate(&flows, 0.3, 99);
        let mut hw = HwScheduler::new(
            &flows,
            10e6,
            SchedulerConfig {
                geometry: Geometry::new(4, 5),
                tick_scale: 20.0,
                capacity: 1 << 14,
                ..SchedulerConfig::default()
            },
        );
        let served = hw
            .sort_trace(&trace)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(served.len(), trace.len(), "{name}: packet loss");
        let stats = hw.stats();
        assert_eq!(stats.circuit.cycles_per_op(), 4.0, "{name}");
        assert_eq!(stats.inversions, 0, "{name}: saturate mode must not invert");
    }
}

// The sort/retrieve circuit and every exact Table I baseline agree on
// service order for the same batch.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn circuit_and_baselines_agree(
        tags in proptest::collection::vec(0u32..4096, 1..200)
    ) {
        let items: Vec<(Tag, PacketRef)> = tags
            .iter()
            .enumerate()
            .map(|(i, &t)| (Tag(t), PacketRef(i as u32)))
            .collect();
        let want: Vec<(u32, u32)> = reference_order(&items)
            .into_iter()
            .map(|(t, p)| (t.value(), p.index()))
            .collect();

        let mut circuit = SortRetrieveCircuit::new(Geometry::paper(), 1024);
        for &(t, p) in &items {
            circuit.insert(t, p).unwrap();
        }
        let got: Vec<(u32, u32)> = std::iter::from_fn(|| circuit.pop_min())
            .map(|(t, p)| (t.value(), p.index()))
            .collect();
        prop_assert_eq!(&got, &want, "sort/retrieve circuit");

        for mut method in exact_methods(12) {
            for &(t, p) in &items {
                method.insert(t, p);
            }
            let got: Vec<(u32, u32)> = std::iter::from_fn(|| method.pop_min())
                .map(|(t, p)| (t.value(), p.index()))
                .collect();
            prop_assert_eq!(&got, &want, "{}", method.name());
        }
    }
}

/// Sustained mixed enqueue/dequeue through the full scheduler keeps all
/// three component states (buffer, sorter, bookkeeping) coherent.
#[test]
fn pipeline_state_stays_coherent_under_interleaving() {
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec::new(FlowId(i), 1.0 + f64::from(i % 3), 1e6))
        .collect();
    let mut hw = HwScheduler::new(
        &flows,
        1e9,
        SchedulerConfig {
            geometry: Geometry::new(4, 5),
            tick_scale: 200.0,
            capacity: 4096,
            ..SchedulerConfig::default()
        },
    );
    let mut state = 0x5eedu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut t = 0.0;
    let mut in_flight = 0i64;
    for seq in 0..5000u64 {
        t += (next() % 100) as f64 * 1e-7;
        hw.enqueue(Packet {
            flow: FlowId((next() % 8) as u32),
            size_bytes: 64 + (next() % 1400) as u32,
            arrival: Time(t),
            seq,
        })
        .expect("capacity");
        in_flight += 1;
        while next() % 3 == 0 && in_flight > 0 {
            hw.dequeue().expect("backlogged");
            in_flight -= 1;
        }
        assert_eq!(hw.len() as i64, in_flight);
    }
    while hw.dequeue().is_some() {
        in_flight -= 1;
    }
    assert_eq!(in_flight, 0);
    let stats = hw.stats();
    assert_eq!(stats.enqueued, 5000);
    assert_eq!(stats.dequeued, 5000);
    assert_eq!(stats.buffer.occupied, 0);
    assert_eq!(stats.buffer.rejected, 0);
}

/// Buffer exhaustion surfaces as a clean error and the system recovers.
#[test]
fn overload_sheds_and_recovers() {
    let flows = vec![FlowSpec::new(FlowId(0), 1.0, 1e6)];
    let mut hw = HwScheduler::new(
        &flows,
        1e6,
        SchedulerConfig {
            capacity: 64,
            tick_scale: 1000.0,
            ..SchedulerConfig::default()
        },
    );
    let mut t = 0.0;
    let mut accepted = 0;
    let mut dropped = 0;
    for seq in 0..200u64 {
        t += 1e-6;
        match hw.enqueue(Packet {
            flow: FlowId(0),
            size_bytes: 1500,
            arrival: Time(t),
            seq,
        }) {
            Ok(()) => accepted += 1,
            Err(wfq_sorter::scheduler::SchedulerError::BufferFull { .. }) => dropped += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(accepted, 64);
    assert_eq!(dropped, 136);
    // Drain and refill: the freed slots are reusable.
    while hw.dequeue().is_some() {}
    t += 1.0;
    hw.enqueue(Packet {
        flow: FlowId(0),
        size_bytes: 100,
        arrival: Time(t),
        seq: 999,
    })
    .expect("recovered after drain");
}
