//! Cross-crate property tests for the sort/retrieve circuit: the
//! paper's central invariant is that the circuit is a faithful priority
//! queue with FCFS duplicates and a fixed four-cycle slot, under *any*
//! interleaving of inserts and pops.

use proptest::prelude::*;

use wfq_sorter::tagsort::{CleanupPolicy, Geometry, PacketRef, SortRetrieveCircuit, Tag};

/// An operation against the circuit.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Pop,
    InsertAndPop(u32),
}

fn op_strategy(tag_space: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..tag_space).prop_map(Op::Insert),
        2 => Just(Op::Pop),
        1 => (0..tag_space).prop_map(Op::InsertAndPop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eager-policy circuit == BTreeMap oracle on arbitrary op programs.
    #[test]
    fn circuit_matches_oracle(ops in proptest::collection::vec(op_strategy(4096), 1..400)) {
        let mut circuit = SortRetrieveCircuit::new(Geometry::paper(), 1024);
        let mut oracle: std::collections::BTreeMap<(u32, u64), u32> =
            std::collections::BTreeMap::new();
        let mut stamp = 0u64;
        let mut payload = 0u32;

        for op in &ops {
            match op {
                Op::Insert(t) => {
                    if circuit.len() < circuit.capacity() {
                        circuit.insert(Tag(*t), PacketRef(payload)).unwrap();
                        oracle.insert((*t, stamp), payload);
                        stamp += 1;
                        payload += 1;
                    }
                }
                Op::Pop => {
                    let got = circuit.pop_min();
                    let want = oracle.pop_first();
                    match (got, want) {
                        (Some((gt, gp)), Some(((wt, _), wp))) => {
                            prop_assert_eq!((gt.value(), gp.index()), (wt, wp));
                        }
                        (None, None) => {}
                        (g, w) => prop_assert!(false, "mismatch: {:?} vs {:?}", g, w),
                    }
                }
                Op::InsertAndPop(t) => {
                    if circuit.len() < circuit.capacity() {
                        oracle.insert((*t, stamp), payload);
                        stamp += 1;
                        let served = circuit.insert_and_pop(Tag(*t), PacketRef(payload)).unwrap();
                        payload += 1;
                        // The combined slot always serves the union
                        // minimum (cut-through included).
                        let ((wt, _), wp) = oracle.pop_first().expect("union non-empty");
                        let (gt, gp) = served.expect("union minimum served");
                        prop_assert_eq!((gt.value(), gp.index()), (wt, wp));
                    }
                }
            }
            prop_assert_eq!(circuit.len(), oracle.len());
        }
        // Drain and verify the tail is fully sorted with FCFS ties.
        let rest: Vec<(u32, u32)> = std::iter::from_fn(|| circuit.pop_min())
            .map(|(t, p)| (t.value(), p.index()))
            .collect();
        let want: Vec<(u32, u32)> = oracle.into_iter().map(|((t, _), p)| (t, p)).collect();
        prop_assert_eq!(rest, want);
    }

    /// The four-cycle slot is unconditional: every operation, at every
    /// occupancy, on every tested geometry.
    #[test]
    fn four_cycles_per_slot_always(
        ops in proptest::collection::vec(op_strategy(255), 1..200),
        wide in proptest::bool::ANY,
    ) {
        let geometry = if wide { Geometry::new(4, 2) } else { Geometry::new(2, 4) };
        let mut circuit = SortRetrieveCircuit::new(geometry, 512);
        for op in &ops {
            let before = circuit.cycles();
            let advanced = match op {
                Op::Insert(t) => {
                    circuit.insert(Tag(*t), PacketRef(0)).unwrap();
                    true
                }
                Op::Pop => circuit.pop_min().is_some(),
                Op::InsertAndPop(t) => {
                    circuit.insert_and_pop(Tag(*t), PacketRef(0)).unwrap();
                    true
                }
            };
            if advanced {
                prop_assert_eq!(circuit.cycles().since(before), 4);
            }
        }
    }

    /// Lazy (paper-literal) cleanup agrees with Eager on conforming
    /// streams: inserts at or above the current minimum.
    #[test]
    fn lazy_equals_eager_on_conforming_streams(
        deltas in proptest::collection::vec((0u32..64, proptest::bool::ANY), 1..200)
    ) {
        let mut eager = SortRetrieveCircuit::new(Geometry::paper(), 512);
        let mut lazy =
            SortRetrieveCircuit::with_policy(Geometry::paper(), 512, CleanupPolicy::Lazy);
        // A conforming stream keeps tags monotone against both the live
        // minimum and the high-water mark across drains — the paper's
        // monotone virtual time.
        let mut high_water = 0u32;
        for (payload, (delta, do_pop)) in deltas.into_iter().enumerate() {
            let payload = payload as u32;
            let base = eager
                .peek_min()
                .map(|(t, _)| t.value())
                .unwrap_or(high_water)
                .max(high_water);
            let tag = (base + delta).min(4095);
            high_water = high_water.max(tag);
            eager.insert(Tag(tag), PacketRef(payload)).unwrap();
            lazy.insert(Tag(tag), PacketRef(payload)).unwrap();
            if do_pop {
                prop_assert_eq!(eager.pop_min(), lazy.pop_min());
            }
        }
        let e: Vec<_> = std::iter::from_fn(|| eager.pop_min()).collect();
        let l: Vec<_> = std::iter::from_fn(|| lazy.pop_min()).collect();
        prop_assert_eq!(e, l);
    }
}

/// Duplicate-heavy torture: thousands of equal tags interleaved with
/// pops must preserve exact arrival order.
#[test]
fn duplicate_torture_is_fcfs() {
    let mut circuit = SortRetrieveCircuit::new(Geometry::paper(), 4096);
    let mut expect = std::collections::VecDeque::new();
    let mut n = 0u32;
    for round in 0..50 {
        for _ in 0..40 {
            circuit.insert(Tag(7), PacketRef(n)).unwrap();
            expect.push_back(n);
            n += 1;
        }
        for _ in 0..(round % 30) {
            let got = circuit.pop_min().map(|(_, p)| p.index());
            assert_eq!(got, expect.pop_front());
        }
    }
    while let Some((t, p)) = circuit.pop_min() {
        assert_eq!(t, Tag(7));
        assert_eq!(Some(p.index()), expect.pop_front());
    }
    assert!(expect.is_empty());
}
