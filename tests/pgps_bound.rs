//! The theorem behind the whole system, tested as a property: WFQ (PGPS)
//! finishes every packet no later than its GPS fluid finish plus one
//! maximum packet transmission time, for arbitrary weights, sizes, and
//! arrival patterns (Parekh–Gallager; paper §I-B "WFQ ... approximates
//! GPS within one packet transmission time regardless of the arrival
//! patterns").

use proptest::prelude::*;

use wfq_sorter::fairq::{metrics, LinkSim, Wf2q, Wfq};
use wfq_sorter::traffic::{FlowId, FlowSpec, Packet, Time};

#[derive(Debug, Clone)]
struct Arrival {
    flow: u8,
    gap_us: u16,
    bytes: u16,
}

fn arrivals() -> impl Strategy<Value = Vec<Arrival>> {
    proptest::collection::vec(
        (0u8..4, 0u16..2000, 40u16..1500).prop_map(|(flow, gap_us, bytes)| Arrival {
            flow,
            gap_us,
            bytes,
        }),
        1..120,
    )
}

fn build_trace(arrivals: &[Arrival]) -> Vec<Packet> {
    let mut t = 0.0;
    arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| {
            t += f64::from(a.gap_us) * 1e-6;
            Packet {
                flow: FlowId(u32::from(a.flow)),
                size_bytes: u32::from(a.bytes),
                arrival: Time(t),
                seq: i as u64,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wfq_never_lags_gps_by_more_than_one_packet(
        arrivals in arrivals(),
        weights in proptest::collection::vec(1u8..10, 4),
    ) {
        let rate = 1e6;
        let flows: Vec<FlowSpec> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| FlowSpec::new(FlowId(i as u32), f64::from(w), rate))
            .collect();
        let trace = build_trace(&arrivals);
        let deps = LinkSim::new(rate, Wfq::new(&flows, rate)).run(&trace);
        let lag = metrics::gps_lag(&flows, &trace, &deps, rate);
        let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
        prop_assert!(
            lag <= lmax / rate + 1e-9,
            "PGPS bound violated: lag {} > {}",
            lag,
            lmax / rate
        );
    }

    #[test]
    fn wf2q_also_meets_the_bound_without_fallbacks(
        arrivals in arrivals(),
    ) {
        let rate = 1e6;
        let flows: Vec<FlowSpec> = (0..4)
            .map(|i| FlowSpec::new(FlowId(i), f64::from(i + 1), rate))
            .collect();
        let trace = build_trace(&arrivals);
        let mut sim = LinkSim::new(rate, Wf2q::new(&flows, rate));
        let deps = sim.run(&trace);
        let lag = metrics::gps_lag(&flows, &trace, &deps, rate);
        let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
        prop_assert!(lag <= lmax / rate + 1e-9);
        prop_assert_eq!(sim.scheduler().fallbacks(), 0, "eligibility rule failed");
    }

    /// Work conservation and packet conservation hold for the whole
    /// scheduler family on arbitrary traces.
    #[test]
    fn schedulers_conserve_packets(arrivals in arrivals()) {
        use wfq_sorter::fairq::{
            Drr, Fbfq, Fifo, Mdrr, Scfq, Scheduler, Sfq, StratifiedRr, Wf2qPlus, Wrr,
        };
        let rate = 1e6;
        let flows: Vec<FlowSpec> = (0..4)
            .map(|i| FlowSpec::new(FlowId(i), f64::from(i + 1), rate))
            .collect();
        let trace = build_trace(&arrivals);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Fifo::new()),
            Box::new(Wrr::new(&flows)),
            Box::new(Drr::new(&flows, 1500.0)),
            Box::new(Mdrr::new(&flows, 1500.0, FlowId(0))),
            Box::new(StratifiedRr::new(&flows)),
            Box::new(Fbfq::new(&flows, rate, 1500.0)),
            Box::new(Scfq::new(&flows)),
            Box::new(Sfq::new(&flows)),
            Box::new(Wfq::new(&flows, rate)),
            Box::new(Wf2q::new(&flows, rate)),
            Box::new(Wf2qPlus::new(&flows)),
        ];
        for s in schedulers {
            let name = s.name();
            // LinkSim asserts work conservation and conservation of
            // packets internally; per-flow FIFO is checked here.
            let deps = LinkSim::new(rate, s).run(&trace);
            prop_assert_eq!(deps.len(), trace.len(), "{} lost packets", name);
            let mut last_seq_per_flow = std::collections::HashMap::new();
            for d in &deps {
                let flow = d.packet.flow;
                if let Some(prev) = last_seq_per_flow.insert(flow, d.packet.seq) {
                    prop_assert!(
                        prev < d.packet.seq,
                        "{}: flow {} served out of FIFO order",
                        name,
                        flow
                    );
                }
            }
        }
    }
}
