//! `wfqsim` CLI contract: validated flags fail with a structured error
//! message and a non-zero exit code — never a panic — and the multi-port
//! flags accept well-formed non-uniform rate lists.

use std::process::{Command, Output};

fn wfqsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wfqsim"))
        .args(args)
        .output()
        .expect("run wfqsim")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn zero_rate_is_a_structured_error_not_a_panic() {
    for bad in ["0", "-1e6", "nan", "inf"] {
        let out = wfqsim(&["--scheduler", "hw", "--ports", "2", "--rate", bad]);
        assert!(!out.status.success(), "--rate {bad} must fail");
        let err = stderr(&out);
        assert!(
            err.contains("rate must be positive and finite"),
            "--rate {bad}: expected structured error, got: {err}"
        );
        assert!(
            !err.contains("panicked"),
            "--rate {bad} panicked instead of erroring: {err}"
        );
    }
}

#[test]
fn zero_port_rate_is_a_structured_error_with_the_port_named() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "2",
        "--flows",
        "8",
        "--port-rates",
        "2e6,0",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--port-rates: port 1: rate must be positive and finite"),
        "expected the failing port in the error, got: {err}"
    );
    assert!(!err.contains("panicked"), "panicked: {err}");
}

#[test]
fn port_rate_count_must_match_ports() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "4",
        "--flows",
        "16",
        "--port-rates",
        "2e6,2e6",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("2 rates given but --ports is 4"),
        "expected a count-mismatch error, got: {err}"
    );
}

#[test]
fn non_uniform_port_rates_run_end_to_end() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "2",
        "--flows",
        "8",
        "--horizon",
        "0.2",
        "--rate",
        "2e6",
        "--port-rates",
        "4e6,1e6",
    ]);
    let err = stderr(&out);
    assert!(out.status.success(), "run failed: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("non-uniform rates"),
        "report should flag non-uniform rates: {stdout}"
    );
    // Both configured rates appear in the per-port table.
    assert!(
        stdout.contains("4.000Mb/s"),
        "missing port 0 rate: {stdout}"
    );
    assert!(
        stdout.contains("1.000Mb/s"),
        "missing port 1 rate: {stdout}"
    );
}

#[test]
fn uniform_multiport_run_still_reports_the_shared_rate() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "2",
        "--flows",
        "8",
        "--horizon",
        "0.2",
        "--rate",
        "2e6",
    ]);
    let err = stderr(&out);
    assert!(out.status.success(), "run failed: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("2 ports x 2.000 Mb/s"),
        "uniform header missing: {stdout}"
    );
}
