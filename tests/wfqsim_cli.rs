//! `wfqsim` CLI contract: validated flags fail with a structured error
//! message and a non-zero exit code — never a panic — the multi-port
//! flags accept well-formed non-uniform rate lists, and the telemetry
//! flags (`--metrics`, `--trace-events`, `--latency-report`,
//! `--event-log`) produce parseable, deterministic artifacts.

use std::process::{Command, Output};

fn wfqsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wfqsim"))
        .args(args)
        .output()
        .expect("run wfqsim")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn zero_rate_is_a_structured_error_not_a_panic() {
    for bad in ["0", "-1e6", "nan", "inf"] {
        let out = wfqsim(&["--scheduler", "hw", "--ports", "2", "--rate", bad]);
        assert!(!out.status.success(), "--rate {bad} must fail");
        let err = stderr(&out);
        assert!(
            err.contains("rate must be positive and finite"),
            "--rate {bad}: expected structured error, got: {err}"
        );
        assert!(
            !err.contains("panicked"),
            "--rate {bad} panicked instead of erroring: {err}"
        );
    }
}

#[test]
fn zero_port_rate_is_a_structured_error_with_the_port_named() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "2",
        "--flows",
        "8",
        "--port-rates",
        "2e6,0",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--port-rates: port 1: rate must be positive and finite"),
        "expected the failing port in the error, got: {err}"
    );
    assert!(!err.contains("panicked"), "panicked: {err}");
}

#[test]
fn port_rate_count_must_match_ports() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "4",
        "--flows",
        "16",
        "--port-rates",
        "2e6,2e6",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("2 rates given but --ports is 4"),
        "expected a count-mismatch error, got: {err}"
    );
}

#[test]
fn non_uniform_port_rates_run_end_to_end() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "2",
        "--flows",
        "8",
        "--horizon",
        "0.2",
        "--rate",
        "2e6",
        "--port-rates",
        "4e6,1e6",
    ]);
    let err = stderr(&out);
    assert!(out.status.success(), "run failed: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("non-uniform rates"),
        "report should flag non-uniform rates: {stdout}"
    );
    // Both configured rates appear in the per-port table.
    assert!(
        stdout.contains("4.000Mb/s"),
        "missing port 0 rate: {stdout}"
    );
    assert!(
        stdout.contains("1.000Mb/s"),
        "missing port 1 rate: {stdout}"
    );
}

#[test]
fn metrics_flag_writes_a_parseable_deterministic_snapshot() {
    let dir = std::env::temp_dir().join("wfqsim_cli_metrics");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let run = |name: &str| -> String {
        let path = dir.join(name);
        let path = path.to_str().expect("utf-8 temp path");
        let out = wfqsim(&[
            "--ports",
            "2",
            "--flows",
            "8",
            "--horizon",
            "0.2",
            "--metrics",
            path,
            "--trace-events",
            "8",
        ]);
        assert!(out.status.success(), "run failed: {}", stderr(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            stdout.contains("telemetry snapshot written to"),
            "missing confirmation line: {stdout}"
        );
        std::fs::read_to_string(path).expect("snapshot file written")
    };

    let first = run("a.json");
    let parsed = wfq_sorter::telemetry::parse_flat_json(&first)
        .expect("snapshot is a flat JSON number object");
    let value = |key: &str| {
        parsed
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{key} missing from snapshot"))
    };
    // Per-shard counters, a latency histogram, and merged legacy stats
    // all travel in the one snapshot.
    assert!(value("sched_enqueued_total") > 0.0);
    assert_eq!(
        value("sched_enqueued_port0") + value("sched_enqueued_port1"),
        value("sched_enqueued_total")
    );
    assert!(value("tag_sort_latency_cycles_count") > 0.0);
    assert!(value("tag_sort_latency_cycles_p99") >= 1.0);
    assert!(value("hw_agg_enqueued") > 0.0);
    assert!(value("hw_agg_buf_peak") >= 1.0);

    // Same seed, same flags → byte-identical snapshot.
    let second = run("b.json");
    assert_eq!(first, second, "snapshot is not deterministic");
}

#[test]
fn unwritable_metrics_path_is_a_structured_error() {
    let out = wfqsim(&[
        "--ports",
        "2",
        "--flows",
        "8",
        "--horizon",
        "0.1",
        "--metrics",
        "/nonexistent-dir/out.json",
    ]);
    assert!(!out.status.success(), "unwritable path must fail the run");
    let err = stderr(&out);
    assert!(
        err.contains("cannot write /nonexistent-dir/out.json"),
        "expected structured write error, got: {err}"
    );
    assert!(!err.contains("panicked"), "panicked: {err}");
}

#[test]
fn trace_events_capacity_is_validated() {
    for (bad, expect) in [
        ("abc", "--trace-events: invalid digit"),
        ("-3", "--trace-events: invalid digit"),
        ("0", "--trace-events: capacity must be at least 1"),
    ] {
        let out = wfqsim(&[
            "--ports",
            "2",
            "--metrics",
            "out.json",
            "--trace-events",
            bad,
        ]);
        assert!(!out.status.success(), "--trace-events {bad} must fail");
        let err = stderr(&out);
        assert!(
            err.contains(expect),
            "--trace-events {bad}: expected {expect:?}, got: {err}"
        );
        assert!(!err.contains("panicked"), "panicked: {err}");
    }
}

#[test]
fn trace_events_requires_metrics() {
    let out = wfqsim(&["--ports", "2", "--trace-events", "8"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--trace-events: requires --metrics"),
        "expected dependency error, got: {err}"
    );
}

#[test]
fn metrics_rejects_software_schedulers() {
    let out = wfqsim(&["--scheduler", "wfq", "--metrics", "out.json"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--metrics: instruments the hardware pipeline"),
        "expected scheduler-kind error, got: {err}"
    );
    assert!(
        err.contains("--scheduler wfq is software"),
        "error should name the offending scheduler: {err}"
    );
}

#[test]
fn explicit_software_scheduler_with_ports_is_rejected_in_either_flag_order() {
    // Regression: `--scheduler wfq --ports 4` used to slip past argument
    // validation and only fail (or silently resolve) after the trace had
    // been generated. Both flag orders must now fail at parse time with
    // a structured error naming both offending flags.
    let orders: [&[&str]; 2] = [
        &["--scheduler", "wfq", "--ports", "4"],
        &["--ports", "4", "--scheduler", "wfq"],
    ];
    for args in orders {
        let out = wfqsim(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(
            err.contains("--scheduler wfq") && err.contains("--ports 4"),
            "{args:?}: error should name both flags, got: {err}"
        );
        assert!(
            err.contains("only 'hw' supports multi-port"),
            "{args:?}: expected the multi-port explanation, got: {err}"
        );
        assert!(!err.contains("panicked"), "{args:?} panicked: {err}");
    }
    // An explicit hw scheduler with ports stays accepted.
    let out = wfqsim(&[
        "--ports",
        "2",
        "--scheduler",
        "hw",
        "--flows",
        "8",
        "--horizon",
        "0.1",
    ]);
    assert!(
        out.status.success(),
        "--scheduler hw --ports 2 must run: {}",
        stderr(&out)
    );
}

#[test]
fn backend_with_software_scheduler_is_rejected_in_either_flag_order() {
    // `--backend` selects the engine inside the hardware pipeline, so a
    // software scheduler alongside it must fail at parse time — in both
    // flag orders — with an error naming both offending flags.
    let orders: [&[&str]; 3] = [
        &["--scheduler", "wfq", "--backend", "fastpath"],
        &["--backend", "fastpath", "--scheduler", "wfq"],
        &["--backend", "fastpath"], // default scheduler resolves to wfq
    ];
    for args in orders {
        let out = wfqsim(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(
            err.contains("--backend fastpath") && err.contains("--scheduler wfq"),
            "{args:?}: error should name both flags, got: {err}"
        );
        assert!(
            err.contains("sorting engine"),
            "{args:?}: expected the backend explanation, got: {err}"
        );
        assert!(!err.contains("panicked"), "{args:?} panicked: {err}");
    }
    // The pipelined backend is held to the same parse-time contract.
    let out = wfqsim(&["--scheduler", "wfq", "--backend", "pipelined"]);
    assert!(!out.status.success(), "--backend pipelined needs hw");
    let err = stderr(&out);
    assert!(
        err.contains("--backend pipelined") && err.contains("--scheduler wfq"),
        "pipelined rejection should name both flags, got: {err}"
    );
    // With the hardware pipeline (explicit or via --ports) it runs.
    for args in [
        &[
            "--scheduler",
            "hw",
            "--backend",
            "fastpath",
            "--horizon",
            "0.1",
        ][..],
        &[
            "--ports",
            "2",
            "--flows",
            "8",
            "--backend",
            "heap",
            "--horizon",
            "0.1",
        ][..],
        &[
            "--ports",
            "2",
            "--flows",
            "8",
            "--backend",
            "pipelined",
            "--horizon",
            "0.1",
        ][..],
    ] {
        let out = wfqsim(args);
        assert!(out.status.success(), "{args:?} failed: {}", stderr(&out));
    }
}

#[test]
fn unknown_backend_is_a_structured_error() {
    let out = wfqsim(&["--scheduler", "hw", "--backend", "btree"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--backend: unknown backend \"btree\""),
        "expected structured backend error, got: {err}"
    );
    assert!(
        err.contains("trie, fastpath, heap, or pipelined"),
        "error should list the valid backends: {err}"
    );
}

#[test]
fn unknown_policy_is_a_structured_error() {
    let out = wfqsim(&["--scheduler", "hw", "--policy", "lstf"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--policy: unknown policy \"lstf\""),
        "expected structured policy error, got: {err}"
    );
    assert!(
        err.contains("wfq, stfq, srpt, fifo+, prio, leaky, hwfq"),
        "error should list the valid policies: {err}"
    );
}

#[test]
fn policy_and_admission_reject_software_schedulers() {
    // `--policy` programs the rank function inside the hardware
    // pipeline; like `--backend`, it must fail at parse time alongside a
    // software scheduler, in either flag order, naming both flags.
    let orders: [&[&str]; 3] = [
        &["--scheduler", "wfq", "--policy", "stfq"],
        &["--policy", "stfq", "--scheduler", "wfq"],
        &["--policy", "stfq"], // default scheduler resolves to wfq
    ];
    for args in orders {
        let out = wfqsim(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(
            err.contains("--policy stfq") && err.contains("--scheduler wfq"),
            "{args:?}: error should name both flags, got: {err}"
        );
        assert!(
            err.contains("rank function"),
            "{args:?}: expected the policy explanation, got: {err}"
        );
    }
    let out = wfqsim(&["--scheduler", "drr", "--admission", "push-out"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--admission push-out") && err.contains("--scheduler drr"),
        "error should name both flags, got: {err}"
    );
}

#[test]
fn every_documented_policy_runs_and_is_named_in_the_header() {
    for policy in ["wfq", "stfq", "srpt", "fifo+", "prio", "leaky", "hwfq"] {
        let out = wfqsim(&[
            "--scheduler",
            "hw",
            "--policy",
            policy,
            "--flows",
            "4",
            "--horizon",
            "0.1",
        ]);
        assert!(
            out.status.success(),
            "--policy {policy} failed: {}",
            stderr(&out)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            stdout.contains(&format!("scheduler hw (trie, policy {policy})")),
            "--policy {policy}: header should name the policy: {stdout}"
        );
    }
    // Multi-port and push-out admission compose with a policy.
    let out = wfqsim(&[
        "--ports",
        "2",
        "--flows",
        "8",
        "--policy",
        "stfq",
        "--admission",
        "push-out",
        "--horizon",
        "0.1",
    ]);
    assert!(
        out.status.success(),
        "sharded stfq failed: {}",
        stderr(&out)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("scheduler hw (sharded, trie, policy stfq)"),
        "sharded header should name the policy: {stdout}"
    );
}

#[test]
fn default_policy_leaves_the_report_byte_identical() {
    // `--policy wfq` must be the scheduler the hardware pipeline already
    // ran before the flag existed: everything after the header line
    // (which names the explicit policy) is byte-identical.
    let run = |args: &[&str]| -> String {
        let out = wfqsim(args);
        assert!(out.status.success(), "{args:?} failed: {}", stderr(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let (_, report) = stdout.split_once('\n').expect("header line");
        report.to_string()
    };
    let implicit = run(&["--scheduler", "hw", "--flows", "4", "--horizon", "0.2"]);
    let explicit = run(&[
        "--scheduler",
        "hw",
        "--policy",
        "wfq",
        "--flows",
        "4",
        "--horizon",
        "0.2",
    ]);
    assert_eq!(implicit, explicit, "--policy wfq changed the default run");
}

#[test]
fn help_enumerates_every_accepted_flag_value() {
    let out = wfqsim(&["--help"]);
    assert!(out.status.success(), "--help must exit successfully");
    let help = stderr(&out);
    let catalogs: [(&str, &[&str]); 4] = [
        ("--backend", &["trie", "fastpath", "heap", "pipelined"]),
        (
            "--policy",
            &["wfq", "stfq", "srpt", "fifo+", "prio", "leaky", "hwfq"],
        ),
        ("--admission", &["tail-drop", "push-out"]),
        (
            "--fault-policy",
            &["fail-fast", "detect-and-count", "scrub-and-repair"],
        ),
    ];
    for (flag, values) in catalogs {
        assert!(help.contains(flag), "help must document {flag}");
        for value in values {
            assert!(
                help.contains(value),
                "help must list {value:?} under {flag}: {help}"
            );
        }
    }
}

#[test]
fn all_backends_serve_the_same_departure_schedule_end_to_end() {
    // The SortBackend contract end to end: swapping the engine changes
    // only the header line, never the per-flow delay/throughput report.
    let run = |backend: &str| -> (String, String) {
        let out = wfqsim(&[
            "--scheduler",
            "hw",
            "--backend",
            backend,
            "--flows",
            "4",
            "--horizon",
            "0.2",
        ]);
        assert!(out.status.success(), "{backend} failed: {}", stderr(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let (header, report) = stdout.split_once('\n').expect("header line");
        (header.to_string(), report.to_string())
    };
    let (trie_header, trie) = run("trie");
    assert!(
        trie_header.contains("scheduler hw (trie)"),
        "header should name the backend: {trie_header}"
    );
    let (_, fastpath) = run("fastpath");
    let (_, heap) = run("heap");
    let (_, pipelined) = run("pipelined");
    assert_eq!(trie, fastpath, "fastpath report diverges from trie");
    assert_eq!(trie, heap, "heap report diverges from trie");
    assert_eq!(trie, pipelined, "pipelined report diverges from trie");
}

#[test]
fn backends_without_addressable_state_record_fault_rejections() {
    let dir = std::env::temp_dir().join("wfqsim_cli_backend_faults");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("heap.txt");
    let path = path.to_str().expect("utf-8 temp path");
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--backend",
        "heap",
        "--flows",
        "4",
        "--horizon",
        "0.1",
        "--inject-faults",
        "4@7:trie:1",
        "--fault-report",
        path,
    ]);
    assert!(out.status.success(), "run failed: {}", stderr(&out));
    let report = std::fs::read_to_string(path).expect("fault report written");
    // The heap oracle has no sorter hardware state: every scheduled
    // sorter fault must surface as a structured rejection, not a
    // silent drop or a panic. (An `any` plan would not do: the shared
    // packet buffer is scheduler-owned and faultable under every
    // backend, so its draws inject rather than reject.)
    assert!(
        report.contains("injected=0 detected=0 repaired=0 silent=0"),
        "heap must inject nothing:\n{report}"
    );
    assert_eq!(
        report.matches(" rejected: ").count(),
        4,
        "all 4 scheduled faults must be recorded as rejections:\n{report}"
    );
    assert!(
        report.contains("backend `heap` has no addressable"),
        "rejections should carry the structured attach error:\n{report}"
    );
}

#[test]
fn latency_report_exports_per_flow_sojourn_keys() {
    let dir = std::env::temp_dir().join("wfqsim_cli_latency");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("latency.json");
    let path = path.to_str().expect("utf-8 temp path");
    let out = wfqsim(&[
        "--ports",
        "4",
        "--flows",
        "16",
        "--horizon",
        "0.2",
        "--latency-report",
        path,
    ]);
    assert!(out.status.success(), "run failed: {}", stderr(&out));
    let report = std::fs::read_to_string(path).expect("latency report written");
    let parsed =
        wfq_sorter::telemetry::parse_flat_json(&report).expect("report is flat JSON numbers");
    let value = |key: &str| {
        parsed
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{key} missing from latency report"))
    };
    // Sojourn histograms in cycles, per global flow id, with the wall
    // clock split into buffer residency and retrieve-to-departure.
    for flow in [0, 15] {
        assert!(value(&format!("flow{flow}_sojourn_p50")) >= 4.0);
        assert!(
            value(&format!("flow{flow}_sojourn_p99")) >= value(&format!("flow{flow}_sojourn_p50"))
        );
        assert!(
            value(&format!("flow{flow}_sojourn_max"))
                >= value(&format!("flow{flow}_sojourn_p99")) / 2.0
        );
        assert!(value(&format!("flow{flow}_wait_ns_count")) > 0.0);
        assert!(value(&format!("flow{flow}_service_ns_count")) > 0.0);
        assert!(value(&format!("flow{flow}_sojourn_ns_count")) > 0.0);
    }
    assert_eq!(value("latency_flows"), 16.0);
    assert!(value("latency_samples") > 0.0);
}

#[test]
fn event_log_streams_every_event_deterministically() {
    let dir = std::env::temp_dir().join("wfqsim_cli_event_log");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let run = |name: &str| -> String {
        let path = dir.join(name);
        let path = path.to_str().expect("utf-8 temp path");
        // Default one-second horizon: ~900 packets × 3 event kinds is
        // far beyond the 256-event default ring per shard, so only the
        // streamed sink can hold the complete log.
        let out = wfqsim(&["--ports", "4", "--flows", "16", "--event-log", path]);
        assert!(out.status.success(), "run failed: {}", stderr(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            stdout.contains("event log written to"),
            "missing confirmation line: {stdout}"
        );
        std::fs::read_to_string(path).expect("event log written")
    };

    let first = run("a.ndjson");
    // Every line is one JSON event object; enqueue and dequeue events
    // balance, which can only hold if the sink saw every event (the
    // ring alone would have evicted the early ones on this run length).
    let mut enq = 0u64;
    let mut deq = 0u64;
    for line in first.lines() {
        assert!(
            line.starts_with("{\"shard\":") && line.ends_with('}'),
            "malformed event line: {line}"
        );
        if line.contains("\"kind\":\"enqueue\"") {
            enq += 1;
        }
        if line.contains("\"kind\":\"dequeue\"") {
            deq += 1;
        }
    }
    assert!(enq > 256, "expected a run long enough to overflow the ring");
    assert_eq!(enq, deq, "every enqueue must have its dequeue logged");

    // Same seed, same flags → byte-identical log.
    let second = run("b.ndjson");
    assert_eq!(first, second, "event log is not deterministic");
}

#[test]
fn latency_and_event_flags_reject_software_schedulers() {
    for flag in ["--latency-report", "--event-log"] {
        let out = wfqsim(&["--scheduler", "drr", flag, "out.tmp"]);
        assert!(!out.status.success(), "{flag} with drr must fail");
        let err = stderr(&out);
        assert!(
            err.contains(&format!("{flag}: instruments the hardware pipeline")),
            "{flag}: expected scheduler-kind error, got: {err}"
        );
    }
}

#[test]
fn unwritable_event_log_path_is_a_structured_error() {
    let out = wfqsim(&[
        "--ports",
        "2",
        "--flows",
        "8",
        "--horizon",
        "0.1",
        "--event-log",
        "/nonexistent-dir/events.ndjson",
    ]);
    assert!(!out.status.success(), "unwritable path must fail the run");
    let err = stderr(&out);
    assert!(
        err.contains("--event-log: cannot create /nonexistent-dir/events.ndjson"),
        "expected structured create error, got: {err}"
    );
    assert!(!err.contains("panicked"), "panicked: {err}");
}

#[test]
fn bad_fault_spec_is_a_structured_error() {
    for (bad, expect) in [
        ("bogus", "bad fault spec"),
        ("0@7", "fault count must be positive"),
        ("4@7:cache", "unknown fault component"),
        ("4@7:trie:0", "bit count must be"),
    ] {
        let out = wfqsim(&["--scheduler", "hw", "--inject-faults", bad]);
        assert!(!out.status.success(), "--inject-faults {bad} must fail");
        let err = stderr(&out);
        assert!(
            err.contains("--inject-faults:") && err.contains(expect),
            "--inject-faults {bad}: expected {expect:?}, got: {err}"
        );
        assert!(!err.contains("panicked"), "panicked: {err}");
    }
}

#[test]
fn bad_fault_policy_is_a_structured_error() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--inject-faults",
        "4@7",
        "--fault-policy",
        "shrug",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--fault-policy: unknown fault policy \"shrug\""),
        "expected structured policy error, got: {err}"
    );
    assert!(
        err.contains("fail-fast, detect-and-count, or scrub-and-repair"),
        "error should list the valid policies: {err}"
    );
}

#[test]
fn fault_flags_require_a_campaign_and_the_hardware_pipeline() {
    // --fault-policy / --fault-report without --inject-faults.
    for flag in ["--fault-policy", "--fault-report"] {
        let arg = if flag == "--fault-policy" {
            "fail-fast"
        } else {
            "out.tmp"
        };
        let out = wfqsim(&["--scheduler", "hw", flag, arg]);
        assert!(!out.status.success(), "{flag} without a campaign must fail");
        let err = stderr(&out);
        assert!(
            err.contains(&format!("{flag}: requires --inject-faults")),
            "{flag}: expected dependency error, got: {err}"
        );
    }
    // --inject-faults against a software scheduler.
    let out = wfqsim(&["--scheduler", "wfq", "--inject-faults", "4@7"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--inject-faults: instruments the hardware pipeline"),
        "expected scheduler-kind error, got: {err}"
    );
}

#[test]
fn unwritable_fault_report_path_is_a_structured_error() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--flows",
        "4",
        "--horizon",
        "0.1",
        "--inject-faults",
        "4@7",
        "--fault-report",
        "/nonexistent-dir/faults.txt",
    ]);
    assert!(!out.status.success(), "unwritable path must fail the run");
    let err = stderr(&out);
    assert!(
        err.contains("--fault-report: cannot write /nonexistent-dir/faults.txt"),
        "expected structured write error, got: {err}"
    );
    assert!(!err.contains("panicked"), "panicked: {err}");
}

#[test]
fn fault_report_is_byte_deterministic_and_reconciles() {
    let dir = std::env::temp_dir().join("wfqsim_cli_faults");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let run = |name: &str| -> String {
        let path = dir.join(name);
        let path = path.to_str().expect("utf-8 temp path");
        let out = wfqsim(&[
            "--ports",
            "2",
            "--flows",
            "8",
            "--horizon",
            "0.2",
            "--inject-faults",
            "8@7:any:1",
            "--fault-report",
            path,
        ]);
        assert!(out.status.success(), "run failed: {}", stderr(&out));
        std::fs::read_to_string(path).expect("fault report written")
    };

    let first = run("a.txt");
    assert!(first.starts_with("# wfqsim fault report\n"));
    assert!(first.contains("policy=detect-and-count spec=8@7:any:1 ports=2"));
    // The per-port totals reconcile: detected + silent == injected.
    let mut injected = 0u64;
    let mut accounted = 0u64;
    for line in first.lines().filter(|l| l.contains(" injected=")) {
        let field = |key: &str| -> u64 {
            line.split_whitespace()
                .find_map(|tok| tok.strip_prefix(key))
                .unwrap_or_else(|| panic!("{key} missing in {line:?}"))
                .parse()
                .expect("numeric total")
        };
        injected += field("injected=");
        accounted += field("detected=") + field("silent=");
    }
    assert!(injected > 0, "no faults materialized:\n{first}");
    assert_eq!(accounted, injected, "ledger does not reconcile:\n{first}");

    // Same seed, same flags → byte-identical report.
    let second = run("b.txt");
    assert_eq!(first, second, "fault report is not deterministic");
}

#[test]
fn event_log_format_is_validated_and_compact_round_trips() {
    // Unknown format and a format without a log are structured errors.
    let out = wfqsim(&[
        "--ports",
        "2",
        "--event-log",
        "x",
        "--event-log-format",
        "xml",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--event-log-format: unknown event log format \"xml\""),
        "expected format error, got: {}",
        stderr(&out)
    );
    let out = wfqsim(&["--ports", "2", "--event-log-format", "compact"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--event-log-format: requires --event-log"),
        "expected dependency error, got: {}",
        stderr(&out)
    );

    // A compact log decodes back to exactly the events of a JSON run
    // with the same seed and flags.
    let dir = std::env::temp_dir().join("wfqsim_cli_compact");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let run = |name: &str, format: &str| -> String {
        let path = dir.join(name);
        let path = path.to_str().expect("utf-8 temp path");
        let out = wfqsim(&[
            "--ports",
            "2",
            "--flows",
            "8",
            "--horizon",
            "0.2",
            "--event-log",
            path,
            "--event-log-format",
            format,
        ]);
        assert!(out.status.success(), "run failed: {}", stderr(&out));
        std::fs::read_to_string(path).expect("event log written")
    };
    let json = run("a.ndjson", "json");
    let compact = run("a.compact", "compact");
    assert!(
        compact.len() < json.len() / 2,
        "compact log should be much smaller: {} vs {} bytes",
        compact.len(),
        json.len()
    );
    let decoded =
        wfq_sorter::telemetry::parse_compact_event_log(&compact).expect("compact log parses");
    let rendered: String = decoded
        .iter()
        .map(|e| wfq_sorter::telemetry::event_to_json(e) + "\n")
        .collect();
    assert_eq!(rendered, json, "compact log does not round-trip");
}

#[test]
fn uniform_multiport_run_still_reports_the_shared_rate() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "2",
        "--flows",
        "8",
        "--horizon",
        "0.2",
        "--rate",
        "2e6",
    ]);
    let err = stderr(&out);
    assert!(out.status.success(), "run failed: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("2 ports x 2.000 Mb/s"),
        "uniform header missing: {stdout}"
    );
}
