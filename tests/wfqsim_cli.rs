//! `wfqsim` CLI contract: validated flags fail with a structured error
//! message and a non-zero exit code — never a panic — the multi-port
//! flags accept well-formed non-uniform rate lists, and the telemetry
//! flags (`--metrics`, `--trace-events`) produce a parseable,
//! deterministic snapshot.

use std::process::{Command, Output};

fn wfqsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wfqsim"))
        .args(args)
        .output()
        .expect("run wfqsim")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn zero_rate_is_a_structured_error_not_a_panic() {
    for bad in ["0", "-1e6", "nan", "inf"] {
        let out = wfqsim(&["--scheduler", "hw", "--ports", "2", "--rate", bad]);
        assert!(!out.status.success(), "--rate {bad} must fail");
        let err = stderr(&out);
        assert!(
            err.contains("rate must be positive and finite"),
            "--rate {bad}: expected structured error, got: {err}"
        );
        assert!(
            !err.contains("panicked"),
            "--rate {bad} panicked instead of erroring: {err}"
        );
    }
}

#[test]
fn zero_port_rate_is_a_structured_error_with_the_port_named() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "2",
        "--flows",
        "8",
        "--port-rates",
        "2e6,0",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--port-rates: port 1: rate must be positive and finite"),
        "expected the failing port in the error, got: {err}"
    );
    assert!(!err.contains("panicked"), "panicked: {err}");
}

#[test]
fn port_rate_count_must_match_ports() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "4",
        "--flows",
        "16",
        "--port-rates",
        "2e6,2e6",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("2 rates given but --ports is 4"),
        "expected a count-mismatch error, got: {err}"
    );
}

#[test]
fn non_uniform_port_rates_run_end_to_end() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "2",
        "--flows",
        "8",
        "--horizon",
        "0.2",
        "--rate",
        "2e6",
        "--port-rates",
        "4e6,1e6",
    ]);
    let err = stderr(&out);
    assert!(out.status.success(), "run failed: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("non-uniform rates"),
        "report should flag non-uniform rates: {stdout}"
    );
    // Both configured rates appear in the per-port table.
    assert!(
        stdout.contains("4.000Mb/s"),
        "missing port 0 rate: {stdout}"
    );
    assert!(
        stdout.contains("1.000Mb/s"),
        "missing port 1 rate: {stdout}"
    );
}

#[test]
fn metrics_flag_writes_a_parseable_deterministic_snapshot() {
    let dir = std::env::temp_dir().join("wfqsim_cli_metrics");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let run = |name: &str| -> String {
        let path = dir.join(name);
        let path = path.to_str().expect("utf-8 temp path");
        let out = wfqsim(&[
            "--ports",
            "2",
            "--flows",
            "8",
            "--horizon",
            "0.2",
            "--metrics",
            path,
            "--trace-events",
            "8",
        ]);
        assert!(out.status.success(), "run failed: {}", stderr(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            stdout.contains("telemetry snapshot written to"),
            "missing confirmation line: {stdout}"
        );
        std::fs::read_to_string(path).expect("snapshot file written")
    };

    let first = run("a.json");
    let parsed = wfq_sorter::telemetry::parse_flat_json(&first)
        .expect("snapshot is a flat JSON number object");
    let value = |key: &str| {
        parsed
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{key} missing from snapshot"))
    };
    // Per-shard counters, a latency histogram, and merged legacy stats
    // all travel in the one snapshot.
    assert!(value("sched_enqueued_total") > 0.0);
    assert_eq!(
        value("sched_enqueued_port0") + value("sched_enqueued_port1"),
        value("sched_enqueued_total")
    );
    assert!(value("tag_sort_latency_cycles_count") > 0.0);
    assert!(value("tag_sort_latency_cycles_p99") >= 1.0);
    assert!(value("hw_agg_enqueued") > 0.0);
    assert!(value("hw_agg_buf_peak") >= 1.0);

    // Same seed, same flags → byte-identical snapshot.
    let second = run("b.json");
    assert_eq!(first, second, "snapshot is not deterministic");
}

#[test]
fn unwritable_metrics_path_is_a_structured_error() {
    let out = wfqsim(&[
        "--ports",
        "2",
        "--flows",
        "8",
        "--horizon",
        "0.1",
        "--metrics",
        "/nonexistent-dir/out.json",
    ]);
    assert!(!out.status.success(), "unwritable path must fail the run");
    let err = stderr(&out);
    assert!(
        err.contains("cannot write /nonexistent-dir/out.json"),
        "expected structured write error, got: {err}"
    );
    assert!(!err.contains("panicked"), "panicked: {err}");
}

#[test]
fn trace_events_capacity_is_validated() {
    for (bad, expect) in [
        ("abc", "--trace-events: invalid digit"),
        ("-3", "--trace-events: invalid digit"),
        ("0", "--trace-events: capacity must be at least 1"),
    ] {
        let out = wfqsim(&[
            "--ports",
            "2",
            "--metrics",
            "out.json",
            "--trace-events",
            bad,
        ]);
        assert!(!out.status.success(), "--trace-events {bad} must fail");
        let err = stderr(&out);
        assert!(
            err.contains(expect),
            "--trace-events {bad}: expected {expect:?}, got: {err}"
        );
        assert!(!err.contains("panicked"), "panicked: {err}");
    }
}

#[test]
fn trace_events_requires_metrics() {
    let out = wfqsim(&["--ports", "2", "--trace-events", "8"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--trace-events: requires --metrics"),
        "expected dependency error, got: {err}"
    );
}

#[test]
fn metrics_rejects_software_schedulers() {
    let out = wfqsim(&["--scheduler", "wfq", "--metrics", "out.json"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--metrics: instruments the hardware pipeline"),
        "expected scheduler-kind error, got: {err}"
    );
    assert!(
        err.contains("--scheduler wfq is software"),
        "error should name the offending scheduler: {err}"
    );
}

#[test]
fn uniform_multiport_run_still_reports_the_shared_rate() {
    let out = wfqsim(&[
        "--scheduler",
        "hw",
        "--ports",
        "2",
        "--flows",
        "8",
        "--horizon",
        "0.2",
        "--rate",
        "2e6",
    ]);
    let err = stderr(&out);
    assert!(out.status.success(), "run failed: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("2 ports x 2.000 Mb/s"),
        "uniform header missing: {stdout}"
    );
}
