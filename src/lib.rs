//! **wfq-sorter** — a from-scratch reproduction of *"A Scalable Packet
//! Sorting Circuit for High-Speed WFQ Packet Scheduling"* (McLaughlin,
//! Sezer, Blume, Yang, Kupzog, Noll).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`tagsort`] — the paper's contribution: the tag sort/retrieve
//!   circuit (multi-bit search tree, translation table, linked-list tag
//!   storage memory with the fixed four-cycle schedule).
//! * [`matcher`] — the five closest-match node circuits of Figs. 7–8,
//!   built as gate netlists with measured delay and area.
//! * [`hwsim`] — the cycle-accurate simulation substrate standing in for
//!   the paper's 130-nm silicon.
//! * [`fairq`] — the fair-queueing algorithm family (GPS, WFQ, WF²Q,
//!   WF²Q+, SCFQ, SFQ) and the round-robin baselines (WRR, DRR, MDRR).
//! * [`scheduler`] — the full Fig. 1 scheduler: tag computation,
//!   quantization/wrap-around, shared packet buffer, and the sorter —
//!   generic over the `SortBackend` sorting engine.
//! * [`fastpath`] — the Eiffel-style software backend: a flat
//!   find-first-set bucket queue with the trie's exact wrap semantics,
//!   proven sequence-identical to the circuit and benchmarked in real
//!   wall-clock Mpps (E16).
//! * [`baselines`] — every Table I lookup structure, instrumented.
//! * [`traffic`] — deterministic workload generation.
//! * [`telemetry`] — the unified observability layer: per-shard metric
//!   registry, cycle-stamped event tracing, and deterministic snapshot
//!   exporters shared by every scheduler layer.
//! * [`faultsim`] — deterministic SEU fault models, detection bookkeeping,
//!   and the repair policies wired through the scheduler stack.
//! * [`campaign`] — the million-flow campaign runner: grid sweeps over
//!   {flows × policy × backend × admission × faults} against Zipf/churn
//!   workloads, with paged sorter state and deterministic reports.
//!
//! # Quickstart
//!
//! ```
//! use wfq_sorter::tagsort::{Geometry, PacketRef, SortRetrieveCircuit, Tag};
//!
//! # fn main() -> Result<(), wfq_sorter::tagsort::SortError> {
//! let mut sorter = SortRetrieveCircuit::new(Geometry::paper(), 1 << 12);
//! sorter.insert(Tag(140), PacketRef(2))?;
//! sorter.insert(Tag(17), PacketRef(1))?;
//! assert_eq!(sorter.pop_min(), Some((Tag(17), PacketRef(1))));
//! # Ok(())
//! # }
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record, and `examples/` for runnable scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use campaign;
pub use fairq;
pub use fastpath;
pub use faultsim;
pub use hwsim;
pub use matcher;
pub use scheduler;
pub use statesync;
pub use tagsort;
pub use telemetry;
pub use traffic;
