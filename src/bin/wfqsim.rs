//! `wfqsim` — run a packet trace through any scheduler in the workspace
//! and report per-flow delays, throughput, and the GPS lag.
//!
//! ```sh
//! # Synthetic workload through software WFQ:
//! cargo run --bin wfqsim -- --scheduler wfq --flows 4 --rate 2e6
//!
//! # The same packets through the full hardware pipeline:
//! cargo run --bin wfqsim -- --scheduler hw --flows 4 --rate 2e6
//!
//! # Replay a saved trace under DRR with explicit weights:
//! cargo run --bin wfqsim -- --trace t.txt --scheduler drr --weights 4,2,1
//!
//! # A 4-port line card: one hardware sorter per port, flow-affinity routed:
//! cargo run --bin wfqsim -- --scheduler hw --ports 4 --flows 16
//!
//! # The same card with one fast uplink and three slower access links:
//! cargo run --bin wfqsim -- --scheduler hw --ports 4 --flows 16 \
//!     --port-rates 1e7,2e6,2e6,2e6
//!
//! # Write a deterministic telemetry snapshot, with the last 32
//! # cycle-stamped events per shard:
//! cargo run --bin wfqsim -- --ports 4 --flows 16 --metrics out.json \
//!     --trace-events 32
//!
//! # Per-flow sojourn histograms plus a complete streamed event log
//! # (one JSON object per line, byte-identical across seeded runs):
//! cargo run --bin wfqsim -- --ports 4 --flows 16 \
//!     --latency-report latency.json --event-log events.ndjson
//!
//! # Inject 8 seeded single-bit trie faults, scrub-and-repair them, and
//! # write the byte-deterministic fault ledger:
//! cargo run --bin wfqsim -- --scheduler hw --inject-faults 8@7:trie:1 \
//!     --fault-policy scrub-and-repair --fault-report faults.txt
//! ```

use std::process::ExitCode;

use wfq_sorter::campaign::{run as run_campaign, CampaignSpec};
use wfq_sorter::fairq::{
    metrics, AnyPolicy, Departure, Drr, Fbfq, Fifo, LinkSim, Mdrr, RankPolicy, Scfq, Scheduler,
    Sfq, StratifiedRr, Wf2q, Wf2qPlus, Wfq, Wrr,
};
use wfq_sorter::fastpath::FfsSorter;
use wfq_sorter::faultsim::{FaultConfig, FaultPolicy, FaultSpec};
use wfq_sorter::scheduler::{
    shard_of, AdmissionPolicy, HwLinkSim, HwScheduler, Placement, RebalancerConfig,
    SchedulerConfig, SchedulerStats, ShardedLinkSim, ShardedScheduler,
};
use wfq_sorter::tagsort::Geometry;
use wfq_sorter::tagsort::{
    HeapSorter, PipelinedSortBackend, SortBackend, SortRetrieveCircuit, PAPER_CLOCK_HZ,
};
use wfq_sorter::telemetry::{EventLogFormat, FileSink, LatencyTracker, Snapshot, Telemetry};
use wfq_sorter::traffic::{
    generate, trace as tracefile, ArrivalProcess, FlowId, FlowSpec, Packet, SizeDist,
};

const USAGE: &str = "\
wfqsim — packet scheduling simulator (WFQ sorting circuit reproduction)

USAGE:
  wfqsim [OPTIONS]

OPTIONS:
  --scheduler NAME   fifo | wrr | drr | mdrr | srr | fbfq | scfq | sfq |
                     wfq | wf2q | wf2q+ | hw        (default: wfq,
                     or hw when --ports > 1; 'hw' is the full
                     hardware pipeline)
  --backend NAME     sorting engine behind the hw pipeline:
                     trie (the paper's sort/retrieve circuit) |
                     fastpath (FFS software sorter) | heap
                     (binary-heap oracle) | pipelined (deep-pipelined
                     trie, ~1 op/cycle); needs --scheduler hw
                     or --ports > 1                 (default: trie)
  --policy NAME      rank policy programmed into the hw pipeline
                     (PIFO-style: the policy computes each packet's
                     rank, the sorter serves the smallest):
                     wfq | stfq | srpt | fifo+ | prio | leaky |
                     hwfq; needs --scheduler hw or --ports > 1;
                     see POLICIES.md                (default: wfq)
  --admission P      what a full packet buffer does to an arrival:
                     tail-drop | push-out (evict the worst-ranked
                     resident packet when the arrival ranks
                     strictly better) | wred[:MIN:MAX:PERMILLE]
                     (WRED-style probabilistic push-out with a
                     seeded deterministic coin); needs
                     --scheduler hw or --ports > 1
                                               (default: tail-drop)
  --rate BPS         link rate in bits/s             (default: 2e6)
  --ports N          multi-port frontend: N egress links, one hardware
                     sorter each, flows routed by affinity hash
                     (implies --scheduler hw; default: 1)
  --port-rates LIST  per-port link rates in bits/s, comma-separated;
                     must list exactly --ports rates (default: --rate
                     on every port)
  --rebalance MODE   shard placement policy: hash (static
                     flow-affinity, today's behavior) | dynamic
                     (live flow migration: a rebalancer watches
                     per-port load and moves the hottest flow off
                     an overloaded shard every 1024 arrivals);
                     needs --ports > 1             (default: hash)
  --metrics FILE     write a deterministic telemetry snapshot (flat
                     JSON) after the run; hardware pipeline only
  --trace-events N   with --metrics: keep the last N cycle-stamped
                     events per shard in the snapshot's event log
  --latency-report F write per-flow sojourn histograms (cycles and
                     wall-clock, flat JSON) after the run; hardware
                     pipeline only
  --event-log FILE   stream every traced event to FILE as it happens
                     (one JSON object per line); hardware pipeline
                     only, enables tracing even without --metrics
  --event-log-format FORMAT
                     json | compact (space-separated fields with
                     per-shard cycle deltas); needs --event-log
                     (default: json)
  --inject-faults SPEC
                     deterministic SEU campaign against the sorter
                     state: COUNT@SEED[:COMPONENT[:BITS]], COMPONENT
                     one of trie | translation | tagstore | any
                     (default any), BITS flips per fault (default 1);
                     hardware pipeline only
  --fault-policy P   fail-fast | detect-and-count | scrub-and-repair
                     (default: detect-and-count; needs
                     --inject-faults; fail-fast aborts the run on the
                     first detected fault)
  --fault-report FILE
                     write the byte-deterministic per-port fault
                     ledger after the run (needs --inject-faults)
  --campaign NAME|FILE
                     run a grid-sweep campaign instead of a single
                     simulation: builtin 'smoke' or 'soak', or a spec
                     file (see DESIGN.md §16); prints the
                     byte-deterministic campaign report and exits,
                     ignoring the single-run options below
  --trace FILE       replay a saved trace (see traffic::trace format)
  --flows N          synthetic: number of flows      (default: 4)
  --horizon S        synthetic: seconds of traffic   (default: 1.0)
  --seed N           synthetic: RNG seed             (default: 42)
  --weights a,b,...  per-flow weights                (default: 1,2,3,...)
  --save FILE        write the (synthetic) trace before running
  --help             this text
";

/// The sorting engine behind the hardware pipeline (`--backend`). Every
/// choice produces the identical departure sequence — the conformance
/// matrix in `crates/scheduler/tests/backend_matrix.rs` pins that — so
/// this only selects the execution model being exercised.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum BackendChoice {
    #[default]
    Trie,
    Fastpath,
    Heap,
    Pipelined,
}

impl BackendChoice {
    fn name(self) -> &'static str {
        match self {
            Self::Trie => "trie",
            Self::Fastpath => "fastpath",
            Self::Heap => "heap",
            Self::Pipelined => "pipelined",
        }
    }
}

impl std::str::FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "trie" => Ok(Self::Trie),
            "fastpath" => Ok(Self::Fastpath),
            "heap" => Ok(Self::Heap),
            "pipelined" => Ok(Self::Pipelined),
            other => Err(format!(
                "unknown backend \"{other}\" (expected trie, fastpath, heap, or pipelined)"
            )),
        }
    }
}

struct Args {
    /// `None` until resolved: `hw` when `--ports > 1`, `wfq` otherwise.
    scheduler: Option<String>,
    /// `None` until resolved: the trie circuit unless `--backend` says
    /// otherwise.
    backend: Option<BackendChoice>,
    /// `None` until resolved: WFQ unless `--policy` says otherwise.
    policy: Option<AnyPolicy>,
    /// `None` until resolved: tail-drop unless `--admission` says
    /// otherwise.
    admission: Option<AdmissionPolicy>,
    rate: f64,
    ports: usize,
    port_rates: Option<Vec<f64>>,
    /// `None` until resolved: static hash placement unless
    /// `--rebalance` says otherwise.
    rebalance: Option<Placement>,
    trace: Option<String>,
    flows: usize,
    horizon: f64,
    seed: u64,
    weights: Option<Vec<f64>>,
    save: Option<String>,
    metrics: Option<String>,
    trace_events: usize,
    latency_report: Option<String>,
    event_log: Option<String>,
    event_log_format: Option<EventLogFormat>,
    inject_faults: Option<FaultSpec>,
    fault_policy: Option<FaultPolicy>,
    fault_report: Option<String>,
    campaign: Option<String>,
}

impl Args {
    /// The scheduler actually in force (see [`Args::scheduler`]).
    fn scheduler_name(&self) -> &str {
        match &self.scheduler {
            Some(name) => name,
            None if self.ports > 1 => "hw",
            None => "wfq",
        }
    }

    /// The sorting backend actually in force (see [`Args::backend`]).
    fn backend_choice(&self) -> BackendChoice {
        self.backend.unwrap_or_default()
    }

    /// The rank policy actually in force (see [`Args::policy`]).
    fn policy_choice(&self) -> AnyPolicy {
        self.policy.clone().unwrap_or_default()
    }

    /// `", policy NAME"` when `--policy` was given, for the report
    /// header; empty (keeping the header byte-identical to older runs)
    /// when the default WFQ policy is in force.
    fn policy_suffix(&self) -> String {
        match &self.policy {
            Some(p) => format!(", policy {}", p.name()),
            None => String::new(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scheduler: None,
        backend: None,
        policy: None,
        admission: None,
        rate: 2e6,
        ports: 1,
        port_rates: None,
        rebalance: None,
        trace: None,
        flows: 4,
        horizon: 1.0,
        seed: 42,
        weights: None,
        save: None,
        metrics: None,
        trace_events: 0,
        latency_report: None,
        event_log: None,
        event_log_format: None,
        inject_faults: None,
        fault_policy: None,
        fault_report: None,
        campaign: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--scheduler" => args.scheduler = Some(value("--scheduler")?),
            "--backend" => {
                args.backend = Some(
                    value("--backend")?
                        .parse()
                        .map_err(|e| format!("--backend: {e}"))?,
                );
            }
            "--policy" => {
                let name = value("--policy")?;
                args.policy = Some(AnyPolicy::by_name(&name).ok_or_else(|| {
                    format!(
                        "--policy: unknown policy \"{name}\" (expected one of {})",
                        AnyPolicy::NAMES.join(", ")
                    )
                })?);
            }
            "--admission" => {
                args.admission = Some(
                    value("--admission")?
                        .parse()
                        .map_err(|e| format!("--admission: {e}"))?,
                );
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
                check_rate("--rate", args.rate)?;
            }
            "--ports" => {
                args.ports = value("--ports")?
                    .parse()
                    .map_err(|e| format!("--ports: {e}"))?;
                if args.ports == 0 {
                    return Err("--ports: at least one port required".into());
                }
            }
            "--port-rates" => {
                let list = value("--port-rates")?;
                let parsed: Result<Vec<f64>, _> = list.split(',').map(str::parse::<f64>).collect();
                let rates = parsed.map_err(|e| format!("--port-rates: {e}"))?;
                for (port, &r) in rates.iter().enumerate() {
                    check_rate(&format!("--port-rates: port {port}"), r)?;
                }
                args.port_rates = Some(rates);
            }
            "--rebalance" => {
                args.rebalance = Some(
                    value("--rebalance")?
                        .parse()
                        .map_err(|e| format!("--rebalance: {e}"))?,
                );
            }
            "--trace" => args.trace = Some(value("--trace")?),
            "--flows" => {
                args.flows = value("--flows")?
                    .parse()
                    .map_err(|e| format!("--flows: {e}"))?;
            }
            "--horizon" => {
                args.horizon = value("--horizon")?
                    .parse()
                    .map_err(|e| format!("--horizon: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--weights" => {
                let list = value("--weights")?;
                let parsed: Result<Vec<f64>, _> = list.split(',').map(str::parse::<f64>).collect();
                args.weights = Some(parsed.map_err(|e| format!("--weights: {e}"))?);
            }
            "--save" => args.save = Some(value("--save")?),
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--latency-report" => args.latency_report = Some(value("--latency-report")?),
            "--event-log" => args.event_log = Some(value("--event-log")?),
            "--event-log-format" => {
                args.event_log_format = Some(
                    value("--event-log-format")?
                        .parse()
                        .map_err(|e| format!("--event-log-format: {e}"))?,
                );
            }
            "--inject-faults" => {
                args.inject_faults = Some(
                    value("--inject-faults")?
                        .parse()
                        .map_err(|e| format!("--inject-faults: {e}"))?,
                );
            }
            "--fault-policy" => {
                args.fault_policy = Some(
                    value("--fault-policy")?
                        .parse()
                        .map_err(|e| format!("--fault-policy: {e}"))?,
                );
            }
            "--fault-report" => args.fault_report = Some(value("--fault-report")?),
            "--campaign" => args.campaign = Some(value("--campaign")?),
            "--trace-events" => {
                args.trace_events = value("--trace-events")?
                    .parse()
                    .map_err(|e| format!("--trace-events: {e}"))?;
                if args.trace_events == 0 {
                    return Err("--trace-events: capacity must be at least 1".into());
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if let Some(rates) = &args.port_rates {
        if rates.len() != args.ports {
            return Err(format!(
                "--port-rates: {} rates given but --ports is {}; list exactly one rate per port",
                rates.len(),
                args.ports
            ));
        }
    }
    if args.rebalance.is_some() && args.ports <= 1 {
        return Err(
            "--rebalance: shard placement needs a multi-port frontend (use --ports > 1)".into(),
        );
    }
    if args.trace_events > 0 && args.metrics.is_none() {
        return Err(
            "--trace-events: requires --metrics (events are exported in the snapshot)".into(),
        );
    }
    if args.event_log_format.is_some() && args.event_log.is_none() {
        return Err("--event-log-format: requires --event-log (no log to format)".into());
    }
    if args.fault_policy.is_some() && args.inject_faults.is_none() {
        return Err(
            "--fault-policy: requires --inject-faults (no fault campaign to respond to)".into(),
        );
    }
    if args.fault_report.is_some() && args.inject_faults.is_none() {
        return Err(
            "--fault-report: requires --inject-faults (no fault campaign to report on)".into(),
        );
    }
    // Multi-port mode drives one hardware sorter per egress link, so an
    // explicit software scheduler is a contradiction. Reject it here —
    // in either flag order, before any trace is generated or saved —
    // rather than resolving it silently or failing mid-run.
    if args.ports > 1 {
        if let Some(name) = &args.scheduler {
            if name != "hw" {
                return Err(format!(
                    "--scheduler {name}: --ports {} drives one hardware sorter per port; \
                     only 'hw' supports multi-port (drop --scheduler or pass --scheduler hw)",
                    args.ports
                ));
            }
        }
    }
    // `--backend` picks the sorting engine *inside* the hardware
    // pipeline, so combining it with a software scheduler is the same
    // kind of contradiction as `--ports` above: reject it at parse time,
    // in either flag order, with both offending flags named.
    if let Some(backend) = args.backend {
        if args.scheduler_name() != "hw" {
            return Err(format!(
                "--backend {}: selects the hardware pipeline's sorting engine; \
                 --scheduler {} is software (use --scheduler hw or --ports > 1)",
                backend.name(),
                args.scheduler_name()
            ));
        }
    }
    // `--policy` programs the rank function *inside* the hardware
    // pipeline (and `--admission` its buffer), so both are the same
    // parse-time contradiction with a software scheduler as `--backend`.
    if let Some(policy) = &args.policy {
        if args.scheduler_name() != "hw" {
            return Err(format!(
                "--policy {}: programs the hardware pipeline's rank function; \
                 --scheduler {} is software (use --scheduler hw or --ports > 1)",
                policy.name(),
                args.scheduler_name()
            ));
        }
    }
    if let Some(admission) = args.admission {
        if args.scheduler_name() != "hw" {
            return Err(format!(
                "--admission {admission}: selects the hardware pipeline's buffer \
                 admission; --scheduler {} is software (use --scheduler hw or --ports > 1)",
                args.scheduler_name()
            ));
        }
    }
    for (flag, set) in [
        ("--metrics", args.metrics.is_some()),
        ("--latency-report", args.latency_report.is_some()),
        ("--event-log", args.event_log.is_some()),
        ("--inject-faults", args.inject_faults.is_some()),
    ] {
        if set && args.scheduler_name() != "hw" {
            return Err(format!(
                "{flag}: instruments the hardware pipeline; --scheduler {} is software \
                 (use --scheduler hw or --ports > 1)",
                args.scheduler_name()
            ));
        }
    }
    Ok(args)
}

/// Rebalance cadence for `--rebalance dynamic`: one
/// [`ShardedScheduler::maybe_rebalance`] round per this many arrivals.
const REBALANCE_EVERY: usize = 1024;

/// Ring capacity per shard when `--event-log` enables tracing on its
/// own. The streamed sink sees every event regardless, so the ring only
/// bounds what a later `--metrics` snapshot would also carry.
const EVENT_LOG_RING: usize = 256;

/// Builds the run's telemetry registry: enabled over `shards` shards
/// when `--metrics` or `--event-log` was given (with the
/// `--trace-events` ring, or a default ring for the event log), fully
/// disabled otherwise.
fn build_telemetry(args: &Args, shards: usize) -> Telemetry {
    if args.metrics.is_none() && args.event_log.is_none() {
        return Telemetry::disabled();
    }
    let ring = if args.trace_events > 0 {
        args.trace_events
    } else if args.event_log.is_some() {
        EVENT_LOG_RING
    } else {
        0
    };
    Telemetry::with_tracing(shards, ring)
}

/// Attaches a line-delimited JSON [`FileSink`] to the tracer when
/// `--event-log` asked for one, so every event streams to disk at emit
/// time instead of competing for ring capacity.
fn attach_event_sink(args: &Args, tel: &Telemetry) -> Result<(), String> {
    let Some(path) = &args.event_log else {
        return Ok(());
    };
    let format = args.event_log_format.unwrap_or_default();
    let sink = FileSink::create_with_format(path, format)
        .map_err(|e| format!("--event-log: cannot create {path}: {e}"))?;
    if tel.tracer().set_sink(Box::new(sink)).is_some() {
        return Err("--event-log: event tracing is disabled for this run".into());
    }
    Ok(())
}

/// Detaches and flushes the `--event-log` sink, surfacing any write
/// error deferred during the run.
fn finish_event_sink(args: &Args, tel: &Telemetry) -> Result<(), String> {
    let Some(path) = &args.event_log else {
        return Ok(());
    };
    let mut sink = tel
        .tracer()
        .take_sink()
        .ok_or_else(|| format!("--event-log: the sink writing {path} disappeared mid-run"))?;
    sink.flush()
        .map_err(|e| format!("--event-log: cannot write {path}: {e}"))?;
    println!("event log written to {path}");
    Ok(())
}

/// The fault campaign in force, if `--inject-faults` asked for one.
/// The op horizon covers one enqueue plus one dequeue per packet, so
/// every scheduled fault materializes within a drained run.
fn fault_config(args: &Args, trace_len: usize) -> Option<FaultConfig> {
    args.inject_faults.map(|spec| {
        let policy = args.fault_policy.unwrap_or(FaultPolicy::DetectAndCount);
        FaultConfig::new(spec, policy, 2 * trace_len as u64)
    })
}

/// Writes the `--fault-report` file: a byte-deterministic record of the
/// campaign — header, per-port totals, then one line per injected fault
/// in ledger order. Two runs with identical flags produce identical
/// bytes.
fn emit_fault_report<B: SortBackend, P: RankPolicy>(
    path: &str,
    spec: FaultSpec,
    policy: FaultPolicy,
    ports: &[&HwScheduler<B, P>],
) -> Result<(), String> {
    let mut out = String::from("# wfqsim fault report\n");
    out.push_str(&format!(
        "policy={policy} spec={spec} ports={}\n",
        ports.len()
    ));
    for (port, shard) in ports.iter().enumerate() {
        let (injected, detected, repaired, silent) = shard.fault_totals();
        out.push_str(&format!(
            "port={port} injected={injected} detected={detected} \
             repaired={repaired} silent={silent}\n"
        ));
        // Backends without addressable state refuse attachment with a
        // structured error; the campaign records each refusal instead of
        // silently dropping the scheduled fault.
        for (op, err) in shard.fault_rejections() {
            out.push_str(&format!("port={port} op={op} rejected: {err}\n"));
        }
        for record in shard.fault_records() {
            out.push_str(&format!("port={port} {}\n", record.to_line()));
        }
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("fault report written to {path}");
    Ok(())
}

/// Writes the `--latency-report` file: per-flow sojourn histograms in
/// the same flat deterministic JSON as the metrics snapshot.
fn emit_latency_report(path: &str, lat: &LatencyTracker) -> Result<(), String> {
    let mut snap = Snapshot::empty(1);
    lat.export(&mut snap);
    std::fs::write(path, snap.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "latency report written to {path} ({} samples over {} flows)",
        lat.samples(),
        lat.flows()
    );
    Ok(())
}

/// Writes the snapshot where `--metrics` asked, prints the
/// human-readable table, and reports failures as structured errors.
fn emit_snapshot(path: &str, snap: &Snapshot) -> Result<(), String> {
    std::fs::write(path, snap.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    print!("\n{}", snap.to_table());
    println!("telemetry snapshot written to {path}");
    Ok(())
}

/// Rates reach the scheduler's virtual clock and the link simulator as
/// divisors, so a zero, negative, or non-finite rate must be refused
/// here with a structured error rather than panicking downstream.
fn check_rate(what: &str, rate: f64) -> Result<(), String> {
    if rate > 0.0 && rate.is_finite() {
        Ok(())
    } else {
        Err(format!(
            "{what}: rate must be positive and finite, got {rate}"
        ))
    }
}

fn build_flows(count: usize, weights: &Option<Vec<f64>>, rate: f64) -> Vec<FlowSpec> {
    (0..count)
        .map(|i| {
            let w = weights
                .as_ref()
                .and_then(|ws| ws.get(i).copied())
                .unwrap_or((i + 1) as f64);
            // A representative mix: small steady packets on flow 0,
            // IMIX/Poisson elsewhere, one bursty flow.
            let spec = FlowSpec::new(FlowId(i as u32), w, rate / count as f64);
            match i % 3 {
                0 => spec
                    .size(SizeDist::Fixed(140))
                    .arrivals(ArrivalProcess::Cbr),
                1 => spec.size(SizeDist::Imix).arrivals(ArrivalProcess::Poisson),
                _ => spec
                    .size(SizeDist::Bimodal {
                        small: 40,
                        large: 1500,
                        p_small: 0.3,
                    })
                    .arrivals(ArrivalProcess::OnOff {
                        on_mean_s: 0.03,
                        off_mean_s: 0.03,
                    }),
            }
        })
        .collect()
}

fn run_software(
    name: &str,
    flows: &[FlowSpec],
    rate: f64,
    trace: &[Packet],
) -> Result<Vec<Departure>, String> {
    let sched: Box<dyn Scheduler> = match name {
        "fifo" => Box::new(Fifo::new()),
        "wrr" => Box::new(Wrr::new(flows)),
        "drr" => Box::new(Drr::new(flows, 1500.0)),
        "mdrr" => Box::new(Mdrr::new(flows, 1500.0, FlowId(0))),
        "srr" => Box::new(StratifiedRr::new(flows)),
        "fbfq" => Box::new(Fbfq::new(flows, rate, 1500.0)),
        "scfq" => Box::new(Scfq::new(flows)),
        "sfq" => Box::new(Sfq::new(flows)),
        "wfq" => Box::new(Wfq::new(flows, rate)),
        "wf2q" => Box::new(Wf2q::new(flows, rate)),
        "wf2q+" => Box::new(Wf2qPlus::new(flows)),
        other => return Err(format!("unknown scheduler {other}")),
    };
    Ok(LinkSim::new(rate, sched).run(trace))
}

/// The `--ports N` mode: the sharded frontend serves the trace with one
/// hardware sorter per egress link, and the report rolls per-flow
/// metrics up per port.
fn run_multiport<B: SortBackend>(args: &Args, flows: &[FlowSpec], trace: &[Packet]) -> ExitCode {
    for port in 0..args.ports {
        if !flows.iter().any(|f| shard_of(f.id, args.ports) == port) {
            eprintln!(
                "error: --ports {}: the flow-affinity hash leaves port {port} without \
                 flows ({} flows); use more --flows or fewer ports",
                args.ports,
                flows.len()
            );
            return ExitCode::FAILURE;
        }
    }
    let rates: Vec<f64> = args
        .port_rates
        .clone()
        .unwrap_or_else(|| vec![args.rate; args.ports]);
    // The quantizer's tick must resolve the *fastest* port's tag steps.
    let max_rate = rates.iter().copied().fold(0.0f64, f64::max);
    let policy = args.policy_choice();
    let placement = args.rebalance.unwrap_or_default();
    let mut fe = ShardedScheduler::<B, AnyPolicy>::with_policy_port_rates_placement(
        flows,
        &rates,
        SchedulerConfig {
            geometry: Geometry::new(4, 5),
            tick_scale: policy.tick_scale(max_rate),
            capacity: (trace.len() + 1).next_power_of_two(),
            faults: fault_config(args, trace.len()),
            admission: args.admission.unwrap_or_default(),
            ..SchedulerConfig::default()
        },
        &policy,
        placement,
    );
    if placement == Placement::Dynamic {
        fe = fe.with_rebalancer(RebalancerConfig::default());
    }
    let tel = build_telemetry(args, args.ports);
    fe.attach_telemetry(&tel);
    if let Err(msg) = attach_event_sink(args, &tel) {
        eprintln!("error: {msg}");
        return ExitCode::FAILURE;
    }
    let mut sim = ShardedLinkSim::new(fe);
    if placement == Placement::Dynamic {
        sim = sim.with_rebalance_every(REBALANCE_EVERY);
    }
    if args.latency_report.is_some() {
        sim = sim.with_latency();
    }
    let port_deps = match sim.run(trace) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: sharded frontend: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(msg) = finish_event_sink(args, &tel) {
        eprintln!("error: {msg}");
        return ExitCode::FAILURE;
    }
    if let Some(spec) = args.inject_faults {
        // Settle the ledger before any snapshot or report reads it.
        sim.frontend_mut().reconcile_faults();
        if let Some(path) = &args.fault_report {
            let fe = sim.frontend();
            let shards: Vec<&HwScheduler<B, AnyPolicy>> =
                (0..fe.ports()).map(|p| fe.shard(p)).collect();
            let policy = args.fault_policy.unwrap_or(FaultPolicy::DetectAndCount);
            if let Err(msg) = emit_fault_report(path, spec, policy, &shards) {
                eprintln!("error: --fault-report: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.latency_report {
        let lat = sim.latency().expect("with_latency was requested");
        if let Err(msg) = emit_latency_report(path, lat) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    let uniform = rates.windows(2).all(|w| w[0] == w[1]);
    if uniform {
        println!(
            "{} packets, {} flows, {} ports x {:.3} Mb/s, scheduler hw (sharded, {}{})",
            trace.len(),
            flows.len(),
            args.ports,
            rates[0] / 1e6,
            args.backend_choice().name(),
            args.policy_suffix(),
        );
    } else {
        println!(
            "{} packets, {} flows, {} ports (non-uniform rates), scheduler hw (sharded, {}{})",
            trace.len(),
            flows.len(),
            args.ports,
            args.backend_choice().name(),
            args.policy_suffix(),
        );
    }

    let stats = sim.frontend().stats();
    println!(
        "\n{:>5} {:>11} {:>6} {:>9} {:>11} {:>11} {:>12} {:>6} {:>6}",
        "port", "rate", "flows", "packets", "mean delay", "worst p99", "throughput", "jain", "peak"
    );
    let mut rollups = Vec::with_capacity(rates.len());
    for (port, &port_rate) in rates.iter().enumerate() {
        let sub_trace: Vec<Packet> = trace
            .iter()
            .filter(|p| sim.frontend().port_of(p.flow) == Some(port))
            .copied()
            .collect();
        let deps: Vec<Departure> = port_deps
            .iter()
            .filter(|d| d.port == port)
            .map(|d| d.departure)
            .collect();
        let rollup = metrics::aggregate(&metrics::analyze(flows, &sub_trace, &deps));
        let port_flows = flows
            .iter()
            .filter(|f| sim.frontend().port_of(f.id) == Some(port))
            .count();
        println!(
            "{:>5} {:>8.3}Mb/s {:>6} {:>9} {:>9.2}ms {:>9.2}ms {:>9.1}kb/s {:>6.3} {:>6}",
            port,
            port_rate / 1e6,
            port_flows,
            rollup.packets,
            rollup.mean_delay_s * 1e3,
            rollup.worst_p99_delay_s * 1e3,
            rollup.throughput_bps / 1e3,
            rollup.jain_throughput,
            stats.per_port[port].buffer.peak,
        );
        rollups.push(rollup);
    }

    println!(
        "\naggregate: {} enqueued, {} dequeued, 0 lost; modeled frontend \
         throughput {:.1} Mpps at {:.1} MHz/shard",
        stats.aggregate.enqueued,
        stats.aggregate.dequeued,
        stats.modeled_packets_per_second(PAPER_CLOCK_HZ) / 1e6,
        PAPER_CLOCK_HZ / 1e6,
    );
    if let Some(placement) = args.rebalance {
        println!(
            "placement {placement}: {} migration(s), shard balance {:.3} (max/mean admissions)",
            sim.frontend().migrations(),
            stats.shard_balance(),
        );
    }
    if let Some(path) = &args.metrics {
        let mut snap = tel.snapshot();
        stats.export("hw", &mut snap);
        for (port, rollup) in rollups.iter().enumerate() {
            snap.put(&format!("fairq_port{port}_packets"), rollup.packets as f64);
            snap.put(
                &format!("fairq_port{port}_mean_delay_s"),
                rollup.mean_delay_s,
            );
            snap.put(
                &format!("fairq_port{port}_throughput_bps"),
                rollup.throughput_bps,
            );
            snap.put(&format!("fairq_port{port}_jain"), rollup.jain_throughput);
        }
        if let Err(msg) = emit_snapshot(path, &snap) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The single-port hardware pipeline, generic over the sorting backend:
/// builds the scheduler, wires telemetry and fault instrumentation, runs
/// the trace, and emits every requested artifact. Returns the departures
/// plus the telemetry/stats pair a later `--metrics` export needs.
fn run_hw<B: SortBackend>(
    args: &Args,
    flows: &[FlowSpec],
    trace: &[Packet],
) -> Result<(Vec<Departure>, Telemetry, SchedulerStats), String> {
    let policy = args.policy_choice();
    let mut hw = HwScheduler::<B, AnyPolicy>::with_backend_and_policy(
        flows,
        args.rate,
        SchedulerConfig {
            geometry: Geometry::new(4, 5),
            tick_scale: policy.tick_scale(args.rate),
            capacity: (trace.len() + 1).next_power_of_two(),
            faults: fault_config(args, trace.len()),
            admission: args.admission.unwrap_or_default(),
            ..SchedulerConfig::default()
        },
        &policy,
    );
    let tel = build_telemetry(args, 1);
    hw.attach_telemetry(&tel, 0);
    attach_event_sink(args, &tel)?;
    let mut sim = HwLinkSim::new(args.rate, hw);
    if args.latency_report.is_some() {
        sim = sim.with_latency();
    }
    let deps = sim
        .run(trace)
        .map_err(|e| format!("hardware pipeline: {e}"))?;
    finish_event_sink(args, &tel)?;
    if let Some(spec) = args.inject_faults {
        // Settle the ledger before any snapshot or report reads it.
        sim.scheduler_mut().reconcile_faults();
        if let Some(path) = &args.fault_report {
            let policy = args.fault_policy.unwrap_or(FaultPolicy::DetectAndCount);
            emit_fault_report(path, spec, policy, &[sim.scheduler()])
                .map_err(|e| format!("--fault-report: {e}"))?;
        }
    }
    if let Some(path) = &args.latency_report {
        let lat = sim.latency().expect("with_latency was requested");
        emit_latency_report(path, lat)?;
    }
    let stats = sim.scheduler().stats();
    Ok((deps, tel, stats))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    // Campaign mode replaces the single simulation entirely: resolve
    // the spec (builtin name first, then file), sweep the grid, print
    // the byte-deterministic report.
    if let Some(arg) = &args.campaign {
        let spec = match CampaignSpec::resolve(arg) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: --campaign: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", run_campaign(&spec).text);
        return ExitCode::SUCCESS;
    }

    // Workload.
    let trace = match &args.trace {
        Some(path) => match tracefile::load(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot load {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let flows = build_flows(args.flows, &args.weights, args.rate * 0.9);
            generate(&flows, args.horizon, args.seed)
        }
    };
    if trace.is_empty() {
        eprintln!("error: empty trace");
        return ExitCode::FAILURE;
    }
    let flow_count = trace
        .iter()
        .map(|p| p.flow.0 as usize + 1)
        .max()
        .unwrap_or(1);
    let flows = build_flows(flow_count.max(args.flows), &args.weights, args.rate * 0.9);
    if let Some(path) = &args.save {
        if let Err(e) = tracefile::save(path, &trace) {
            eprintln!("error: cannot save {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace saved to {path}");
    }

    // Run. (parse_args already rejected `--ports > 1` with an explicit
    // software scheduler, so multi-port here is always the hw pipeline;
    // likewise `--backend` only survives parsing alongside `hw`.)
    if args.ports > 1 {
        return match args.backend_choice() {
            BackendChoice::Trie => run_multiport::<SortRetrieveCircuit>(&args, &flows, &trace),
            BackendChoice::Fastpath => run_multiport::<FfsSorter>(&args, &flows, &trace),
            BackendChoice::Heap => run_multiport::<HeapSorter>(&args, &flows, &trace),
            BackendChoice::Pipelined => {
                run_multiport::<PipelinedSortBackend>(&args, &flows, &trace)
            }
        };
    }
    let mut hw_export: Option<(Telemetry, SchedulerStats)> = None;
    let departures = if args.scheduler_name() == "hw" {
        let run = match args.backend_choice() {
            BackendChoice::Trie => run_hw::<SortRetrieveCircuit>(&args, &flows, &trace),
            BackendChoice::Fastpath => run_hw::<FfsSorter>(&args, &flows, &trace),
            BackendChoice::Heap => run_hw::<HeapSorter>(&args, &flows, &trace),
            BackendChoice::Pipelined => run_hw::<PipelinedSortBackend>(&args, &flows, &trace),
        };
        match run {
            Ok((deps, tel, stats)) => {
                hw_export = Some((tel, stats));
                deps
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match run_software(args.scheduler_name(), &flows, args.rate, &trace) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}\n");
                eprint!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Report.
    let engine = if args.scheduler_name() == "hw" {
        format!(
            "hw ({}{})",
            args.backend_choice().name(),
            args.policy_suffix()
        )
    } else {
        args.scheduler_name().to_string()
    };
    println!(
        "{} packets, {} flows, link {:.3} Mb/s, scheduler {engine}",
        trace.len(),
        flow_count,
        args.rate / 1e6,
    );
    let report = metrics::analyze(&flows, &trace, &departures);
    println!(
        "\n{:>5} {:>7} {:>9} {:>11} {:>11} {:>11} {:>12}",
        "flow", "weight", "packets", "mean delay", "p99 delay", "max delay", "throughput"
    );
    for m in report.iter().filter(|m| m.packets > 0) {
        println!(
            "{:>5} {:>7} {:>9} {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9.1}kb/s",
            m.flow,
            flows[m.flow as usize].weight,
            m.packets,
            m.mean_delay_s * 1e3,
            m.p99_delay_s * 1e3,
            m.max_delay_s * 1e3,
            m.throughput_bps / 1e3,
        );
    }
    let lag = metrics::gps_lag(&flows, &trace, &departures, args.rate);
    let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
    println!(
        "\nGPS lag: {:.3} ms ({:.2}x of one max packet time {:.3} ms)",
        lag * 1e3,
        lag / (lmax / args.rate),
        lmax / args.rate * 1e3
    );
    if let Some(path) = &args.metrics {
        let (tel, stats) = hw_export.expect("parse_args allows --metrics only with hw");
        let mut snap = tel.snapshot();
        stats.export("hw", &mut snap);
        let rollup = metrics::aggregate(&report);
        snap.put("fairq_packets", rollup.packets as f64);
        snap.put("fairq_mean_delay_s", rollup.mean_delay_s);
        snap.put("fairq_throughput_bps", rollup.throughput_bps);
        snap.put("fairq_jain", rollup.jain_throughput);
        if let Err(msg) = emit_snapshot(path, &snap) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
