//! Quickstart: sort packet tags with the paper's circuit.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the fabricated configuration (12-bit tags, three levels of
//! 16-bit nodes), pushes a few out-of-order finishing tags through it,
//! and shows the fixed-cost retrieval the paper is about.

use wfq_sorter::tagsort::{Geometry, PacketRef, SortRetrieveCircuit, Tag};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The geometry the paper fabricates: branching factor 16, 3 levels.
    let geometry = Geometry::paper();
    println!(
        "geometry: {}-bit tags, {} levels of {}-bit nodes, {} tree bits, {} translation entries",
        geometry.tag_bits(),
        geometry.levels(),
        geometry.branching(),
        geometry.tree_bits_total(),
        geometry.translation_entries(),
    );

    let mut sorter = SortRetrieveCircuit::new(geometry, 1024);

    // Finishing tags arrive in whatever order the WFQ computation emits
    // them; duplicates are legal (rounded tags) and stay FCFS.
    let arrivals = [
        (Tag(0x2f0), "flow A / video frame"),
        (Tag(0x011), "flow B / voip sample"),
        (Tag(0x7a1), "flow C / bulk segment"),
        (Tag(0x011), "flow B / voip sample #2"),
        (Tag(0x123), "flow D / web response"),
    ];
    for (i, (tag, what)) in arrivals.iter().enumerate() {
        sorter.insert(*tag, PacketRef(i as u32))?;
        println!("insert {tag} <- {what}");
    }

    println!("\nsmallest tag is always at hand: {:?}", sorter.peek_min());
    println!("\nservice order:");
    while let Some((tag, packet)) = sorter.pop_min() {
        let (_, what) = arrivals[packet.index() as usize];
        println!("  {tag} -> {what}");
    }

    let stats = sorter.stats();
    println!(
        "\n{} operations, {:.1} storage cycles each (the paper's fixed 4-cycle slot)",
        stats.ops,
        stats.cycles_per_op(),
    );
    println!(
        "at the fabricated 143.2 MHz clock that is {:.1} Mpps = {:.1} Gb/s of 140-byte packets",
        stats.packets_per_second(wfq_sorter::tagsort::PAPER_CLOCK_HZ) / 1e6,
        stats.line_rate_bps(
            wfq_sorter::tagsort::PAPER_CLOCK_HZ,
            wfq_sorter::tagsort::PAPER_MEAN_PACKET_BYTES
        ) / 1e9,
    );
    Ok(())
}
