//! An edge-router QoS scenario: the full Fig. 1 hardware scheduler
//! carrying a service-level mix — exactly the deployment the paper's
//! conclusion targets ("traffic management ... to enable service level
//! agreements and service differentiation").
//!
//! ```sh
//! cargo run --example router_qos
//! ```

use wfq_sorter::fairq::{metrics, LinkSim, Wfq};
use wfq_sorter::scheduler::{HwScheduler, SchedulerConfig};
use wfq_sorter::traffic::{generate, profiles, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three service classes on one port: premium VoIP, a video tier,
    // and best-effort bulk data.
    let flows = profiles::combine(vec![
        profiles::voip(4),
        profiles::video(2, 2_000_000.0),
        profiles::bulk(4, 1_000_000.0),
    ]);
    let link_rate = 6_000_000.0; // oversubscribed on purpose
    let trace = generate(&flows, 1.0, 2024);
    println!(
        "{} flows, {} packets over 1 s, link {} Mb/s (offered ~{:.1} Mb/s)",
        flows.len(),
        trace.len(),
        link_rate / 1e6,
        flows.iter().map(|f| f.rate_bps).sum::<f64>() / 1e6,
    );

    // --- Software reference: WFQ on an output link ----------------------
    let departures = LinkSim::new(link_rate, Wfq::new(&flows, link_rate)).run(&trace);
    let report = metrics::analyze(&flows, &trace, &departures);
    println!("\nper-class delay under WFQ (software reference):");
    for (label, range) in [("voip", 0..4u32), ("video", 4..6), ("bulk", 6..10)] {
        let worst = report
            .iter()
            .filter(|m| range.contains(&m.flow))
            .map(|m| m.max_delay_s)
            .fold(0.0, f64::max);
        let mean = report
            .iter()
            .filter(|m| range.contains(&m.flow))
            .map(|m| m.mean_delay_s)
            .sum::<f64>()
            / range.len() as f64;
        println!(
            "  {label:>5}: mean {:.2} ms, worst {:.2} ms",
            mean * 1e3,
            worst * 1e3
        );
    }
    let lag = metrics::gps_lag(&flows, &trace, &departures, link_rate);
    let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
    println!(
        "GPS lag {:.3} ms <= one packet time {:.3} ms (Parekh–Gallager bound)",
        lag * 1e3,
        lmax / link_rate * 1e3
    );

    // --- Hardware path: the same trace through the Fig. 1 pipeline ------
    // A second of traffic sweeps far more virtual time than the 12-bit
    // fabricated tag space covers at fine granularity; the architecture
    // scales, so plan a 20-bit tree for this port (examples/
    // capacity_planning.rs shows the sizing arithmetic).
    let mut hw = HwScheduler::new(
        &flows,
        link_rate,
        SchedulerConfig {
            geometry: wfq_sorter::tagsort::Geometry::new(4, 5),
            tick_scale: 50.0,
            capacity: 1 << 15,
            ..SchedulerConfig::default()
        },
    );
    // Emulate line-rate service: serve one packet per enqueue once a
    // small backlog builds.
    let mut served = 0usize;
    for (i, pkt) in trace.iter().enumerate() {
        hw.enqueue(*pkt)?;
        if i >= 32 {
            hw.dequeue().expect("backlogged");
            served += 1;
        }
        // Keep the virtual clock honest about real time.
        hw.advance_clock(Time(pkt.arrival.seconds()));
    }
    while hw.dequeue().is_some() {
        served += 1;
    }
    let stats = hw.stats();
    println!("\nhardware pipeline on the same trace:");
    println!(
        "  served {served} packets, {:.1} storage cycles each",
        stats.circuit.cycles_per_op()
    );
    println!(
        "  buffer peak {} packets / {} slots",
        stats.buffer.peak,
        1 << 15
    );
    println!(
        "  tags clamped {}, service inversions {}",
        stats.clamped, stats.inversions
    );
    println!(
        "  at 143.2 MHz this port sustains {:.1} Mpps — {:.1} Gb/s of 140 B packets",
        stats.circuit.packets_per_second(143.2e6) / 1e6,
        stats.circuit.line_rate_bps(143.2e6, 140.0) / 1e9
    );
    Ok(())
}
