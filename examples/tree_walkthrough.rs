//! Executable walkthrough of the paper's Figs. 4 and 5: the multi-bit
//! tree search, step by step, including the backup path — and the same
//! searches driven through the gate-level matching circuits.
//!
//! ```sh
//! cargo run --example tree_walkthrough
//! ```

use wfq_sorter::matcher::{MatcherCircuit, MatcherKind};
use wfq_sorter::tagsort::{Geometry, MultiBitTrie, Tag};

fn main() {
    // Fig. 4's tree: 6-bit values from 2-bit literals, three levels,
    // storing 001001, 110101, and 110111.
    let geometry = Geometry::new(2, 3);
    let mut tree = MultiBitTrie::new(geometry);
    for v in [0b001001u32, 0b110101, 0b110111] {
        tree.insert_marker(Tag(v));
        println!("stored marker {:06b}", v);
    }

    // --- Fig. 4: closest match for 110110 ------------------------------
    println!("\nFig. 4 — search for 110110:");
    println!("  level 1: literal 11 present -> descend");
    println!("  level 2: literal 01 present -> descend");
    println!("  level 3: literal 10 absent -> next smallest is 01");
    let got = tree.closest_at_or_below(Tag(0b110110)).expect("match");
    println!("  closest match: {:06b} (paper: 110101)", got.value());
    assert_eq!(got, Tag(0b110101));

    // --- Fig. 5: search for 110100 fails at level 3; backup path -------
    println!("\nFig. 5 — search for 110100:");
    println!("  level 3 has nothing at or below 00 (point 'A')");
    println!("  backup from level 1 (point 'B'): next bit below 11 is 00");
    println!("  descend taking the largest literal in each node");
    let got = tree.closest_at_or_below(Tag(0b110100)).expect("match");
    println!(
        "  closest match: {:06b} (the next lowest value, 001001)",
        got.value()
    );
    assert_eq!(got, Tag(0b001001));

    // --- The same searches through the gate-level matcher ---------------
    println!("\nGate-level check: every per-node decision above, recomputed");
    println!("by the select & look-ahead matching circuit:");
    let circuit = MatcherCircuit::build(MatcherKind::SelectLookAhead, 4);
    let mut gate_tree = MultiBitTrie::new(geometry);
    for v in [0b001001u32, 0b110101, 0b110111] {
        gate_tree.insert_marker(Tag(v));
    }
    for probe in [0b110110u32, 0b110100, 0b110111, 0b000000] {
        let via_gates =
            gate_tree.closest_at_or_below_with(Tag(probe), |word, lit| circuit.evaluate(word, lit));
        let via_reference = tree.closest_at_or_below(Tag(probe));
        assert_eq!(via_gates, via_reference);
        println!(
            "  probe {:06b} -> {}",
            probe,
            via_gates
                .map(|t| format!("{:06b}", t.value()))
                .unwrap_or_else(|| "no match (initialization mode)".into())
        );
    }
    println!(
        "\ncircuit: {} gates, {} levels of logic ({} with fan-out buffering)",
        circuit.area(),
        circuit.delay_unit(),
        circuit.delay(),
    );
}
