//! Hierarchical link sharing: an ISP access link split into service
//! tiers, each tier split among customers — H-WF²Q+ (the hierarchical
//! fair queueing of paper ref. [6]) against CBQ (the hierarchical DRR of
//! ref. [4]).
//!
//! ```sh
//! cargo run --example hierarchical_sharing
//! ```

use wfq_sorter::fairq::{metrics, Cbq, ClassMap, HierarchicalWf2q, LinkSim, Scheduler};
use wfq_sorter::traffic::{generate, ArrivalProcess, FlowId, FlowSpec, SizeDist};

fn main() {
    // Six customers in three tiers: gold (60 % of the link, 2 customers),
    // silver (30 %, 2), bronze (10 %, 2). Everyone offers more than
    // their share, so the hierarchy decides who gets what.
    let flows: Vec<FlowSpec> = (0..6)
        .map(|i| {
            FlowSpec::new(FlowId(i), 1.0, 1_200_000.0)
                .size(SizeDist::Imix)
                .arrivals(ArrivalProcess::Poisson)
        })
        .collect();
    let map = || ClassMap::new(vec![0, 0, 1, 1, 2, 2], vec![6.0, 3.0, 1.0]);
    let rate = 3_000_000.0; // offered 7.2 Mb/s against 3 Mb/s
    let trace = generate(&flows, 1.0, 77);
    println!(
        "{} packets over 1 s; tiers gold/silver/bronze = 60/30/10 % of {} Mb/s\n",
        trace.len(),
        rate / 1e6
    );

    for sched in [
        Box::new(HierarchicalWf2q::new(&flows, map())) as Box<dyn Scheduler>,
        Box::new(Cbq::new(&flows, map(), 1500.0)),
    ] {
        let name = sched.name();
        let deps = LinkSim::new(rate, sched).run(&trace);
        // Shares during the saturated first second.
        let mut tier_bytes = [0u64; 3];
        for d in deps.iter().filter(|d| d.finish.seconds() <= 1.0) {
            tier_bytes[(d.packet.flow.0 / 2) as usize] += u64::from(d.packet.size_bytes);
        }
        let total: u64 = tier_bytes.iter().sum();
        let report = metrics::analyze(&flows, &trace, &deps);
        println!("{name}:");
        for (tier, label) in ["gold", "silver", "bronze"].iter().enumerate() {
            let share = tier_bytes[tier] as f64 / total as f64 * 100.0;
            let worst = report[tier * 2..tier * 2 + 2]
                .iter()
                .map(|m| m.max_delay_s)
                .fold(0.0, f64::max);
            println!(
                "  {label:>6}: {share:5.1}% of the link  (worst delay {:7.2} ms)",
                worst * 1e3
            );
        }
        println!();
    }
    println!(
        "Both hierarchies honour the 60/30/10 split; the fair-queueing tree\n\
         additionally bounds each tier's delay the way flat WFQ does — and\n\
         every node of the tree is one more stream of finishing tags for the\n\
         sort/retrieve circuit to keep in order."
    );
}
