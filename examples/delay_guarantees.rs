//! Hard delay guarantees, end to end: fit a token bucket to a flow,
//! compute its Parekh–Gallager bound, and verify the *hardware* WFQ
//! pipeline honours it while FIFO does not — the service-level-agreement
//! story of the paper's conclusion, made executable.
//!
//! ```sh
//! cargo run --example delay_guarantees
//! ```

use wfq_sorter::fairq::{metrics, Fifo, LinkSim};
use wfq_sorter::scheduler::{HwLinkSim, HwScheduler, SchedulerConfig};
use wfq_sorter::tagsort::Geometry;
use wfq_sorter::traffic::{generate, ArrivalProcess, FlowId, FlowSpec, SizeDist, TokenBucket};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate = 2_000_000.0;
    // The customer flow: a 256 kb/s video call, shaped by construction
    // (CBR). Weight 1 of 2 => guaranteed 1 Mb/s, four times its rate.
    // The adversary: heavy-tailed bursts at up to link rate.
    let flows = vec![
        FlowSpec::new(FlowId(0), 1.0, 256_000.0).size(SizeDist::Fixed(800)),
        FlowSpec::new(FlowId(1), 1.0, 1_600_000.0)
            .size(SizeDist::Fixed(1500))
            .arrivals(ArrivalProcess::ParetoOnOff {
                on_mean_s: 0.05,
                off_mean_s: 0.02,
                alpha: 1.4,
            }),
    ];
    let trace = generate(&flows, 2.0, 404);

    // --- The SLA arithmetic ---------------------------------------------
    let g = metrics::guaranteed_rate(&flows, FlowId(0), rate);
    let bucket = TokenBucket::fit(&trace, FlowId(0), 256_000.0).expect("flow 0 sends packets");
    let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
    let bound = metrics::pgps_delay_bound(bucket.burst_bits(), g, lmax, rate);
    println!(
        "flow 0 envelope: sigma = {:.0} bits at rho = {:.0} kb/s",
        bucket.burst_bits(),
        bucket.rate_bps() / 1e3
    );
    println!(
        "guaranteed rate g = {:.0} kb/s of the {:.0} kb/s link",
        g / 1e3,
        rate / 1e3
    );
    println!(
        "Parekh–Gallager bound: sigma/g + Lmax/R = {:.2} ms\n",
        bound * 1e3
    );

    // --- FIFO: no guarantee ----------------------------------------------
    let deps = LinkSim::new(rate, Fifo::new()).run(&trace);
    let fifo = metrics::analyze(&flows, &trace, &deps)[0].max_delay_s;
    println!(
        "FIFO          : worst delay {:6.2} ms  ({})",
        fifo * 1e3,
        if fifo <= bound {
            "within bound (lucky)"
        } else {
            "BOUND VIOLATED"
        }
    );

    // --- The hardware WFQ pipeline: guaranteed -----------------------------
    let hw = HwScheduler::new(
        &flows,
        rate,
        SchedulerConfig {
            geometry: Geometry::new(4, 5),
            tick_scale: 30.0,
            capacity: 1 << 14,
            ..SchedulerConfig::default()
        },
    );
    let deps = HwLinkSim::new(rate, hw).run(&trace)?;
    let measured = metrics::analyze(&flows, &trace, &deps)[0].max_delay_s;
    println!(
        "WFQ (hardware): worst delay {:6.2} ms  ({})",
        measured * 1e3,
        if measured <= bound {
            "guarantee honoured"
        } else {
            "BOUND VIOLATED"
        }
    );
    assert!(measured <= bound, "the SLA must hold");

    println!(
        "\nThe bound needs no knowledge of the adversary: however the Pareto\n\
         bursts land, the shaped flow's packets leave within {:.2} ms. That is\n\
         the deliverable the paper's sorting circuit makes affordable at\n\
         40 Gb/s line rate.",
        bound * 1e3
    );
    Ok(())
}
