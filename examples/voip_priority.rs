//! Why fair queueing: a VoIP call fighting a bursty download, under
//! FIFO vs DRR vs WFQ — the paper's §I motivation ("end-to-end delays
//! for such packet flows must also be kept within certain limits if ...
//! a conversation ... is to be practical").
//!
//! ```sh
//! cargo run --example voip_priority
//! ```

use wfq_sorter::fairq::{metrics, Departure, Drr, Fifo, LinkSim, Scheduler, Wfq};
use wfq_sorter::traffic::{generate, ArrivalProcess, FlowId, FlowSpec, SizeDist};

fn main() {
    // One 64 kb/s G.711-like call (weight 4) vs an aggressive download
    // (weight 1) on a 1.5 Mb/s access link.
    let flows = vec![
        FlowSpec::new(FlowId(0), 4.0, 64_000.0)
            .size(SizeDist::Fixed(140))
            .arrivals(ArrivalProcess::Cbr),
        FlowSpec::new(FlowId(1), 1.0, 1_800_000.0)
            .size(SizeDist::Fixed(1500))
            .arrivals(ArrivalProcess::OnOff {
                on_mean_s: 0.05,
                off_mean_s: 0.02,
            }),
    ];
    let rate = 1_500_000.0;
    let trace = generate(&flows, 2.0, 7);
    println!(
        "2 s of traffic: {} packets; the download offers {:.1}x the link rate in bursts\n",
        trace.len(),
        1_800_000.0 / rate
    );

    let runs: Vec<(&str, Vec<Departure>)> = vec![
        (
            "FIFO",
            LinkSim::new(rate, Box::new(Fifo::new()) as Box<dyn Scheduler>).run(&trace),
        ),
        (
            "DRR",
            LinkSim::new(
                rate,
                Box::new(Drr::new(&flows, 1500.0)) as Box<dyn Scheduler>,
            )
            .run(&trace),
        ),
        (
            "WFQ",
            LinkSim::new(rate, Box::new(Wfq::new(&flows, rate)) as Box<dyn Scheduler>).run(&trace),
        ),
    ];

    println!(
        "{:<6} {:>12} {:>12} {:>12}   verdict",
        "sched", "voip mean", "voip p99", "voip worst"
    );
    for (name, deps) in &runs {
        let m = &metrics::analyze(&flows, &trace, deps)[0];
        // A one-way budget of 20 ms of queueing keeps a call comfortable.
        let verdict = if m.max_delay_s < 0.020 {
            "call OK"
        } else if m.p99_delay_s < 0.020 {
            "glitchy"
        } else {
            "unusable"
        };
        println!(
            "{:<6} {:>10.2}ms {:>10.2}ms {:>10.2}ms   {verdict}",
            name,
            m.mean_delay_s * 1e3,
            m.p99_delay_s * 1e3,
            m.max_delay_s * 1e3,
        );
    }
    println!(
        "\nThe shape the paper banks on: FIFO lets download bursts bury the call;\n\
         byte-fair rounds (DRR) help but cannot bound delay; WFQ's finishing\n\
         tags keep the call within its weighted share regardless of the burst —\n\
         and sorting those tags at line speed is exactly the job of the\n\
         sort/retrieve circuit."
    );
}
