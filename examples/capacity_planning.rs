//! Capacity planning with the paper's scaling equations: size the tree,
//! translation table, and tag storage for a target port — the
//! "independently scalable and configurable" flexibility of §III.
//!
//! ```sh
//! cargo run --example capacity_planning -- 100   # plan a 100 Gb/s port
//! ```

use wfq_sorter::matcher::{MatcherCircuit, MatcherKind};
use wfq_sorter::tagsort::{Geometry, StoreLayout};

fn main() {
    let target_gbps: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40.0);
    let mean_packet_bytes = 140.0;
    let pps = target_gbps * 1e9 / (mean_packet_bytes * 8.0);
    let clock_hz = pps * 4.0; // four cycles per packet, fixed
    println!(
        "target: {target_gbps} Gb/s of {mean_packet_bytes} B packets = {:.1} Mpps",
        pps / 1e6
    );
    println!(
        "required circuit clock at 4 cycles/packet: {:.1} MHz\n",
        clock_hz / 1e6
    );

    println!(
        "{:<28} {:>9} {:>12} {:>14} {:>12} {:>12}",
        "geometry", "tag bits", "tree bits", "transl entries", "levels(rds)", "matcher depth"
    );
    for (label, g) in [
        ("paper 16-way x3", Geometry::paper()),
        ("paper wide 32-way x3", Geometry::paper_wide()),
        ("16-way x4 (16-bit tags)", Geometry::new(4, 4)),
        ("16-way x5 (20-bit tags)", Geometry::new(4, 5)),
        ("64-way x4 (24-bit tags)", Geometry::new(6, 4)),
    ] {
        let m = MatcherCircuit::build(MatcherKind::SelectLookAhead, g.branching() as usize);
        println!(
            "{:<28} {:>9} {:>12} {:>14} {:>12} {:>12}",
            label,
            g.tag_bits(),
            g.tree_bits_total(),
            g.translation_entries(),
            g.lookup_accesses(),
            m.delay(),
        );
    }

    // Tag storage sizing: the off-chip SRAM that holds the linked list.
    println!("\ntag storage (external SRAM) for the paper geometry:");
    for packets in [1_000_000usize, 30_000_000, 100_000_000] {
        let layout = StoreLayout::for_geometry(Geometry::paper(), packets);
        println!(
            "  {:>11} packets -> {:>2}-bit links ({}t/{}p/{}d), {:>6.2} Gbit",
            packets,
            layout.word_bits(),
            layout.tag_bits(),
            layout.ptr_bits(),
            layout.payload_bits(),
            packets as f64 * f64::from(layout.word_bits()) / 1e9,
        );
    }

    println!(
        "\nThe tree decides search granularity; the SRAM decides how many tags\n\
         fit — the two scale independently through the translation table,\n\
         which is the property that lets one design cover 40 Gb/s today and\n\
         'future terabit QoS router technologies' (paper §V)."
    );
}
