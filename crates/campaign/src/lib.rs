//! Million-flow campaign runner.
//!
//! The paper's headline scale claim is 8 M concurrent sessions; a
//! single bench run exercises one workload against one configuration.
//! This crate closes the gap: a [`CampaignSpec`] names a *grid* of
//! scheduler configurations — flow population × rank policy × sorting
//! backend × admission policy × fault campaign — and [`run`] sweeps
//! every cell against a seeded [`ScaleWorkload`](traffic::ScaleWorkload)
//! (Zipf popularity, optional flash-crowd churn), producing one
//! deterministic [`CampaignReport`]: byte-identical text for CI
//! diffing, plus a flat metric list `check_regression` can gate.
//!
//! Two properties make million-flow cells tractable:
//!
//! * **Paged state** — cells run the sorter with lazily paged
//!   translation/tag-store memory (`mode = paged`), so resident memory
//!   tracks *live* tags instead of the tag universe. `mode = both`
//!   additionally replays the cell eagerly and cross-checks that the
//!   departure sequences are identical (the `agree` metric).
//! * **Streaming workloads** — arrivals are generated one at a time
//!   from `O(1)` state, never materializing the trace.
//!
//! See `DESIGN.md` §16 and `EXPERIMENTS.md` E18.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod run;
mod spec;

pub use run::{run, CampaignReport, CellResult, ModeRun};
pub use spec::{CampaignSpec, Cell, Mode};
