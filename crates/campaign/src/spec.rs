//! Campaign specification: the grid axes, the shared workload knobs,
//! and the line-oriented spec language the `--campaign` front-ends
//! parse.
//!
//! A spec file is `key = value` lines; `#` starts a comment. Axis keys
//! (`flows`, `policies`, `backends`, `admissions`, `faults`,
//! `frontends`) take comma-separated lists and multiply into the grid;
//! every other key is a scalar shared by all cells (sharded frontends
//! read the `ports` and `placement` scalars). Two specs are built in — `smoke`
//! (a small cross-product with paged/eager cross-checking, fast enough
//! for per-commit CI) and `soak` (one 2²⁰-flow, 10 M-packet churn cell
//! in paged mode) — and resolve by name before any file path.

use std::fmt;
use std::str::FromStr;

use fairq::AnyPolicy;
use faultsim::{FaultPolicy, FaultSpec, ScrubOrder};
use scheduler::{AdmissionPolicy, Placement};
use tagsort::Geometry;
use traffic::ChurnSpec;

/// Which scheduler frontend a cell drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// One [`scheduler::HwScheduler`] serving one egress link.
    #[default]
    Single,
    /// [`scheduler::ShardedScheduler`] — one scheduler per port,
    /// sequential coordination.
    Sharded,
    /// [`scheduler::ParallelShardedScheduler`] — one worker thread per
    /// port.
    Parallel,
}

impl Frontend {
    /// Stable lowercase name (spec syntax and metric-key suffix).
    pub fn name(self) -> &'static str {
        match self {
            Self::Single => "single",
            Self::Sharded => "sharded",
            Self::Parallel => "parallel",
        }
    }
}

impl fmt::Display for Frontend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "single" => Ok(Self::Single),
            "sharded" => Ok(Self::Sharded),
            "parallel" => Ok(Self::Parallel),
            other => Err(format!(
                "unknown frontend \"{other}\" (expected single, sharded, or parallel)"
            )),
        }
    }
}

/// Which storage mode(s) each cell runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Fully materialized state memories (the fabricated chip's model).
    Eager,
    /// Lazily paged translation table and tag store.
    Paged,
    /// Run both and verify the departure sequences are identical.
    #[default]
    Both,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Eager => "eager",
            Self::Paged => "paged",
            Self::Both => "both",
        })
    }
}

impl FromStr for Mode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "eager" => Ok(Self::Eager),
            "paged" => Ok(Self::Paged),
            "both" => Ok(Self::Both),
            other => Err(format!(
                "unknown mode \"{other}\" (expected eager, paged, or both)"
            )),
        }
    }
}

/// One point of the campaign grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Flow population size.
    pub flows: u32,
    /// Rank policy name (see [`fairq::AnyPolicy::NAMES`]).
    pub policy: String,
    /// Sorting backend name (`trie`, `fastpath`, or `heap`).
    pub backend: String,
    /// Full-buffer behavior.
    pub admission: AdmissionPolicy,
    /// Fault campaign spec string, or `"none"` for a fault-free cell.
    pub fault: String,
    /// Which scheduler frontend drives the cell.
    pub frontend: Frontend,
}

impl Cell {
    /// The cell's metric-key slug: `f{flows}_{policy}_{backend}_
    /// {admission}_{fault}` with every non-alphanumeric character
    /// folded to `_` (and `+` spelled `plus`), so the key satisfies the
    /// bench JSON emitter's `[A-Za-z0-9_]` constraint. Multi-port
    /// frontends append `__{frontend}`; the default single frontend
    /// appends nothing, so pre-existing baselines keep their keys.
    pub fn key(&self) -> String {
        let mut key = format!("f{}", self.flows);
        for part in [
            self.policy.as_str(),
            self.backend.as_str(),
            &self.admission.to_string(),
            self.fault.as_str(),
        ] {
            key.push('_');
            for c in part.chars() {
                if c.is_ascii_alphanumeric() {
                    key.push(c);
                } else if c == '+' {
                    key.push_str("plus");
                } else {
                    key.push('_');
                }
            }
        }
        if self.frontend != Frontend::Single {
            key.push('_');
            key.push('_');
            key.push_str(self.frontend.name());
        }
        key
    }
}

/// A full campaign: the grid axes plus the workload and scheduler knobs
/// shared by every cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (builtin name or `file:`-prefixed path stem).
    pub name: String,
    /// Flow-population axis.
    pub flows: Vec<u32>,
    /// Rank-policy axis ([`fairq::AnyPolicy`] names).
    pub policies: Vec<String>,
    /// Backend axis (`trie`, `fastpath`, `heap`).
    pub backends: Vec<String>,
    /// Admission axis.
    pub admissions: Vec<AdmissionPolicy>,
    /// Fault axis: `"none"` or `COUNT@SEED[:COMPONENT[:BITS]]` specs.
    pub faults: Vec<String>,
    /// Frontend axis (single, sharded, parallel).
    pub frontends: Vec<Frontend>,
    /// Output-port count for the multi-port frontends (ignored by
    /// `single`).
    pub ports: usize,
    /// Flow placement for the multi-port frontends: `hash` is the
    /// static affinity map, `dynamic` arms the rebalancer (ignored by
    /// `single`).
    pub placement: Placement,
    /// Packets per cell.
    pub packets: u64,
    /// Workload seed (cells share it, so axes — not noise — explain
    /// differences between cells).
    pub seed: u64,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// Offered aggregate rate in bits per second.
    pub rate_bps: f64,
    /// Offered load as a fraction of the service rate; the link serves
    /// at `rate_bps / load`, so `load < 1` keeps the queue stable.
    pub load: f64,
    /// Smallest packet in bytes.
    pub min_bytes: u32,
    /// Largest packet in bytes.
    pub max_bytes: u32,
    /// Buffer/sorter capacity in packets.
    pub capacity: usize,
    /// Sort-tree geometry.
    pub geometry: Geometry,
    /// Storage mode(s) per cell.
    pub mode: Mode,
    /// Optional flash-crowd churn window.
    pub churn: Option<ChurnSpec>,
    /// Scrub schedule for faulted cells.
    pub scrub_order: ScrubOrder,
    /// Response policy for faulted cells.
    pub fault_policy: FaultPolicy,
}

impl CampaignSpec {
    /// The built-in campaign named `name`, if any.
    ///
    /// * `smoke` — a 2×2×2 grid (flows × policy × backend) of 20 k-packet
    ///   cells in `both` mode: the per-commit determinism and
    ///   paged/eager-equivalence gate.
    /// * `soak` — one 2²⁰-flow, 10 M-packet cell with a flash crowd, in
    ///   `paged` mode: the memory-scaling gate.
    pub fn builtin(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self {
                name: "smoke".into(),
                flows: vec![512, 4096],
                policies: vec!["wfq".into(), "stfq".into()],
                backends: vec!["trie".into(), "fastpath".into()],
                admissions: vec![AdmissionPolicy::TailDrop],
                faults: vec!["none".into()],
                frontends: vec![Frontend::Single],
                ports: 4,
                placement: Placement::Hash,
                packets: 20_000,
                seed: 7,
                zipf_exponent: 1.1,
                rate_bps: 1e9,
                load: 0.8,
                min_bytes: 64,
                max_bytes: 1500,
                capacity: 1 << 12,
                geometry: Geometry::new(4, 5),
                mode: Mode::Both,
                churn: None,
                scrub_order: ScrubOrder::RoundRobin,
                fault_policy: FaultPolicy::DetectAndCount,
            }),
            "soak" => Some(Self {
                name: "soak".into(),
                flows: vec![1 << 20],
                policies: vec!["wfq".into()],
                backends: vec!["trie".into()],
                admissions: vec![AdmissionPolicy::TailDrop],
                faults: vec!["none".into()],
                frontends: vec![Frontend::Single],
                ports: 4,
                placement: Placement::Hash,
                packets: 10_000_000,
                seed: 7,
                zipf_exponent: 1.05,
                rate_bps: 10e9,
                load: 0.8,
                min_bytes: 64,
                max_bytes: 1500,
                capacity: 1 << 14,
                geometry: Geometry::new(6, 4),
                mode: Mode::Paged,
                churn: Some(ChurnSpec {
                    start_s: 2.0,
                    duration_s: 1.0,
                    crowd_flows: 100_000,
                    boost: 0.5,
                }),
                scrub_order: ScrubOrder::RoundRobin,
                fault_policy: FaultPolicy::DetectAndCount,
            }),
            _ => None,
        }
    }

    /// Parses a spec file (see the module docs for the grammar).
    /// Unset keys default to the `smoke` builtin's values.
    pub fn parse(name: &str, text: &str) -> Result<Self, String> {
        let mut spec = Self::builtin("smoke").expect("smoke is built in");
        spec.name = name.to_string();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let err = |e: String| format!("line {}: {key}: {e}", lineno + 1);
            match key {
                "flows" => spec.flows = parse_list(value).map_err(err)?,
                "policies" => {
                    spec.policies = value.split(',').map(|s| s.trim().to_string()).collect()
                }
                "backends" => {
                    spec.backends = value.split(',').map(|s| s.trim().to_string()).collect()
                }
                "admissions" => spec.admissions = parse_list(value).map_err(err)?,
                "faults" => spec.faults = value.split(',').map(|s| s.trim().to_string()).collect(),
                "frontends" => spec.frontends = parse_list(value).map_err(err)?,
                "ports" => spec.ports = parse_one(value).map_err(err)?,
                "placement" => spec.placement = parse_one(value).map_err(err)?,
                "packets" => spec.packets = parse_one(value).map_err(err)?,
                "seed" => spec.seed = parse_one(value).map_err(err)?,
                "zipf" => spec.zipf_exponent = parse_one(value).map_err(err)?,
                "rate_bps" => spec.rate_bps = parse_one(value).map_err(err)?,
                "load" => spec.load = parse_one(value).map_err(err)?,
                "min_bytes" => spec.min_bytes = parse_one(value).map_err(err)?,
                "max_bytes" => spec.max_bytes = parse_one(value).map_err(err)?,
                "capacity" => spec.capacity = parse_one(value).map_err(err)?,
                "geometry" => spec.geometry = parse_geometry(value).map_err(err)?,
                "mode" => spec.mode = parse_one(value).map_err(err)?,
                "churn" => spec.churn = parse_churn(value).map_err(err)?,
                "scrub_order" => spec.scrub_order = parse_one(value).map_err(err)?,
                "fault_policy" => spec.fault_policy = parse_one(value).map_err(err)?,
                other => return Err(format!("line {}: unknown key \"{other}\"", lineno + 1)),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Resolves `arg` to a campaign: a builtin name first, then a spec
    /// file path.
    pub fn resolve(arg: &str) -> Result<Self, String> {
        if let Some(spec) = Self::builtin(arg) {
            return Ok(spec);
        }
        let text = std::fs::read_to_string(arg)
            .map_err(|e| format!("{arg}: not a builtin campaign and not readable: {e}"))?;
        let spec = Self::parse(arg, &text).map_err(|e| format!("{arg}: {e}"))?;
        Ok(spec)
    }

    /// Checks axis values and scalar ranges; every builtin validates.
    pub fn validate(&self) -> Result<(), String> {
        for axis in [
            ("flows", self.flows.is_empty()),
            ("policies", self.policies.is_empty()),
            ("backends", self.backends.is_empty()),
            ("admissions", self.admissions.is_empty()),
            ("faults", self.faults.is_empty()),
            ("frontends", self.frontends.is_empty()),
        ] {
            if axis.1 {
                return Err(format!("axis {} must not be empty", axis.0));
            }
        }
        for p in &self.policies {
            if AnyPolicy::by_name(p).is_none() {
                return Err(format!(
                    "unknown policy \"{p}\" (expected one of {:?})",
                    AnyPolicy::NAMES
                ));
            }
        }
        for b in &self.backends {
            if !matches!(b.as_str(), "trie" | "fastpath" | "heap") {
                return Err(format!(
                    "unknown backend \"{b}\" (expected trie, fastpath, or heap)"
                ));
            }
        }
        for f in &self.faults {
            if f != "none" {
                FaultSpec::from_str(f).map_err(|e| format!("fault axis: {e}"))?;
            }
        }
        if self.packets == 0 {
            return Err("packets must be positive".into());
        }
        if !(self.load.is_finite() && self.load > 0.0 && self.load <= 1.0) {
            return Err("load must be in (0, 1]".into());
        }
        if self.capacity == 0 {
            return Err("capacity must be positive".into());
        }
        if self.ports == 0 {
            return Err("ports must be positive".into());
        }
        for &flows in &self.flows {
            if flows == 0 {
                return Err("flow populations must be positive".into());
            }
        }
        Ok(())
    }

    /// The grid, in deterministic sweep order (flows outermost,
    /// frontends innermost).
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for &flows in &self.flows {
            for policy in &self.policies {
                for backend in &self.backends {
                    for &admission in &self.admissions {
                        for fault in &self.faults {
                            for &frontend in &self.frontends {
                                cells.push(Cell {
                                    flows,
                                    policy: policy.clone(),
                                    backend: backend.clone(),
                                    admission,
                                    fault: fault.clone(),
                                    frontend,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

fn parse_one<T: FromStr>(value: &str) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    value.parse().map_err(|e: T::Err| e.to_string())
}

fn parse_list<T: FromStr>(value: &str) -> Result<Vec<T>, String>
where
    T::Err: fmt::Display,
{
    value.split(',').map(|s| parse_one(s.trim())).collect()
}

/// `LITERAL_BITSxLEVELS`, e.g. `4x5`.
fn parse_geometry(value: &str) -> Result<Geometry, String> {
    let (bits, levels) = value
        .split_once('x')
        .ok_or_else(|| "expected LITERAL_BITSxLEVELS (e.g. 4x5)".to_string())?;
    let bits: u32 = parse_one(bits.trim())?;
    let levels: u32 = parse_one(levels.trim())?;
    if !(1..=6).contains(&bits) || levels == 0 {
        return Err("literal bits must be 1..=6 and levels >= 1".into());
    }
    Ok(Geometry::new(bits, levels))
}

/// `none`, or `START_S:DURATION_S:CROWD_FLOWS:BOOST`.
fn parse_churn(value: &str) -> Result<Option<ChurnSpec>, String> {
    if value == "none" {
        return Ok(None);
    }
    let parts: Vec<&str> = value.split(':').collect();
    let [start, duration, crowd, boost] = parts.as_slice() else {
        return Err("expected START_S:DURATION_S:CROWD_FLOWS:BOOST or none".into());
    };
    Ok(Some(ChurnSpec {
        start_s: parse_one(start)?,
        duration_s: parse_one(duration)?,
        crowd_flows: parse_one(crowd)?,
        boost: parse_one(boost)?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_validate_and_enumerate() {
        let smoke = CampaignSpec::builtin("smoke").unwrap();
        assert!(smoke.validate().is_ok());
        assert_eq!(smoke.cells().len(), 8);
        let soak = CampaignSpec::builtin("soak").unwrap();
        assert!(soak.validate().is_ok());
        assert_eq!(soak.cells().len(), 1);
        assert!(CampaignSpec::builtin("nope").is_none());
    }

    #[test]
    fn cell_keys_are_json_slugs() {
        let mut spec = CampaignSpec::builtin("smoke").unwrap();
        spec.policies = vec!["fifo+".into()];
        spec.admissions = vec![AdmissionPolicy::PushOut];
        spec.faults = vec!["8@7:any:1".into()];
        for cell in spec.cells() {
            let key = cell.key();
            assert!(
                key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad key {key:?}"
            );
            assert!(key.contains("fifoplus") && key.contains("push_out"));
        }
    }

    #[test]
    fn parse_round_trips_every_key() {
        let text = "
            # a comment
            flows = 64, 128
            policies = wfq, srpt
            backends = trie, heap
            admissions = tail-drop, push-out
            faults = none, 4@9:buffer:1
            packets = 500
            seed = 11
            zipf = 0.9       # inline comment
            rate_bps = 5e8
            load = 0.7
            min_bytes = 100
            max_bytes = 200
            capacity = 256
            geometry = 3x4
            mode = paged
            churn = 0.1:0.2:32:0.5
            scrub_order = write-priority
            fault_policy = detect-and-count
            frontends = single, sharded, parallel
            ports = 8
            placement = dynamic
        ";
        let spec = CampaignSpec::parse("t", text).unwrap();
        assert_eq!(spec.flows, vec![64, 128]);
        assert_eq!(spec.policies, vec!["wfq", "srpt"]);
        assert_eq!(
            spec.frontends,
            vec![Frontend::Single, Frontend::Sharded, Frontend::Parallel]
        );
        assert_eq!(spec.ports, 8);
        assert_eq!(spec.placement, Placement::Dynamic);
        assert_eq!(spec.cells().len(), 2 * 2 * 2 * 2 * 2 * 3);
        assert_eq!(spec.geometry, Geometry::new(3, 4));
        assert_eq!(spec.mode, Mode::Paged);
        assert_eq!(spec.scrub_order, ScrubOrder::WritePriority);
        assert_eq!(
            spec.churn,
            Some(ChurnSpec {
                start_s: 0.1,
                duration_s: 0.2,
                crowd_flows: 32,
                boost: 0.5
            })
        );
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(CampaignSpec::parse("t", "nonsense").is_err());
        assert!(CampaignSpec::parse("t", "wat = 1").is_err());
        assert!(CampaignSpec::parse("t", "policies = frob").is_err());
        assert!(CampaignSpec::parse("t", "backends = cuckoo").is_err());
        assert!(CampaignSpec::parse("t", "faults = 3@").is_err());
        assert!(CampaignSpec::parse("t", "load = 1.5").is_err());
        assert!(CampaignSpec::parse("t", "geometry = 9x1").is_err());
        assert!(CampaignSpec::parse("t", "mode = sometimes").is_err());
        assert!(CampaignSpec::parse("t", "frontends = mesh").is_err());
        assert!(CampaignSpec::parse("t", "placement = roulette").is_err());
        assert!(CampaignSpec::parse("t", "ports = 0").is_err());
    }

    #[test]
    fn frontend_suffix_leaves_single_keys_unchanged() {
        let mut spec = CampaignSpec::builtin("smoke").unwrap();
        let before: Vec<String> = spec.cells().iter().map(Cell::key).collect();
        spec.frontends = vec![Frontend::Single, Frontend::Sharded, Frontend::Parallel];
        let after: Vec<String> = spec.cells().iter().map(Cell::key).collect();
        assert_eq!(after.len(), before.len() * 3);
        // Every pre-axis key survives verbatim; the new cells append a
        // frontend suffix.
        for key in &before {
            assert!(after.contains(key), "missing {key}");
        }
        assert_eq!(
            after.iter().filter(|k| k.ends_with("__sharded")).count(),
            before.len()
        );
        assert_eq!(
            after.iter().filter(|k| k.ends_with("__parallel")).count(),
            before.len()
        );
    }
}
