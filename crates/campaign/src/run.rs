//! The grid executor: one seeded [`ScaleWorkload`] per cell, a fluid
//! egress-link model, and the deterministic report.
//!
//! Each cell couples the scheduler to a link serving at
//! `rate_bps / load` bits per second: arriving packets are enqueued in
//! trace order, and whenever simulated time passes the link's
//! free-instant the scheduler's head-of-line packet is served. Per-cell
//! outputs are exact counters (served/dropped/pushed-out), a per-flow
//! fairness-error distribution, a log₂-bucketed sojourn histogram, a
//! running FNV-1a hash of the departure sequence (the paged/eager
//! equivalence witness), and the sorter's resident-memory accounting.
//!
//! Everything downstream of the seed is integer or
//! order-deterministic float arithmetic, so the rendered report is
//! byte-identical across runs and platforms — CI diffs it verbatim.

use fairq::{AnyPolicy, RankPolicy};
use fastpath::FfsSorter;
use faultsim::FaultConfig;
use scheduler::{
    HwScheduler, ParallelShardedScheduler, Placement, RebalancerConfig, SchedulerConfig,
    ShardedScheduler, WrapPolicy,
};
use tagsort::{
    CleanupPolicy, HeapSorter, MemoryKind, ResidentMemory, SortBackend, SortRetrieveCircuit,
};
use traffic::{FlowId, FlowSpec, Packet, ScaleConfig, ScaleWorkload};

use crate::spec::{CampaignSpec, Cell, Frontend, Mode};

/// One cell executed under one storage mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeRun {
    /// Whether the sorter ran with paged state.
    pub paged: bool,
    /// Packets served by the link.
    pub served: u64,
    /// Packets refused at admission (tail drops).
    pub dropped: u64,
    /// Packets evicted by push-out admission.
    pub pushed_out: u64,
    /// p99 over flows of `|goodput share − aggregate share|`.
    pub fairness_p99: f64,
    /// p99 packet sojourn (arrival to service completion), in ms.
    pub sojourn_p99_ms: f64,
    /// FNV-1a hash over the `(flow, seq, size)` departure sequence.
    pub departure_hash: u64,
    /// Sorter state-memory accounting, for backends that model it.
    pub resident: Option<ResidentMemory>,
    /// `(injected, detected, repaired, silent)` fault-ledger totals.
    pub faults: (u64, u64, u64, u64),
    /// Max/mean ratio of per-port admissions; `None` on the single
    /// frontend (one port is trivially balanced).
    pub shard_balance: Option<f64>,
    /// Cross-shard flow migrations executed by the rebalancer.
    pub migrations: u64,
}

/// One grid cell's runs across the spec's storage modes.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The grid point.
    pub cell: Cell,
    /// One entry per storage mode (eager first under [`Mode::Both`]).
    pub runs: Vec<ModeRun>,
    /// Whether every mode produced the identical departure sequence.
    pub agree: bool,
}

impl CellResult {
    /// The run metrics are reported from: the paged run when present
    /// (its resident-memory figures are the interesting ones), else the
    /// only run.
    pub fn primary(&self) -> &ModeRun {
        self.runs.last().expect("every cell runs at least once")
    }
}

/// The campaign's deterministic output.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Human-readable, byte-stable text (one line per cell per mode).
    pub text: String,
    /// Flat metrics for the bench JSON emitter / `check_regression`.
    /// `ceil_`-prefixed keys are lower-is-better tail ceilings.
    pub metrics: Vec<(String, f64)>,
    /// Per-cell results, in grid order.
    pub results: Vec<CellResult>,
}

/// Sweeps the whole grid. Cells run sequentially in
/// [`CampaignSpec::cells`] order; the report is byte-deterministic.
pub fn run(spec: &CampaignSpec) -> CampaignReport {
    let results: Vec<CellResult> = spec.cells().iter().map(|c| run_cell(spec, c)).collect();
    render(spec, results)
}

/// Storage modes a cell actually runs: only the trie backend has paged
/// off-chip state, so for the others every mode collapses to one eager
/// run. Sharded frontends never page (dynamic migration walks live
/// state), so they always run eager.
fn modes_for(spec: &CampaignSpec, cell: &Cell) -> Vec<bool> {
    let has_paged = cell.backend == "trie" && cell.frontend == Frontend::Single;
    match spec.mode {
        Mode::Eager => vec![false],
        Mode::Paged => vec![has_paged],
        Mode::Both if has_paged => vec![false, true],
        Mode::Both => vec![false],
    }
}

fn run_cell(spec: &CampaignSpec, cell: &Cell) -> CellResult {
    let runs: Vec<ModeRun> = modes_for(spec, cell)
        .into_iter()
        .map(|paged| match cell.backend.as_str() {
            "trie" => run_one::<SortRetrieveCircuit>(spec, cell, paged),
            "fastpath" => run_one::<FfsSorter>(spec, cell, paged),
            "heap" => run_one::<HeapSorter>(spec, cell, paged),
            other => unreachable!("backend {other} passed validation"),
        })
        .collect();
    let agree = runs.windows(2).all(|w| {
        w[0].departure_hash == w[1].departure_hash
            && w[0].served == w[1].served
            && w[0].dropped == w[1].dropped
    });
    CellResult {
        cell: cell.clone(),
        runs,
        agree,
    }
}

/// The fluid egress link plus every departure-side accumulator.
struct LinkModel {
    service_rate_bps: f64,
    free_at_s: f64,
    served_bytes: Vec<u64>,
    served_pkts: u64,
    sojourn_hist: [u64; 65],
    hash: u64,
}

impl LinkModel {
    fn new(service_rate_bps: f64, flows: u32) -> Self {
        Self {
            service_rate_bps,
            free_at_s: 0.0,
            served_bytes: vec![0; flows as usize],
            served_pkts: 0,
            sojourn_hist: [0; 65],
            hash: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
        }
    }

    fn serve(&mut self, p: &Packet) {
        let start = self.free_at_s.max(p.arrival.0);
        let done = start + f64::from(p.size_bytes) * 8.0 / self.service_rate_bps;
        self.free_at_s = done;
        let sojourn_ns = ((done - p.arrival.0) * 1e9) as u64;
        self.sojourn_hist[bucket(sojourn_ns)] += 1;
        self.served_bytes[p.flow.0 as usize] += u64::from(p.size_bytes);
        self.served_pkts += 1;
        for word in [u64::from(p.flow.0), p.seq, u64::from(p.size_bytes)] {
            for byte in word.to_le_bytes() {
                self.hash ^= u64::from(byte);
                self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
}

/// Log₂ bucket index: values in `[2^(i-1), 2^i)` land in bucket `i`,
/// zero in bucket 0. The p99 reads back the bucket's upper bound, so
/// tail latencies carry factor-of-two resolution — coarse, but exactly
/// reproducible, which is what a regression ceiling needs.
fn bucket(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

/// What a frontend reports once its run drains: the admission/fault
/// counters plus the sharding figures the single path doesn't have.
struct FrontendTail {
    pushed_out: u64,
    resident: Option<ResidentMemory>,
    faults: (u64, u64, u64, u64),
    shard_balance: Option<f64>,
    migrations: u64,
}

/// One cell's scheduler behind a uniform enqueue/dequeue surface, so
/// the link loop below is written once for all three frontends.
enum AnyFrontend<B: SortBackend + Send + 'static> {
    Single(Box<HwScheduler<B, AnyPolicy>>),
    Sharded(Box<ShardedScheduler<B, AnyPolicy>>),
    Parallel(Box<ParallelShardedScheduler<B, AnyPolicy>>),
}

impl<B: SortBackend + Send + 'static> AnyFrontend<B> {
    fn enqueue(&mut self, pkt: Packet) -> bool {
        match self {
            AnyFrontend::Single(s) => s.enqueue(pkt).is_ok(),
            AnyFrontend::Sharded(s) => s.enqueue(pkt).is_ok(),
            AnyFrontend::Parallel(s) => s.enqueue(pkt).is_ok(),
        }
    }

    fn dequeue(&mut self) -> Option<Packet> {
        match self {
            AnyFrontend::Single(s) => s.dequeue(),
            AnyFrontend::Sharded(s) => s.dequeue().map(|(_, p)| p),
            AnyFrontend::Parallel(s) => s.dequeue().map(|(_, p)| p),
        }
    }

    /// One rebalance round; a no-op without an armed rebalancer.
    fn maybe_rebalance(&mut self) {
        match self {
            AnyFrontend::Single(_) => {}
            AnyFrontend::Sharded(s) => {
                s.maybe_rebalance();
            }
            AnyFrontend::Parallel(s) => {
                s.maybe_rebalance();
            }
        }
    }

    fn finish(self) -> FrontendTail {
        match self {
            AnyFrontend::Single(mut s) => {
                s.reconcile_faults();
                FrontendTail {
                    pushed_out: s.stats().pushed_out,
                    resident: s.resident_memory(),
                    faults: s.fault_totals(),
                    shard_balance: None,
                    migrations: 0,
                }
            }
            AnyFrontend::Sharded(mut s) => {
                s.reconcile_faults();
                let stats = s.stats();
                FrontendTail {
                    pushed_out: stats.aggregate.pushed_out,
                    resident: None,
                    faults: s.fault_totals(),
                    shard_balance: Some(stats.shard_balance()),
                    migrations: s.migrations(),
                }
            }
            AnyFrontend::Parallel(mut s) => {
                let faults = s.reconcile_faults();
                let stats = s.stats();
                FrontendTail {
                    pushed_out: stats.aggregate.pushed_out,
                    resident: None,
                    faults,
                    shard_balance: Some(stats.shard_balance()),
                    migrations: s.migrations(),
                }
            }
        }
    }
}

fn run_one<B: SortBackend + Send + 'static>(
    spec: &CampaignSpec,
    cell: &Cell,
    paged: bool,
) -> ModeRun {
    let workload = ScaleWorkload::new(ScaleConfig {
        flows: cell.flows,
        packets: spec.packets,
        zipf_exponent: spec.zipf_exponent,
        rate_bps: spec.rate_bps,
        min_bytes: spec.min_bytes,
        max_bytes: spec.max_bytes,
        // A crowd band wider than the population means no churn for
        // this (small) cell rather than a malformed workload.
        churn: spec.churn.filter(|c| c.crowd_flows <= cell.flows),
        seed: spec.seed,
    });
    let per_flow_rate = spec.rate_bps / f64::from(cell.flows);
    let flows: Vec<FlowSpec> = (0..cell.flows)
        .map(|i| FlowSpec::new(FlowId(i), 1.0, per_flow_rate))
        .collect();
    let proto = AnyPolicy::by_name(&cell.policy).expect("policy passed validation");
    let service_rate = spec.rate_bps / spec.load;
    let faults = (cell.fault != "none").then(|| {
        let fspec = cell.fault.parse().expect("fault spec passed validation");
        let mut fc = FaultConfig::new(fspec, spec.fault_policy, spec.packets * 2);
        fc.scrub_order = spec.scrub_order;
        fc
    });
    let config = SchedulerConfig {
        geometry: spec.geometry,
        capacity: spec.capacity,
        tick_scale: proto.tick_scale(service_rate),
        wrap_policy: WrapPolicy::Saturate,
        cleanup: CleanupPolicy::Eager,
        memory: MemoryKind::SinglePort,
        faults,
        admission: cell.admission,
    };
    let mut sched = match cell.frontend {
        Frontend::Single => {
            let mut s = HwScheduler::<B, AnyPolicy>::with_backend_and_policy(
                &flows,
                service_rate,
                config,
                &proto,
            );
            if paged {
                assert!(
                    s.set_paged_state(),
                    "paged mode on a backend without paged storage"
                );
            }
            AnyFrontend::Single(Box::new(s))
        }
        Frontend::Sharded => {
            let rates = vec![service_rate / spec.ports as f64; spec.ports];
            let mut s = ShardedScheduler::<B, AnyPolicy>::with_policy_port_rates_placement(
                &flows,
                &rates,
                config,
                &proto,
                spec.placement,
            );
            if spec.placement == Placement::Dynamic {
                s = s.with_rebalancer(RebalancerConfig::default());
            }
            AnyFrontend::Sharded(Box::new(s))
        }
        Frontend::Parallel => {
            let rates = vec![service_rate / spec.ports as f64; spec.ports];
            let mut s = ParallelShardedScheduler::<B, AnyPolicy>::with_policy_placement(
                &flows,
                &rates,
                config,
                &proto,
                spec.placement,
            );
            if spec.placement == Placement::Dynamic {
                s = s.with_rebalancer(RebalancerConfig::default());
            }
            AnyFrontend::Parallel(Box::new(s))
        }
    };

    let rebalancing = cell.frontend != Frontend::Single && spec.placement == Placement::Dynamic;
    let mut offered_bytes = vec![0u64; cell.flows as usize];
    let mut link = LinkModel::new(service_rate, cell.flows);
    let mut dropped = 0u64;
    let mut arrivals = 0u64;
    for pkt in workload {
        let now = pkt.arrival.0;
        offered_bytes[pkt.flow.0 as usize] += u64::from(pkt.size_bytes);
        // Serve everything the link completes before this arrival.
        while link.free_at_s <= now {
            match sched.dequeue() {
                Some(p) => link.serve(&p),
                None => {
                    // Idle gap: the link is free when the arrival lands.
                    link.free_at_s = now;
                    break;
                }
            }
        }
        if !sched.enqueue(pkt) {
            dropped += 1;
        }
        arrivals += 1;
        // Dynamic placement: one rebalance round every 1024 arrivals —
        // frequent enough to chase Zipf skew, sparse enough that the
        // EWMA sees fresh load between rounds.
        if rebalancing && arrivals.is_multiple_of(1024) {
            sched.maybe_rebalance();
        }
    }
    while let Some(p) = sched.dequeue() {
        link.serve(&p);
    }
    let tail = sched.finish();

    ModeRun {
        paged,
        served: link.served_pkts,
        dropped,
        pushed_out: tail.pushed_out,
        fairness_p99: fairness_p99(&offered_bytes, &link.served_bytes),
        sojourn_p99_ms: hist_p99_ms(&link.sojourn_hist),
        departure_hash: link.hash,
        resident: tail.resident,
        faults: tail.faults,
        shard_balance: tail.shard_balance,
        migrations: tail.migrations,
    }
}

/// p99 over flows of `|g_f − g|`, where `g_f` is flow `f`'s delivered
/// fraction (served/offered bytes) and `g` the aggregate's. Zero when
/// nothing is dropped; flows that offered nothing are excluded.
fn fairness_p99(offered: &[u64], served: &[u64]) -> f64 {
    let offered_total: u64 = offered.iter().sum();
    let served_total: u64 = served.iter().sum();
    if offered_total == 0 {
        return 0.0;
    }
    let g = served_total as f64 / offered_total as f64;
    let mut errs: Vec<f64> = offered
        .iter()
        .zip(served)
        .filter(|(o, _)| **o > 0)
        .map(|(&o, &s)| (s as f64 / o as f64 - g).abs())
        .collect();
    if errs.is_empty() {
        return 0.0;
    }
    let idx = (errs.len() - 1) * 99 / 100;
    let (_, p99, _) = errs.select_nth_unstable_by(idx, f64::total_cmp);
    *p99
}

/// p99 of the sojourn histogram, as the covering bucket's upper bound
/// in milliseconds.
fn hist_p99_ms(hist: &[u64; 65]) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = (total * 99).div_ceil(100);
    let mut cum = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        cum += count;
        if cum >= target {
            return 2f64.powi(i as i32) / 1e6;
        }
    }
    unreachable!("cumulative count reaches the total")
}

fn render(spec: &CampaignSpec, results: Vec<CellResult>) -> CampaignReport {
    use std::fmt::Write as _;

    let mut text = String::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let _ = writeln!(
        text,
        "campaign {}: cells={} packets={} seed={} mode={}",
        spec.name,
        results.len(),
        spec.packets,
        spec.seed,
        spec.mode
    );
    metrics.push(("campaign_cells".into(), results.len() as f64));
    let mut all_agree = true;
    for result in &results {
        let key = result.cell.key();
        for run in &result.runs {
            let mode = if run.paged { "paged" } else { "eager" };
            let _ = write!(
                text,
                "cell {key} mode={mode} served={} dropped={} pushed_out={} \
                 fairness_p99={:.6} sojourn_p99_ms={:.4} hash={:016x}",
                run.served,
                run.dropped,
                run.pushed_out,
                run.fairness_p99,
                run.sojourn_p99_ms,
                run.departure_hash
            );
            if let Some(mem) = run.resident {
                let _ = write!(
                    text,
                    " resident_peak_words={} total_words={} ratio={:.6}",
                    mem.peak_resident_words,
                    mem.total_words,
                    mem.peak_resident_words as f64 / mem.total_words as f64
                );
            }
            if let Some(balance) = run.shard_balance {
                let _ = write!(
                    text,
                    " shard_balance={balance:.4} migrations={}",
                    run.migrations
                );
            }
            if result.cell.fault != "none" {
                let (inj, det, rep, silent) = run.faults;
                let _ = write!(
                    text,
                    " faults_injected={inj} faults_detected={det} \
                     faults_repaired={rep} faults_silent={silent}"
                );
            }
            text.push('\n');
        }
        let _ = writeln!(
            text,
            "cell {key} agree={}",
            if result.agree { "yes" } else { "NO" }
        );
        all_agree &= result.agree;

        let run = result.primary();
        metrics.push((format!("campaign_{key}_served"), run.served as f64));
        metrics.push((
            format!("ceil_campaign_{key}_dropped"),
            (run.dropped + run.pushed_out) as f64,
        ));
        metrics.push((
            format!("ceil_campaign_{key}_fairness_p99"),
            run.fairness_p99,
        ));
        metrics.push((
            format!("ceil_campaign_{key}_sojourn_p99_ms"),
            run.sojourn_p99_ms,
        ));
        metrics.push((
            format!("campaign_{key}_agree"),
            f64::from(u8::from(result.agree)),
        ));
        if let Some(mem) = run.resident {
            metrics.push((
                format!("ceil_campaign_{key}_resident_ratio"),
                mem.peak_resident_words as f64 / mem.total_words as f64,
            ));
        }
        if let Some(balance) = run.shard_balance {
            metrics.push((format!("ceil_campaign_{key}_shard_balance"), balance));
            metrics.push((format!("campaign_{key}_migrations"), run.migrations as f64));
        }
        if result.cell.fault != "none" {
            let (inj, det, _, silent) = run.faults;
            metrics.push((format!("campaign_{key}_faults_injected"), inj as f64));
            metrics.push((format!("campaign_{key}_faults_detected"), det as f64));
            metrics.push((format!("ceil_campaign_{key}_faults_silent"), silent as f64));
        }
    }
    let _ = writeln!(
        text,
        "campaign {}: agree={}",
        spec.name,
        if all_agree { "yes" } else { "NO" }
    );
    metrics.push(("campaign_agree_all".into(), f64::from(u8::from(all_agree))));
    CampaignReport {
        text,
        metrics,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    /// A spec small enough for debug-mode unit tests.
    fn tiny(mode: Mode) -> CampaignSpec {
        let mut spec = CampaignSpec::builtin("smoke").unwrap();
        spec.name = "tiny".into();
        spec.flows = vec![256];
        spec.policies = vec!["wfq".into()];
        spec.backends = vec!["trie".into()];
        spec.packets = 3_000;
        spec.capacity = 1 << 10;
        spec.mode = mode;
        spec
    }

    #[test]
    fn paged_and_eager_departures_are_identical() {
        let report = run(&tiny(Mode::Both));
        assert_eq!(report.results.len(), 1);
        let cell = &report.results[0];
        assert_eq!(cell.runs.len(), 2);
        assert!(!cell.runs[0].paged && cell.runs[1].paged);
        assert!(cell.agree, "paged and eager departure sequences differ");
        assert_eq!(cell.runs[0].departure_hash, cell.runs[1].departure_hash);
        // The paged run must actually save memory.
        let mem = cell.runs[1].resident.unwrap();
        assert!(mem.peak_resident_words < mem.total_words);
        // And deliver the traffic: the workload is stable (load < 1).
        assert!(cell.runs[1].served > 2_900);
    }

    #[test]
    fn reports_are_byte_deterministic() {
        let a = run(&tiny(Mode::Both));
        let b = run(&tiny(Mode::Both));
        assert_eq!(a.text, b.text);
        assert_eq!(a.metrics, b.metrics);
        assert!(a.text.contains("agree=yes"));
    }

    #[test]
    fn metric_keys_are_slugs_and_include_ceilings() {
        let report = run(&tiny(Mode::Paged));
        assert!(report
            .metrics
            .iter()
            .all(
                |(k, v)| k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && v.is_finite()
            ));
        assert!(report
            .metrics
            .iter()
            .any(|(k, _)| k.starts_with("ceil_campaign_") && k.ends_with("_sojourn_p99_ms")));
        assert!(report
            .metrics
            .iter()
            .any(|(k, _)| k.ends_with("_resident_ratio")));
    }

    #[test]
    fn every_backend_serves_the_same_departure_stream() {
        let mut spec = tiny(Mode::Eager);
        spec.backends = vec!["trie".into(), "fastpath".into(), "heap".into()];
        let report = run(&spec);
        assert_eq!(report.results.len(), 3);
        let hash0 = report.results[0].primary().departure_hash;
        for cell in &report.results {
            assert_eq!(cell.primary().departure_hash, hash0, "{}", cell.cell.key());
        }
    }

    #[test]
    fn faulted_cells_reconcile_their_ledger() {
        let mut spec = tiny(Mode::Eager);
        spec.faults = vec!["8@3:any:1".into()];
        let report = run(&spec);
        let (inj, det, _rep, silent) = report.results[0].primary().faults;
        assert!(inj > 0, "plan should inject within the horizon");
        assert_eq!(det + silent, inj, "ledger must reconcile");
        assert!(report.text.contains("faults_injected=8"));
    }

    #[test]
    fn frontend_axis_adds_suffixed_cells() {
        let mut spec = tiny(Mode::Eager);
        spec.frontends = vec![Frontend::Single, Frontend::Sharded];
        let report = run(&spec);
        assert_eq!(report.results.len(), 2);
        let single = &report.results[0];
        let sharded = &report.results[1];
        assert!(!single.cell.key().contains("__"));
        assert!(sharded.cell.key().ends_with("__sharded"));
        // The single-frontend key (and thus its baseline entry) is
        // untouched by the new axis.
        assert_eq!(single.cell.key(), {
            let mut base = tiny(Mode::Eager);
            base.frontends = vec![Frontend::Single];
            base.cells()[0].key()
        });
        // Sharded run drains the same workload and reports balance.
        assert_eq!(
            single.primary().served + single.primary().dropped,
            sharded.primary().served + sharded.primary().dropped,
        );
        let balance = sharded.primary().shard_balance.unwrap();
        assert!((1.0..=spec.ports as f64).contains(&balance), "{balance}");
        assert!(report
            .metrics
            .iter()
            .any(|(k, _)| k.ends_with("__sharded_shard_balance") && k.starts_with("ceil_")));
        assert!(single.primary().shard_balance.is_none());
    }

    #[test]
    fn dynamic_frontends_rebalance_and_stay_deterministic() {
        let mut spec = tiny(Mode::Both);
        spec.frontends = vec![Frontend::Sharded, Frontend::Parallel];
        spec.placement = scheduler::Placement::Dynamic;
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a.text, b.text, "dynamic rebalancing must be deterministic");
        // Sharded frontends never page: Mode::Both collapses to one
        // eager run per cell.
        for cell in &a.results {
            assert_eq!(cell.runs.len(), 1);
            assert!(!cell.runs[0].paged);
        }
        // The sequential and threaded frontends agree departure for
        // departure, including every migration the rebalancer issued.
        let seq = a.results[0].primary();
        let par = a.results[1].primary();
        assert_eq!(seq.departure_hash, par.departure_hash);
        assert_eq!(seq.migrations, par.migrations);
        assert!(a.text.contains("migrations="));
    }

    #[test]
    fn push_out_admission_reports_evictions() {
        let mut spec = tiny(Mode::Eager);
        // Critically loaded link + tiny buffer: the queue random-walks
        // past capacity and forces admission decisions.
        spec.load = 1.0;
        spec.capacity = 16;
        spec.admissions = vec![
            scheduler::AdmissionPolicy::TailDrop,
            scheduler::AdmissionPolicy::PushOut,
        ];
        let report = run(&spec);
        let tail = report.results[0].primary();
        let push = report.results[1].primary();
        assert!(tail.dropped > 0, "overload must drop under tail-drop");
        assert!(push.pushed_out > 0, "push-out must evict under overload");
    }
}
