//! Trace generation: seeded per-flow streams merged in arrival order.

use crate::packet::{Packet, Time};
use crate::rng::Rng;
use crate::spec::{ArrivalProcess, FlowSpec, SizeDist};

/// Generates the merged arrival trace of all `flows` over `[0, horizon_s)`.
///
/// Each flow draws from its own RNG stream (derived from `seed` and the
/// flow id), so adding or removing one flow does not perturb the others —
/// essential for sweep experiments. Sequence numbers are assigned in
/// merged arrival order.
pub fn generate(flows: &[FlowSpec], horizon_s: f64, seed: u64) -> Vec<Packet> {
    let mut all: Vec<Packet> = flows
        .iter()
        .flat_map(|f| generate_flow(f, horizon_s, seed))
        .collect();
    all.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.flow.0.cmp(&b.flow.0)));
    for (i, p) in all.iter_mut().enumerate() {
        p.seq = i as u64;
    }
    all
}

/// Generates one flow's packets over `[0, horizon_s)` (seq numbers are
/// per-flow until merged by [`generate`]).
pub fn generate_flow(flow: &FlowSpec, horizon_s: f64, seed: u64) -> Vec<Packet> {
    // Derive an independent stream per flow: splitmix the pair.
    let mut rng = Rng::seed_from_u64(mix(seed, u64::from(flow.id.0)));
    let mut out = Vec::new();
    let mean_gap = 1.0 / flow.mean_pps();
    let mut t = flow.start_s;
    let mut burst_end = f64::NEG_INFINITY; // for on/off
    let mut seq = 0u64;
    let mut cbr_index = 0u64;
    while t < horizon_s {
        match flow.arrivals {
            ArrivalProcess::Cbr => {
                push(&mut out, flow, t, &mut rng, &mut seq);
                // Multiply rather than accumulate: CBR spacing must not
                // drift with floating-point error over long horizons.
                cbr_index += 1;
                t = flow.start_s + cbr_index as f64 * mean_gap;
            }
            ArrivalProcess::Poisson => {
                push(&mut out, flow, t, &mut rng, &mut seq);
                t += exp_sample(&mut rng, mean_gap);
            }
            ArrivalProcess::OnOff {
                on_mean_s,
                off_mean_s,
            } => {
                if t > burst_end {
                    // Start the next burst after a silence.
                    t += exp_sample(&mut rng, off_mean_s);
                    burst_end = t + exp_sample(&mut rng, on_mean_s);
                    if t >= horizon_s {
                        break;
                    }
                }
                push(&mut out, flow, t, &mut rng, &mut seq);
                // While on, send at the peak rate that preserves the mean:
                // duty cycle = on/(on+off), peak gap = mean gap × duty.
                let duty = on_mean_s / (on_mean_s + off_mean_s);
                t += mean_gap * duty;
            }
            ArrivalProcess::ParetoOnOff {
                on_mean_s,
                off_mean_s,
                alpha,
            } => {
                if t > burst_end {
                    t += exp_sample(&mut rng, off_mean_s);
                    burst_end = t + pareto_sample(&mut rng, on_mean_s, alpha);
                    if t >= horizon_s {
                        break;
                    }
                }
                push(&mut out, flow, t, &mut rng, &mut seq);
                let duty = on_mean_s / (on_mean_s + off_mean_s);
                t += mean_gap * duty;
            }
        }
    }
    out.retain(|p| p.arrival.seconds() < horizon_s);
    out
}

fn push(out: &mut Vec<Packet>, flow: &FlowSpec, t: f64, rng: &mut Rng, seq: &mut u64) {
    out.push(Packet {
        flow: flow.id,
        size_bytes: draw_size(flow.sizes, rng),
        arrival: Time(t),
        seq: *seq,
    });
    *seq += 1;
}

fn draw_size(dist: SizeDist, rng: &mut Rng) -> u32 {
    match dist {
        SizeDist::Fixed(s) => s,
        SizeDist::Uniform { min, max } => rng.range_u32_inclusive(min, max),
        SizeDist::Imix => {
            // 7:4:1 over 40/576/1500 bytes.
            match rng.below_u32(12) {
                0..=6 => 40,
                7..=10 => 576,
                _ => 1500,
            }
        }
        SizeDist::Bimodal {
            small,
            large,
            p_small,
        } => {
            if rng.unit_f64() < p_small {
                small
            } else {
                large
            }
        }
    }
}

/// Exponential sample with the given mean, via inverse transform.
fn exp_sample(rng: &mut Rng, mean: f64) -> f64 {
    -rng.positive_unit_f64().ln() * mean
}

/// Pareto sample with the given mean and shape α (> 1), via inverse
/// transform: scale x_m = mean·(α−1)/α.
fn pareto_sample(rng: &mut Rng, mean: f64, alpha: f64) -> f64 {
    assert!(alpha > 1.0, "Pareto shape must exceed 1 for a finite mean");
    let xm = mean * (alpha - 1.0) / alpha;
    xm / rng.positive_unit_f64().powf(1.0 / alpha)
}

/// SplitMix64-style combination of a seed and a stream index.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn cbr_flow() -> FlowSpec {
        FlowSpec::new(FlowId(0), 1.0, 100_000.0).size(SizeDist::Fixed(1250))
    }

    #[test]
    fn cbr_is_equally_spaced_at_the_mean_rate() {
        // 100 kb/s at 10 kb/packet = 10 pps over 1 s = 10 packets.
        let pkts = generate_flow(&cbr_flow(), 1.0, 7);
        assert_eq!(pkts.len(), 10);
        let gaps: Vec<f64> = pkts
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).seconds())
            .collect();
        for g in gaps {
            assert!((g - 0.1).abs() < 1e-9, "gap {g}");
        }
    }

    #[test]
    fn poisson_rate_is_approximately_right() {
        let f = FlowSpec::new(FlowId(0), 1.0, 1_000_000.0)
            .size(SizeDist::Fixed(1250))
            .arrivals(ArrivalProcess::Poisson);
        // 100 pps over 50 s ⇒ ~5000 packets; allow 10%.
        let pkts = generate_flow(&f, 50.0, 11);
        assert!(
            (4500..=5500).contains(&pkts.len()),
            "got {} packets",
            pkts.len()
        );
    }

    #[test]
    fn on_off_preserves_mean_rate_and_bursts() {
        let f = FlowSpec::new(FlowId(0), 1.0, 1_000_000.0)
            .size(SizeDist::Fixed(1250))
            .arrivals(ArrivalProcess::OnOff {
                on_mean_s: 0.05,
                off_mean_s: 0.05,
            });
        let pkts = generate_flow(&f, 50.0, 13);
        let n = pkts.len() as f64;
        assert!((n - 5000.0).abs() < 800.0, "mean rate drifted: {n} packets");
        // Bursts: the minimum gap must be about half the CBR gap (duty 0.5).
        let min_gap = pkts
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).seconds())
            .fold(f64::INFINITY, f64::min);
        assert!(min_gap < 0.006, "no bursting visible: min gap {min_gap}");
    }

    #[test]
    fn pareto_on_off_keeps_mean_but_grows_the_tail() {
        let mk = |arr: ArrivalProcess| {
            FlowSpec::new(FlowId(0), 1.0, 1_000_000.0)
                .size(SizeDist::Fixed(1250))
                .arrivals(arr)
        };
        let exp = generate_flow(
            &mk(ArrivalProcess::OnOff {
                on_mean_s: 0.02,
                off_mean_s: 0.02,
            }),
            100.0,
            7,
        );
        let par = generate_flow(
            &mk(ArrivalProcess::ParetoOnOff {
                on_mean_s: 0.02,
                off_mean_s: 0.02,
                alpha: 1.3,
            }),
            100.0,
            7,
        );
        // Comparable long-run rates (heavy tails converge slowly: 3x).
        let ratio = par.len() as f64 / exp.len() as f64;
        assert!((0.33..3.0).contains(&ratio), "rate ratio {ratio}");
        // But the longest Pareto burst dwarfs the longest exponential one.
        let longest_burst = |pkts: &[super::Packet]| {
            let mut longest = 0usize;
            let mut run = 1usize;
            for w in pkts.windows(2) {
                if (w[1].arrival - w[0].arrival).seconds() < 0.011 {
                    run += 1;
                    longest = longest.max(run);
                } else {
                    run = 1;
                }
            }
            longest
        };
        assert!(
            longest_burst(&par) > 2 * longest_burst(&exp),
            "pareto burst {} vs exp {}",
            longest_burst(&par),
            longest_burst(&exp)
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let flows = vec![
            cbr_flow(),
            FlowSpec::new(FlowId(1), 1.0, 500_000.0).arrivals(ArrivalProcess::Poisson),
        ];
        let a = generate(&flows, 2.0, 99);
        let b = generate(&flows, 2.0, 99);
        assert_eq!(a, b);
        let c = generate(&flows, 2.0, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn per_flow_streams_are_independent() {
        let solo = generate_flow(
            &FlowSpec::new(FlowId(1), 1.0, 500_000.0).arrivals(ArrivalProcess::Poisson),
            2.0,
            99,
        );
        let flows = vec![
            cbr_flow(),
            FlowSpec::new(FlowId(1), 1.0, 500_000.0).arrivals(ArrivalProcess::Poisson),
        ];
        let merged = generate(&flows, 2.0, 99);
        let from_merge: Vec<(Time, u32)> = merged
            .iter()
            .filter(|p| p.flow == FlowId(1))
            .map(|p| (p.arrival, p.size_bytes))
            .collect();
        let from_solo: Vec<(Time, u32)> = solo.iter().map(|p| (p.arrival, p.size_bytes)).collect();
        assert_eq!(from_merge, from_solo);
    }

    #[test]
    fn merged_trace_is_sorted_with_dense_seqs() {
        let flows = vec![
            cbr_flow(),
            FlowSpec::new(FlowId(1), 2.0, 300_000.0).arrivals(ArrivalProcess::Poisson),
        ];
        let trace = generate(&flows, 1.0, 5);
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for (i, p) in trace.iter().enumerate() {
            assert_eq!(p.seq, i as u64);
        }
    }

    #[test]
    fn imix_produces_only_the_three_sizes() {
        let f = FlowSpec::new(FlowId(0), 1.0, 10_000_000.0)
            .size(SizeDist::Imix)
            .arrivals(ArrivalProcess::Poisson);
        let pkts = generate_flow(&f, 1.0, 3);
        assert!(!pkts.is_empty());
        for p in &pkts {
            assert!(matches!(p.size_bytes, 40 | 576 | 1500));
        }
        // All three sizes should appear in a few thousand draws.
        for want in [40u32, 576, 1500] {
            assert!(pkts.iter().any(|p| p.size_bytes == want), "missing {want}");
        }
    }

    #[test]
    fn start_offset_respected() {
        let f = cbr_flow().starting_at(0.5);
        let pkts = generate_flow(&f, 1.0, 1);
        assert!(pkts.iter().all(|p| p.arrival >= Time(0.5)));
        assert!(!pkts.is_empty());
    }

    #[test]
    fn horizon_excludes_late_packets() {
        let pkts = generate_flow(&cbr_flow(), 0.05, 1);
        assert!(pkts.iter().all(|p| p.arrival < Time(0.05)));
    }
}
