//! Ready-made traffic profiles for the paper's experiments.
//!
//! Fig. 6 of the paper contrasts a left-weighted tag distribution
//! ("streaming VoIP") with "a classic bell curve" from "a diverse mix of
//! traffic"; §IV derives line rates from a 140-byte average packet. The
//! profiles here parameterize those scenarios so the bench harness and
//! examples can construct them in one call.

use crate::packet::FlowId;
use crate::spec::{ArrivalProcess, FlowSpec, SizeDist};

/// A VoIP-heavy profile: `n` constant-rate telephony flows of fixed-size
/// small packets (the paper's 140-byte conservative average), each at
/// 64 kb/s with a high scheduling weight.
pub fn voip(n: u32) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            FlowSpec::new(FlowId(i), 4.0, 64_000.0)
                .size(SizeDist::Fixed(140))
                .arrivals(ArrivalProcess::Cbr)
                // Stagger starts so arrivals do not phase-lock.
                .starting_at(f64::from(i) * 1.3e-4)
        })
        .collect()
}

/// A streaming-video profile: `n` flows at `rate_bps` with large packets
/// in steady bursts.
pub fn video(n: u32, rate_bps: f64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            FlowSpec::new(FlowId(i), 2.0, rate_bps)
                .size(SizeDist::Fixed(1400))
                .arrivals(ArrivalProcess::OnOff {
                    on_mean_s: 0.02,
                    off_mean_s: 0.01,
                })
                .starting_at(f64::from(i) * 7.0e-4)
        })
        .collect()
}

/// A bulk-data profile: `n` TCP-like flows of bimodal acks/segments with
/// Poisson arrivals, weight 1.
pub fn bulk(n: u32, rate_bps: f64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            FlowSpec::new(FlowId(i), 1.0, rate_bps)
                .size(SizeDist::Bimodal {
                    small: 40,
                    large: 1500,
                    p_small: 0.4,
                })
                .arrivals(ArrivalProcess::Poisson)
        })
        .collect()
}

/// The paper's "diverse mix": IMIX-sized Poisson flows — the profile that
/// produces Fig. 6's bell-shaped tag distribution.
pub fn diverse_mix(n: u32, rate_bps: f64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            FlowSpec::new(FlowId(i), 1.0 + f64::from(i % 4), rate_bps)
                .size(SizeDist::Imix)
                .arrivals(ArrivalProcess::Poisson)
        })
        .collect()
}

/// Renumbers flows so several profiles can share one scheduler: each
/// profile's flow ids are offset past the previous ones.
pub fn combine(profiles: Vec<Vec<FlowSpec>>) -> Vec<FlowSpec> {
    let mut out = Vec::new();
    let mut next_id = 0u32;
    for group in profiles {
        for mut f in group {
            f.id = FlowId(next_id);
            next_id += 1;
            out.push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn voip_profile_shape() {
        let flows = voip(8);
        assert_eq!(flows.len(), 8);
        for f in &flows {
            assert_eq!(f.sizes, SizeDist::Fixed(140));
            assert_eq!(f.rate_bps, 64_000.0);
        }
        // Distinct ids and staggered starts.
        assert_ne!(flows[0].start_s, flows[1].start_s);
    }

    #[test]
    fn combine_renumbers_flows_densely() {
        let all = combine(vec![voip(3), bulk(2, 1e6), video(1, 2e6)]);
        let ids: Vec<u32> = all.iter().map(|f| f.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn profiles_generate_nonempty_traces() {
        for flows in [voip(2), video(2, 2e6), bulk(2, 1e6), diverse_mix(2, 1e6)] {
            let trace = generate(&flows, 0.2, 1);
            assert!(!trace.is_empty());
        }
    }

    #[test]
    fn diverse_mix_varies_weights() {
        let flows = diverse_mix(8, 1e6);
        let distinct: std::collections::BTreeSet<u64> =
            flows.iter().map(|f| f.weight as u64).collect();
        assert!(distinct.len() > 1);
    }
}
