//! Trace persistence: save and reload packet traces.
//!
//! Experiments often want to pin a workload — regenerate it once, store
//! it, and replay the identical arrivals across runs and tools. The
//! format is deliberately trivial (one whitespace-separated record per
//! line: `seq flow size_bytes arrival_seconds`, `#` comments), so traces
//! are diffable and other tooling can produce them.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::packet::{FlowId, Packet, Time};

/// Serializes a trace to the line format.
///
/// # Example
///
/// ```
/// use traffic::{FlowId, Packet, Time, trace};
///
/// let pkts = vec![Packet { flow: FlowId(1), size_bytes: 140, arrival: Time(0.25), seq: 0 }];
/// let text = trace::to_string(&pkts);
/// assert_eq!(trace::from_str(&text).unwrap(), pkts);
/// ```
pub fn to_string(packets: &[Packet]) -> String {
    let mut out = String::with_capacity(packets.len() * 32 + 64);
    out.push_str("# seq flow size_bytes arrival_seconds\n");
    for p in packets {
        // `{}` on f64 prints the shortest representation that parses
        // back to the identical bits — exact round-trips.
        writeln!(
            out,
            "{} {} {} {}",
            p.seq,
            p.flow.0,
            p.size_bytes,
            p.arrival.seconds()
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Parses a trace from the line format.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on malformed records.
pub fn from_str(text: &str) -> io::Result<Vec<Packet>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let parse_err = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad {what}: {line:?}", lineno + 1),
            )
        };
        let seq: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| parse_err("seq"))?;
        let flow: u32 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| parse_err("flow"))?;
        let size_bytes: u32 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| parse_err("size"))?;
        let arrival: f64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| parse_err("arrival"))?;
        if fields.next().is_some() {
            return Err(parse_err("record (trailing fields)"));
        }
        out.push(Packet {
            flow: FlowId(flow),
            size_bytes,
            arrival: Time(arrival),
            seq,
        });
    }
    Ok(out)
}

/// Writes a trace to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(path: impl AsRef<Path>, packets: &[Packet]) -> io::Result<()> {
    std::fs::write(path, to_string(packets))
}

/// Reads a trace from `path`.
///
/// # Errors
///
/// Propagates filesystem errors and [`from_str`] parse errors.
pub fn load(path: impl AsRef<Path>) -> io::Result<Vec<Packet>> {
    from_str(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::profiles;

    #[test]
    fn roundtrip_preserves_every_field() {
        let flows = profiles::diverse_mix(4, 500_000.0);
        let pkts = generate(&flows, 0.2, 9);
        assert!(!pkts.is_empty());
        let text = to_string(&pkts);
        let back = from_str(&text).unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n0 1 140 0.5\n  # indented comment\n1 2 1500 0.75\n";
        let pkts = from_str(text).unwrap();
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[1].flow, FlowId(2));
        assert_eq!(pkts[1].arrival, Time(0.75));
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = from_str("0 1 nonsense 0.5").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"), "{err}");
        assert!(from_str("0 1 140 0.5 surplus").is_err());
        assert!(from_str("0 1 140").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("wfq_sorter_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        let flows = profiles::voip(2);
        let pkts = generate(&flows, 0.1, 3);
        save(&path, &pkts).unwrap();
        assert_eq!(load(&path).unwrap(), pkts);
        std::fs::remove_file(&path).ok();
    }
}
