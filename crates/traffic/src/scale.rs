//! Streaming million-flow workloads for campaign soaks.
//!
//! The per-flow generators in [`generate`](crate::generate) materialize
//! one merge heap entry per flow — fine for dozens of flows, hopeless
//! for the paper's 8 M sessions. A [`ScaleWorkload`] instead models the
//! *aggregate*: one Poisson arrival stream at the link's packet rate,
//! each arrival assigned to a flow by a [`Zipf`] popularity draw. That
//! is `O(1)` state regardless of population size, streams packets in
//! arrival order by construction, and remains exactly reproducible from
//! its seed — re-running the same [`ScaleConfig`] replays the identical
//! packet sequence, which is what campaign soak baselines byte-diff.
//!
//! A [`ChurnSpec`] superimposes a flash crowd: inside the window a
//! fraction of arrivals is redirected from the Zipf backbone to a band
//! of otherwise-cold flows, modeling sudden session arrival, and at the
//! window's end the band goes quiet again (departure). Population churn
//! is what exercises the paged translation table: sections touched by
//! the crowd materialize during the window and are freed again once the
//! virtual clock laps them.

use crate::packet::{FlowId, Packet, Time};
use crate::rng::Rng;
use crate::zipf::Zipf;

/// A flash-crowd window: arrival churn into a cold band of flows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// When the crowd arrives, in seconds.
    pub start_s: f64,
    /// How long it stays, in seconds.
    pub duration_s: f64,
    /// Number of (previously cold) flows in the crowd band — the highest
    /// `crowd_flows` flow ids of the population.
    pub crowd_flows: u32,
    /// Fraction of arrivals inside the window redirected to the crowd,
    /// uniformly across its band. Must be in `[0, 1]`.
    pub boost: f64,
}

/// Everything that determines a scale workload, as plain values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Flow population size (Zipf ranks map onto flow ids `0..flows`).
    pub flows: u32,
    /// Total packets to emit.
    pub packets: u64,
    /// Zipf popularity exponent (`0` = uniform, `~1` = classic).
    pub zipf_exponent: f64,
    /// Aggregate arrival rate in bits per second.
    pub rate_bps: f64,
    /// Packet sizes, uniform in `min_bytes..=max_bytes`.
    pub min_bytes: u32,
    /// Largest packet size in bytes.
    pub max_bytes: u32,
    /// Optional flash-crowd churn window.
    pub churn: Option<ChurnSpec>,
    /// PRNG seed; equal configs replay equal traces.
    pub seed: u64,
}

impl ScaleConfig {
    /// Mean packet size under the uniform size law, in bytes.
    pub fn mean_bytes(&self) -> f64 {
        f64::from(self.min_bytes + self.max_bytes) / 2.0
    }

    /// Mean aggregate arrival rate in packets per second.
    pub fn mean_pps(&self) -> f64 {
        self.rate_bps / (8.0 * self.mean_bytes())
    }

    fn validate(&self) {
        assert!(self.flows > 0, "flow population must be positive");
        assert!(
            self.rate_bps.is_finite() && self.rate_bps > 0.0,
            "aggregate rate must be positive"
        );
        assert!(
            self.min_bytes > 0 && self.min_bytes <= self.max_bytes,
            "packet size bounds must satisfy 0 < min <= max"
        );
        if let Some(churn) = &self.churn {
            assert!(
                churn.crowd_flows > 0 && churn.crowd_flows <= self.flows,
                "crowd must be a non-empty subset of the population"
            );
            assert!(
                (0.0..=1.0).contains(&churn.boost),
                "churn boost must be a fraction"
            );
            assert!(
                churn.start_s >= 0.0 && churn.duration_s > 0.0,
                "churn window must be non-degenerate"
            );
        }
    }
}

/// The streaming packet source a [`ScaleConfig`] describes.
///
/// Implements [`Iterator`]; arrivals are emitted in nondecreasing time
/// order and `seq` numbers the stream densely from zero.
///
/// # Example
///
/// ```
/// use traffic::{ScaleConfig, ScaleWorkload};
///
/// let cfg = ScaleConfig {
///     flows: 1_000_000,
///     packets: 1_000,
///     zipf_exponent: 1.1,
///     rate_bps: 10e9,
///     min_bytes: 64,
///     max_bytes: 1500,
///     churn: None,
///     seed: 42,
/// };
/// let trace: Vec<_> = ScaleWorkload::new(cfg).collect();
/// assert_eq!(trace.len(), 1_000);
/// assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
#[derive(Debug, Clone)]
pub struct ScaleWorkload {
    cfg: ScaleConfig,
    rng: Rng,
    zipf: Zipf,
    now_s: f64,
    seq: u64,
}

impl ScaleWorkload {
    /// Creates the stream for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent (empty population,
    /// non-positive rate, bad size bounds, or a malformed churn window).
    pub fn new(cfg: ScaleConfig) -> Self {
        cfg.validate();
        Self {
            rng: Rng::seed_from_u64(cfg.seed),
            zipf: Zipf::new(u64::from(cfg.flows), cfg.zipf_exponent),
            now_s: 0.0,
            seq: 0,
            cfg,
        }
    }

    /// The config this stream was built from.
    pub fn config(&self) -> &ScaleConfig {
        &self.cfg
    }

    fn pick_flow(&mut self) -> FlowId {
        if let Some(churn) = self.cfg.churn {
            let in_window =
                self.now_s >= churn.start_s && self.now_s < churn.start_s + churn.duration_s;
            if in_window && self.rng.unit_f64() < churn.boost {
                // The crowd band: the top `crowd_flows` ids, uniformly.
                let band_base = self.cfg.flows - churn.crowd_flows;
                return FlowId(band_base + self.rng.below_u32(churn.crowd_flows));
            }
        }
        FlowId((self.zipf.sample(&mut self.rng) - 1) as u32)
    }
}

impl Iterator for ScaleWorkload {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.seq >= self.cfg.packets {
            return None;
        }
        // Aggregate Poisson arrivals at the configured packet rate.
        self.now_s += -self.rng.positive_unit_f64().ln() / self.cfg.mean_pps();
        let flow = self.pick_flow();
        let size_bytes = self
            .rng
            .range_u32_inclusive(self.cfg.min_bytes, self.cfg.max_bytes);
        let pkt = Packet {
            flow,
            size_bytes,
            arrival: Time(self.now_s),
            seq: self.seq,
        };
        self.seq += 1;
        Some(pkt)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.cfg.packets - self.seq) as usize;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ScaleConfig {
        ScaleConfig {
            flows: 1 << 20,
            packets: 20_000,
            zipf_exponent: 1.1,
            rate_bps: 1e9,
            min_bytes: 64,
            max_bytes: 1500,
            churn: None,
            seed: 7,
        }
    }

    #[test]
    fn replay_is_exact() {
        let a: Vec<_> = ScaleWorkload::new(cfg()).collect();
        let b: Vec<_> = ScaleWorkload::new(cfg()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20_000);
        let c: Vec<_> = ScaleWorkload::new(ScaleConfig { seed: 8, ..cfg() }).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_ordered_and_sized_in_bounds() {
        let trace: Vec<_> = ScaleWorkload::new(cfg()).collect();
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(trace
            .iter()
            .all(|p| (64..=1500).contains(&p.size_bytes) && p.flow.0 < 1 << 20));
        // seq is dense from zero.
        assert!(trace.iter().enumerate().all(|(i, p)| p.seq == i as u64));
    }

    #[test]
    fn aggregate_rate_is_respected() {
        let trace: Vec<_> = ScaleWorkload::new(cfg()).collect();
        let span = trace.last().unwrap().arrival.0;
        let mean_bytes = cfg().mean_bytes();
        let measured_bps = trace.len() as f64 * 8.0 * mean_bytes / span;
        assert!(
            (measured_bps - 1e9).abs() < 1e9 * 0.05,
            "measured {measured_bps:.3e} bps"
        );
    }

    #[test]
    fn zipf_head_dominates_the_flow_mix() {
        let trace: Vec<_> = ScaleWorkload::new(cfg()).collect();
        let head = trace.iter().filter(|p| p.flow.0 < 10).count();
        // Under a uniform mix 10 flows of 2^20 would see ~0 packets of
        // 20 000; the Zipf head must carry a visible share.
        assert!(head > 1_000, "head flows carried only {head} packets");
    }

    #[test]
    fn flash_crowd_fills_its_window_and_departs() {
        let churn = ChurnSpec {
            start_s: 0.02,
            duration_s: 0.02,
            crowd_flows: 1000,
            boost: 0.9,
        };
        let trace: Vec<_> = ScaleWorkload::new(ScaleConfig {
            churn: Some(churn),
            packets: 40_000,
            ..cfg()
        })
        .collect();
        let band_base = (1 << 20) - 1000;
        let in_crowd = |p: &Packet| p.flow.0 >= band_base;
        let during = trace
            .iter()
            .filter(|p| p.arrival.0 >= 0.02 && p.arrival.0 < 0.04);
        let outside = trace
            .iter()
            .filter(|p| p.arrival.0 < 0.02 || p.arrival.0 >= 0.04);
        let (d_total, d_crowd) = during.fold((0usize, 0usize), |(t, c), p| {
            (t + 1, c + usize::from(in_crowd(p)))
        });
        let (o_total, o_crowd) = outside.fold((0usize, 0usize), |(t, c), p| {
            (t + 1, c + usize::from(in_crowd(p)))
        });
        assert!(d_total > 0 && o_total > 0, "window must be populated");
        let d_frac = d_crowd as f64 / d_total as f64;
        let o_frac = o_crowd as f64 / o_total as f64;
        assert!(d_frac > 0.8, "crowd share in window: {d_frac:.3}");
        assert!(o_frac < 0.01, "crowd share outside window: {o_frac:.3}");
    }
}
