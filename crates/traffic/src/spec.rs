//! Flow specifications: size laws and arrival processes.

use crate::packet::FlowId;

/// Packet-size distribution of a flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every packet has the same size (VoIP-like).
    Fixed(u32),
    /// Uniform between the bounds, inclusive.
    Uniform {
        /// Smallest packet size in bytes.
        min: u32,
        /// Largest packet size in bytes.
        max: u32,
    },
    /// The classic Internet mix: 40-byte, 576-byte, and 1500-byte packets
    /// in 7:4:1 proportion (mean ≈ 340 B).
    Imix,
    /// Bimodal: small acks and full-size data segments (TCP-like).
    Bimodal {
        /// Small packet size in bytes.
        small: u32,
        /// Large packet size in bytes.
        large: u32,
        /// Probability of drawing the small size.
        p_small: f64,
    },
}

impl SizeDist {
    /// The distribution's mean packet size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        match *self {
            SizeDist::Fixed(s) => f64::from(s),
            SizeDist::Uniform { min, max } => f64::from(min + max) / 2.0,
            SizeDist::Imix => (7.0 * 40.0 + 4.0 * 576.0 + 1500.0) / 12.0,
            SizeDist::Bimodal {
                small,
                large,
                p_small,
            } => f64::from(small) * p_small + f64::from(large) * (1.0 - p_small),
        }
    }
}

/// Arrival process of a flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Constant bit rate: equally spaced packets at the flow's mean rate.
    Cbr,
    /// Poisson arrivals at the flow's mean rate.
    Poisson,
    /// Markov-modulated on/off bursts: exponential on/off periods, CBR at
    /// `peak_factor ×` the mean rate while on. The long-run average still
    /// matches the flow's mean rate.
    OnOff {
        /// Mean duration of a burst, in seconds.
        on_mean_s: f64,
        /// Mean duration of a silence, in seconds.
        off_mean_s: f64,
    },
    /// Heavy-tailed on/off: burst durations are Pareto-distributed with
    /// the given shape (1 < α ≤ 2 gives the long-range-dependent,
    /// self-similar aggregate traffic observed on real links), silences
    /// exponential. Means are as given; the tail is what differs from
    /// [`ArrivalProcess::OnOff`].
    ParetoOnOff {
        /// Mean duration of a burst, in seconds.
        on_mean_s: f64,
        /// Mean duration of a silence, in seconds.
        off_mean_s: f64,
        /// Pareto shape parameter α (must exceed 1 for a finite mean).
        alpha: f64,
    },
}

/// Complete description of one traffic flow.
///
/// Built with a fluent API; see the [crate example](crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Flow identifier.
    pub id: FlowId,
    /// Scheduling weight (the WFQ φ of paper eq. (1)).
    pub weight: f64,
    /// Mean offered rate in bits per second.
    pub rate_bps: f64,
    /// Packet-size law.
    pub sizes: SizeDist,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// First possible arrival, in seconds.
    pub start_s: f64,
}

impl FlowSpec {
    /// A flow with the given weight and mean rate; defaults to fixed
    /// 500-byte packets arriving CBR from time zero.
    ///
    /// # Panics
    ///
    /// Panics if `weight` or `rate_bps` is not positive and finite.
    pub fn new(id: FlowId, weight: f64, rate_bps: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive and finite"
        );
        assert!(
            rate_bps > 0.0 && rate_bps.is_finite(),
            "rate must be positive and finite"
        );
        Self {
            id,
            weight,
            rate_bps,
            sizes: SizeDist::Fixed(500),
            arrivals: ArrivalProcess::Cbr,
            start_s: 0.0,
        }
    }

    /// Sets the packet-size law.
    pub fn size(mut self, sizes: SizeDist) -> Self {
        self.sizes = sizes;
        self
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Delays the flow's first arrival.
    pub fn starting_at(mut self, start_s: f64) -> Self {
        self.start_s = start_s;
        self
    }

    /// Mean packets per second implied by rate and size law.
    pub fn mean_pps(&self) -> f64 {
        self.rate_bps / (self.sizes.mean_bytes() * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sizes() {
        assert_eq!(SizeDist::Fixed(140).mean_bytes(), 140.0);
        assert_eq!(SizeDist::Uniform { min: 40, max: 1500 }.mean_bytes(), 770.0);
        let imix = SizeDist::Imix.mean_bytes();
        assert!((imix - 340.33).abs() < 0.01, "imix mean {imix}");
        let bi = SizeDist::Bimodal {
            small: 40,
            large: 1500,
            p_small: 0.5,
        };
        assert_eq!(bi.mean_bytes(), 770.0);
    }

    #[test]
    fn flow_builder_and_pps() {
        let f = FlowSpec::new(FlowId(1), 2.0, 1_000_000.0)
            .size(SizeDist::Fixed(1250))
            .arrivals(ArrivalProcess::Poisson)
            .starting_at(0.1);
        assert_eq!(f.start_s, 0.1);
        // 1 Mb/s at 10 kb per packet = 100 pps.
        assert!((f.mean_pps() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let _ = FlowSpec::new(FlowId(0), 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn negative_rate_rejected() {
        let _ = FlowSpec::new(FlowId(0), 1.0, -5.0);
    }
}
