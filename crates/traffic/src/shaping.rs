//! Token-bucket arrival envelopes.
//!
//! The QoS guarantees the paper's scheduler exists to deliver (§I-A:
//! "guarantees on throughput and worst case delay") are conditional on
//! sources being *shaped*: a flow constrained by a token bucket (σ, ρ) —
//! at most σ bits of burst on top of a long-run rate ρ — gets a hard
//! delay bound out of WFQ (Parekh–Gallager; see
//! `fairq::metrics::pgps_delay_bound`). This module checks conformance
//! and fits the tightest envelope to a trace.

use crate::packet::{FlowId, Packet};

/// A (σ, ρ) token bucket: `burst_bits` of depth refilled at `rate_bps`.
///
/// # Example
///
/// ```
/// use traffic::{FlowId, Packet, Time, TokenBucket};
///
/// let bucket = TokenBucket::new(8_000.0, 1_000.0); // 1 kb/s, 8 kb depth
/// let trace = vec![
///     Packet { flow: FlowId(0), size_bytes: 500, arrival: Time(0.0), seq: 0 },
///     Packet { flow: FlowId(0), size_bytes: 500, arrival: Time(1.0), seq: 1 },
/// ];
/// assert!(bucket.conforms(&trace, FlowId(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucket {
    burst_bits: f64,
    rate_bps: f64,
}

impl TokenBucket {
    /// Creates a bucket of `burst_bits` depth refilled at `rate_bps`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(burst_bits: f64, rate_bps: f64) -> Self {
        assert!(
            burst_bits > 0.0 && burst_bits.is_finite(),
            "burst must be positive and finite"
        );
        assert!(
            rate_bps > 0.0 && rate_bps.is_finite(),
            "rate must be positive and finite"
        );
        Self {
            burst_bits,
            rate_bps,
        }
    }

    /// Bucket depth σ in bits.
    pub fn burst_bits(&self) -> f64 {
        self.burst_bits
    }

    /// Refill rate ρ in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Whether `flow`'s packets in `trace` conform: every packet finds
    /// enough tokens at its arrival instant.
    pub fn conforms(&self, trace: &[Packet], flow: FlowId) -> bool {
        let mut tokens = self.burst_bits;
        let mut last = f64::NEG_INFINITY;
        for p in trace.iter().filter(|p| p.flow == flow) {
            let t = p.arrival.seconds();
            if last.is_finite() {
                tokens = (tokens + (t - last) * self.rate_bps).min(self.burst_bits);
            }
            last = t;
            tokens -= p.size_bits();
            if tokens < -1e-9 {
                return false;
            }
        }
        true
    }

    /// Fits the tightest bucket at `rate_bps` to `flow`'s packets in
    /// `trace`: the smallest σ for which the trace conforms.
    ///
    /// Returns `None` if the flow sends no packets.
    pub fn fit(trace: &[Packet], flow: FlowId, rate_bps: f64) -> Option<TokenBucket> {
        assert!(rate_bps > 0.0 && rate_bps.is_finite());
        // σ = max over packets of (bits sent through this packet) −
        //     ρ·(elapsed time) — the classic arrival-envelope deficit.
        let mut sent = 0.0f64;
        let mut sigma: f64 = 0.0;
        let mut first: Option<f64> = None;
        for p in trace.iter().filter(|p| p.flow == flow) {
            let t = p.arrival.seconds();
            let t0 = *first.get_or_insert(t);
            sent += p.size_bits();
            sigma = sigma.max(sent - rate_bps * (t - t0));
        }
        first.map(|_| TokenBucket::new(sigma.max(1.0), rate_bps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Time;

    fn pkt(seq: u64, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(0),
            size_bytes: bytes,
            arrival: Time(at),
            seq,
        }
    }

    #[test]
    fn steady_stream_conforms_at_its_rate() {
        // 1000 bits every 0.1 s = 10 kb/s.
        let trace: Vec<Packet> = (0..50).map(|i| pkt(i, i as f64 * 0.1, 125)).collect();
        assert!(TokenBucket::new(1000.0, 10_000.0).conforms(&trace, FlowId(0)));
        // At a lower refill rate the bucket runs dry.
        assert!(!TokenBucket::new(1000.0, 5_000.0).conforms(&trace, FlowId(0)));
    }

    #[test]
    fn burst_needs_depth() {
        // Five packets at once need 5 packets of depth.
        let trace: Vec<Packet> = (0..5).map(|i| pkt(i, 0.0, 125)).collect();
        assert!(TokenBucket::new(5000.0, 1000.0).conforms(&trace, FlowId(0)));
        assert!(!TokenBucket::new(4000.0, 1000.0).conforms(&trace, FlowId(0)));
    }

    #[test]
    fn fit_returns_the_tightest_conforming_bucket() {
        let trace: Vec<Packet> = (0..20)
            .map(|i| pkt(i, (i / 4) as f64 * 0.5, 250)) // bursts of 4
            .collect();
        let rate = 20_000.0;
        let bucket = TokenBucket::fit(&trace, FlowId(0), rate).unwrap();
        assert!(bucket.conforms(&trace, FlowId(0)));
        // Shrinking σ by any packet breaks conformance.
        let tighter = TokenBucket::new(bucket.burst_bits() - 2000.0, rate);
        assert!(!tighter.conforms(&trace, FlowId(0)));
    }

    #[test]
    fn fit_ignores_other_flows_and_handles_empty() {
        let trace = vec![Packet {
            flow: FlowId(3),
            size_bytes: 100,
            arrival: Time(0.0),
            seq: 0,
        }];
        assert!(TokenBucket::fit(&trace, FlowId(0), 1000.0).is_none());
        assert!(TokenBucket::fit(&trace, FlowId(3), 1000.0).is_some());
    }
}
