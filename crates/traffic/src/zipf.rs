//! Zipf-distributed flow popularity.
//!
//! Internet flow popularity is heavy-tailed: a few elephant flows carry
//! most packets while millions of mice barely speak. Campaign workloads
//! model that with a Zipf law — the probability of rank `k` out of `n`
//! proportional to `k^-s` — sampled by Hörmann and Derflinger's
//! rejection-inversion method, which needs no `O(n)` table and therefore
//! scales to the paper's 8 M-session populations with constant memory.
//! Sampling draws only from [`Rng`](crate::rng::Rng), so a seed fully
//! determines the sequence.

use crate::rng::Rng;

/// A Zipf(`n`, `s`) sampler over ranks `1..=n` by rejection inversion.
///
/// Exponent `s = 0` degenerates to the uniform distribution; `s ≈ 1` is
/// the classic web/flow popularity curve; larger `s` concentrates mass
/// on the head. Construction is `O(1)` and samples are `O(1)` expected,
/// independent of `n`.
///
/// # Example
///
/// ```
/// use traffic::{rng::Rng, Zipf};
///
/// let zipf = Zipf::new(1_000_000, 1.1);
/// let mut rng = Rng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&rank));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `1 - s`, the exponent of the integrated weight function.
    q: f64,
    h_x1: f64,
    h_n: f64,
    cutoff: f64,
}

impl Zipf {
    /// Creates a sampler over ranks `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "population must be positive");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let q = 1.0 - s;
        let h_x1 = h_integral(1.5, q) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, q);
        let cutoff = 2.0 - h_integral_inv(h_integral(2.5, q) - h(2.0, s), q);
        Self {
            n,
            s,
            q,
            h_x1,
            h_n,
            cutoff,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        loop {
            let u = self.h_n + rng.unit_f64() * (self.h_x1 - self.h_n);
            let x = h_integral_inv(u, self.q);
            let k = x.round().clamp(1.0, self.n as f64);
            // Accept k when x is within the squeeze around it, or by the
            // exact rejection test against the integrated weight.
            if (k - x).abs() <= self.cutoff || u >= h_integral(k + 0.5, self.q) - h(k, self.s) {
                return k as u64;
            }
        }
    }
}

/// The weight function `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// `H(x) = ∫ h`, normalized so `H` is continuous in the exponent:
/// `(x^q - 1)/q` for `q = 1 - s ≠ 0`, and `ln x` in the limit `q → 0`.
fn h_integral(x: f64, q: f64) -> f64 {
    let log_x = x.ln();
    if q.abs() > 1e-9 {
        ((q * log_x).exp() - 1.0) / q
    } else {
        log_x
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inv(y: f64, q: f64) -> f64 {
    if q.abs() > 1e-9 {
        // Guard the q < 0 branch against rounding pushing the base
        // non-positive for the largest representable y.
        ((1.0 + q * y).max(f64::MIN_POSITIVE).ln() / q).exp()
    } else {
        y.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(n: u64, s: f64, seed: u64, draws: usize) -> Vec<u64> {
        let zipf = Zipf::new(n, s);
        let mut rng = Rng::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            let k = zipf.sample(&mut rng);
            assert!((1..=n).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        counts
    }

    #[test]
    fn same_seed_same_sequence() {
        let zipf = Zipf::new(1 << 20, 1.2);
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..10_000 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
        let mut c = Rng::seed_from_u64(100);
        let differs = (0..100).any(|_| zipf.sample(&mut a) != zipf.sample(&mut c));
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let counts = histogram(8, 0.0, 5, 80_000);
        for (rank, &c) in counts.iter().enumerate() {
            // Each rank expects 10 000 draws; allow 5% slack.
            assert!(
                (9_500..=10_500).contains(&c),
                "rank {} count {c} far from uniform",
                rank + 1
            );
        }
    }

    #[test]
    fn head_mass_matches_the_zipf_law() {
        let n = 1000;
        let s = 1.0;
        let draws = 200_000;
        let counts = histogram(n, s, 11, draws);
        // Exact head probabilities from the normalization constant.
        let z: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        for k in [1usize, 2, 3, 10] {
            let expect = (k as f64).powf(-s) / z * draws as f64;
            let got = counts[k - 1] as f64;
            assert!(
                (got - expect).abs() < expect * 0.1 + 30.0,
                "rank {k}: got {got}, expected ~{expect:.0}"
            );
        }
        // Monotone head: rank 1 strictly dominates rank 2 dominates 10.
        assert!(counts[0] > counts[1] && counts[1] > counts[9]);
    }

    #[test]
    fn larger_exponent_concentrates_the_head() {
        let mild = histogram(100, 0.8, 3, 50_000);
        let steep = histogram(100, 1.6, 3, 50_000);
        assert!(
            steep[0] > mild[0],
            "steeper exponent must favor rank 1: {} vs {}",
            steep[0],
            mild[0]
        );
    }

    #[test]
    fn huge_population_samples_stay_in_range() {
        let zipf = Zipf::new(1 << 33, 1.05);
        let mut rng = Rng::seed_from_u64(1);
        let mut seen_large = false;
        for _ in 0..50_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=1 << 33).contains(&k));
            seen_large |= k > 1 << 20;
        }
        assert!(seen_large, "the tail should be reachable");
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be finite")]
    fn negative_exponent_rejected() {
        let _ = Zipf::new(10, -0.5);
    }
}
