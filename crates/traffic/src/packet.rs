//! Packet, flow, and time value types shared by the scheduling crates.

use std::fmt;

/// Identifier of a flow (the paper's "session" / virtual queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId(pub u32);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow {}", self.0)
    }
}

/// Simulation time in seconds.
///
/// A thin wrapper over `f64` that is totally ordered (the generators and
/// schedulers never produce NaN), so times can key ordered collections.
///
/// # Example
///
/// ```
/// use traffic::Time;
/// let a = Time(1.0);
/// assert!(a < Time(2.0));
/// assert_eq!(a + Time(0.5), Time(1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Time(pub f64);

impl Time {
    /// Time zero.
    pub const ZERO: Time = Time(0.0);

    /// The raw seconds value.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The larger of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::ops::Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

/// One IP packet as the scheduler sees it: a flow label, a length, and an
/// arrival instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// The flow (session) the packet belongs to.
    pub flow: FlowId,
    /// Packet length in bytes.
    pub size_bytes: u32,
    /// Arrival time at the scheduler.
    pub arrival: Time,
    /// Sequence number within the whole trace (stable identity).
    pub seq: u64,
}

impl Packet {
    /// Packet length in bits.
    pub fn size_bits(&self) -> f64 {
        f64::from(self.size_bytes) * 8.0
    }

    /// Transmission duration on a link of `rate_bps`.
    pub fn service_time(&self, rate_bps: f64) -> Time {
        Time(self.size_bits() / rate_bps)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pkt #{} ({} B, {} @ {})",
            self.seq, self.size_bytes, self.flow, self.arrival
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_and_arithmetic() {
        assert!(Time(1.0) < Time(1.5));
        assert_eq!(Time(1.0) + Time(2.0), Time(3.0));
        assert_eq!(Time(3.0) - Time(2.0), Time(1.0));
        assert_eq!(Time(1.0).max(Time(2.0)), Time(2.0));
        assert_eq!(Time(1.0).min(Time(2.0)), Time(1.0));
        assert_eq!(Time::ZERO.seconds(), 0.0);
    }

    #[test]
    fn packet_service_time() {
        let p = Packet {
            flow: FlowId(1),
            size_bytes: 1250,
            arrival: Time(0.0),
            seq: 0,
        };
        assert_eq!(p.size_bits(), 10_000.0);
        // 10 kb at 1 Mb/s = 10 ms.
        assert!((p.service_time(1e6).seconds() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(FlowId(3).to_string(), "flow 3");
        assert_eq!(Time(0.25).to_string(), "0.250000s");
    }

    #[test]
    fn times_sort_in_collections() {
        let mut v = vec![Time(3.0), Time(1.0), Time(2.0)];
        v.sort();
        assert_eq!(v, vec![Time(1.0), Time(2.0), Time(3.0)]);
    }
}
