//! Multi-port traffic: per-port flow sets and rates, merged into one
//! globally numbered arrival stream.
//!
//! The paper's circuit serves a single egress link; the sharded frontend
//! in the `scheduler` crate drives one sorter per output port. This
//! module supplies the matching workloads: each [`PortSpec`] describes
//! one port's link rate and flow population, and [`generate_multiport`]
//! renumbers the flows into one dense global id space, generates every
//! port's packets from independent seeded streams, and returns both the
//! per-port traces and the merged aggregate.
//!
//! # Example
//!
//! ```
//! use traffic::{generate_multiport, profiles, PortSpec};
//!
//! let ports = vec![
//!     PortSpec::new(1e9, profiles::voip(4)),
//!     PortSpec::new(1e8, profiles::bulk(2, 400_000.0)),
//! ];
//! let mp = generate_multiport(&ports, 0.1, 7);
//! assert_eq!(mp.per_port.len(), 2);
//! assert_eq!(mp.flows.len(), 6);
//! // Global flow ids are dense and the merged stream is arrival-sorted.
//! assert!(mp.merged.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

use crate::gen::generate;
use crate::packet::Packet;
use crate::spec::FlowSpec;

/// One output port's offered traffic: a link rate and the flows bound
/// for it (with ids local to the port, `0..flows.len()`).
#[derive(Debug, Clone)]
pub struct PortSpec {
    /// The port's egress link rate, bits per second.
    pub rate_bps: f64,
    /// Flows destined for this port (locally dense ids).
    pub flows: Vec<FlowSpec>,
}

impl PortSpec {
    /// A port of `rate_bps` carrying `flows` (ids must be the dense
    /// `0..flows.len()` the single-port generators produce).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite or the flow ids are
    /// not dense.
    pub fn new(rate_bps: f64, flows: Vec<FlowSpec>) -> Self {
        assert!(
            rate_bps > 0.0 && rate_bps.is_finite(),
            "rate must be positive and finite"
        );
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(
                f.id.0 as usize, i,
                "port flow ids must be dense (flow {} at index {i})",
                f.id.0
            );
        }
        Self { rate_bps, flows }
    }

    /// The port's offered load as a fraction of its link rate.
    pub fn offered_load(&self) -> f64 {
        self.flows.iter().map(|f| f.rate_bps).sum::<f64>() / self.rate_bps
    }
}

/// Builds one [`PortSpec`] per entry of `port_rates_bps`, each carrying
/// `flows_per_port` flows from [`crate::profiles::diverse_mix`] whose
/// combined offered load is `utilization` of **that port's** link rate —
/// a rate-weighted population: a 40 Gb/s uplink receives 40× the traffic
/// of a 1 Gb/s access port at the same utilization, so heterogeneous
/// frontends are stressed proportionally on every port.
///
/// # Panics
///
/// Panics if any rate is not positive and finite (see [`PortSpec::new`]),
/// `flows_per_port` is zero, or `utilization` is not in `(0, 1]`.
///
/// # Example
///
/// ```
/// use traffic::multiport::{generate_multiport, rate_weighted_ports};
///
/// let ports = rate_weighted_ports(&[4e7, 1e7], 4, 0.8);
/// assert!((ports[0].offered_load() - 0.8).abs() < 1e-9);
/// assert!((ports[1].offered_load() - 0.8).abs() < 1e-9);
/// // The fast port's flows offer 4x the slow port's bits.
/// let mp = generate_multiport(&ports, 0.1, 7);
/// assert!(!mp.is_empty());
/// ```
pub fn rate_weighted_ports(
    port_rates_bps: &[f64],
    flows_per_port: usize,
    utilization: f64,
) -> Vec<PortSpec> {
    assert!(flows_per_port > 0, "at least one flow per port required");
    assert!(
        utilization > 0.0 && utilization <= 1.0,
        "utilization must be in (0, 1], got {utilization}"
    );
    port_rates_bps
        .iter()
        .map(|&rate| {
            let per_flow = rate * utilization / flows_per_port as f64;
            let flows = crate::profiles::diverse_mix(
                u32::try_from(flows_per_port).expect("flow count fits u32"),
                per_flow,
            );
            PortSpec::new(rate, flows)
        })
        .collect()
}

/// The output of [`generate_multiport`].
#[derive(Debug, Clone)]
pub struct MultiPortTrace {
    /// All flows under their global dense ids.
    pub flows: Vec<FlowSpec>,
    /// Originating port of each global flow id.
    pub port_of_flow: Vec<usize>,
    /// Per-port traces: arrival-sorted, global flow ids, globally unique
    /// `seq`s (shared with [`MultiPortTrace::merged`]).
    pub per_port: Vec<Vec<Packet>>,
    /// All ports merged in arrival order; `seq` is dense in this order.
    pub merged: Vec<Packet>,
}

impl MultiPortTrace {
    /// Total packets across all ports.
    pub fn len(&self) -> usize {
        self.merged.len()
    }

    /// Whether no port produced any packet.
    pub fn is_empty(&self) -> bool {
        self.merged.is_empty()
    }

    /// Total bytes across all ports.
    pub fn total_bytes(&self) -> u64 {
        self.merged.iter().map(|p| u64::from(p.size_bytes)).sum()
    }
}

/// Generates every port's trace over `[0, horizon_s)`.
///
/// Flow ids are renumbered to one dense global space (port 0's flows
/// first, then port 1's, …), and each flow keeps an independent RNG
/// stream derived from `seed` and its *global* id — so adding a port
/// perturbs no existing port's packets, mirroring the single-port
/// generator's per-flow independence.
///
/// # Panics
///
/// Panics if `ports` is empty.
pub fn generate_multiport(ports: &[PortSpec], horizon_s: f64, seed: u64) -> MultiPortTrace {
    assert!(!ports.is_empty(), "at least one port required");
    let mut flows = Vec::new();
    let mut port_of_flow = Vec::new();
    let mut per_port = Vec::with_capacity(ports.len());
    for (port, spec) in ports.iter().enumerate() {
        // Renumber this port's flows into the global space.
        let base = flows.len() as u32;
        let global: Vec<FlowSpec> = spec
            .flows
            .iter()
            .map(|f| {
                let mut g = *f;
                g.id = crate::FlowId(base + f.id.0);
                g
            })
            .collect();
        // `generate` seeds per flow from the (now global) id, then
        // assigns seqs local to this call; seqs are rewritten below.
        let trace = generate(&global, horizon_s, seed);
        flows.extend(global);
        port_of_flow.extend(std::iter::repeat_n(port, spec.flows.len()));
        per_port.push(trace);
    }
    // One dense seq space across ports, assigned in merged arrival
    // order, then written back into the per-port views.
    let mut merged: Vec<Packet> = per_port.iter().flatten().copied().collect();
    merged.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.flow.0.cmp(&b.flow.0)));
    for (i, p) in merged.iter_mut().enumerate() {
        p.seq = i as u64;
    }
    let mut seq_of: std::collections::HashMap<(u32, u64), u64> = std::collections::HashMap::new();
    let mut counter: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for p in &merged {
        let k = counter.entry(p.flow.0).or_insert(0);
        seq_of.insert((p.flow.0, *k), p.seq);
        *k += 1;
    }
    for trace in &mut per_port {
        let mut local_counter: std::collections::HashMap<u32, u64> =
            std::collections::HashMap::new();
        for p in trace.iter_mut() {
            let k = local_counter.entry(p.flow.0).or_insert(0);
            p.seq = seq_of[&(p.flow.0, *k)];
            *k += 1;
        }
    }
    MultiPortTrace {
        flows,
        port_of_flow,
        per_port,
        merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profiles, FlowId};

    fn two_ports() -> Vec<PortSpec> {
        vec![
            PortSpec::new(1e7, profiles::diverse_mix(4, 600_000.0)),
            PortSpec::new(2e7, profiles::bulk(3, 900_000.0)),
        ]
    }

    #[test]
    fn global_ids_are_dense_and_port_tagged() {
        let mp = generate_multiport(&two_ports(), 0.2, 11);
        assert_eq!(mp.flows.len(), 7);
        for (i, f) in mp.flows.iter().enumerate() {
            assert_eq!(f.id, FlowId(i as u32));
        }
        assert_eq!(mp.port_of_flow, vec![0, 0, 0, 0, 1, 1, 1]);
        // Every packet's flow belongs to the port that carries it.
        for (port, trace) in mp.per_port.iter().enumerate() {
            assert!(!trace.is_empty(), "port {port} generated nothing");
            for p in trace {
                assert_eq!(mp.port_of_flow[p.flow.0 as usize], port);
            }
        }
    }

    #[test]
    fn merged_is_sorted_with_dense_seqs_matching_ports() {
        let mp = generate_multiport(&two_ports(), 0.2, 11);
        assert!(mp.merged.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for (i, p) in mp.merged.iter().enumerate() {
            assert_eq!(p.seq, i as u64);
        }
        // The per-port views are exactly a partition of the merged trace.
        let mut union: Vec<_> = mp.per_port.iter().flatten().copied().collect();
        union.sort_by_key(|p| p.seq);
        assert_eq!(union, mp.merged);
        assert_eq!(mp.len(), union.len());
        assert!(!mp.is_empty());
        assert!(mp.total_bytes() > 0);
    }

    #[test]
    fn adding_a_port_preserves_existing_packets() {
        let one = generate_multiport(&two_ports()[..1], 0.2, 11);
        let two = generate_multiport(&two_ports(), 0.2, 11);
        let first_port_sizes: Vec<(u32, f64, u32)> = two.per_port[0]
            .iter()
            .map(|p| (p.flow.0, p.arrival.seconds(), p.size_bytes))
            .collect();
        let solo_sizes: Vec<(u32, f64, u32)> = one
            .merged
            .iter()
            .map(|p| (p.flow.0, p.arrival.seconds(), p.size_bytes))
            .collect();
        assert_eq!(first_port_sizes, solo_sizes);
    }

    #[test]
    fn offered_load_reflects_flow_rates() {
        let p = PortSpec::new(1e6, profiles::voip(2));
        assert!(p.offered_load() > 0.0 && p.offered_load() < 1.0);
    }

    #[test]
    fn rate_weighted_ports_equalize_utilization() {
        let ports = rate_weighted_ports(&[4e9, 1e9, 1e8], 6, 0.75);
        assert_eq!(ports.len(), 3);
        for p in &ports {
            assert!((p.offered_load() - 0.75).abs() < 1e-9);
            assert_eq!(p.flows.len(), 6);
        }
        // Offered bits scale with the link: 4 Gb/s port carries 40x the
        // 100 Mb/s port's traffic.
        let bits = |p: &PortSpec| p.flows.iter().map(|f| f.rate_bps).sum::<f64>();
        assert!((bits(&ports[0]) / bits(&ports[2]) - 40.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn rate_weighted_ports_reject_overload() {
        let _ = rate_weighted_ports(&[1e9], 4, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn rate_weighted_ports_reject_empty_population() {
        let _ = rate_weighted_ports(&[1e9], 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_port_flow_ids_rejected() {
        let mut flows = profiles::voip(2);
        flows[1].id = FlowId(7);
        let _ = PortSpec::new(1e6, flows);
    }
}
