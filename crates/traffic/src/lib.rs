//! Deterministic synthetic IP traffic for scheduler experiments.
//!
//! The paper motivates its circuit with streaming workloads — VoIP and
//! IPTV shrink packets and tighten delay bounds (§I) — and argues that
//! the distribution of new finishing-tag values tracks the traffic
//! profile (Fig. 6: "streaming VoIP is likely to produce a distribution
//! weighted to the left, while a diverse mix of traffic will have a
//! classic bell curve"). This crate supplies the flows those experiments
//! need:
//!
//! * [`FlowSpec`] — per-flow weight, rate, packet-size law
//!   ([`SizeDist`]) and arrival process ([`ArrivalProcess`]);
//! * [`generate`] / [`generate_flow`] — seeded, reproducible packet
//!   traces merged across flows in arrival order;
//! * ready-made profiles ([`profiles`]) for VoIP, video, bulk TCP-like
//!   transfers, and the classic IMIX blend.
//!
//! All randomness flows from a caller-provided seed, so every experiment
//! in the bench harness is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use traffic::{ArrivalProcess, FlowId, FlowSpec, SizeDist, generate};
//!
//! let flows = vec![
//!     FlowSpec::new(FlowId(0), 4.0, 64_000.0)   // a weighted VoIP flow
//!         .size(SizeDist::Fixed(140))
//!         .arrivals(ArrivalProcess::Cbr),
//!     FlowSpec::new(FlowId(1), 1.0, 1_000_000.0) // bursty background
//!         .size(SizeDist::Imix)
//!         .arrivals(ArrivalProcess::Poisson),
//! ];
//! let trace = generate(&flows, 0.5, 42);
//! assert!(!trace.is_empty());
//! // Arrivals are merged in time order.
//! assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
pub mod multiport;
mod packet;
pub mod profiles;
pub mod rng;
mod scale;
mod shaping;
mod spec;
pub mod trace;
mod zipf;

pub use gen::{generate, generate_flow};
pub use multiport::{generate_multiport, rate_weighted_ports, MultiPortTrace, PortSpec};
pub use packet::{FlowId, Packet, Time};
pub use scale::{ChurnSpec, ScaleConfig, ScaleWorkload};
pub use shaping::TokenBucket;
pub use spec::{ArrivalProcess, FlowSpec, SizeDist};
pub use zipf::Zipf;
