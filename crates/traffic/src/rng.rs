//! The deterministic PRNG behind trace generation.
//!
//! Formerly this crate drew from `rand::rngs::StdRng`; the build
//! environment has no registry access, so generation now uses this small
//! xoshiro256++ generator seeded through SplitMix64 — the same
//! construction the xoshiro authors recommend. Quality is far beyond
//! what synthetic traffic sampling needs, and every stream remains fully
//! reproducible from its seed.

/// A seeded xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u32_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range");
        let span = u64::from(hi) - u64::from(lo) + 1;
        lo + (self.next_u64() % span) as u32
    }

    /// Uniform `u32` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "empty range");
        (self.next_u64() % u64::from(bound)) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `(0, 1]` — safe to feed through `ln`.
    pub fn positive_unit_f64(&mut self) -> f64 {
        1.0 - self.unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_hold_their_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.range_u32_inclusive(40, 1500);
            assert!((40..=1500).contains(&x));
            let y = r.below_u32(12);
            assert!(y < 12);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
            let p = r.positive_unit_f64();
            assert!(p > 0.0 && p <= 1.0);
        }
    }

    #[test]
    fn unit_f64_covers_the_interval() {
        let mut r = Rng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[(r.unit_f64() * 10.0) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!(*b > 700, "bucket {i} starved: {b}");
        }
    }
}
