//! The shard-placement brain: load watching and migration hints.

use std::fmt;
use std::str::FromStr;

/// How a sharded frontend places flows on ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Static flow-affinity hashing — today's behavior: a flow's port
    /// is a pure function of its id, forever.
    #[default]
    Hash,
    /// Hash-seeded ownership that a [`Rebalancer`] may revise at
    /// runtime by migrating flows between ports.
    Dynamic,
}

impl Placement {
    /// Stable lowercase name (CLI syntax and report lines).
    pub fn name(self) -> &'static str {
        match self {
            Placement::Hash => "hash",
            Placement::Dynamic => "dynamic",
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Placement {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "hash" => Ok(Placement::Hash),
            "dynamic" => Ok(Placement::Dynamic),
            other => Err(format!(
                "unknown placement {other:?} (expected hash or dynamic)"
            )),
        }
    }
}

/// One observation round's load figures for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardLoad {
    /// Packets that arrived at the shard since the last observation.
    pub arrivals: u64,
    /// Packets currently queued at the shard (buffer occupancy).
    pub backlog: u64,
}

/// Tuning for the [`Rebalancer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancerConfig {
    /// EWMA smoothing factor for arrival rates, in (0, 1]; higher
    /// weighs the latest round more.
    pub alpha: f64,
    /// Migration trigger: the hottest shard's load score must exceed
    /// `imbalance ×` the mean score. Must be > 1.
    pub imbalance: f64,
    /// Observation rounds to sit out after issuing a hint, letting the
    /// migration land before re-measuring (migration has a cost; this
    /// is the knob that bounds it).
    pub cooldown_rounds: u32,
}

impl Default for RebalancerConfig {
    fn default() -> Self {
        Self {
            alpha: 0.3,
            imbalance: 1.5,
            cooldown_rounds: 2,
        }
    }
}

/// A migration suggestion: move load off `from`, onto `to`.
///
/// The rebalancer picks shards; the frontend picks *which flow* (it
/// knows per-flow arrival counts, the rebalancer deliberately does
/// not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceHint {
    /// The overloaded source shard.
    pub from: usize,
    /// The most lightly loaded destination shard.
    pub to: usize,
}

/// Watches per-shard load and emits [`RebalanceHint`]s.
///
/// Load is scored as `EWMA(arrivals) + backlog`: the EWMA tracks where
/// traffic is *going*, the backlog where it already *piled up* — a
/// flash crowd trips the arrival term before queues grow, a legacy
/// imbalance trips the backlog term even after arrivals even out.
/// Everything is integer-fed and seeded by construction, so identical
/// observation sequences produce identical hint sequences.
///
/// # Example
///
/// ```
/// use statesync::{Rebalancer, RebalancerConfig, ShardLoad};
///
/// let mut r = Rebalancer::new(2, RebalancerConfig::default());
/// let hot = ShardLoad { arrivals: 900, backlog: 50 };
/// let cold = ShardLoad { arrivals: 10, backlog: 0 };
/// let hint = r.observe(&[hot, cold]).expect("a 90x skew trips at once");
/// assert_eq!((hint.from, hint.to), (0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Rebalancer {
    cfg: RebalancerConfig,
    ewma: Vec<f64>,
    cooldown: u32,
    hints: u64,
    rounds: u64,
}

impl Rebalancer {
    /// A rebalancer over `ports` shards.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero or the config is out of range.
    pub fn new(ports: usize, cfg: RebalancerConfig) -> Self {
        assert!(ports > 0, "at least one shard required");
        assert!(
            cfg.alpha > 0.0 && cfg.alpha <= 1.0,
            "alpha must be in (0, 1], got {}",
            cfg.alpha
        );
        assert!(
            cfg.imbalance > 1.0 && cfg.imbalance.is_finite(),
            "imbalance trigger must exceed 1, got {}",
            cfg.imbalance
        );
        Self {
            cfg,
            ewma: vec![0.0; ports],
            cooldown: 0,
            hints: 0,
            rounds: 0,
        }
    }

    /// Feeds one observation round; returns a hint when one shard runs
    /// hot enough (and the cooldown from the previous hint has
    /// elapsed).
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not cover every shard.
    pub fn observe(&mut self, loads: &[ShardLoad]) -> Option<RebalanceHint> {
        assert_eq!(
            loads.len(),
            self.ewma.len(),
            "one load figure per shard required"
        );
        self.rounds += 1;
        for (ewma, load) in self.ewma.iter_mut().zip(loads) {
            *ewma += self.cfg.alpha * (load.arrivals as f64 - *ewma);
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let score = |i: usize| -> f64 { self.ewma[i] + loads[i].backlog as f64 };
        let mut hot = 0;
        let mut cold = 0;
        let mut total = 0.0;
        for i in 0..self.ewma.len() {
            let s = score(i);
            total += s;
            if s > score(hot) {
                hot = i;
            }
            if s < score(cold) {
                cold = i;
            }
        }
        let mean = total / self.ewma.len() as f64;
        if hot == cold || mean <= 0.0 || score(hot) <= self.cfg.imbalance * mean {
            return None;
        }
        self.cooldown = self.cfg.cooldown_rounds;
        self.hints += 1;
        Some(RebalanceHint {
            from: hot,
            to: cold,
        })
    }

    /// Hints issued so far.
    pub fn hints(&self) -> u64 {
        self.hints
    }

    /// Observation rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(arrivals: u64, backlog: u64) -> ShardLoad {
        ShardLoad { arrivals, backlog }
    }

    #[test]
    fn placement_parses_and_names() {
        for p in [Placement::Hash, Placement::Dynamic] {
            assert_eq!(p.name().parse::<Placement>().unwrap(), p);
        }
        assert_eq!(Placement::default(), Placement::Hash);
        assert!("zipf".parse::<Placement>().is_err());
    }

    #[test]
    fn balanced_load_never_trips() {
        let mut r = Rebalancer::new(4, RebalancerConfig::default());
        for _ in 0..50 {
            assert_eq!(r.observe(&[load(100, 5); 4]), None);
        }
        assert_eq!(r.hints(), 0);
        assert_eq!(r.rounds(), 50);
    }

    #[test]
    fn idle_system_never_trips() {
        let mut r = Rebalancer::new(2, RebalancerConfig::default());
        for _ in 0..10 {
            assert_eq!(r.observe(&[load(0, 0); 2]), None);
        }
    }

    #[test]
    fn skew_trips_from_hot_to_coldest() {
        let mut r = Rebalancer::new(4, RebalancerConfig::default());
        let loads = [load(10, 0), load(800, 40), load(20, 0), load(5, 0)];
        let mut hint = None;
        for _ in 0..10 {
            if let Some(h) = r.observe(&loads) {
                hint = Some(h);
                break;
            }
        }
        let hint = hint.expect("persistent 40x skew must trip");
        assert_eq!((hint.from, hint.to), (1, 3));
    }

    #[test]
    fn backlog_alone_trips_even_with_even_arrivals() {
        let mut r = Rebalancer::new(2, RebalancerConfig::default());
        let loads = [load(50, 900), load(50, 0)];
        let hint = (0..10).find_map(|_| r.observe(&loads));
        assert_eq!(hint, Some(RebalanceHint { from: 0, to: 1 }));
    }

    #[test]
    fn cooldown_spaces_hints() {
        let cfg = RebalancerConfig {
            cooldown_rounds: 3,
            ..RebalancerConfig::default()
        };
        let mut r = Rebalancer::new(2, cfg);
        let loads = [load(1000, 100), load(1, 0)];
        let mut gaps = Vec::new();
        let mut last = None;
        for round in 0..20 {
            if r.observe(&loads).is_some() {
                if let Some(prev) = last {
                    gaps.push(round - prev);
                }
                last = Some(round);
            }
        }
        assert!(!gaps.is_empty(), "skew must keep tripping");
        assert!(
            gaps.iter().all(|&g| g > 3),
            "hints inside the cooldown window: gaps {gaps:?}"
        );
    }

    #[test]
    fn determinism_identical_feeds_identical_hints() {
        let run = || {
            let mut r = Rebalancer::new(3, RebalancerConfig::default());
            let mut out = Vec::new();
            for i in 0..30u64 {
                let loads = [load(i * 37 % 500, i % 7), load(400, 30), load(3, 0)];
                out.push(r.observe(&loads));
            }
            (out, r.hints())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "one load figure per shard")]
    fn wrong_arity_is_rejected() {
        Rebalancer::new(3, RebalancerConfig::default()).observe(&[load(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "imbalance trigger")]
    fn degenerate_trigger_is_rejected() {
        let cfg = RebalancerConfig {
            imbalance: 1.0,
            ..RebalancerConfig::default()
        };
        let _ = Rebalancer::new(2, cfg);
    }
}
