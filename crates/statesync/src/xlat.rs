//! Cross-shard virtual-clock translation.

use fairq::VirtualTime;

/// Maps one shard's virtual-time axis onto another's.
///
/// Every shard runs its own GPS virtual clock, so "finish at V=4000" on
/// the source shard means nothing to the destination — V=4000 there may
/// be the distant past (its clock ran ahead) or the far future. What
/// *is* transferable is the offset above the source's rank floor: how
/// far ahead of "everything already served here" a rank sits. The
/// translation re-anchors that offset on the destination's floor:
///
/// ```text
/// translate(v) = dst_floor + max(0, v − src_floor)
/// ```
///
/// Three properties make migrated ranks safe, each pinned by proptest:
///
/// * **order-preserving** — `a <= b` implies
///   `translate(a) <= translate(b)`, so a flow's packets keep their
///   relative service order across the move;
/// * **floor-respecting** — the output never precedes the
///   destination's rank floor, so the destination's quantizer (whose
///   virtual-time base never runs backwards) and its wrap window both
///   stay valid — this is what makes the map wrap-safe; and
/// * **anchored** — the source floor maps exactly onto the destination
///   floor, so a flow with no queued backlog restarts at the
///   destination as if it had just gone idle there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VClockXlat {
    src_floor: f64,
    dst_floor: f64,
}

impl VClockXlat {
    /// A translation from the shard whose rank floor is `src_floor`
    /// onto the shard whose rank floor is `dst_floor`.
    ///
    /// # Panics
    ///
    /// Panics if either floor is non-finite.
    pub fn new(src_floor: VirtualTime, dst_floor: VirtualTime) -> Self {
        assert!(
            src_floor.value().is_finite() && dst_floor.value().is_finite(),
            "rank floors must be finite: src {src_floor}, dst {dst_floor}"
        );
        Self {
            src_floor: src_floor.value(),
            dst_floor: dst_floor.value(),
        }
    }

    /// The identity translation (checkpoint restore onto the same
    /// clock, or a migration between shards whose clocks happen to
    /// agree at zero).
    pub fn identity() -> Self {
        Self {
            src_floor: 0.0,
            dst_floor: 0.0,
        }
    }

    /// The source-shard rank floor this translation is anchored at.
    pub fn src_floor(&self) -> VirtualTime {
        VirtualTime(self.src_floor)
    }

    /// The destination-shard rank floor ranks are re-anchored onto.
    pub fn dst_floor(&self) -> VirtualTime {
        VirtualTime(self.dst_floor)
    }

    /// Translates one source-shard virtual time onto the destination's
    /// axis (see the type-level contract).
    pub fn translate(&self, v: VirtualTime) -> VirtualTime {
        VirtualTime(self.dst_floor + (v.value() - self.src_floor).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn anchors_the_source_floor_on_the_destination_floor() {
        let x = VClockXlat::new(VirtualTime(100.0), VirtualTime(7000.0));
        assert_eq!(x.translate(VirtualTime(100.0)), VirtualTime(7000.0));
        // Below-floor stragglers (a rank already served at the source)
        // clamp to the destination floor rather than its past.
        assert_eq!(x.translate(VirtualTime(40.0)), VirtualTime(7000.0));
        assert_eq!(x.translate(VirtualTime(160.0)), VirtualTime(7060.0));
        assert_eq!(x.src_floor(), VirtualTime(100.0));
        assert_eq!(x.dst_floor(), VirtualTime(7000.0));
    }

    #[test]
    fn identity_is_the_zero_anchor() {
        let x = VClockXlat::identity();
        assert_eq!(x.translate(VirtualTime(123.5)), VirtualTime(123.5));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_floors_are_rejected() {
        let _ = VClockXlat::new(VirtualTime(f64::NAN), VirtualTime(0.0));
    }

    proptest! {
        #[test]
        fn order_preserving(
            src in -1e12f64..1e12,
            dst in -1e12f64..1e12,
            a in -1e12f64..1e12,
            b in -1e12f64..1e12,
        ) {
            let x = VClockXlat::new(VirtualTime(src), VirtualTime(dst));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                x.translate(VirtualTime(lo)) <= x.translate(VirtualTime(hi)),
                "order inverted: {lo} -> {}, {hi} -> {}",
                x.translate(VirtualTime(lo)),
                x.translate(VirtualTime(hi)),
            );
        }

        #[test]
        fn floor_respecting(
            src in -1e12f64..1e12,
            dst in -1e12f64..1e12,
            v in -1e12f64..1e12,
        ) {
            let x = VClockXlat::new(VirtualTime(src), VirtualTime(dst));
            prop_assert!(
                x.translate(VirtualTime(v)) >= VirtualTime(dst),
                "translated {v} below destination floor {dst}"
            );
        }

        #[test]
        fn offsets_above_the_floor_are_preserved_exactly(
            src in -1e9f64..1e9,
            dst in -1e9f64..1e9,
            off in 0.0f64..1e9,
        ) {
            // The transferable quantity *is* the offset above the
            // floor: whatever headroom a rank had at the source, it has
            // at the destination (exact for representable sums).
            let x = VClockXlat::new(VirtualTime(src), VirtualTime(dst));
            let got = x.translate(VirtualTime(src + off));
            prop_assert_eq!(got, VirtualTime(dst + (src + off - src)));
        }
    }
}
