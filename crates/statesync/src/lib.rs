//! Live state management for the scheduler stack.
//!
//! Software packet schedulers only earn their flexibility if their state
//! can move at runtime (Eiffel, NSDI '19): per-flow virtual clocks,
//! in-flight tags, and buffer descriptors must be *extractable*,
//! *translatable*, and *re-installable* while the dataplane keeps
//! serving. This crate holds the three scheduler-agnostic pieces:
//!
//! * [`Checkpoint`] — a deterministic, versioned, CRC-sealed word-stream
//!   format for full scheduler state. The scheduler crate serializes
//!   into it ([`CheckpointBuilder`]) and restores from it
//!   ([`CheckpointReader`]); identical scheduler states produce
//!   byte-identical checkpoints. Checkpoint words are a
//!   [`faultsim::FaultTarget`], so SEU campaigns can strike a
//!   checkpoint in flight — the CRC catches the damage at restore time.
//! * [`VClockXlat`] — the cross-shard virtual-clock reconciliation the
//!   ROADMAP carried since PR 1: an order-preserving, floor-respecting
//!   affine map from one shard's virtual-time axis onto another's, so a
//!   migrated flow's ranks stay meaningful at the destination.
//! * [`Rebalancer`] — the placement brain: per-shard arrival-rate EWMA
//!   plus instantaneous backlog, emitting migration hints when one
//!   shard runs hot. [`Placement`] switches a sharded frontend between
//!   today's static flow-affinity `hash` mode and the `dynamic` mode
//!   that acts on those hints.
//!
//! The crate deliberately knows nothing about sorters or schedulers —
//! it speaks words, virtual times, and shard indices. The scheduler
//! crate owns the other half of the protocol (what the words mean, how
//! an extracted flow is re-enqueued).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod rebalance;
mod xlat;

pub use checkpoint::{Checkpoint, CheckpointBuilder, CheckpointError, CheckpointReader, VERSION};
pub use rebalance::{Placement, RebalanceHint, Rebalancer, RebalancerConfig, ShardLoad};
pub use xlat::VClockXlat;
