//! The versioned checkpoint word-stream format.
//!
//! A checkpoint is a flat `Vec<u64>`: a magic word, a format version, a
//! payload length, the payload, and a trailing CRC over everything
//! before it. Flat words keep the format trivially deterministic (no
//! maps, no padding, no endianness games — the words *are* the
//! canonical encoding; byte serialization is little-endian word dump),
//! diffable in tests, and addressable by the fault injector.

use std::error::Error;
use std::fmt;

use faultsim::FaultTarget;

/// First word of every checkpoint: "WFQCKPT" packed into a u64.
const MAGIC: u64 = 0x5746_5143_4b50_5431;

/// Current checkpoint format version. Bump on any layout change; old
/// versions are refused at restore, never reinterpreted.
pub const VERSION: u64 = 1;

/// Header words before the payload (magic, version, payload length).
const HEADER_WORDS: usize = 3;

/// Why a checkpoint could not be read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The first word is not the checkpoint magic.
    BadMagic {
        /// The word found where the magic belongs.
        found: u64,
    },
    /// The format version is not [`VERSION`].
    BadVersion {
        /// The version the checkpoint claims.
        found: u64,
    },
    /// The word stream is shorter than its header promises.
    Truncated {
        /// Words expected (header + payload + CRC).
        expected: usize,
        /// Words present.
        found: usize,
    },
    /// The trailing CRC does not match the words before it — the
    /// checkpoint was corrupted (or faulted) in flight.
    Corrupt {
        /// CRC recomputed over the stored words.
        expected: u64,
        /// CRC word actually stored.
        found: u64,
    },
    /// A reader ran past the end of the payload — the payload is valid
    /// but does not contain what the caller tried to decode.
    Exhausted,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint (leading word {found:#x})")
            }
            CheckpointError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {VERSION})"
                )
            }
            CheckpointError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated checkpoint: {found} words, header promises {expected}"
                )
            }
            CheckpointError::Corrupt { expected, found } => {
                write!(
                    f,
                    "checkpoint CRC mismatch: stored {found:#x}, computed {expected:#x}"
                )
            }
            CheckpointError::Exhausted => f.write_str("checkpoint payload exhausted"),
        }
    }
}

impl Error for CheckpointError {}

/// FNV-1a over the little-endian bytes of `words` — the same hash the
/// campaign runner pins departure sequences with, reused as the
/// checkpoint seal.
fn crc(words: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

/// Serializes scheduler state into checkpoint words.
///
/// # Example
///
/// ```
/// use statesync::{Checkpoint, CheckpointBuilder};
///
/// let mut b = CheckpointBuilder::new();
/// b.word(7);
/// b.float(1.5);
/// let ckpt = b.finish();
/// let mut r = ckpt.reader().unwrap();
/// assert_eq!(r.word().unwrap(), 7);
/// assert_eq!(r.float().unwrap(), 1.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CheckpointBuilder {
    payload: Vec<u64>,
}

impl CheckpointBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one raw word.
    pub fn word(&mut self, w: u64) {
        self.payload.push(w);
    }

    /// Appends a float as its IEEE-754 bit pattern (exact round trip).
    pub fn float(&mut self, f: f64) {
        self.payload.push(f.to_bits());
    }

    /// Appends a length-prefixed word slice.
    pub fn slice(&mut self, ws: &[u64]) {
        self.payload.push(ws.len() as u64);
        self.payload.extend_from_slice(ws);
    }

    /// Seals the payload into a checkpoint (header + payload + CRC).
    pub fn finish(self) -> Checkpoint {
        let mut words = Vec::with_capacity(HEADER_WORDS + self.payload.len() + 1);
        words.push(MAGIC);
        words.push(VERSION);
        words.push(self.payload.len() as u64);
        words.extend_from_slice(&self.payload);
        words.push(crc(&words));
        Checkpoint { words }
    }
}

/// A sealed checkpoint: the canonical word stream of one scheduler's
/// full state at one instant.
///
/// Two checkpoints of identical logical state compare equal word for
/// word — the byte-diff determinism gate in CI rests on exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    words: Vec<u64>,
}

impl Checkpoint {
    /// Rewraps raw words (a file load, a channel transfer) without
    /// validation; [`Checkpoint::verify`] or [`Checkpoint::reader`]
    /// validate on use.
    pub fn from_words(words: Vec<u64>) -> Self {
        Self { words }
    }

    /// The canonical word stream, header and CRC included.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Size of the canonical little-endian byte encoding.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 8
    }

    /// The canonical little-endian byte encoding (what a byte-diff gate
    /// compares).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Checks magic, version, length, and CRC.
    ///
    /// # Errors
    ///
    /// The first [`CheckpointError`] found, in that order.
    pub fn verify(&self) -> Result<(), CheckpointError> {
        let Some(&magic) = self.words.first() else {
            return Err(CheckpointError::Truncated {
                expected: HEADER_WORDS + 1,
                found: 0,
            });
        };
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        if self.words.len() < HEADER_WORDS {
            return Err(CheckpointError::Truncated {
                expected: HEADER_WORDS + 1,
                found: self.words.len(),
            });
        }
        if self.words[1] != VERSION {
            return Err(CheckpointError::BadVersion {
                found: self.words[1],
            });
        }
        let expected = HEADER_WORDS + self.words[2] as usize + 1;
        if self.words.len() != expected {
            return Err(CheckpointError::Truncated {
                expected,
                found: self.words.len(),
            });
        }
        let body = &self.words[..self.words.len() - 1];
        let stored = *self.words.last().expect("non-empty");
        let computed = crc(body);
        if stored != computed {
            return Err(CheckpointError::Corrupt {
                expected: computed,
                found: stored,
            });
        }
        Ok(())
    }

    /// Verifies the checkpoint and opens a payload reader.
    ///
    /// # Errors
    ///
    /// As for [`Checkpoint::verify`].
    pub fn reader(&self) -> Result<CheckpointReader<'_>, CheckpointError> {
        self.verify()?;
        let payload_len = self.words[2] as usize;
        Ok(CheckpointReader {
            payload: &self.words[HEADER_WORDS..HEADER_WORDS + payload_len],
            pos: 0,
        })
    }
}

/// Checkpoint words are themselves corruptible state: a checkpoint held
/// for restore (or shipped between shards) can take an SEU like any
/// SRAM. Flips land anywhere in the stream — payload, header, or the
/// CRC word itself — and every case surfaces as a structured
/// [`CheckpointError`] at restore time instead of silently restoring
/// the wrong schedule.
impl FaultTarget for Checkpoint {
    fn fault_words(&self) -> usize {
        self.words.len()
    }

    fn fault_word_bits(&self, _word: usize) -> u32 {
        64
    }

    fn inject_fault(&mut self, word: usize, mask: u64) -> u64 {
        let old = self.words[word];
        self.words[word] ^= mask;
        old
    }
}

/// Sequential decoder over a verified checkpoint payload.
#[derive(Debug, Clone)]
pub struct CheckpointReader<'a> {
    payload: &'a [u64],
    pos: usize,
}

impl CheckpointReader<'_> {
    /// Reads one raw word.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Exhausted`] past the payload end.
    pub fn word(&mut self) -> Result<u64, CheckpointError> {
        let w = self
            .payload
            .get(self.pos)
            .copied()
            .ok_or(CheckpointError::Exhausted)?;
        self.pos += 1;
        Ok(w)
    }

    /// Reads a float stored by [`CheckpointBuilder::float`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Exhausted`] past the payload end.
    pub fn float(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.word()?))
    }

    /// Reads a slice stored by [`CheckpointBuilder::slice`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Exhausted`] if the prefix or body overruns.
    pub fn slice(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let len = self.word()? as usize;
        if self.pos + len > self.payload.len() {
            return Err(CheckpointError::Exhausted);
        }
        let out = self.payload[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(out)
    }

    /// Words left unread.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut b = CheckpointBuilder::new();
        b.word(42);
        b.float(-0.125);
        b.slice(&[1, 2, 3]);
        b.finish()
    }

    #[test]
    fn round_trips_words_floats_and_slices() {
        let ckpt = sample();
        ckpt.verify().unwrap();
        let mut r = ckpt.reader().unwrap();
        assert_eq!(r.word().unwrap(), 42);
        assert_eq!(r.float().unwrap(), -0.125);
        assert_eq!(r.slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.word(), Err(CheckpointError::Exhausted));
    }

    #[test]
    fn identical_payloads_are_byte_identical() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
        assert_eq!(sample().byte_len(), sample().words().len() * 8);
    }

    #[test]
    fn distinct_payloads_differ() {
        let mut b = CheckpointBuilder::new();
        b.word(43);
        b.float(-0.125);
        b.slice(&[1, 2, 3]);
        assert_ne!(b.finish(), sample());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // The fault-injection contract: no SEU on a checkpoint word may
        // survive verification, wherever it lands — payload, length,
        // version, magic, or the CRC word itself.
        let reference = sample();
        for word in 0..reference.fault_words() {
            for bit in [0u32, 17, 63] {
                let mut hit = reference.clone();
                let old = hit.inject_fault(word, 1u64 << bit);
                assert_eq!(old, reference.words()[word]);
                assert!(
                    hit.verify().is_err(),
                    "flip of word {word} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_and_foreign_data_are_refused() {
        let mut words = sample().words().to_vec();
        words.pop();
        assert!(matches!(
            Checkpoint::from_words(words).verify(),
            Err(CheckpointError::Truncated { .. })
        ));
        assert!(matches!(
            Checkpoint::from_words(vec![0xdead_beef, 1, 0, 0]).verify(),
            Err(CheckpointError::BadMagic { .. })
        ));
        assert!(matches!(
            Checkpoint::from_words(Vec::new()).verify(),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn future_versions_are_refused_not_reinterpreted() {
        let mut words = sample().words().to_vec();
        words[1] = VERSION + 1;
        // Re-seal so only the version check can object.
        let last = words.len() - 1;
        words[last] = crc(&words[..last]);
        assert_eq!(
            Checkpoint::from_words(words).verify(),
            Err(CheckpointError::BadVersion { found: VERSION + 1 })
        );
    }

    #[test]
    fn slice_overrun_is_exhausted_not_panic() {
        let mut b = CheckpointBuilder::new();
        b.word(100); // claims a 100-word slice that is not there
        let ckpt = b.finish();
        let mut r = ckpt.reader().unwrap();
        assert_eq!(r.slice(), Err(CheckpointError::Exhausted));
    }
}
