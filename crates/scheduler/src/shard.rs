//! Sharded multi-port egress frontend.
//!
//! The paper's circuit sorts tags for **one** egress link. A line card,
//! though, serves many output ports, and the natural way to scale the
//! design is the one §IV's scalability argument invites: replicate the
//! sort/retrieve circuit per port and keep each flow's tags inside one
//! sorter, so the per-flow FIFO order that WFQ tag arithmetic assumes is
//! never split across sorters.
//!
//! [`ShardedScheduler`] instantiates one independent [`HwScheduler`] per
//! output port and routes arriving packets by **flow affinity**:
//! [`shard_of`] is a pure hash of the flow id, so a flow's packets always
//! meet the same shard, in order, regardless of when the router looks at
//! them. On the service side, [`ShardedScheduler::dequeue`] drives a
//! work-conserving round-robin across ports — it never reports an idle
//! frontend while any shard holds a packet.
//!
//! Each shard keeps the fixed four-cycle-per-packet slot of the single
//! circuit, so the frontend's *modeled* aggregate throughput scales
//! linearly with the port count ([`ShardStats::modeled_packets_per_second`]):
//! N ports sustain N × 35.8 Mpps at the paper's 143.2 MHz clock.
//!
//! Ports need not share one link rate:
//! [`ShardedScheduler::with_port_rates`] gives every port its own rate,
//! which drives that shard's WFQ virtual clock and [`ShardedLinkSim`]'s
//! per-port service times. And the whole frontend runs with one OS
//! worker thread per port — same semantics, real concurrency — as
//! [`parallel::ParallelShardedScheduler`].
//!
//! # Example
//!
//! ```
//! use scheduler::{SchedulerConfig, ShardedScheduler};
//! use traffic::{FlowId, FlowSpec, Packet, Time};
//!
//! # fn main() -> Result<(), scheduler::ShardError> {
//! let flows: Vec<FlowSpec> = (0..8)
//!     .map(|i| FlowSpec::new(FlowId(i), 1.0, 1e6))
//!     .collect();
//! let mut fe = ShardedScheduler::new(&flows, 10e9, 2, SchedulerConfig::default());
//! fe.enqueue(Packet { flow: FlowId(3), size_bytes: 140, arrival: Time(0.0), seq: 0 })?;
//! let (port, pkt) = fe.dequeue().expect("backlogged");
//! assert_eq!(pkt.flow, FlowId(3));
//! assert_eq!(port, fe.port_of(FlowId(3)).unwrap());
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use fairq::{Departure, RankPolicy, WfqRank};
use statesync::{Placement, Rebalancer, RebalancerConfig, ShardLoad};
use tagsort::{CircuitStats, SortBackend, SortRetrieveCircuit};
use telemetry::{Counter, EventKind, LatencyTracker, Snapshot, Telemetry, Tracer};
use traffic::{FlowId, FlowSpec, Packet, Time};

use crate::egress::DropPolicy;
use crate::hwsched::{HwScheduler, SchedulerConfig, SchedulerError, SchedulerStats, SojournStamp};

pub mod parallel;

/// The output port a flow is pinned to, as a pure function of the flow
/// id and the port count.
///
/// A SplitMix64-style finalizer whitens the id before the modulo, so
/// consecutive flow ids spread across ports instead of striping. Because
/// the mapping depends on nothing else — no table, no arrival history —
/// recomputing it anywhere (router, tests, post-run analysis) always
/// yields the same answer.
///
/// # Panics
///
/// Panics if `ports` is zero.
pub fn shard_of(flow: FlowId, ports: usize) -> usize {
    assert!(ports > 0, "at least one port required");
    let mut z = u64::from(flow.0).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % ports as u64) as usize
}

/// The live flow → port ownership table shared by the sequential and
/// parallel frontends — one source of truth for every routing decision,
/// including enqueues that race an in-flight migration.
///
/// Under [`Placement::Hash`] the table is exactly [`shard_of`] and never
/// changes. Under [`Placement::Dynamic`] it starts as [`shard_of`] and
/// is rewritten as flows migrate between ports.
#[derive(Debug, Clone)]
pub struct ShardMap {
    ports: usize,
    placement: Placement,
    /// Global flow id → owning port.
    owner: Vec<u32>,
    /// A migration the frontend has begun but not yet committed:
    /// `(flow, from, to)`. Enqueues landing in this window route to the
    /// **new** owner — the frontends send the install ahead of any
    /// later arrival, so FIFO delivery keeps per-flow order intact.
    in_flight: Option<(u32, u32, u32)>,
}

impl ShardMap {
    /// Builds the initial map: every flow owned by its [`shard_of`]
    /// port, regardless of placement mode.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(flows: usize, ports: usize, placement: Placement) -> Self {
        assert!(ports > 0, "at least one port required");
        Self {
            ports,
            placement,
            owner: (0..flows)
                .map(|f| shard_of(FlowId(f as u32), ports) as u32)
                .collect(),
            in_flight: None,
        }
    }

    /// The placement mode the map was built with.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Number of output ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of configured flows.
    pub fn flows(&self) -> usize {
        self.owner.len()
    }

    /// The port currently owning `flow`, or `None` for an unknown flow.
    /// A flow whose migration is in flight already answers with its
    /// **destination** port.
    pub fn port_of(&self, flow: FlowId) -> Option<usize> {
        if let Some((f, _, to)) = self.in_flight {
            if f == flow.0 {
                return Some(to as usize);
            }
        }
        self.owner.get(flow.0 as usize).map(|&p| p as usize)
    }

    /// Opens a migration window: subsequent [`ShardMap::port_of`] calls
    /// for `flow` answer `to` while the backlog is still moving. Returns
    /// the current owner.
    ///
    /// # Panics
    ///
    /// Panics under [`Placement::Hash`] (the hash map is immutable), if
    /// another migration is already in flight, or if `flow`/`to` are out
    /// of range.
    pub fn begin_migration(&mut self, flow: FlowId, to: usize) -> usize {
        assert_eq!(
            self.placement,
            Placement::Dynamic,
            "flow migration requires Placement::Dynamic"
        );
        assert!(self.in_flight.is_none(), "a migration is already in flight");
        assert!(
            to < self.ports,
            "port {to} out of range ({} ports)",
            self.ports
        );
        let from = self.owner[flow.0 as usize];
        self.in_flight = Some((flow.0, from, to as u32));
        from as usize
    }

    /// Commits the in-flight migration: the destination becomes the
    /// durable owner.
    ///
    /// # Panics
    ///
    /// Panics if no migration is in flight.
    pub fn commit_migration(&mut self) {
        let (flow, _, to) = self.in_flight.take().expect("no migration in flight");
        self.owner[flow as usize] = to;
    }

    /// Abandons the in-flight migration (destination refused the
    /// backlog); ownership stays with the source.
    ///
    /// # Panics
    ///
    /// Panics if no migration is in flight.
    pub fn abort_migration(&mut self) {
        assert!(self.in_flight.take().is_some(), "no migration in flight");
    }
}

/// Errors from the sharded frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The packet names a flow the frontend was not configured with.
    UnknownFlow {
        /// The offending flow id.
        flow: u32,
        /// Configured flow count.
        flows: usize,
    },
    /// A shard refused the packet; the port identifies which.
    Port {
        /// The output port whose shard failed.
        port: usize,
        /// The underlying scheduler error.
        source: SchedulerError,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::UnknownFlow { flow, flows } => {
                write!(f, "flow {flow} not configured ({flows} flows)")
            }
            ShardError::Port { port, source } => write!(f, "port {port}: {source}"),
        }
    }
}

impl Error for ShardError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShardError::Port { source, .. } => Some(source),
            ShardError::UnknownFlow { .. } => None,
        }
    }
}

/// A failed [`ShardedScheduler::enqueue_batch`]: the batch stopped at
/// `error`, with `accepted` earlier packets already admitted (and still
/// enqueued — a batch is not transactional).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Packets of the batch admitted before the failure (see
    /// [`ShardedScheduler::enqueue_batch`] for which ones). These
    /// remain enqueued.
    pub accepted: usize,
    /// The failure that stopped the batch.
    pub error: ShardError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch stopped after {} packet(s): {}",
            self.accepted, self.error
        )
    }
}

impl Error for BatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

/// Per-port and aggregated instrumentation of a sharded frontend.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Each port's scheduler statistics, indexed by port.
    pub per_port: Vec<SchedulerStats>,
    /// Sums across ports (access worst cases take the maximum, matching
    /// [`hwsim::AccessStats::merge`]). Note that the aggregate's
    /// `circuit.cycles_per_op()` is still the per-circuit slot cost (4),
    /// because every shard spends its own cycles concurrently; use
    /// [`ShardStats::modeled_packets_per_second`] for frontend
    /// throughput. The aggregate's `buffer.peak` is the genuine
    /// frontend-wide high-water mark (tracked across all ports at once),
    /// which can be less than the sum of per-port peaks because ports
    /// peak at different times.
    pub aggregate: SchedulerStats,
}

impl ShardStats {
    /// The frontend's modeled packet throughput at a given circuit
    /// clock: the sum of every shard's independent
    /// [`CircuitStats::packets_per_second`]. Shards run concurrently in
    /// hardware, so N busy ports sustain N times the single circuit's
    /// 35.8 Mpps.
    pub fn modeled_packets_per_second(&self, clock_hz: f64) -> f64 {
        self.per_port
            .iter()
            .map(|s| s.circuit.packets_per_second(clock_hz))
            .sum()
    }

    /// Modeled aggregate line rate for a mean packet size, bits per
    /// second.
    pub fn modeled_line_rate_bps(&self, clock_hz: f64, mean_packet_bytes: f64) -> f64 {
        self.modeled_packets_per_second(clock_hz) * mean_packet_bytes * 8.0
    }

    /// Load-balance quality: the max/mean ratio of per-port admitted
    /// packets (`enqueued`). 1.0 is a perfectly even spread; N means
    /// everything landed on one of N ports. An idle frontend (no
    /// admissions anywhere) reports 1.0.
    pub fn shard_balance(&self) -> f64 {
        let max = self.per_port.iter().map(|s| s.enqueued).max().unwrap_or(0);
        let total: u64 = self.per_port.iter().map(|s| s.enqueued).sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.per_port.len() as f64;
        max as f64 / mean
    }

    /// Routes the aggregate under `{prefix}_agg` and each port's
    /// headline occupancy figures under `{prefix}_port{i}_*` into a
    /// telemetry snapshot — the multi-port analogue of
    /// [`SchedulerStats::export`].
    pub fn export(&self, prefix: &str, snap: &mut Snapshot) {
        self.aggregate.export(&format!("{prefix}_agg"), snap);
        for (i, s) in self.per_port.iter().enumerate() {
            let p = format!("{prefix}_port{i}");
            snap.put(&format!("{p}_enqueued"), s.enqueued as f64);
            snap.put(&format!("{p}_dequeued"), s.dequeued as f64);
            snap.put(&format!("{p}_buf_occupied"), s.buffer.occupied as f64);
            snap.put(&format!("{p}_buf_peak"), s.buffer.peak as f64);
            snap.put(&format!("{p}_buf_rejected"), s.buffer.rejected as f64);
        }
    }
}

fn sum_circuit(agg: &mut CircuitStats, s: &CircuitStats) {
    agg.ops += s.ops;
    agg.store_cycles += s.store_cycles;
    agg.trie.merge(&s.trie);
    agg.translation.merge(&s.translation);
    agg.sram.reads += s.sram.reads;
    agg.sram.writes += s.sram.writes;
    agg.sram.busy_cycles += s.sram.busy_cycles;
    agg.recycled_sections += s.recycled_sections;
    agg.recycled_markers += s.recycled_markers;
}

/// Rolls per-port scheduler stats into one [`ShardStats`], with `peak`
/// supplied by the caller (the frontend-wide high-water mark is tracked
/// differently by the sequential and parallel frontends).
fn aggregate_stats(per_port: Vec<SchedulerStats>, peak: usize) -> ShardStats {
    let mut aggregate = per_port[0].clone();
    for s in &per_port[1..] {
        sum_circuit(&mut aggregate.circuit, &s.circuit);
        aggregate.buffer.occupied += s.buffer.occupied;
        aggregate.buffer.stored += s.buffer.stored;
        aggregate.buffer.rejected += s.buffer.rejected;
        aggregate.enqueued += s.enqueued;
        aggregate.dequeued += s.dequeued;
        aggregate.clamped += s.clamped;
        aggregate.inversions += s.inversions;
        aggregate.pushed_out += s.pushed_out;
        aggregate.migrated_in += s.migrated_in;
        aggregate.migrated_out += s.migrated_out;
    }
    // The frontend-wide high-water mark, not the sum of per-port
    // peaks: ports peak at different times, so summing would
    // overstate true peak occupancy.
    aggregate.buffer.peak = peak;
    ShardStats {
        per_port,
        aggregate,
    }
}

/// The flow partition shared by the sequential and parallel frontends:
/// per-port flow populations (locally renumbered), the global routing
/// table, and the inverse map that restores global ids on dequeue.
struct Routing {
    /// Per port: that port's flows, with locally dense ids.
    local: Vec<Vec<FlowSpec>>,
    /// Global flow id → (port, local flow id).
    route: Vec<(usize, u32)>,
    /// Per port: local flow id → global flow id.
    global_of: Vec<Vec<u32>>,
}

impl Routing {
    /// Partitions `flows` across `ports` according to `placement`.
    ///
    /// Under [`Placement::Hash`], each port gets only its [`shard_of`]
    /// subset, renumbered into a dense local space. Under
    /// [`Placement::Dynamic`], **every** port is built with the full
    /// flow table and identity local ids, so any flow's backlog can be
    /// installed on any port later without renumbering; initial
    /// ownership is still [`shard_of`].
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero, flow ids are not dense, or (hash
    /// placement only) the hash leaves some port without any flow.
    fn build(flows: &[FlowSpec], ports: usize, placement: Placement) -> Self {
        assert!(ports > 0, "at least one port required");
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(
                f.id.0 as usize, i,
                "flow ids must be dense (flow {} at index {i})",
                f.id.0
            );
        }
        if placement == Placement::Dynamic {
            let identity: Vec<u32> = (0..flows.len() as u32).collect();
            return Self {
                local: vec![flows.to_vec(); ports],
                // The port component is the *initial* owner; the live
                // [`ShardMap`] supersedes it once flows migrate.
                route: identity
                    .iter()
                    .map(|&f| (shard_of(FlowId(f), ports), f))
                    .collect(),
                global_of: vec![identity; ports],
            };
        }
        let mut local: Vec<Vec<FlowSpec>> = vec![Vec::new(); ports];
        let mut route = Vec::with_capacity(flows.len());
        let mut global_of: Vec<Vec<u32>> = vec![Vec::new(); ports];
        for f in flows {
            let port = shard_of(f.id, ports);
            let mut renumbered = *f;
            renumbered.id = FlowId(local[port].len() as u32);
            route.push((port, renumbered.id.0));
            global_of[port].push(f.id.0);
            local[port].push(renumbered);
        }
        for (port, fl) in local.iter().enumerate() {
            assert!(
                !fl.is_empty(),
                "flow-affinity hash left port {port} without flows \
                 ({} flows over {ports} ports); use more flows or fewer ports",
                flows.len()
            );
        }
        Self {
            local,
            route,
            global_of,
        }
    }
}

/// Validates a per-port rate vector (used by both frontends).
///
/// # Panics
///
/// Panics if `rates` is empty or any rate is not positive and finite.
fn check_rates(rates: &[f64]) {
    assert!(!rates.is_empty(), "at least one port required");
    for (port, &r) in rates.iter().enumerate() {
        assert!(
            r > 0.0 && r.is_finite(),
            "port {port}: rate must be positive and finite, got {r}"
        );
    }
}

/// A multi-port egress frontend: one [`HwScheduler`] per output port,
/// flow-affinity routing, and work-conserving service across ports.
///
/// Flow ids stay **global** at this interface: the frontend renumbers
/// them into each shard's dense local space on the way in (the
/// [`HwScheduler`] contract) and restores the global id on the way out.
#[derive(Debug, Clone)]
pub struct ShardedScheduler<B: SortBackend = SortRetrieveCircuit, P: RankPolicy = WfqRank> {
    shards: Vec<HwScheduler<B, P>>,
    /// Each port's egress link rate, bits per second.
    rates: Vec<f64>,
    /// Global flow id → (initial port, local flow id). The live port is
    /// [`ShardedScheduler::map`]'s answer; this keeps the local id.
    route: Vec<(usize, u32)>,
    /// Per port: local flow id → global flow id.
    global_of: Vec<Vec<u32>>,
    /// Live flow → port ownership (mutated by migrations).
    map: ShardMap,
    /// Per-flow admitted-packet counts (global ids) — the rebalancer's
    /// signal for *which* flow to move off a hot port.
    flow_arrivals: Vec<u64>,
    /// Per-port `enqueued` at the last rebalance round, for arrival
    /// deltas.
    last_enqueued: Vec<u64>,
    /// Migration advisor (None until
    /// [`ShardedScheduler::with_rebalancer`]).
    rebalancer: Option<Rebalancer>,
    /// Completed flow migrations.
    migrations: u64,
    /// Next port the work-conserving round-robin inspects.
    cursor: usize,
    /// Frontend-wide high-water mark of queued packets (all ports at
    /// the same instant — not the sum of per-port peaks).
    peak: usize,
    /// Packets routed to a shard (disabled until
    /// [`ShardedScheduler::attach_telemetry`]).
    handoffs: Counter,
    /// Event tracer (disabled by default).
    tracer: Tracer,
}

impl ShardedScheduler {
    /// Creates a frontend of `ports` output ports, each an independent
    /// link of `port_rate_bps` with its own trie-backed scheduler built
    /// from `config`. Flows (dense global ids) are partitioned across
    /// ports by [`shard_of`]. For heterogeneous links use
    /// [`ShardedScheduler::with_port_rates`]; for a different sorting
    /// engine use [`ShardedScheduler::with_backend`].
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero, the rate is not positive and finite,
    /// flow ids are not dense, or the hash leaves some port without any
    /// flow (use more flows or fewer ports — an unused port has no
    /// traffic to schedule).
    pub fn new(
        flows: &[FlowSpec],
        port_rate_bps: f64,
        ports: usize,
        config: SchedulerConfig,
    ) -> Self {
        Self::with_backend(flows, port_rate_bps, ports, config)
    }

    /// Creates a frontend with one output port per entry of
    /// `port_rates_bps`, each an independent link of its own rate — the
    /// non-uniform line card (a few 40G uplinks next to many 1G access
    /// ports). Each port's WFQ virtual clock runs at that port's rate,
    /// so finishing tags — and therefore per-flow delay and fairness —
    /// are computed against the link the flow actually gets.
    ///
    /// # Panics
    ///
    /// Panics if `port_rates_bps` is empty, any rate is not positive and
    /// finite, flow ids are not dense, or the hash leaves some port
    /// without any flow.
    pub fn with_port_rates(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
    ) -> Self {
        Self::with_backend_port_rates(flows, port_rates_bps, config)
    }

    /// [`ShardedScheduler::new`] with an explicit [`Placement`] mode.
    /// [`Placement::Hash`] is byte-identical to [`ShardedScheduler::new`];
    /// [`Placement::Dynamic`] builds every port with the full flow table
    /// (identity local ids) so [`ShardedScheduler::migrate_flow`] can
    /// move any flow's backlog between ports later.
    ///
    /// # Panics
    ///
    /// As [`ShardedScheduler::new`], plus: dynamic placement requires
    /// `config.cleanup == CleanupPolicy::Eager` (flow extraction walks
    /// live tree markers).
    pub fn with_placement(
        flows: &[FlowSpec],
        port_rate_bps: f64,
        ports: usize,
        config: SchedulerConfig,
        placement: Placement,
    ) -> Self {
        assert!(ports > 0, "at least one port required");
        Self::with_policy_port_rates_placement(
            flows,
            &vec![port_rate_bps; ports],
            config,
            &WfqRank::default(),
            placement,
        )
    }
}

impl<B: SortBackend, P: RankPolicy> ShardedScheduler<B, P> {
    /// [`ShardedScheduler::new`] with the sorting backend chosen by the
    /// type parameter: every port's scheduler is built from `B` (see
    /// [`SortBackend::build`]) and ranks with `P`'s [`Default`].
    ///
    /// # Panics
    ///
    /// As [`ShardedScheduler::new`].
    pub fn with_backend(
        flows: &[FlowSpec],
        port_rate_bps: f64,
        ports: usize,
        config: SchedulerConfig,
    ) -> Self
    where
        P: Default,
    {
        assert!(ports > 0, "at least one port required");
        Self::with_backend_port_rates(flows, &vec![port_rate_bps; ports], config)
    }

    /// [`ShardedScheduler::with_port_rates`] with the sorting backend
    /// chosen by the type parameter.
    ///
    /// # Panics
    ///
    /// As [`ShardedScheduler::with_port_rates`].
    pub fn with_backend_port_rates(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
    ) -> Self
    where
        P: Default,
    {
        Self::with_policy_port_rates(flows, port_rates_bps, config, &P::default())
    }

    /// [`ShardedScheduler::with_backend`] ranking with `prototype`
    /// instead of `P`'s [`Default`]: every port's scheduler is built
    /// from the same prototype, specialized to that port's flow subset
    /// and rate via [`RankPolicy::for_link`].
    ///
    /// # Panics
    ///
    /// As [`ShardedScheduler::new`], plus the policy/cleanup
    /// compatibility checks of
    /// [`HwScheduler::with_backend_and_policy`].
    pub fn with_policy(
        flows: &[FlowSpec],
        port_rate_bps: f64,
        ports: usize,
        config: SchedulerConfig,
        prototype: &P,
    ) -> Self {
        assert!(ports > 0, "at least one port required");
        Self::with_policy_port_rates(flows, &vec![port_rate_bps; ports], config, prototype)
    }

    /// [`ShardedScheduler::with_port_rates`] ranking with `prototype`
    /// (see [`ShardedScheduler::with_policy`]).
    ///
    /// # Panics
    ///
    /// As [`ShardedScheduler::with_port_rates`], plus the
    /// policy/cleanup compatibility checks of
    /// [`HwScheduler::with_backend_and_policy`].
    pub fn with_policy_port_rates(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
        prototype: &P,
    ) -> Self {
        Self::with_policy_port_rates_placement(
            flows,
            port_rates_bps,
            config,
            prototype,
            Placement::Hash,
        )
    }

    /// [`ShardedScheduler::with_policy_port_rates`] with an explicit
    /// [`Placement`] mode (see [`ShardedScheduler::with_placement`]).
    ///
    /// # Panics
    ///
    /// As [`ShardedScheduler::with_policy_port_rates`], plus: dynamic
    /// placement requires `config.cleanup == CleanupPolicy::Eager`.
    pub fn with_policy_port_rates_placement(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
        prototype: &P,
        placement: Placement,
    ) -> Self {
        check_rates(port_rates_bps);
        if placement == Placement::Dynamic {
            assert_eq!(
                config.cleanup,
                tagsort::CleanupPolicy::Eager,
                "dynamic placement requires CleanupPolicy::Eager \
                 (flow extraction walks live tree markers)"
            );
        }
        let routing = Routing::build(flows, port_rates_bps.len(), placement);
        let shards = routing
            .local
            .iter()
            .zip(port_rates_bps)
            .enumerate()
            .map(|(port, (fl, &rate))| {
                let mut cfg = config;
                // Every port gets an independent fault stream: same
                // campaign, seed offset by port index.
                cfg.faults = cfg.faults.map(|f| f.with_seed_offset(port as u64));
                let mut shard = HwScheduler::with_backend_and_policy(fl, rate, cfg, prototype);
                shard.set_global_flow_ids(routing.global_of[port].clone());
                shard
            })
            .collect();
        Self {
            shards,
            rates: port_rates_bps.to_vec(),
            map: ShardMap::new(flows.len(), port_rates_bps.len(), placement),
            flow_arrivals: vec![0; flows.len()],
            last_enqueued: vec![0; port_rates_bps.len()],
            rebalancer: None,
            migrations: 0,
            route: routing.route,
            global_of: routing.global_of,
            cursor: 0,
            peak: 0,
            handoffs: Counter::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// Arms dynamic rebalancing: [`ShardedScheduler::maybe_rebalance`]
    /// rounds feed a [`Rebalancer`] with per-port load and execute the
    /// migration it advises.
    ///
    /// # Panics
    ///
    /// Panics unless the frontend was built with [`Placement::Dynamic`].
    pub fn with_rebalancer(mut self, cfg: RebalancerConfig) -> Self {
        assert_eq!(
            self.map.placement(),
            Placement::Dynamic,
            "rebalancing requires Placement::Dynamic"
        );
        self.rebalancer = Some(Rebalancer::new(self.shards.len(), cfg));
        self
    }

    /// Connects the frontend — and every port's scheduler, each as its
    /// own shard — to a telemetry registry. The registry's shard count
    /// must equal the port count.
    ///
    /// # Panics
    ///
    /// Panics if the registry is enabled with a different shard count.
    pub fn attach_telemetry(&mut self, tel: &Telemetry) {
        if tel.is_enabled() {
            assert_eq!(
                tel.shards(),
                self.shards.len(),
                "registry shard count must match port count"
            );
        }
        for (port, shard) in self.shards.iter_mut().enumerate() {
            shard.attach_telemetry(tel, port);
        }
        self.handoffs = tel.counter("shard_handoffs");
        self.tracer = tel.tracer();
    }

    /// Number of output ports.
    pub fn ports(&self) -> usize {
        self.shards.len()
    }

    /// One port's egress link rate, bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn port_rate(&self, port: usize) -> f64 {
        self.rates[port]
    }

    /// Number of configured flows (across all ports).
    pub fn flows(&self) -> usize {
        self.route.len()
    }

    /// Total queued packets across all ports.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HwScheduler::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HwScheduler::is_empty)
    }

    /// Queued packets on one port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn port_len(&self, port: usize) -> usize {
        self.shards[port].len()
    }

    /// The port a configured flow is routed to, or `None` for an
    /// unknown flow id. Under [`Placement::Dynamic`] this answer tracks
    /// migrations.
    pub fn port_of(&self, flow: FlowId) -> Option<usize> {
        self.map.port_of(flow)
    }

    /// The placement mode the frontend was built with.
    pub fn placement(&self) -> Placement {
        self.map.placement()
    }

    /// The live flow → port ownership table.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Completed flow migrations (see
    /// [`ShardedScheduler::migrate_flow`]).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Read access to one port's scheduler (for experiments).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn shard(&self, port: usize) -> &HwScheduler<B, P> {
        &self.shards[port]
    }

    /// Looks up a packet's route, renumbering its flow id into the
    /// shard's local space. The port comes from the live [`ShardMap`],
    /// so packets racing an in-flight migration go to the flow's **new**
    /// owner rather than being dropped or stranded.
    fn route_packet(&self, pkt: &Packet) -> Result<(usize, Packet), ShardError> {
        let &(_, local) = self
            .route
            .get(pkt.flow.0 as usize)
            .ok_or(ShardError::UnknownFlow {
                flow: pkt.flow.0,
                flows: self.route.len(),
            })?;
        let port = self
            .map
            .port_of(pkt.flow)
            .expect("flow validated against the route table");
        let mut routed = *pkt;
        routed.flow = FlowId(local);
        Ok((port, routed))
    }

    /// Admits an already-routed packet to its shard, maintaining the
    /// frontend-wide occupancy high-water mark.
    fn admit(&mut self, port: usize, routed: Packet) -> Result<(), ShardError> {
        let global = self.global_of[port][routed.flow.0 as usize];
        self.tracer.emit(
            port,
            self.shards[port].cycles(),
            EventKind::ShardHandoff,
            u64::from(global),
            routed.seq,
        );
        self.shards[port]
            .enqueue(routed)
            .map_err(|source| ShardError::Port { port, source })?;
        self.handoffs.inc(port, 1);
        self.flow_arrivals[global as usize] += 1;
        self.peak = self.peak.max(self.len());
        Ok(())
    }

    /// Routes one packet (global flow id) to its shard.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownFlow`] for an unconfigured flow, or
    /// [`ShardError::Port`] wrapping the shard's refusal.
    pub fn enqueue(&mut self, pkt: Packet) -> Result<(), ShardError> {
        let (port, routed) = self.route_packet(&pkt)?;
        self.admit(port, routed)
    }

    /// Routes a batch of packets, bucketing them per shard first so each
    /// sorter sees its arrivals back-to-back (the software analogue of
    /// per-port ingress FIFOs). Relative order *within* each shard — the
    /// order WFQ tags care about — is exactly the batch order.
    ///
    /// Returns the number of packets accepted.
    ///
    /// # Errors
    ///
    /// All flow ids are validated up front, so an unknown flow rejects
    /// the whole batch with nothing enqueued ([`BatchError::accepted`]
    /// is 0). A shard refusal stops admission mid-way: the error's
    /// `accepted` count says how many packets were admitted, and those
    /// stay enqueued — the batch is not rolled back. Because admission
    /// proceeds shard by shard, the admitted packets are the failing
    /// shard's bucket prefix plus every lower-numbered shard's complete
    /// bucket — **not** necessarily a prefix of the batch.
    pub fn enqueue_batch(&mut self, pkts: &[Packet]) -> Result<usize, BatchError> {
        let mut buckets: Vec<Vec<Packet>> = vec![Vec::new(); self.shards.len()];
        for pkt in pkts {
            let (port, routed) = self
                .route_packet(pkt)
                .map_err(|error| BatchError { accepted: 0, error })?;
            buckets[port].push(routed);
        }
        let mut accepted = 0;
        for (port, bucket) in buckets.into_iter().enumerate() {
            for routed in bucket {
                self.admit(port, routed)
                    .map_err(|error| BatchError { accepted, error })?;
                accepted += 1;
            }
        }
        Ok(accepted)
    }

    /// Serves the next packet under work-conserving round-robin: starting
    /// from the port after the last one served, the first backlogged
    /// port's smallest tag is dequeued. Returns the serving port and the
    /// packet (global flow id restored), or `None` only when **every**
    /// shard is empty.
    pub fn dequeue(&mut self) -> Option<(usize, Packet)> {
        let ports = self.shards.len();
        for step in 0..ports {
            let port = (self.cursor + step) % ports;
            if let Some(pkt) = self.dequeue_port(port) {
                self.cursor = (port + 1) % ports;
                return Some((port, pkt));
            }
        }
        None
    }

    /// Serves one port's smallest tag, restoring the global flow id.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn dequeue_port(&mut self, port: usize) -> Option<Packet> {
        self.dequeue_port_stamped(port).map(|(pkt, _)| pkt)
    }

    /// Serves one port's smallest tag with the shard's circuit-cycle
    /// stamps (see [`HwScheduler::dequeue_stamped`]), restoring the
    /// global flow id.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn dequeue_port_stamped(&mut self, port: usize) -> Option<(Packet, SojournStamp)> {
        let (mut pkt, stamp) = self.shards[port].dequeue_stamped()?;
        pkt.flow = FlowId(self.global_of[port][pkt.flow.0 as usize]);
        Some((pkt, stamp))
    }

    /// Per-port and aggregated statistics.
    pub fn stats(&self) -> ShardStats {
        let per_port: Vec<SchedulerStats> = self.shards.iter().map(HwScheduler::stats).collect();
        aggregate_stats(per_port, self.peak)
    }

    /// End-of-run fault accounting on every port (see
    /// [`HwScheduler::reconcile_faults`]). Idempotent; a no-op without a
    /// fault campaign.
    pub fn reconcile_faults(&mut self) {
        for shard in &mut self.shards {
            shard.reconcile_faults();
        }
    }

    /// Aggregated `(injected, detected, repaired, silent)` fault-ledger
    /// totals across ports (see [`HwScheduler::fault_totals`]).
    pub fn fault_totals(&self) -> (u64, u64, u64, u64) {
        self.shards.iter().fold((0, 0, 0, 0), |acc, shard| {
            let (i, d, r, s) = shard.fault_totals();
            (acc.0 + i, acc.1 + d, acc.2 + r, acc.3 + s)
        })
    }

    /// Moves one flow's entire queued backlog — and its rank state —
    /// from its current port to `to`, preserving per-flow packet order
    /// and translating finishing tags into the destination's virtual
    /// clock (see [`HwScheduler::extract_flow`] /
    /// [`HwScheduler::install_flow`]). Subsequent enqueues for the flow
    /// route to `to`. Returns the number of packets moved (0 if the
    /// flow already lives on `to`).
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownFlow`] for an unconfigured flow;
    /// [`ShardError::Port`] if the destination refuses the backlog
    /// (buffer full) — the flow is reinstalled on its source port
    /// unchanged and ownership does not move.
    ///
    /// # Panics
    ///
    /// Panics unless the frontend was built with [`Placement::Dynamic`],
    /// or if `to` is out of range.
    pub fn migrate_flow(&mut self, flow: FlowId, to: usize) -> Result<usize, ShardError> {
        assert!(
            to < self.shards.len(),
            "port {to} out of range ({} ports)",
            self.shards.len()
        );
        let from = self.map.port_of(flow).ok_or(ShardError::UnknownFlow {
            flow: flow.0,
            flows: self.route.len(),
        })?;
        if from == to {
            return Ok(0);
        }
        self.map.begin_migration(flow, to);
        // Dynamic placement gives every shard identity local ids, so the
        // global flow id is also the local one on both ports.
        let moved = self.shards[from].extract_flow(flow);
        let packets = moved.len();
        if let Err(source) = self.shards[to].install_flow(flow, &moved) {
            self.shards[from]
                .install_flow(flow, &moved)
                .expect("reinstalling into the slots just vacated cannot fail");
            self.map.abort_migration();
            return Err(ShardError::Port { port: to, source });
        }
        self.map.commit_migration();
        self.migrations += 1;
        self.peak = self.peak.max(self.len());
        Ok(packets)
    }

    /// One rebalance round: feeds the [`Rebalancer`] each port's load
    /// (admitted packets since the last round, plus current backlog)
    /// and, if it advises a migration, moves the **hottest** flow of
    /// the overloaded port — most admitted packets overall, lowest id
    /// on ties — to the advised destination. Returns the migration
    /// performed, if any; a destination refusal (buffer full) skips
    /// the round.
    ///
    /// Call this at natural batch boundaries; the rebalancer's EWMA and
    /// cooldown assume roughly comparable rounds.
    ///
    /// # Panics
    ///
    /// Panics unless [`ShardedScheduler::with_rebalancer`] armed a
    /// rebalancer (which implies [`Placement::Dynamic`]).
    pub fn maybe_rebalance(&mut self) -> Option<(FlowId, usize, usize)> {
        assert!(
            self.rebalancer.is_some(),
            "no rebalancer armed; use with_rebalancer"
        );
        let loads: Vec<ShardLoad> = self
            .shards
            .iter()
            .enumerate()
            .map(|(port, shard)| {
                let enqueued = shard.stats().enqueued;
                let arrivals = enqueued - self.last_enqueued[port];
                self.last_enqueued[port] = enqueued;
                ShardLoad {
                    arrivals,
                    backlog: shard.len() as u64,
                }
            })
            .collect();
        let hint = self
            .rebalancer
            .as_mut()
            .expect("checked above")
            .observe(&loads)?;
        let flow = (0..self.flow_arrivals.len())
            .filter(|&f| self.map.port_of(FlowId(f as u32)) == Some(hint.from))
            .max_by_key(|&f| (self.flow_arrivals[f], std::cmp::Reverse(f)))?;
        let flow = FlowId(flow as u32);
        match self.migrate_flow(flow, hint.to) {
            Ok(_) => Some((flow, hint.from, hint.to)),
            Err(_) => None,
        }
    }
}

/// One departure from a multi-port frontend: which port served the
/// packet, and the usual timing record.
#[derive(Debug, Clone, PartialEq)]
pub struct PortDeparture {
    /// The output port that transmitted the packet.
    pub port: usize,
    /// The timing record (packet carries its global flow id).
    pub departure: Departure,
    /// The shard circuit's cycle stamps bracketing the packet's
    /// residence in the sorter — the cycle-domain twin of the
    /// wall-clock `departure` record.
    pub cycles: SojournStamp,
}

/// Line-rate egress simulation of a sharded frontend: every output port
/// is an independent link transmitting at **its own configured rate**
/// ([`ShardedScheduler::port_rate`]), served back-to-back whenever its
/// shard is backlogged. With non-uniform rates, a slow port's packets
/// take proportionally longer on the wire, so per-flow delay and
/// fairness metrics computed from the departures are per-port-rate
/// aware.
///
/// Because routing is static per flow, the ports decouple completely:
/// each port's service depends only on its own arrivals, so the
/// simulation runs each port's arrival/service loop independently and
/// merges the departures by finish time.
#[derive(Debug)]
pub struct ShardedLinkSim<B: SortBackend = SortRetrieveCircuit, P: RankPolicy = WfqRank> {
    frontend: ShardedScheduler<B, P>,
    drop_policy: DropPolicy,
    latency: Option<LatencyTracker>,
    drops: u64,
    rebalance_every: Option<usize>,
}

impl<B: SortBackend, P: RankPolicy> ShardedLinkSim<B, P> {
    /// Creates a simulator over `frontend` (any sorting backend and
    /// rank policy — the types are inferred); each port transmits at
    /// the rate the frontend was configured with.
    pub fn new(frontend: ShardedScheduler<B, P>) -> Self {
        Self {
            frontend,
            drop_policy: DropPolicy::default(),
            latency: None,
            drops: 0,
            rebalance_every: None,
        }
    }

    /// Enables live rebalancing: every `arrivals` enqueues the run
    /// executes one [`ShardedScheduler::maybe_rebalance`] round. Because
    /// migration re-couples the ports, runs switch from the decoupled
    /// per-port loop to a single global-arrival-order loop (identical
    /// service semantics: each port is still an independent link at its
    /// own rate).
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is zero, or (at run time) if the frontend
    /// has no rebalancer armed ([`ShardedScheduler::with_rebalancer`]).
    pub fn with_rebalance_every(mut self, arrivals: usize) -> Self {
        assert!(arrivals > 0, "rebalance cadence must be positive");
        self.rebalance_every = Some(arrivals);
        self
    }

    /// Sets the refusal handling for subsequent runs (default
    /// [`DropPolicy::Error`]), mirroring
    /// [`crate::HwLinkSim::with_drop_policy`].
    pub fn with_drop_policy(mut self, policy: DropPolicy) -> Self {
        self.drop_policy = policy;
        self
    }

    /// Enables per-flow latency attribution: subsequent runs feed a
    /// [`LatencyTracker`] with each departure's shard-circuit cycle
    /// sojourn and the simulated wall-clock split (buffer wait vs.
    /// service), keyed by **global** flow id.
    pub fn with_latency(mut self) -> Self {
        self.latency = Some(LatencyTracker::new());
        self
    }

    /// Runs the trace to completion, returning departures sorted by
    /// finish time (ties broken by port).
    ///
    /// # Errors
    ///
    /// Under [`DropPolicy::Error`] (the default), propagates the first
    /// [`ShardError`]. Under [`DropPolicy::CountAndContinue`],
    /// per-packet shard refusals (buffer exhaustion, tag range) are
    /// counted ([`ShardedLinkSim::drops`]) and that port keeps serving;
    /// [`ShardError::UnknownFlow`] still aborts.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time.
    pub fn run(&mut self, trace: &[Packet]) -> Result<Vec<PortDeparture>, ShardError> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival time"
        );
        if self.rebalance_every.is_some() {
            return self.run_interleaved(trace);
        }
        let ports = self.frontend.ports();
        let mut per_port: Vec<Vec<Packet>> = vec![Vec::new(); ports];
        for pkt in trace {
            let port = self
                .frontend
                .port_of(pkt.flow)
                .ok_or(ShardError::UnknownFlow {
                    flow: pkt.flow.0,
                    flows: self.frontend.flows(),
                })?;
            per_port[port].push(*pkt);
        }
        let mut out = Vec::with_capacity(trace.len());
        for (port, arrivals) in per_port.iter().enumerate() {
            let mut now = Time::ZERO;
            let mut next = 0usize;
            loop {
                while next < arrivals.len() && arrivals[next].arrival <= now {
                    if let Err(e) = self.frontend.enqueue(arrivals[next]) {
                        match (self.drop_policy, &e) {
                            (
                                DropPolicy::CountAndContinue,
                                ShardError::Port {
                                    source:
                                        SchedulerError::BufferFull { .. } | SchedulerError::Sorter(_),
                                    ..
                                },
                            ) => self.drops += 1,
                            _ => return Err(e),
                        }
                    }
                    next += 1;
                }
                match self.frontend.dequeue_port_stamped(port) {
                    Some((pkt, stamp)) => {
                        let start = now;
                        let finish = now + pkt.service_time(self.frontend.port_rate(port));
                        if let Some(lat) = &mut self.latency {
                            lat.record(
                                pkt.flow.0,
                                stamp.cycles(),
                                start.0 - pkt.arrival.0,
                                finish.0 - start.0,
                            );
                        }
                        out.push(PortDeparture {
                            port,
                            departure: Departure {
                                packet: pkt,
                                start,
                                finish,
                            },
                            cycles: stamp,
                        });
                        now = finish;
                    }
                    None => {
                        if next < arrivals.len() {
                            now = arrivals[next].arrival;
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            a.departure
                .finish
                .cmp(&b.departure.finish)
                .then(a.port.cmp(&b.port))
        });
        Ok(out)
    }

    /// The rebalance-aware run mode: arrivals are enqueued in global
    /// trace order (migration means a port's future service can depend
    /// on another port's past arrivals, so the loops cannot decouple),
    /// with one rebalance round every [`ShardedLinkSim::rebalance_every`]
    /// enqueues. Each port remains an independent egress link at its own
    /// rate: a packet's service starts at the later of the port's
    /// free-instant and its own arrival.
    fn run_interleaved(&mut self, trace: &[Packet]) -> Result<Vec<PortDeparture>, ShardError> {
        let every = self
            .rebalance_every
            .expect("run_interleaved only runs with a cadence set");
        assert!(
            self.frontend.rebalancer.is_some(),
            "rebalance cadence set but no rebalancer armed; use with_rebalancer"
        );
        let ports = self.frontend.ports();
        let mut free_at = vec![Time::ZERO; ports];
        let mut out = Vec::with_capacity(trace.len());
        let mut arrivals = 0usize;
        for pkt in trace {
            for port in 0..ports {
                self.serve_through(port, pkt.arrival, &mut free_at, &mut out);
            }
            if let Err(e) = self.frontend.enqueue(*pkt) {
                match (self.drop_policy, &e) {
                    (
                        DropPolicy::CountAndContinue,
                        ShardError::Port {
                            source: SchedulerError::BufferFull { .. } | SchedulerError::Sorter(_),
                            ..
                        },
                    ) => self.drops += 1,
                    _ => return Err(e),
                }
            }
            arrivals += 1;
            if arrivals.is_multiple_of(every) {
                self.frontend.maybe_rebalance();
            }
        }
        for port in 0..ports {
            self.serve_through(port, Time(f64::INFINITY), &mut free_at, &mut out);
        }
        out.sort_by(|a, b| {
            a.departure
                .finish
                .cmp(&b.departure.finish)
                .then(a.port.cmp(&b.port))
        });
        Ok(out)
    }

    /// Serves `port`'s backlog for as long as its link comes free by
    /// `now`, advancing the port's free-instant past each departure.
    fn serve_through(
        &mut self,
        port: usize,
        now: Time,
        free_at: &mut [Time],
        out: &mut Vec<PortDeparture>,
    ) {
        while free_at[port] <= now {
            let Some((pkt, stamp)) = self.frontend.dequeue_port_stamped(port) else {
                break;
            };
            let start = free_at[port].max(pkt.arrival);
            let finish = start + pkt.service_time(self.frontend.port_rate(port));
            if let Some(lat) = &mut self.latency {
                lat.record(
                    pkt.flow.0,
                    stamp.cycles(),
                    start.0 - pkt.arrival.0,
                    finish.0 - start.0,
                );
            }
            out.push(PortDeparture {
                port,
                departure: Departure {
                    packet: pkt,
                    start,
                    finish,
                },
                cycles: stamp,
            });
            free_at[port] = finish;
        }
    }

    /// Packets refused and skipped under
    /// [`DropPolicy::CountAndContinue`] across all ports (0 under
    /// [`DropPolicy::Error`] — the run aborts instead).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// The per-flow latency attribution accumulated so far (global flow
    /// ids), if [`ShardedLinkSim::with_latency`] enabled it.
    pub fn latency(&self) -> Option<&LatencyTracker> {
        self.latency.as_ref()
    }

    /// The frontend, for post-run inspection.
    pub fn frontend(&self) -> &ShardedScheduler<B, P> {
        &self.frontend
    }

    /// Mutable frontend access, for post-run bookkeeping such as
    /// [`ShardedScheduler::reconcile_faults`].
    pub fn frontend_mut(&mut self) -> &mut ShardedScheduler<B, P> {
        &mut self.frontend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::SizeDist;

    fn flows(n: usize) -> Vec<FlowSpec> {
        (0..n)
            .map(|i| {
                FlowSpec::new(FlowId(i as u32), 1.0 + (i % 3) as f64, 1e6)
                    .size(SizeDist::Fixed(500))
            })
            .collect()
    }

    fn pkt(seq: u64, flow: u32, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(at),
            seq,
        }
    }

    #[test]
    fn hash_is_pure_and_in_range() {
        for ports in 1..=8 {
            for f in 0..256u32 {
                let a = shard_of(FlowId(f), ports);
                assert_eq!(a, shard_of(FlowId(f), ports));
                assert!(a < ports);
            }
        }
    }

    #[test]
    fn routing_matches_the_hash_and_restores_global_ids() {
        let fl = flows(16);
        let mut fe = ShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        assert_eq!(fe.ports(), 4);
        assert_eq!(fe.flows(), 16);
        for f in 0..16u32 {
            assert_eq!(fe.port_of(FlowId(f)), Some(shard_of(FlowId(f), 4)));
        }
        assert_eq!(fe.port_of(FlowId(99)), None);
        fe.enqueue(pkt(0, 7, 0.0, 140)).unwrap();
        let (port, out) = fe.dequeue().unwrap();
        assert_eq!(port, shard_of(FlowId(7), 4));
        assert_eq!(out.flow, FlowId(7), "global id restored");
        assert_eq!(out.seq, 0);
    }

    #[test]
    fn unknown_flow_and_port_errors() {
        let mut fe = ShardedScheduler::new(&flows(4), 1e9, 2, SchedulerConfig::default());
        let err = fe.enqueue(pkt(0, 40, 0.0, 140)).unwrap_err();
        assert_eq!(err, ShardError::UnknownFlow { flow: 40, flows: 4 });
        assert!(err.to_string().contains("flow 40"));
        // Exhaust one shard's buffer to provoke a Port error.
        let small = SchedulerConfig {
            capacity: 1,
            ..SchedulerConfig::default()
        };
        let mut fe = ShardedScheduler::new(&flows(4), 1e9, 1, small);
        fe.enqueue(pkt(0, 0, 0.0, 140)).unwrap();
        let err = fe.enqueue(pkt(1, 0, 0.0, 140)).unwrap_err();
        assert!(matches!(
            err,
            ShardError::Port {
                port: 0,
                source: SchedulerError::BufferFull { capacity: 1 }
            }
        ));
        assert!(err.to_string().starts_with("port 0:"));
        use std::error::Error as _;
        assert!(err.source().is_some());
    }

    #[test]
    fn batch_enqueue_counts_and_orders_within_shards() {
        let fl = flows(8);
        let mut fe = ShardedScheduler::new(&fl, 1e9, 2, SchedulerConfig::default());
        let batch: Vec<Packet> = (0..32)
            .map(|i| pkt(i, (i % 8) as u32, i as f64 * 1e-6, 500))
            .collect();
        assert_eq!(fe.enqueue_batch(&batch).unwrap(), 32);
        assert_eq!(fe.len(), 32);
        // Per-flow order survives: drain one port and check each flow's
        // seqs ascend.
        let mut last: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        while let Some(p) = fe.dequeue_port(0) {
            if let Some(prev) = last.insert(p.flow.0, p.seq) {
                assert!(prev < p.seq, "flow {} reordered", p.flow.0);
            }
        }
    }

    #[test]
    fn batch_error_reports_accepted_count() {
        // Unknown flow mid-batch: validated up front, nothing enqueued.
        let mut fe = ShardedScheduler::new(&flows(4), 1e9, 2, SchedulerConfig::default());
        let batch = [pkt(0, 0, 0.0, 140), pkt(1, 99, 0.0, 140)];
        let err = fe.enqueue_batch(&batch).unwrap_err();
        assert_eq!(err.accepted, 0);
        assert!(matches!(
            err.error,
            ShardError::UnknownFlow { flow: 99, .. }
        ));
        assert_eq!(fe.len(), 0, "validation failure admits nothing");
        // Shard refusal mid-batch: the accepted count survives in the error.
        let small = SchedulerConfig {
            capacity: 2,
            ..SchedulerConfig::default()
        };
        let mut fe = ShardedScheduler::new(&flows(4), 1e9, 1, small);
        let batch: Vec<Packet> = (0..4).map(|i| pkt(i, 0, 0.0, 140)).collect();
        let err = fe.enqueue_batch(&batch).unwrap_err();
        assert_eq!(err.accepted, 2);
        assert!(matches!(err.error, ShardError::Port { port: 0, .. }));
        assert_eq!(fe.len(), 2, "admitted packets stay enqueued");
        assert!(err.to_string().contains("after 2 packet(s)"));
        use std::error::Error as _;
        assert!(err.source().is_some());
    }

    #[test]
    fn aggregate_peak_is_frontend_wide_not_sum_of_port_peaks() {
        let fl = flows(16);
        let mut fe = ShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        // Load and fully drain one port at a time: each port's own peak
        // is high, but the frontend never holds more than one port's
        // backlog at once.
        let mut expected_peak = 0;
        for port in 0..4 {
            let f = (0..16u32)
                .find(|&f| shard_of(FlowId(f), 4) == port)
                .unwrap();
            for i in 0..10 {
                fe.enqueue(pkt(u64::from(f) * 100 + i, f, 0.0, 500))
                    .unwrap();
            }
            expected_peak = expected_peak.max(fe.len());
            while fe.dequeue_port(port).is_some() {}
        }
        let stats = fe.stats();
        let sum_of_port_peaks: usize = stats.per_port.iter().map(|s| s.buffer.peak).sum();
        assert_eq!(stats.aggregate.buffer.peak, expected_peak);
        assert_eq!(stats.aggregate.buffer.peak, 10);
        assert_eq!(sum_of_port_peaks, 40, "ports each peaked separately");
        assert!(stats.aggregate.buffer.peak < sum_of_port_peaks);
    }

    #[test]
    fn round_robin_is_work_conserving() {
        let fl = flows(16);
        let mut fe = ShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        for i in 0..64 {
            fe.enqueue(pkt(i, (i % 16) as u32, 0.0, 500)).unwrap();
        }
        let mut served = 0;
        while !fe.is_empty() {
            let before = fe.len();
            assert!(fe.dequeue().is_some(), "idle with {before} backlogged");
            served += 1;
        }
        assert_eq!(served, 64);
        assert!(fe.dequeue().is_none());
    }

    #[test]
    fn stats_aggregate_sums_ports() {
        let fl = flows(16);
        let mut fe = ShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        for i in 0..40 {
            fe.enqueue(pkt(i, (i % 16) as u32, 0.0, 500)).unwrap();
        }
        while fe.dequeue().is_some() {}
        let stats = fe.stats();
        assert_eq!(stats.per_port.len(), 4);
        assert_eq!(stats.aggregate.enqueued, 40);
        assert_eq!(stats.aggregate.dequeued, 40);
        let summed: u64 = stats.per_port.iter().map(|s| s.enqueued).sum();
        assert_eq!(summed, 40);
        // Every shard keeps the four-cycle slot; the frontend's modeled
        // throughput is the sum of the shards'.
        let single = stats.per_port[0].circuit.packets_per_second(143.2e6);
        let modeled = stats.modeled_packets_per_second(143.2e6);
        assert!(modeled > 3.0 * single, "modeled {modeled} vs {single}");
        assert!(stats.modeled_line_rate_bps(143.2e6, 140.0) > 0.0);
    }

    #[test]
    fn per_port_rates_are_stored_and_validated() {
        let fl = flows(16);
        let fe = ShardedScheduler::with_port_rates(&fl, &[4e9, 1e9], SchedulerConfig::default());
        assert_eq!(fe.ports(), 2);
        assert_eq!(fe.port_rate(0), 4e9);
        assert_eq!(fe.port_rate(1), 1e9);
        // The uniform constructor is the special case.
        let uniform = ShardedScheduler::new(&fl, 1e9, 2, SchedulerConfig::default());
        assert_eq!(uniform.port_rate(0), uniform.port_rate(1));
        // Invalid rates are rejected up front.
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let fl = fl.clone();
            let caught = std::panic::catch_unwind(move || {
                ShardedScheduler::with_port_rates(&fl, &[1e9, bad], SchedulerConfig::default())
            });
            assert!(caught.is_err(), "rate {bad} accepted");
        }
        let caught = std::panic::catch_unwind(|| {
            ShardedScheduler::with_port_rates(&flows(4), &[], SchedulerConfig::default())
        });
        assert!(caught.is_err(), "empty rate vector accepted");
    }

    #[test]
    fn link_sim_honors_non_uniform_port_rates() {
        // Same per-port backlog, 10x rate difference: the slow port's
        // departures stretch 10x further in time.
        let fl = flows(16);
        let fast = 1e8;
        let slow = 1e7;
        let fe = ShardedScheduler::with_port_rates(&fl, &[fast, slow], SchedulerConfig::default());
        let trace: Vec<Packet> = (0..64).map(|i| pkt(i, (i % 16) as u32, 0.0, 500)).collect();
        let mut sim = ShardedLinkSim::new(fe);
        let deps = sim.run(&trace).unwrap();
        let last_finish = |port: usize| {
            deps.iter()
                .filter(|d| d.port == port)
                .map(|d| d.departure.finish)
                .max()
                .expect("port served packets")
        };
        let per_pkt_fast = 500.0 * 8.0 / fast;
        let per_pkt_slow = 500.0 * 8.0 / slow;
        let served = |port: usize| deps.iter().filter(|d| d.port == port).count() as f64;
        assert!((last_finish(0).seconds() - served(0) * per_pkt_fast).abs() < 1e-9);
        assert!((last_finish(1).seconds() - served(1) * per_pkt_slow).abs() < 1e-9);
    }

    #[test]
    fn stamped_dequeue_matches_plain_and_restores_global_ids() {
        let fl = flows(16);
        let mut fe = ShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        fe.enqueue(pkt(0, 7, 0.0, 140)).unwrap();
        let port = fe.port_of(FlowId(7)).unwrap();
        let (out, stamp) = fe.dequeue_port_stamped(port).unwrap();
        assert_eq!(out.flow, FlowId(7), "global id restored on stamped path");
        assert!(stamp.dequeued > stamp.enqueued, "pop costs cycles");
        assert_eq!(stamp.cycles(), stamp.dequeued - stamp.enqueued);
    }

    #[test]
    fn link_sim_attributes_latency_with_global_flow_ids() {
        let fl = flows(16);
        let trace: Vec<Packet> = (0..160)
            .map(|i| pkt(i, (i % 16) as u32, i as f64 * 1e-5, 500))
            .collect();
        let fe = ShardedScheduler::new(&fl, 1e8, 4, SchedulerConfig::default());
        let mut sim = ShardedLinkSim::new(fe).with_latency();
        let deps = sim.run(&trace).unwrap();
        assert_eq!(deps.len(), 160);
        for d in &deps {
            assert!(
                d.cycles.dequeued > d.cycles.enqueued,
                "departures carry cycle stamps"
            );
        }
        let lat = sim.latency().unwrap();
        assert_eq!(lat.samples(), 160);
        assert_eq!(lat.flows(), 16, "attribution is per global flow id");
        let mut snap = Snapshot::empty(1);
        lat.export(&mut snap);
        assert!(snap.value("flow15_sojourn_p99").is_some());
    }

    #[test]
    fn link_sim_drop_policy_counts_and_continues() {
        let fl = flows(16);
        let burst: Vec<Packet> = (0..64).map(|i| pkt(i, (i % 16) as u32, 0.0, 500)).collect();
        let small = SchedulerConfig {
            capacity: 4,
            ..SchedulerConfig::default()
        };
        // Default policy: the overload aborts the run.
        let fe = ShardedScheduler::new(&fl, 1e8, 4, small);
        let mut sim = ShardedLinkSim::new(fe);
        assert!(matches!(
            sim.run(&burst),
            Err(ShardError::Port {
                source: SchedulerError::BufferFull { .. },
                ..
            })
        ));
        // CountAndContinue: the accepted packets are served, the rest
        // counted — here every port's 4 slots fill before any service.
        let fe = ShardedScheduler::new(&fl, 1e8, 4, small);
        let mut sim = ShardedLinkSim::new(fe).with_drop_policy(DropPolicy::CountAndContinue);
        let deps = sim.run(&burst).unwrap();
        assert_eq!(deps.len() as u64 + sim.drops(), 64);
        assert_eq!(deps.len(), 16, "4 ports x 4 slots survive the burst");
        assert_eq!(
            sim.frontend().stats().aggregate.buffer.rejected,
            sim.drops(),
            "BufferStats agrees with the link-level count"
        );
    }

    #[test]
    fn empty_port_is_rejected_at_construction() {
        // One flow over many ports necessarily leaves ports empty.
        let caught = std::panic::catch_unwind(|| {
            ShardedScheduler::new(&flows(1), 1e9, 8, SchedulerConfig::default())
        });
        assert!(caught.is_err());
    }

    #[test]
    fn shard_map_routes_in_flight_migrations_to_the_new_owner() {
        let mut map = ShardMap::new(8, 2, Placement::Dynamic);
        for f in 0..8u32 {
            assert_eq!(map.port_of(FlowId(f)), Some(shard_of(FlowId(f), 2)));
        }
        let flow = FlowId(3);
        let from = map.port_of(flow).unwrap();
        let to = 1 - from;
        assert_eq!(map.begin_migration(flow, to), from);
        assert_eq!(
            map.port_of(flow),
            Some(to),
            "an in-flight migration already routes to the new owner"
        );
        map.abort_migration();
        assert_eq!(map.port_of(flow), Some(from), "abort keeps the source");
        map.begin_migration(flow, to);
        map.commit_migration();
        assert_eq!(map.port_of(flow), Some(to));
        assert_eq!(map.port_of(FlowId(99)), None);
        // The hash map is immutable.
        let mut hash = ShardMap::new(4, 2, Placement::Hash);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hash.begin_migration(FlowId(0), 1)
        }));
        assert!(caught.is_err(), "hash placement accepted a migration");
    }

    #[test]
    fn dynamic_placement_serves_like_hash_before_any_migration() {
        let fl = flows(8);
        let mut hash = ShardedScheduler::new(&fl, 1e9, 2, SchedulerConfig::default());
        let mut dynamic = ShardedScheduler::with_placement(
            &fl,
            1e9,
            2,
            SchedulerConfig::default(),
            Placement::Dynamic,
        );
        let batch: Vec<Packet> = (0..48)
            .map(|i| pkt(i, (i % 8) as u32, i as f64 * 1e-6, 500))
            .collect();
        assert_eq!(hash.enqueue_batch(&batch).unwrap(), 48);
        assert_eq!(dynamic.enqueue_batch(&batch).unwrap(), 48);
        loop {
            let a = hash.dequeue().map(|(port, p)| (port, p.flow, p.seq));
            let b = dynamic.dequeue().map(|(port, p)| (port, p.flow, p.seq));
            assert_eq!(a, b, "departure sequences diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn migrate_flow_moves_backlog_and_reroutes_later_enqueues() {
        let fl = flows(8);
        let mut fe = ShardedScheduler::with_placement(
            &fl,
            1e9,
            2,
            SchedulerConfig::default(),
            Placement::Dynamic,
        );
        let flow = FlowId(0);
        let from = fe.port_of(flow).unwrap();
        let to = 1 - from;
        let neighbor = (1..8u32)
            .map(FlowId)
            .find(|&f| fe.port_of(f) == Some(from))
            .expect("another flow shares the source port");
        for i in 0..4 {
            fe.enqueue(pkt(i, flow.0, 0.0, 500)).unwrap();
        }
        fe.enqueue(pkt(100, neighbor.0, 0.0, 500)).unwrap();
        let moved = fe.migrate_flow(flow, to).unwrap();
        assert_eq!(moved, 4);
        assert_eq!(fe.port_of(flow), Some(to), "ownership moved");
        assert_eq!(fe.port_of(neighbor), Some(from), "the neighbor stayed");
        assert_eq!(fe.migrations(), 1);
        assert_eq!(fe.len(), 5, "no packet lost in transit");
        // Later arrivals follow the flow to its new port, behind the
        // migrated backlog.
        fe.enqueue(pkt(4, flow.0, 0.0, 500)).unwrap();
        let mut seqs = Vec::new();
        while let Some(p) = fe.dequeue_port(to) {
            assert_eq!(p.flow, flow, "only the migrated flow lives here");
            seqs.push(p.seq);
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4], "per-flow order survived");
        assert_eq!(fe.dequeue_port(from).unwrap().flow, neighbor);
        let stats = fe.stats();
        assert_eq!(stats.aggregate.migrated_out, 4);
        assert_eq!(stats.aggregate.migrated_in, 4);
        // Migrating a flow onto the port it already owns is a no-op.
        assert_eq!(fe.migrate_flow(flow, to).unwrap(), 0);
        assert_eq!(fe.migrations(), 1);
    }

    #[test]
    fn migration_refused_by_a_full_destination_rolls_back() {
        let small = SchedulerConfig {
            capacity: 4,
            ..SchedulerConfig::default()
        };
        let mut fe = ShardedScheduler::with_placement(&flows(8), 1e9, 2, small, Placement::Dynamic);
        let flow = FlowId(0);
        let from = fe.port_of(flow).unwrap();
        let to = 1 - from;
        let resident = (1..8u32)
            .map(FlowId)
            .find(|&f| fe.port_of(f) == Some(to))
            .expect("a flow lives on the destination");
        for i in 0..4 {
            fe.enqueue(pkt(i, resident.0, 0.0, 500)).unwrap();
        }
        for i in 0..3 {
            fe.enqueue(pkt(10 + i, flow.0, 0.0, 500)).unwrap();
        }
        let err = fe.migrate_flow(flow, to).unwrap_err();
        assert!(
            matches!(
                err,
                ShardError::Port {
                    port,
                    source: SchedulerError::BufferFull { .. }
                } if port == to
            ),
            "unexpected error {err:?}"
        );
        assert_eq!(fe.port_of(flow), Some(from), "ownership did not move");
        assert_eq!(fe.migrations(), 0);
        assert_eq!(fe.port_len(from), 3, "backlog reinstalled at the source");
        let mut seqs = Vec::new();
        while let Some(p) = fe.dequeue_port(from) {
            seqs.push(p.seq);
        }
        assert_eq!(seqs, vec![10, 11, 12], "reinstalled backlog kept its order");
    }

    #[test]
    fn rebalancer_moves_the_hottest_flow_off_the_hot_port() {
        let fl = flows(8);
        let mut fe = ShardedScheduler::with_placement(
            &fl,
            1e9,
            2,
            SchedulerConfig::default(),
            Placement::Dynamic,
        )
        .with_rebalancer(RebalancerConfig::default());
        let hot: Vec<u32> = (0..8u32).filter(|&f| shard_of(FlowId(f), 2) == 0).collect();
        assert!(!hot.is_empty(), "some flow hashes to port 0");
        let mut migrated = None;
        let mut seq = 0;
        for _round in 0..8 {
            for _ in 0..16 {
                for &f in &hot {
                    fe.enqueue(pkt(seq, f, 0.0, 500)).unwrap();
                    seq += 1;
                }
            }
            if let Some(m) = fe.maybe_rebalance() {
                migrated = Some(m);
                break;
            }
        }
        let (flow, from, to) = migrated.expect("skewed load trips the rebalancer");
        assert_eq!((from, to), (0, 1), "load moves off the hot port");
        assert_eq!(fe.port_of(flow), Some(1));
        assert_eq!(fe.migrations(), 1);
        // Nothing was lost along the way.
        let total = fe.len();
        let mut served = 0;
        while fe.dequeue().is_some() {
            served += 1;
        }
        assert_eq!(served, total);
        assert_eq!(served as u64, fe.stats().aggregate.dequeued);
    }

    #[test]
    fn shard_balance_is_max_over_mean() {
        let mut fe = ShardedScheduler::new(&flows(8), 1e9, 2, SchedulerConfig::default());
        assert_eq!(fe.stats().shard_balance(), 1.0, "idle frontend reads 1.0");
        let f = (0..8u32).find(|&f| shard_of(FlowId(f), 2) == 0).unwrap();
        for i in 0..10 {
            fe.enqueue(pkt(i, f, 0.0, 500)).unwrap();
        }
        // All 10 admissions on one of two ports: max/mean = 10/5.
        assert_eq!(fe.stats().shard_balance(), 2.0);
        while fe.dequeue().is_some() {}
    }

    #[test]
    fn link_sim_serves_every_packet_per_port() {
        let fl = flows(8);
        let trace: Vec<Packet> = (0..80)
            .map(|i| pkt(i, (i % 8) as u32, i as f64 * 1e-5, 500))
            .collect();
        let fe = ShardedScheduler::new(&fl, 1e8, 2, SchedulerConfig::default());
        let mut sim = ShardedLinkSim::new(fe);
        let deps = sim.run(&trace).unwrap();
        assert_eq!(deps.len(), 80);
        assert!(deps
            .windows(2)
            .all(|w| w[0].departure.finish <= w[1].departure.finish));
        for d in &deps {
            assert_eq!(
                d.port,
                sim.frontend().port_of(d.departure.packet.flow).unwrap()
            );
            assert!(d.departure.finish > d.departure.start);
        }
    }
}
