//! The complete hardware WFQ scheduler of paper Fig. 1.
//!
//! Three modules in one data path, exactly as the paper draws them:
//!
//! 1. **WFQ tag computation** (reference \[8\]) — the
//!    [`fairq::GpsVirtualClock`] produces a continuous finishing tag per
//!    packet; the [`TagQuantizer`] turns it into the fixed-width integer
//!    tag the silicon sorts, handling the value wrap-around of Fig. 6.
//! 2. **Shared packet buffer** (reference \[9\]) — [`PacketBuffer`], a
//!    slotted memory with a free list; the sorter stores only
//!    [`tagsort::PacketRef`]s into it.
//! 3. **Tag sort/retrieve circuit** — the [`tagsort::SortRetrieveCircuit`]
//!    this repository reproduces.
//!
//! [`HwScheduler`] wires the three together: `enqueue` computes, stores,
//! and sorts; `dequeue` serves the smallest tag and frees its buffer
//! slot. Its cycle accounting reproduces §IV's throughput derivation
//! (4 cycles per packet at 143.2 MHz ⇒ 35.8 Mpps ⇒ 40 Gb/s at 140-byte
//! packets).
//!
//! # Example
//!
//! ```
//! use scheduler::{HwScheduler, SchedulerConfig};
//! use traffic::{FlowId, FlowSpec, Packet, Time};
//!
//! # fn main() -> Result<(), scheduler::SchedulerError> {
//! let flows = [
//!     FlowSpec::new(FlowId(0), 1.0, 1e6),
//!     FlowSpec::new(FlowId(1), 4.0, 1e6),
//! ];
//! let mut sched = HwScheduler::new(&flows, 1e9, SchedulerConfig::default());
//! sched.enqueue(Packet { flow: FlowId(0), size_bytes: 1500, arrival: Time(0.0), seq: 0 })?;
//! sched.enqueue(Packet { flow: FlowId(1), size_bytes: 1500, arrival: Time(0.0), seq: 1 })?;
//! // The weight-4 flow's packet finishes earlier in GPS: it is served first.
//! assert_eq!(sched.dequeue().unwrap().seq, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod egress;
mod hwsched;
mod quantize;
mod shard;

pub use buffer::{BufferStats, PacketBuffer};
pub use egress::{DropPolicy, HwLinkSim};
pub use hwsched::{
    AdmissionPolicy, HwScheduler, MigratedEntry, MigratedFlow, SchedulerConfig, SchedulerError,
    SchedulerStats, SojournStamp,
};
pub use quantize::{QuantizeOutcome, TagQuantizer, WrapPolicy};
pub use shard::parallel::ParallelShardedScheduler;
pub use shard::{
    shard_of, BatchError, PortDeparture, ShardError, ShardMap, ShardStats, ShardedLinkSim,
    ShardedScheduler,
};
pub use statesync::{Placement, RebalanceHint, Rebalancer, RebalancerConfig, ShardLoad};
