//! The integrated hardware scheduler (paper Fig. 1).

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use fairq::{GpsVirtualClock, RankPolicy, VirtualTime, WfqRank};
use faultsim::{
    DetectionKind, FaultAttachError, FaultComponent, FaultConfig, FaultLedger, FaultPlan,
    FaultPolicy, FaultRecord, FaultTarget, ScrubOrder,
};
use statesync::{Checkpoint, CheckpointBuilder, VClockXlat};
use tagsort::{
    BackendSpec, CircuitStats, CleanupPolicy, Geometry, IntegrityEvent, MemoryKind, PacketRef,
    ResidentMemory, SortBackend, SortError, SortRetrieveCircuit, Tag,
};
use telemetry::{Counter, EventKind, Gauge, GaugeMerge, Histogram, Snapshot, Telemetry, Tracer};
use traffic::{FlowId, FlowSpec, Packet, Time};

use crate::buffer::{BufferStats, PacketBuffer};
use crate::quantize::{TagQuantizer, WrapPolicy};

/// What happens when a packet arrives to a full shared buffer.
///
/// Programmable admission is the second half of the PIFO abstraction:
/// the rank function decides *order*, the admission policy decides
/// *membership* when the buffer saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Reject the arriving packet — the classic drop-tail queue.
    #[default]
    TailDrop,
    /// Rank-aware push-out: if the arriving packet's quantized tick is
    /// strictly smaller than the largest outstanding tick, the sorter's
    /// maximum entry is evicted (via [`SortBackend::pop_max`]) to make
    /// room; otherwise the arrival is tail-dropped. This keeps the
    /// buffer's contents the best-ranked packets seen so far, which
    /// matters for low-rank flows under overload. Intended for
    /// [`WrapPolicy::Saturate`], where tag order equals tick order.
    PushOut,
    /// Weighted-random early push-out: RED's congestion-avoidance ramp
    /// reinterpreted for a PIFO. Below `min_pct`% occupancy every
    /// arrival admits untouched. Between `min_pct`% and `max_pct`% a
    /// deterministic coin fires with probability ramping linearly from
    /// zero to `max_p_pm`‰, and a hit evicts the sorter's *maximum*
    /// entry (via [`SortBackend::pop_max`], like [`Self::PushOut`])
    /// instead of dropping the arrival — congestion pressure sheds the
    /// worst-ranked backlog early, before the buffer hard-fills. At or
    /// above `max_pct`% the eviction is unconditional, and a full
    /// buffer falls back to plain push-out admission. The coin stream
    /// is a counter-keyed hash: identical arrival sequences make
    /// identical decisions, and a checkpoint carries the counter so
    /// restored runs continue the same stream.
    Wred {
        /// Occupancy percentage where the eviction ramp starts.
        min_pct: u8,
        /// Occupancy percentage where eviction becomes unconditional.
        max_pct: u8,
        /// Eviction probability in per-mille (‰) at the top of the ramp.
        max_p_pm: u16,
    },
}

impl AdmissionPolicy {
    /// [`AdmissionPolicy::Wred`] with the classic RED defaults: ramp
    /// from 50% to 90% occupancy, peaking at a 200‰ eviction chance.
    pub fn wred() -> Self {
        Self::Wred {
            min_pct: 50,
            max_pct: 90,
            max_p_pm: 200,
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TailDrop => f.write_str("tail-drop"),
            Self::PushOut => f.write_str("push-out"),
            Self::Wred { .. } if *self == Self::wred() => f.write_str("wred"),
            Self::Wred {
                min_pct,
                max_pct,
                max_p_pm,
            } => write!(f, "wred:{min_pct}:{max_pct}:{max_p_pm}"),
        }
    }
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "tail-drop" => Ok(Self::TailDrop),
            "push-out" => Ok(Self::PushOut),
            "wred" => Ok(Self::wred()),
            other => {
                if let Some(spec) = other.strip_prefix("wred:") {
                    let parts: Vec<&str> = spec.split(':').collect();
                    let parse = |what: &str, s: &str| -> Result<u64, String> {
                        s.parse::<u64>()
                            .map_err(|e| format!("wred {what} \"{s}\": {e}"))
                    };
                    let [min, max, p] = parts.as_slice() else {
                        return Err(format!(
                            "malformed wred spec \"{other}\" (expected wred:MIN:MAX:PERMILLE)"
                        ));
                    };
                    let (min_pct, max_pct) = (parse("min_pct", min)?, parse("max_pct", max)?);
                    let max_p_pm = parse("max_p_pm", p)?;
                    if min_pct > 100 || max_pct > 100 || min_pct >= max_pct || max_p_pm > 1000 {
                        return Err(format!(
                            "wred thresholds need min < max <= 100 and permille <= 1000, got {other}"
                        ));
                    }
                    return Ok(Self::Wred {
                        min_pct: min_pct as u8,
                        max_pct: max_pct as u8,
                        max_p_pm: max_p_pm as u16,
                    });
                }
                Err(format!(
                    "unknown admission policy \"{other}\" (expected tail-drop, push-out, wred, or wred:MIN:MAX:PERMILLE)"
                ))
            }
        }
    }
}

/// Configuration of the hardware scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Sort-tree geometry (defaults to the fabricated 12-bit/3-level).
    pub geometry: Geometry,
    /// Capacity in packets (both buffer slots and sorter links).
    pub capacity: usize,
    /// Virtual-time units per tag tick (the quantization granularity).
    pub tick_scale: f64,
    /// Wrap handling (see [`WrapPolicy`]).
    pub wrap_policy: WrapPolicy,
    /// Tree-marker cleanup policy. [`CleanupPolicy::Eager`] is required
    /// for PGPS workloads, which may legitimately emit tags below the
    /// sorter's current minimum.
    pub cleanup: CleanupPolicy,
    /// Tag-storage memory technology (single-port SRAM's 4-cycle slot,
    /// or the QDR variant's 2-cycle slot).
    pub memory: MemoryKind,
    /// Optional fault-injection campaign: a seeded plan of bit flips
    /// into the sorter's state memories, plus the response policy and
    /// scrub schedule (`None` runs fault-free).
    pub faults: Option<FaultConfig>,
    /// Full-buffer behavior (see [`AdmissionPolicy`]).
    pub admission: AdmissionPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            geometry: Geometry::paper(),
            capacity: 1 << 16,
            tick_scale: 100.0,
            wrap_policy: WrapPolicy::Saturate,
            cleanup: CleanupPolicy::Eager,
            memory: MemoryKind::SinglePort,
            faults: None,
            admission: AdmissionPolicy::TailDrop,
        }
    }
}

/// Errors from [`HwScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerError {
    /// The packet names a flow the scheduler was not configured with.
    UnknownFlow {
        /// The offending flow id.
        flow: u32,
        /// Configured flow count.
        flows: usize,
    },
    /// The shared packet buffer is full.
    BufferFull {
        /// Buffer capacity in packets.
        capacity: usize,
    },
    /// The sort/retrieve circuit refused the tag.
    Sorter(SortError),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::UnknownFlow { flow, flows } => {
                write!(f, "flow {flow} not configured ({flows} flows)")
            }
            SchedulerError::BufferFull { capacity } => {
                write!(f, "shared packet buffer full ({capacity} packets)")
            }
            SchedulerError::Sorter(e) => write!(f, "sorter: {e}"),
        }
    }
}

impl Error for SchedulerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedulerError::Sorter(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SortError> for SchedulerError {
    fn from(e: SortError) -> Self {
        SchedulerError::Sorter(e)
    }
}

/// Aggregated scheduler instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerStats {
    /// Sort/retrieve circuit counters.
    pub circuit: CircuitStats,
    /// Shared buffer counters.
    pub buffer: BufferStats,
    /// Packets enqueued.
    pub enqueued: u64,
    /// Packets dequeued.
    pub dequeued: u64,
    /// Tags clamped by the saturate wrap policy.
    pub clamped: u64,
    /// Times the sorter served a tag that was not the smallest
    /// outstanding tick — possible only under [`WrapPolicy::Wrap`] at
    /// the lap boundary, where wrapped (logically newest) tags overtake
    /// the old lap's stragglers.
    pub inversions: u64,
    /// Queued packets evicted by [`AdmissionPolicy::PushOut`] to admit a
    /// better-ranked arrival (always zero under tail-drop).
    pub pushed_out: u64,
    /// Packets installed by cross-shard flow migration
    /// ([`HwScheduler::install_flow`]). Not counted in `enqueued`:
    /// migration moves already-admitted packets, so frontend-wide
    /// `enqueued == dequeued + queued` conservation still holds.
    pub migrated_in: u64,
    /// Packets extracted by cross-shard flow migration
    /// ([`HwScheduler::extract_flow`]). Not counted as drops.
    pub migrated_out: u64,
}

impl SchedulerStats {
    /// Routes every figure into a telemetry snapshot under `prefix`,
    /// so the legacy `AccessStats`/`BufferStats` numbers travel in the
    /// same deterministic export as the registry metrics.
    pub fn export(&self, prefix: &str, snap: &mut Snapshot) {
        snap.put(&format!("{prefix}_enqueued"), self.enqueued as f64);
        snap.put(&format!("{prefix}_dequeued"), self.dequeued as f64);
        snap.put(&format!("{prefix}_clamped"), self.clamped as f64);
        snap.put(&format!("{prefix}_inversions"), self.inversions as f64);
        snap.put(&format!("{prefix}_pushed_out"), self.pushed_out as f64);
        snap.put(&format!("{prefix}_migrated_in"), self.migrated_in as f64);
        snap.put(&format!("{prefix}_migrated_out"), self.migrated_out as f64);
        let c = &self.circuit;
        snap.put(&format!("{prefix}_circuit_ops"), c.ops as f64);
        snap.put(
            &format!("{prefix}_circuit_store_cycles"),
            c.store_cycles as f64,
        );
        snap.put(
            &format!("{prefix}_circuit_cycles_per_op"),
            c.cycles_per_op(),
        );
        snap.put(&format!("{prefix}_trie_reads"), c.trie.reads() as f64);
        snap.put(&format!("{prefix}_trie_writes"), c.trie.writes() as f64);
        snap.put(
            &format!("{prefix}_trie_worst_op_accesses"),
            c.trie.worst_op_accesses() as f64,
        );
        snap.put(
            &format!("{prefix}_translation_reads"),
            c.translation.reads() as f64,
        );
        snap.put(
            &format!("{prefix}_translation_writes"),
            c.translation.writes() as f64,
        );
        snap.put(&format!("{prefix}_sram_reads"), c.sram.reads as f64);
        snap.put(&format!("{prefix}_sram_writes"), c.sram.writes as f64);
        snap.put(
            &format!("{prefix}_recycled_sections"),
            c.recycled_sections as f64,
        );
        snap.put(
            &format!("{prefix}_recycled_markers"),
            c.recycled_markers as f64,
        );
        self.buffer.export(&format!("{prefix}_buf"), snap);
    }
}

/// The scheduler's handles into a telemetry registry. Disabled handles
/// (the default) record nothing: every hook below is one branch on an
/// `Option` and a return.
///
/// Metric names are shared across schedulers attached to the same
/// registry — each scheduler records on its own shard's cells, so the
/// snapshot shows both per-port columns and merged totals.
#[derive(Debug, Clone)]
struct Instruments {
    shard: usize,
    enqueued: Counter,
    dequeued: Counter,
    dropped: Counter,
    clamped: Counter,
    inversions: Counter,
    pushed_out: Counter,
    migrated_in: Counter,
    migrated_out: Counter,
    recycled_sections: Counter,
    recycled_markers: Counter,
    depth: Gauge,
    depth_peak: Gauge,
    sort_cycles: Histogram,
    occupancy: Histogram,
    faults_injected: Counter,
    faults_rejected: Counter,
    faults_detected: Counter,
    faults_repaired: Counter,
    silent_corruptions: Counter,
    scrub_sections_audited: Counter,
    scrub_words_checked: Counter,
    fault_detect_latency: Histogram,
    fault_repair_cost: Histogram,
    tracer: Tracer,
}

impl Instruments {
    fn disabled() -> Self {
        Self {
            shard: 0,
            enqueued: Counter::disabled(),
            dequeued: Counter::disabled(),
            dropped: Counter::disabled(),
            clamped: Counter::disabled(),
            inversions: Counter::disabled(),
            pushed_out: Counter::disabled(),
            migrated_in: Counter::disabled(),
            migrated_out: Counter::disabled(),
            recycled_sections: Counter::disabled(),
            recycled_markers: Counter::disabled(),
            depth: Gauge::disabled(),
            depth_peak: Gauge::disabled(),
            sort_cycles: Histogram::disabled(),
            occupancy: Histogram::disabled(),
            faults_injected: Counter::disabled(),
            faults_rejected: Counter::disabled(),
            faults_detected: Counter::disabled(),
            faults_repaired: Counter::disabled(),
            silent_corruptions: Counter::disabled(),
            scrub_sections_audited: Counter::disabled(),
            scrub_words_checked: Counter::disabled(),
            fault_detect_latency: Histogram::disabled(),
            fault_repair_cost: Histogram::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    fn attach(tel: &Telemetry, shard: usize) -> Self {
        Self {
            shard,
            enqueued: tel.counter("sched_enqueued"),
            dequeued: tel.counter("sched_dequeued"),
            dropped: tel.counter("sched_dropped"),
            clamped: tel.counter("sched_clamped"),
            inversions: tel.counter("sched_inversions"),
            pushed_out: tel.counter("sched_pushed_out"),
            migrated_in: tel.counter("sched_migrated_in"),
            migrated_out: tel.counter("sched_migrated_out"),
            recycled_sections: tel.counter("trie_recycled_sections"),
            recycled_markers: tel.counter("trie_recycled_markers"),
            depth: tel.gauge("queue_depth", GaugeMerge::Sum),
            depth_peak: tel.gauge("queue_depth_peak", GaugeMerge::Max),
            sort_cycles: tel.histogram("tag_sort_latency_cycles"),
            occupancy: tel.histogram("buffer_occupancy_pkts"),
            faults_injected: tel.counter("faults_injected"),
            faults_rejected: tel.counter("faults_rejected"),
            faults_detected: tel.counter("faults_detected"),
            faults_repaired: tel.counter("faults_repaired"),
            silent_corruptions: tel.counter("silent_corruptions"),
            scrub_sections_audited: tel.counter("scrub_sections_audited"),
            scrub_words_checked: tel.counter("scrub_words_checked"),
            fault_detect_latency: tel.histogram("fault_detect_latency_cycles"),
            fault_repair_cost: tel.histogram("fault_repair_cost_cycles"),
            tracer: tel.tracer(),
        }
    }
}

/// Cycle stamps bracketing one packet's residence in the sort/retrieve
/// circuit: the cycle-counter readings at enqueue (tag sorted in) and
/// dequeue (tag retrieved). Returned by [`HwScheduler::dequeue_stamped`]
/// so link models can attribute per-flow sojourn in the circuit's own
/// time base, alongside simulated wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SojournStamp {
    /// Circuit cycle count when the packet's tag finished sorting in.
    pub enqueued: u64,
    /// Circuit cycle count when the packet was retrieved.
    pub dequeued: u64,
}

impl SojournStamp {
    /// The packet's sojourn through the circuit, in cycles.
    pub fn cycles(&self) -> u64 {
        self.dequeued.saturating_sub(self.enqueued)
    }
}

/// Live state of one fault campaign: the undrained plan, the ledger of
/// injected faults, and the scrub rotation.
#[derive(Debug, Clone)]
struct FaultState {
    plan: FaultPlan,
    policy: FaultPolicy,
    scrub_sections: u32,
    scrub_order: ScrubOrder,
    scrub_cursor: u32,
    /// Per-section dirty bitmap (sections are at most 2^6): set on every
    /// sorter write into a section, cleared when the scrubber audits it.
    /// Only consulted under [`ScrubOrder::WritePriority`].
    dirty: u64,
    ledger: FaultLedger,
    /// Planned injections the backend refused (no addressable state for
    /// the targeted component), as `(operation index, rejection)` pairs.
    rejected: Vec<(u64, FaultAttachError)>,
    /// Operation counter (enqueues + dequeues) the plan is keyed on.
    op: u64,
    reconciled: bool,
}

/// Per-slot bookkeeping: (tick, stamp, finishing tag, enqueue cycle,
/// generational buffer reference).
type SlotInfo = (u64, u64, VirtualTime, u64, PacketRef);

/// The full hardware scheduler: rank computation + quantization +
/// shared packet buffer + tag sort/retrieve circuit.
///
/// See the [crate example](crate) for basic use. Service discipline is
/// the caller's: experiments interleave [`HwScheduler::enqueue`] and
/// [`HwScheduler::dequeue`] however their link model dictates.
///
/// The scheduler is generic along two axes — the PIFO decomposition:
///
/// - **Sorting engine** `B`: any [`SortBackend`] slots in behind the
///   same tag-in/packet-out contract. The default is the paper's
///   [`SortRetrieveCircuit`]; the `fastpath` crate's FFS sorter and
///   [`tagsort::HeapSorter`] are drop-in alternatives (use
///   [`HwScheduler::with_backend`]).
/// - **Rank policy** `P`: any [`RankPolicy`] decides each packet's
///   priority. The default is [`WfqRank`], the paper's PGPS finishing
///   tag; the `fairq` crate ships STFQ, SRPT, FIFO+, strict priority,
///   leaky-bucket and hierarchical-WFQ alternatives (use
///   [`HwScheduler::with_backend_and_policy`]). See `POLICIES.md` at
///   the repository root for the cookbook.
#[derive(Debug, Clone)]
pub struct HwScheduler<B: SortBackend = SortRetrieveCircuit, P: RankPolicy = WfqRank> {
    policy: P,
    quantizer: TagQuantizer,
    buffer: PacketBuffer,
    sorter: B,
    flows: usize,
    admission: AdmissionPolicy,
    cleanup: CleanupPolicy,
    /// Whether [`HwScheduler::set_paged_state`] has been requested, so a
    /// checkpoint can replay the request at restore.
    paged: bool,
    /// Arrivals the WRED coin has judged so far — the counter keying the
    /// deterministic coin stream (checkpointed in one word).
    wred_coins: u64,
    /// Outstanding assigned ticks, for the quantizer's window tracking.
    outstanding: BTreeSet<(u64, u64)>,
    /// (tick, stamp, finishing tag, enqueue cycle, generational buffer
    /// reference) of each occupied buffer slot. The sorter stores only
    /// the bare slot index; the generation rides here, scheduler-side.
    slot_info: Vec<Option<SlotInfo>>,
    next_stamp: u64,
    enqueued: u64,
    dequeued: u64,
    inversions: u64,
    pushed_out: u64,
    migrated_in: u64,
    migrated_out: u64,
    /// Shard-local → global flow id map for trace events (identity when
    /// empty; set by sharded frontends so joined event streams keep
    /// globally meaningful flow ids).
    global_flows: Vec<u32>,
    faults: Option<FaultState>,
    instr: Instruments,
}

impl HwScheduler {
    /// Creates a scheduler for `flows` on a link of `link_rate_bps`,
    /// sorting with the paper's trie circuit (the default backend) and
    /// ranking with the paper's WFQ finishing tags (the default
    /// policy).
    ///
    /// # Panics
    ///
    /// Panics if flow ids are not dense, weights/rates are invalid, or
    /// the configuration is inconsistent.
    pub fn new(flows: &[FlowSpec], link_rate_bps: f64, config: SchedulerConfig) -> Self {
        Self::with_backend(flows, link_rate_bps, config)
    }
}

impl<B: SortBackend> HwScheduler<B, WfqRank> {
    /// The WFQ virtual clock (read access for experiments). Only the
    /// default [`WfqRank`] policy exposes one.
    pub fn virtual_clock(&self) -> &GpsVirtualClock {
        self.policy.clock()
    }
}

impl<B: SortBackend, P: RankPolicy> HwScheduler<B, P> {
    /// Creates a scheduler whose sorting engine is built from the
    /// backend type `B` (see [`SortBackend::build`]) and whose rank
    /// policy is `P`'s [`Default`], bound to this link via
    /// [`RankPolicy::for_link`]. Identical to [`HwScheduler::new`]
    /// except for the choice of engine and policy.
    ///
    /// # Panics
    ///
    /// Panics if flow ids are not dense, weights/rates are invalid, or
    /// the configuration is inconsistent.
    pub fn with_backend(flows: &[FlowSpec], link_rate_bps: f64, config: SchedulerConfig) -> Self
    where
        P: Default,
    {
        Self::with_backend_and_policy(flows, link_rate_bps, config, &P::default())
    }

    /// Creates a scheduler ranking with `prototype`, specialized to
    /// this link's flow set via [`RankPolicy::for_link`] (the prototype
    /// itself is untouched — pass a configured-but-unbound policy).
    ///
    /// # Panics
    ///
    /// Panics if flow ids are not dense, weights/rates are invalid, the
    /// configuration is inconsistent, or a non-monotone policy (one
    /// whose [`RankPolicy::monotone`] is `false`) is paired with
    /// [`CleanupPolicy::Lazy`] — stale markers would reject the
    /// below-minimum tags such policies legitimately emit.
    pub fn with_backend_and_policy(
        flows: &[FlowSpec],
        link_rate_bps: f64,
        config: SchedulerConfig,
        prototype: &P,
    ) -> Self {
        let mut seen = vec![false; flows.len()];
        for f in flows {
            let idx = f.id.0 as usize;
            assert!(
                idx < flows.len() && !seen[idx],
                "flow ids must be dense and unique"
            );
            seen[idx] = true;
        }
        let policy = prototype.for_link(flows, link_rate_bps);
        assert!(
            policy.monotone() || config.cleanup == CleanupPolicy::Eager,
            "policy `{}` emits non-monotone ranks and requires CleanupPolicy::Eager",
            policy.name()
        );
        let mut sorter = B::build(&BackendSpec {
            geometry: config.geometry,
            capacity: config.capacity,
            cleanup: config.cleanup,
            memory: config.memory,
        });
        let faults = config.faults.map(|fc| {
            // Fail-fast keeps the circuit's hard assertions armed; the
            // counting and repairing policies degrade gracefully instead.
            sorter.set_tolerant(fc.policy != FaultPolicy::FailFast);
            FaultState {
                plan: FaultPlan::generate(&fc.spec, fc.horizon_ops),
                policy: fc.policy,
                scrub_sections: fc.scrub_sections,
                scrub_order: fc.scrub_order,
                scrub_cursor: 0,
                dirty: 0,
                ledger: FaultLedger::new(),
                rejected: Vec::new(),
                op: 0,
                reconciled: false,
            }
        });
        Self {
            policy,
            quantizer: TagQuantizer::with_policy(
                config.geometry,
                config.tick_scale,
                config.wrap_policy,
            ),
            buffer: PacketBuffer::new(config.capacity),
            sorter,
            flows: flows.len(),
            admission: config.admission,
            cleanup: config.cleanup,
            paged: false,
            wred_coins: 0,
            outstanding: BTreeSet::new(),
            slot_info: vec![None; config.capacity],
            next_stamp: 0,
            enqueued: 0,
            dequeued: 0,
            inversions: 0,
            pushed_out: 0,
            migrated_in: 0,
            migrated_out: 0,
            global_flows: Vec::new(),
            faults,
            instr: Instruments::disabled(),
        }
    }

    /// Installs the shard-local → global flow id map used when emitting
    /// trace events (`ids[local]` = global id). Sharded frontends call
    /// this so `Enqueue`/`Dequeue`/`Drop` events from different ports
    /// join on one global flow namespace; flows outside the map keep
    /// their local id.
    pub fn set_global_flow_ids(&mut self, ids: Vec<u32>) {
        self.global_flows = ids;
    }

    /// The flow id trace events carry for local flow `flow`.
    fn event_flow(&self, flow: u32) -> u64 {
        self.global_flows
            .get(flow as usize)
            .copied()
            .unwrap_or(flow) as u64
    }

    /// Connects this scheduler to a telemetry registry, recording as
    /// `shard` (pass 0 for a standalone scheduler). Must be called
    /// before the run being measured; attaching a second time rebinds
    /// the handles (same registry ⇒ same storage).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is outside the registry's shard count (enabled
    /// telemetry only).
    pub fn attach_telemetry(&mut self, tel: &Telemetry, shard: usize) {
        if tel.is_enabled() {
            assert!(
                shard < tel.shards(),
                "shard {shard} outside registry ({} shards)",
                tel.shards()
            );
        }
        self.instr = Instruments::attach(tel, shard);
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.sorter.len()
    }

    /// Whether no packet is queued.
    pub fn is_empty(&self) -> bool {
        self.sorter.is_empty()
    }

    /// The rank policy (read access for experiments).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Total tag-storage cycles consumed so far — the time base every
    /// traced event is stamped with.
    pub fn cycles(&self) -> u64 {
        self.sorter.cycles()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            circuit: self.sorter.stats(),
            buffer: self.buffer.stats(),
            enqueued: self.enqueued,
            dequeued: self.dequeued,
            clamped: self.quantizer.clamped_count(),
            inversions: self.inversions,
            pushed_out: self.pushed_out,
            migrated_in: self.migrated_in,
            migrated_out: self.migrated_out,
        }
    }

    /// The smallest queued tag, if any — the sorter's head register,
    /// available every cycle for the eq. (1) feedback.
    pub fn peek_min_tag(&self) -> Option<Tag> {
        self.sorter.peek_min().map(|(t, _)| t)
    }

    /// The fault ledger's records, in injection order (empty when no
    /// fault campaign is configured).
    pub fn fault_records(&self) -> &[FaultRecord] {
        self.faults.as_ref().map_or(&[], |f| f.ledger.records())
    }

    /// Planned fault injections the backend refused because it has no
    /// addressable state for the targeted component, as
    /// `(operation index, rejection)` pairs in plan order. Empty for
    /// backends that expose every component (the trie circuit) and
    /// without a fault campaign.
    pub fn fault_rejections(&self) -> &[(u64, FaultAttachError)] {
        self.faults.as_ref().map_or(&[], |f| &f.rejected)
    }

    /// The sorting backend's self-reported name (`"trie"`,
    /// `"fastpath"`, `"heap"`, ...).
    pub fn backend_name(&self) -> &'static str {
        self.sorter.name()
    }

    /// Switches the sorter's off-chip state to lazily paged allocation
    /// (see [`SortBackend::set_paged`]). Call before the first enqueue;
    /// returns `false` for backends without paged storage, which simply
    /// stay eager.
    pub fn set_paged_state(&mut self) -> bool {
        self.paged = true;
        self.sorter.set_paged()
    }

    /// The sorter's resident/peak/total state-memory accounting, when
    /// the backend models it (see [`SortBackend::resident_memory`]).
    pub fn resident_memory(&self) -> Option<ResidentMemory> {
        self.sorter.resident_memory()
    }

    /// `(injected, detected, repaired, silent)` ledger totals.
    pub fn fault_totals(&self) -> (u64, u64, u64, u64) {
        self.faults.as_ref().map_or((0, 0, 0, 0), |f| {
            (
                f.ledger.injected(),
                f.ledger.detected(),
                f.ledger.repaired(),
                f.ledger.silent(),
            )
        })
    }

    /// End-of-run fault accounting: sweeps any outstanding detections,
    /// then folds every never-detected fault into the
    /// `silent_corruptions` counter. Idempotent; a no-op without a
    /// fault campaign.
    pub fn reconcile_faults(&mut self) {
        self.fault_sweep();
        if let Some(fs) = self.faults.as_mut() {
            if !fs.reconciled {
                fs.reconciled = true;
                let silent = fs.ledger.silent();
                self.instr.silent_corruptions.inc(self.instr.shard, silent);
            }
        }
    }

    /// Records one detection against the ledger: claims the first
    /// matching undetected fault (counting it and stamping its latency)
    /// or emits an unattributed `FaultDetect` event. Returns the claimed
    /// record index. Panics under [`FaultPolicy::FailFast`].
    fn note_detection(
        &mut self,
        fs: &mut FaultState,
        component: FaultComponent,
        word: Option<usize>,
        cycle: u64,
        kind: DetectionKind,
    ) -> Option<usize> {
        let word_arg = word.map_or(u64::MAX, |w| w as u64);
        let claimed = fs.ledger.claim(component, word, cycle, kind);
        match claimed {
            Some(idx) => {
                self.instr.faults_detected.inc(self.instr.shard, 1);
                let latency = cycle.saturating_sub(fs.ledger.records()[idx].injected_cycle);
                self.instr
                    .fault_detect_latency
                    .observe(self.instr.shard, latency);
                self.instr.tracer.emit(
                    self.instr.shard,
                    cycle,
                    EventKind::FaultDetect,
                    idx as u64,
                    word_arg,
                );
            }
            None => {
                // A re-detection of an already-claimed fault, or damage
                // outside the modeled plan: traced, not counted.
                self.instr.tracer.emit(
                    self.instr.shard,
                    cycle,
                    EventKind::FaultDetect,
                    u64::MAX,
                    word_arg,
                );
            }
        }
        if fs.policy == FaultPolicy::FailFast {
            panic!(
                "{} fault detected in {} (fail-fast policy)",
                kind.name(),
                component.name()
            );
        }
        claimed
    }

    /// Claims any detections the circuit raised since the last sweep —
    /// SRAM parity alarms, sanitized link corruptions, and service-path
    /// integrity events — against the fault ledger.
    fn fault_sweep(&mut self) {
        let Some(mut fs) = self.faults.take() else {
            return;
        };
        for alarm in self.sorter.take_parity_alarms() {
            self.note_detection(
                &mut fs,
                FaultComponent::TagStore,
                Some(alarm.addr),
                alarm.cycle.value(),
                DetectionKind::Parity,
            );
        }
        for c in self.sorter.take_store_corruptions() {
            self.note_detection(
                &mut fs,
                FaultComponent::TagStore,
                Some(c.addr as usize),
                c.cycle.value(),
                DetectionKind::Structural,
            );
        }
        let now = self.sorter.cycles();
        // Buffer parity alarms raised outside the dequeue fast path (the
        // push-out eviction also releases slots).
        for slot in self.buffer.take_fault_alarms() {
            self.note_detection(
                &mut fs,
                FaultComponent::Buffer,
                Some(slot as usize),
                now,
                DetectionKind::Parity,
            );
        }
        for ev in self.sorter.take_integrity_events() {
            let (component, word) = match ev {
                IntegrityEvent::TrieDeadEnd { level, index } => (
                    FaultComponent::Trie,
                    Some(self.sorter.trie_fault_word_index(level, index)),
                ),
                IntegrityEvent::MissingTranslation { tag }
                | IntegrityEvent::BadLinkAddr { tag, .. } => {
                    (FaultComponent::Translation, Some(tag.value() as usize))
                }
            };
            self.note_detection(&mut fs, component, word, now, DetectionKind::Structural);
        }
        self.faults = Some(fs);
    }

    /// Runs one fault round: materializes every plan entry due at the
    /// current operation index, then audits the next `scrub_sections`
    /// trie sections (repairing under [`FaultPolicy::ScrubAndRepair`]).
    /// Called at the top of every dequeue round, *before* the pop, so a
    /// repair can land before the damaged state is served.
    fn fault_round(&mut self) {
        let Some(mut fs) = self.faults.take() else {
            return;
        };
        while let Some(pf) = fs.plan.next_due(fs.op) {
            let cycle = self.sorter.cycles();
            // Buffer faults land in the scheduler's own payload memory;
            // everything else is routed to the sorting backend.
            let target = if pf.component == FaultComponent::Buffer {
                Ok(&mut self.buffer as &mut dyn FaultTarget)
            } else {
                self.sorter.fault_target_mut(pf.component)
            };
            match target {
                Ok(target) => {
                    if let Some((word, mask)) = pf.resolve(target) {
                        target.inject_fault(word, mask);
                        let idx = fs.ledger.push(FaultRecord {
                            component: pf.component,
                            word,
                            mask,
                            injected_op: pf.op,
                            injected_cycle: cycle,
                            detected_cycle: None,
                            detected_by: None,
                            repaired_cycle: None,
                        });
                        self.instr.faults_injected.inc(self.instr.shard, 1);
                        self.instr.tracer.emit(
                            self.instr.shard,
                            cycle,
                            EventKind::FaultInject,
                            idx as u64,
                            word as u64,
                        );
                    }
                }
                Err(e) => {
                    // The backend has no addressable state for this
                    // component (e.g. the heap oracle): the plan entry
                    // is recorded as rejected, not silently dropped.
                    fs.rejected.push((pf.op, e));
                    self.instr.faults_rejected.inc(self.instr.shard, 1);
                    self.instr.tracer.emit(
                        self.instr.shard,
                        cycle,
                        EventKind::FaultInject,
                        u64::MAX,
                        pf.component as u64,
                    );
                }
            }
        }
        let sections = self.sorter.geometry().sections();
        let repair = fs.policy == FaultPolicy::ScrubAndRepair;
        let budget = fs.scrub_sections.min(sections) as usize;
        let mut chosen: Vec<u32> = Vec::with_capacity(budget);
        match fs.scrub_order {
            ScrubOrder::RoundRobin => {
                while chosen.len() < budget {
                    chosen.push(fs.scrub_cursor % sections);
                    fs.scrub_cursor = (fs.scrub_cursor + 1) % sections;
                }
            }
            ScrubOrder::WritePriority => {
                // Recently-written sections first (ascending index), then
                // the round-robin cursor fills any leftover budget so
                // cold sections still age into an audit.
                while chosen.len() < budget && fs.dirty != 0 {
                    let section = fs.dirty.trailing_zeros();
                    fs.dirty &= !(1u64 << section);
                    chosen.push(section);
                }
                let mut scanned = 0;
                while chosen.len() < budget && scanned < sections {
                    let section = fs.scrub_cursor % sections;
                    fs.scrub_cursor = (fs.scrub_cursor + 1) % sections;
                    scanned += 1;
                    if !chosen.contains(&section) {
                        fs.dirty &= !(1u64 << section);
                        chosen.push(section);
                    }
                }
            }
        }
        for section in chosen {
            // Audit the translation table first: the trie scrub below
            // treats it as ground truth, so a repair must land before
            // the trie section is rebuilt from it.
            let tscrub = self.sorter.scrub_translation(section, repair);
            let cycle = self.sorter.cycles();
            self.instr
                .scrub_words_checked
                .inc(self.instr.shard, tscrub.words_checked);
            if tscrub.crc_mismatch {
                // Attribute per damaged entry when ground truth named
                // them; a latched mismatch whose content healed (or
                // lazy-mode detect-only) claims by component alone.
                let claims: Vec<Option<usize>> = if tscrub.damaged_words.is_empty() {
                    vec![None]
                } else {
                    tscrub.damaged_words.iter().map(|&w| Some(w)).collect()
                };
                for word in claims {
                    let claimed = self.note_detection(
                        &mut fs,
                        FaultComponent::Translation,
                        word,
                        cycle,
                        DetectionKind::Scrub,
                    );
                    if tscrub.repaired {
                        if let Some(idx) = claimed {
                            fs.ledger.mark_repaired(idx, cycle);
                            self.instr.faults_repaired.inc(self.instr.shard, 1);
                        }
                    }
                }
                if tscrub.repaired {
                    // Modeled repair cost: the audit reads plus one
                    // write per restored entry.
                    let cost = tscrub.words_checked + tscrub.repaired_entries;
                    self.instr.fault_repair_cost.observe(self.instr.shard, cost);
                    self.instr.tracer.emit(
                        self.instr.shard,
                        cycle,
                        EventKind::Repair,
                        section as u64,
                        tscrub.repaired_entries,
                    );
                }
            }
            let scrub = self.sorter.scrub_section(section, repair);
            let cycle = self.sorter.cycles();
            self.instr.scrub_sections_audited.inc(self.instr.shard, 1);
            self.instr
                .scrub_words_checked
                .inc(self.instr.shard, scrub.words_checked);
            for m in &scrub.mismatches {
                let claimed = self.note_detection(
                    &mut fs,
                    FaultComponent::Trie,
                    Some(m.flat),
                    cycle,
                    DetectionKind::Scrub,
                );
                if scrub.repaired {
                    if let Some(idx) = claimed {
                        fs.ledger.mark_repaired(idx, cycle);
                        self.instr.faults_repaired.inc(self.instr.shard, 1);
                    }
                }
            }
            if scrub.repaired {
                // Modeled repair cost: the audit reads plus one
                // insertion pass per restored marker.
                let cost = scrub.words_checked
                    + scrub.repaired_markers * u64::from(self.sorter.geometry().levels());
                self.instr.fault_repair_cost.observe(self.instr.shard, cost);
                self.instr.tracer.emit(
                    self.instr.shard,
                    cycle,
                    EventKind::Repair,
                    section as u64,
                    scrub.repaired_markers,
                );
            }
        }
        self.faults = Some(fs);
    }

    /// Handles a popped sorter entry whose buffer-side record is gone —
    /// a corrupted packet pointer. Without a fault campaign this is the
    /// invariant violation it always was; under one it is a detected
    /// structural corruption and the pop is skipped.
    fn note_pointer_corruption(&mut self) {
        let cycle = self.sorter.cycles();
        let Some(mut fs) = self.faults.take() else {
            panic!("sorter and buffer agree on occupancy");
        };
        self.note_detection(
            &mut fs,
            FaultComponent::TagStore,
            None,
            cycle,
            DetectionKind::Structural,
        );
        self.faults = Some(fs);
    }

    /// Accepts a packet: computes its rank (the WFQ finishing tag under
    /// the default policy), quantizes it, parks the packet in the
    /// shared buffer, and sorts the tag in.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::UnknownFlow`], [`SchedulerError::BufferFull`],
    /// or a wrapped [`SortError`].
    pub fn enqueue(&mut self, pkt: Packet) -> Result<(), SchedulerError> {
        if let Some(fs) = self.faults.as_mut() {
            fs.op += 1;
        }
        self.fault_sweep();
        if pkt.flow.0 as usize >= self.flows {
            return Err(SchedulerError::UnknownFlow {
                flow: pkt.flow.0,
                flows: self.flows,
            });
        }
        let finish = self.policy.rank(&pkt);
        self.admit_ranked(pkt, finish, true)?;
        self.fault_sweep();
        Ok(())
    }

    /// The shared admission tail: quantizes an already-computed rank,
    /// parks the packet, and sorts the tag in. `arrival` distinguishes
    /// a fresh arrival ([`HwScheduler::enqueue`] — admission policy
    /// applies, `enqueued` counts, an `Enqueue` event is traced) from a
    /// migrated install ([`HwScheduler::install_flow`] — the packet was
    /// already admitted on its source shard, so none of those fire).
    fn admit_ranked(
        &mut self,
        pkt: Packet,
        finish: VirtualTime,
        arrival: bool,
    ) -> Result<(), SchedulerError> {
        if self.sorter.is_empty()
            && self.quantizer.policy() == WrapPolicy::Saturate
            && self.policy.monotone()
        {
            // Fresh numbering while nothing is outstanding restores the
            // saturate policy's headroom: a monotone policy guarantees
            // every future rank is at least its floor. The paper-literal
            // Wrap policy instead keeps its circular numbering forever
            // and reclaims range through section recycling (Fig. 6);
            // bounded-domain policies (SRPT, strict priority) never
            // rebase — their ranks already live in a fixed window.
            self.quantizer.rebase(self.policy.rank_floor());
        }
        let min_outstanding_tick = self.outstanding.iter().next().map(|&(t, _)| t);
        let out = self.quantizer.quantize(finish, min_outstanding_tick);
        if out.clamped || !out.recycle.is_empty() {
            self.instr.clamped.inc(self.instr.shard, out.clamped as u64);
            self.instr.tracer.emit(
                self.instr.shard,
                self.sorter.cycles(),
                EventKind::VclockWrap,
                out.clamped as u64,
                out.recycle.len() as u64,
            );
        }
        for section in &out.recycle {
            let removed = self.sorter.recycle_section(*section);
            self.instr.recycled_sections.inc(self.instr.shard, 1);
            self.instr
                .recycled_markers
                .inc(self.instr.shard, removed as u64);
            self.instr.tracer.emit(
                self.instr.shard,
                self.sorter.cycles(),
                EventKind::TrieBulkDelete,
                *section as u64,
                removed as u64,
            );
        }
        if arrival {
            if let AdmissionPolicy::Wred {
                min_pct,
                max_pct,
                max_p_pm,
            } = self.admission
            {
                self.wred_early_push_out(out.tick, min_pct, max_pct, max_p_pm);
            }
        }
        let evicting = matches!(
            self.admission,
            AdmissionPolicy::PushOut | AdmissionPolicy::Wred { .. }
        );
        let stored = match self.buffer.store(pkt) {
            Some(full) => Some(full),
            None if arrival && evicting => self
                .try_push_out(out.tick)
                .and_then(|()| self.buffer.store(pkt)),
            None => None,
        };
        let Some(full) = stored else {
            if arrival {
                self.note_drop(pkt.flow.0);
            }
            return Err(SchedulerError::BufferFull {
                capacity: self.buffer.capacity(),
            });
        };
        // The sorter's tag store holds only the bare slot index — the
        // generation is scheduler-side sideband, re-attached at dequeue.
        let slot = PacketRef(full.index());
        let cycles_before = self.sorter.cycles();
        if let Err(e) = self.sorter.insert(out.tag, slot) {
            self.buffer.release(full);
            if arrival {
                self.note_drop(pkt.flow.0);
            }
            return Err(e.into());
        }
        self.instr
            .sort_cycles
            .observe(self.instr.shard, self.sorter.cycles() - cycles_before);
        self.note_section_write(out.tag);
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let enq_cycle = self.sorter.cycles();
        self.outstanding.insert((out.tick, stamp));
        self.slot_info[slot.index() as usize] = Some((out.tick, stamp, finish, enq_cycle, full));
        if arrival {
            self.enqueued += 1;
            self.instr.enqueued.inc(self.instr.shard, 1);
        }
        self.note_depth();
        self.instr
            .occupancy
            .observe(self.instr.shard, self.buffer.stats().occupied as u64);
        if arrival {
            self.instr.tracer.emit(
                self.instr.shard,
                enq_cycle,
                EventKind::Enqueue,
                self.event_flow(pkt.flow.0),
                pkt.seq,
            );
        }
        Ok(())
    }

    /// The WRED ramp (see [`AdmissionPolicy::Wred`]): below `min_pct`%
    /// occupancy does nothing; between the thresholds flips the
    /// deterministic coin and evicts the sorter's maximum on a hit; at
    /// or above `max_pct`% evicts unconditionally. The eviction reuses
    /// [`HwScheduler::try_push_out`], so an arrival that itself ranks
    /// worst never evicts a better-ranked resident.
    fn wred_early_push_out(&mut self, tick: u64, min_pct: u8, max_pct: u8, max_p_pm: u16) {
        let occupied = self.buffer.stats().occupied;
        let capacity = self.buffer.capacity();
        let min = capacity * min_pct as usize / 100;
        let max = capacity * max_pct as usize / 100;
        if occupied < min.max(1) {
            return;
        }
        let evict = if occupied >= max {
            true
        } else {
            let span = (max - min).max(1) as u64;
            let threshold_pm = u64::from(max_p_pm) * (occupied - min) as u64 / span;
            self.wred_coin() < threshold_pm
        };
        if evict {
            let _ = self.try_push_out(tick);
        }
    }

    /// One draw of the counter-keyed WRED coin, uniform in `0..1000`.
    /// SplitMix64 over a fixed seed XOR the draw counter: stateless up
    /// to one u64 of state, so the stream is reproducible from the
    /// checkpointed counter alone.
    fn wred_coin(&mut self) -> u64 {
        /// "WREDCOIN" in ASCII — an arbitrary fixed seed, never varied:
        /// determinism across runs matters more than stream choice.
        const WRED_COIN_SEED: u64 = 0x5752_4544_434f_494e;
        let mut z = WRED_COIN_SEED ^ self.wred_coins;
        self.wred_coins += 1;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % 1000
    }

    /// Attempts to free one buffer slot for an arrival quantized to
    /// `tick` by evicting the sorter's maximum entry
    /// ([`AdmissionPolicy::PushOut`]). Succeeds only when the arrival
    /// strictly outranks the largest outstanding tick; the victim is
    /// dropped (counted and traced like any refused packet).
    fn try_push_out(&mut self, tick: u64) -> Option<()> {
        let &(max_tick, _) = self.outstanding.iter().next_back()?;
        if tick >= max_tick {
            return None;
        }
        let (_, slot) = self.sorter.pop_max()?;
        let entry = self
            .slot_info
            .get_mut(slot.index() as usize)
            .and_then(Option::take);
        let Some((vtick, vstamp, _finish, _enq, full)) = entry else {
            self.note_pointer_corruption();
            return None;
        };
        self.outstanding.remove(&(vtick, vstamp));
        self.pushed_out += 1;
        self.instr.pushed_out.inc(self.instr.shard, 1);
        match self.buffer.try_release(full) {
            Some(victim) => {
                self.note_drop(victim.flow.0);
                Some(())
            }
            None => {
                self.note_pointer_corruption();
                None
            }
        }
    }

    /// Marks `tag`'s top-level section as recently written, feeding the
    /// write-priority scrub schedule. A no-op under round-robin order.
    fn note_section_write(&mut self, tag: Tag) {
        let Some(fs) = self.faults.as_mut() else {
            return;
        };
        if fs.scrub_order == ScrubOrder::WritePriority {
            fs.dirty |= 1u64 << self.sorter.geometry().section_of(tag);
        }
    }

    /// Records a refused packet (counter + trace event).
    fn note_drop(&self, flow: u32) {
        self.instr.dropped.inc(self.instr.shard, 1);
        self.instr.tracer.emit(
            self.instr.shard,
            self.sorter.cycles(),
            EventKind::Drop,
            self.event_flow(flow),
            self.buffer.capacity() as u64,
        );
    }

    /// Refreshes the queue-depth gauge and its high-water mark.
    fn note_depth(&self) {
        let depth = self.sorter.len() as u64;
        self.instr.depth.set(self.instr.shard, depth);
        self.instr.depth_peak.record_max(self.instr.shard, depth);
    }

    /// Serves the packet with the smallest finishing tag.
    pub fn dequeue(&mut self) -> Option<Packet> {
        self.dequeue_stamped().map(|(pkt, _)| pkt)
    }

    /// Serves the packet with the smallest finishing tag, together with
    /// the cycle stamps bracketing its residence in the circuit (the
    /// enqueue-time and dequeue-time cycle-counter readings — the same
    /// values the traced `Enqueue`/`Dequeue` events carry, so direct
    /// stamping and event-joined attribution agree exactly).
    pub fn dequeue_stamped(&mut self) -> Option<(Packet, SojournStamp)> {
        if let Some(fs) = self.faults.as_mut() {
            fs.op += 1;
        }
        // Faults due this round land now, and the scrubber gets its
        // audit slice *before* the pop — so a repair can restore state
        // the pop is about to read.
        self.fault_round();
        self.fault_sweep();
        loop {
            let cycles_before = self.sorter.cycles();
            let Some((tag, slot)) = self.sorter.pop_min() else {
                self.fault_sweep();
                return None;
            };
            self.instr
                .sort_cycles
                .observe(self.instr.shard, self.sorter.cycles() - cycles_before);
            self.note_section_write(tag);
            let entry = self
                .slot_info
                .get_mut(slot.index() as usize)
                .and_then(Option::take);
            let Some((tick, stamp, finish, enq_cycle, full)) = entry else {
                // Corrupted packet pointer: the sorter served a slot the
                // buffer never issued (or already retired).
                self.note_pointer_corruption();
                continue;
            };
            let Some(pkt) = self.buffer.try_release(full) else {
                self.note_pointer_corruption();
                self.outstanding.remove(&(tick, stamp));
                continue;
            };
            // The release ran the buffer's descriptor parity check; an
            // alarm here means this packet's flow id or length was hit
            // by an upset — it is claimed against the ledger and the
            // packet is dropped rather than served with corrupted
            // metadata.
            let alarms = self.buffer.take_fault_alarms();
            if !alarms.is_empty() {
                let cycle = self.sorter.cycles();
                if let Some(mut fs) = self.faults.take() {
                    for &alarm_slot in &alarms {
                        self.note_detection(
                            &mut fs,
                            FaultComponent::Buffer,
                            Some(alarm_slot as usize),
                            cycle,
                            DetectionKind::Parity,
                        );
                    }
                    self.faults = Some(fs);
                }
                if alarms.contains(&full.index()) {
                    self.outstanding.remove(&(tick, stamp));
                    self.note_drop(pkt.flow.0);
                    continue;
                }
            }
            // Service feedback for state-coupled policies (STFQ's
            // virtual time follows the served rank); a no-op for the
            // default WFQ policy.
            self.policy.on_service(&pkt, finish);
            // An inversion means the linear sorter's head was not the
            // logically smallest outstanding tick — the wrap-boundary
            // overtaking that only WrapPolicy::Wrap permits.
            let min_tick = self
                .outstanding
                .iter()
                .next()
                .map(|&(t, _)| t)
                .unwrap_or(tick);
            if tick > min_tick {
                self.inversions += 1;
                self.instr.inversions.inc(self.instr.shard, 1);
            }
            self.outstanding.remove(&(tick, stamp));
            self.dequeued += 1;
            self.instr.dequeued.inc(self.instr.shard, 1);
            self.note_depth();
            let deq_cycle = self.sorter.cycles();
            self.instr.tracer.emit(
                self.instr.shard,
                deq_cycle,
                EventKind::Dequeue,
                self.event_flow(pkt.flow.0),
                pkt.seq,
            );
            self.fault_sweep();
            return Some((
                pkt,
                SojournStamp {
                    enqueued: enq_cycle,
                    dequeued: deq_cycle,
                },
            ));
        }
    }

    /// Advances the policy's notion of time to `now` without an arrival
    /// (useful before reading [`HwScheduler::virtual_clock`]
    /// mid-experiment; a no-op for clockless policies).
    pub fn advance_clock(&mut self, now: Time) {
        self.policy.advance(now);
    }

    /// Convenience harness: enqueues the whole trace (arrival order) and
    /// then drains, returning packets in service order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SchedulerError`].
    pub fn sort_trace(&mut self, trace: &[Packet]) -> Result<Vec<Packet>, SchedulerError> {
        for pkt in trace {
            self.enqueue(*pkt)?;
        }
        Ok(std::iter::from_fn(|| self.dequeue()).collect())
    }

    /// Serializes the scheduler's complete live state into a versioned
    /// [`Checkpoint`]: counters, quantizer window, rank-policy state,
    /// and every queued packet with its exact (pre-quantization) rank.
    /// A scheduler restored from the checkpoint with
    /// [`HwScheduler::restore`] produces the **identical departure
    /// sequence** the original would have — same packets, same order —
    /// across every backend and rank policy. Identical logical state
    /// checkpoints to byte-identical words (the CI determinism gate).
    ///
    /// Reading the queue means draining and reinstalling it, so the
    /// circuit's cycle counters advance; the pinned invariant is the
    /// departure sequence, not cycle stamps.
    ///
    /// # Panics
    ///
    /// Panics if a fault campaign is active (checkpointing mid-campaign
    /// would fork the fault plan) or under [`CleanupPolicy::Lazy`],
    /// whose stale markers would reject the reinstall.
    pub fn checkpoint(&mut self) -> Checkpoint {
        assert!(
            self.faults.is_none(),
            "checkpoint requires a fault-free scheduler (campaign state is not serializable)"
        );
        assert_eq!(
            self.cleanup,
            CleanupPolicy::Eager,
            "checkpoint requires CleanupPolicy::Eager (lazy markers would reject the reinstall)"
        );
        let entries = self.snapshot_entries();
        let mut b = CheckpointBuilder::new();
        b.word(self.flows as u64);
        b.word(self.buffer.capacity() as u64);
        b.word(admission_word(self.admission));
        b.word(self.paged as u64);
        b.word(policy_name_word(self.policy.name()));
        b.word(self.next_stamp);
        b.word(self.enqueued);
        b.word(self.dequeued);
        b.word(self.inversions);
        b.word(self.pushed_out);
        b.word(self.wred_coins);
        b.word(self.migrated_in);
        b.word(self.migrated_out);
        b.slice(&self.quantizer.state_words());
        b.slice(&self.policy.state_words());
        b.word(entries.len() as u64);
        for e in &entries {
            b.word(u64::from(e.tag.value()));
            b.word(e.tick);
            b.word(e.stamp);
            b.float(e.finish.value());
            b.word(e.enq_cycle);
            b.word(u64::from(e.pkt.flow.0));
            b.word(e.pkt.seq);
            b.word(u64::from(e.pkt.size_bytes));
            b.float(e.pkt.arrival.seconds());
        }
        let ckpt = b.finish();
        // The read was destructive (pop_min is the only ordered view a
        // hardware sorter offers); put the queue back exactly as found.
        self.install_entries(&entries);
        ckpt
    }

    /// Rebuilds a scheduler from a [`Checkpoint`] taken by
    /// [`HwScheduler::checkpoint`]. The caller supplies the same flow
    /// table, link rate, configuration, and policy prototype the
    /// original was built with; the checkpoint carries echoes of the
    /// load-bearing ones and refuses a mismatch. The restored scheduler
    /// continues the original's departure sequence exactly.
    ///
    /// # Errors
    ///
    /// Any [`statesync::CheckpointError`]: corrupted words (including
    /// faultsim bit flips into the checkpoint itself), truncation, or a
    /// foreign/duplicate format.
    ///
    /// # Panics
    ///
    /// Panics if `config` disagrees with the checkpoint (flow count,
    /// capacity, admission policy, rank-policy name), if `config` has a
    /// fault campaign or lazy cleanup (see [`HwScheduler::checkpoint`]),
    /// or on invalid flow specs (as the constructors).
    pub fn restore(
        flows: &[FlowSpec],
        link_rate_bps: f64,
        config: SchedulerConfig,
        prototype: &P,
        ckpt: &Checkpoint,
    ) -> Result<Self, statesync::CheckpointError> {
        assert!(
            config.faults.is_none(),
            "restore requires a fault-free configuration"
        );
        let mut r = ckpt.reader()?;
        let mut s = Self::with_backend_and_policy(flows, link_rate_bps, config, prototype);
        let ckpt_flows = r.word()?;
        assert_eq!(
            ckpt_flows as usize,
            flows.len(),
            "checkpoint was taken with {ckpt_flows} flows, restore offers {}",
            flows.len()
        );
        let ckpt_cap = r.word()?;
        assert_eq!(
            ckpt_cap as usize, config.capacity,
            "checkpoint was taken at capacity {ckpt_cap}, restore offers {}",
            config.capacity
        );
        let ckpt_adm = r.word()?;
        assert_eq!(
            ckpt_adm,
            admission_word(config.admission),
            "checkpoint admission policy differs from the restore configuration"
        );
        if r.word()? != 0 {
            s.set_paged_state();
        }
        let ckpt_policy = r.word()?;
        assert_eq!(
            ckpt_policy,
            policy_name_word(s.policy.name()),
            "checkpoint rank policy differs from the restore prototype ({})",
            s.policy.name()
        );
        s.next_stamp = r.word()?;
        s.enqueued = r.word()?;
        s.dequeued = r.word()?;
        s.inversions = r.word()?;
        s.pushed_out = r.word()?;
        s.wred_coins = r.word()?;
        s.migrated_in = r.word()?;
        s.migrated_out = r.word()?;
        s.quantizer.load_state_words(&r.slice()?);
        s.policy.load_state_words(&r.slice()?);
        let n = r.word()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = Tag(u32::try_from(r.word()?).expect("checkpointed tag fits the geometry"));
            let tick = r.word()?;
            let stamp = r.word()?;
            let finish = VirtualTime(r.float()?);
            let enq_cycle = r.word()?;
            let flow = FlowId(u32::try_from(r.word()?).expect("checkpointed flow id fits u32"));
            let seq = r.word()?;
            let size_bytes = u32::try_from(r.word()?).expect("checkpointed packet size fits u32");
            let arrival = Time(r.float()?);
            entries.push(CkptEntry {
                tag,
                tick,
                stamp,
                finish,
                enq_cycle,
                pkt: Packet {
                    flow,
                    size_bytes,
                    arrival,
                    seq,
                },
            });
        }
        s.install_entries(&entries);
        Ok(s)
    }

    /// Drains every queued entry (ascending tag, FIFO among ties) with
    /// its full sideband, releasing buffer slots and clearing the
    /// outstanding-tick window. The queue is empty afterwards; pair
    /// with [`HwScheduler::install_entries`] to put it back.
    fn snapshot_entries(&mut self) -> Vec<CkptEntry> {
        let mut out = Vec::with_capacity(self.sorter.len());
        while let Some((tag, slot)) = self.sorter.pop_min() {
            let (tick, stamp, finish, enq_cycle, full) = self.slot_info[slot.index() as usize]
                .take()
                .expect("sorter entry has sideband");
            let pkt = self
                .buffer
                .try_release(full)
                .expect("sorter entry has a live buffer slot");
            out.push(CkptEntry {
                tag,
                tick,
                stamp,
                finish,
                enq_cycle,
                pkt,
            });
        }
        self.outstanding.clear();
        out
    }

    /// Reinstalls snapshot entries in order: buffer slot, sorter tag,
    /// outstanding tick, sideband. Slot indices may differ from the
    /// original run (the buffer free list is private); every observable
    /// — tag order, FIFO ties, ranks, stamps — is preserved.
    fn install_entries(&mut self, entries: &[CkptEntry]) {
        for e in entries {
            let full = self
                .buffer
                .store(e.pkt)
                .expect("restored queue fits the checkpointed capacity");
            let slot = PacketRef(full.index());
            self.sorter
                .insert(e.tag, slot)
                .expect("checkpointed tag reinserts under eager cleanup");
            self.outstanding.insert((e.tick, e.stamp));
            self.slot_info[slot.index() as usize] =
                Some((e.tick, e.stamp, e.finish, e.enq_cycle, full));
        }
    }

    /// Extracts every queued packet of `flow` — in service order, with
    /// exact (pre-quantization) ranks — together with the flow's rank
    /// bookkeeping, for installation on another shard via
    /// [`HwScheduler::install_flow`]. The remaining flows' service
    /// order is untouched; the extracted packets count as
    /// `migrated_out`, not drops.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is not configured, or under
    /// [`CleanupPolicy::Lazy`] (the survivor reinsert requires eager
    /// marker cleanup — see [`SortBackend::extract_flow`]).
    pub fn extract_flow(&mut self, flow: FlowId) -> MigratedFlow {
        assert!(
            (flow.0 as usize) < self.flows,
            "flow {} not configured ({} flows)",
            flow.0,
            self.flows
        );
        assert_eq!(
            self.cleanup,
            CleanupPolicy::Eager,
            "extract_flow requires CleanupPolicy::Eager"
        );
        let slot_info = &self.slot_info;
        let buffer = &self.buffer;
        let taken = self.sorter.extract_flow(&mut |slot: PacketRef| {
            slot_info[slot.index() as usize]
                .map(|(_, _, _, _, full)| buffer.peek(full).flow == flow)
                .unwrap_or(false)
        });
        let mut entries = Vec::with_capacity(taken.len());
        for (_, slot) in taken {
            let (tick, stamp, finish, _enq_cycle, full) = self.slot_info[slot.index() as usize]
                .take()
                .expect("extracted entry has sideband");
            let packet = self
                .buffer
                .try_release(full)
                .expect("extracted entry has a live buffer slot");
            self.outstanding.remove(&(tick, stamp));
            entries.push(MigratedEntry { packet, finish });
        }
        self.migrated_out += entries.len() as u64;
        self.instr
            .migrated_out
            .inc(self.instr.shard, entries.len() as u64);
        self.note_depth();
        self.instr.tracer.emit(
            self.instr.shard,
            self.sorter.cycles(),
            EventKind::MigrateOut,
            self.event_flow(flow.0),
            entries.len() as u64,
        );
        MigratedFlow {
            entries,
            last_finish: self.policy.flow_finish(flow),
            floor: self.policy.rank_floor(),
        }
    }

    /// Installs a flow extracted from another shard as local flow
    /// `flow`: the source ranks are re-anchored onto this shard's
    /// virtual-time axis through a [`VClockXlat`] (order-preserving,
    /// floor-respecting), the rank policy adopts the flow's translated
    /// finish history, and every packet is admitted with its translated
    /// rank. Service on this shard is never paused — the install is an
    /// ordinary sequence of sorter inserts, work-conserving throughout.
    /// Installed packets count as `migrated_in`, not `enqueued`.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::BufferFull`] if the backlog does not fit;
    /// checked up front, so a refused install leaves this shard's state
    /// untouched (the caller still owns the [`MigratedFlow`]).
    ///
    /// # Panics
    ///
    /// Panics if `flow` is not configured.
    pub fn install_flow(&mut self, flow: FlowId, mf: &MigratedFlow) -> Result<(), SchedulerError> {
        assert!(
            (flow.0 as usize) < self.flows,
            "flow {} not configured ({} flows)",
            flow.0,
            self.flows
        );
        let free = self.buffer.capacity() - self.buffer.stats().occupied;
        if mf.entries.len() > free {
            return Err(SchedulerError::BufferFull {
                capacity: self.buffer.capacity(),
            });
        }
        let xlat = VClockXlat::new(mf.floor, self.policy.rank_floor());
        self.policy.adopt_flow(flow, xlat.translate(mf.last_finish));
        for e in &mf.entries {
            let mut pkt = e.packet;
            pkt.flow = flow;
            self.admit_ranked(pkt, xlat.translate(e.finish), false)?;
        }
        self.migrated_in += mf.entries.len() as u64;
        self.instr
            .migrated_in
            .inc(self.instr.shard, mf.entries.len() as u64);
        self.instr.tracer.emit(
            self.instr.shard,
            self.sorter.cycles(),
            EventKind::MigrateIn,
            self.event_flow(flow.0),
            mf.entries.len() as u64,
        );
        Ok(())
    }
}

/// One packet in transit between shards: the packet plus its exact
/// (source-axis, pre-quantization) finishing rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigratedEntry {
    /// The packet, flow id still in the source shard's local space
    /// ([`HwScheduler::install_flow`] rewrites it).
    pub packet: Packet,
    /// The rank the source shard's policy assigned, on the source
    /// shard's virtual-time axis.
    pub finish: VirtualTime,
}

/// A flow's complete portable state: its queued backlog (service
/// order, exact ranks) and the rank bookkeeping needed to continue the
/// flow's relative schedule on another shard. Produced by
/// [`HwScheduler::extract_flow`], consumed by
/// [`HwScheduler::install_flow`]; plain data, so it crosses worker
/// channels as-is.
#[derive(Debug, Clone, PartialEq)]
pub struct MigratedFlow {
    /// Queued packets in service order.
    pub entries: Vec<MigratedEntry>,
    /// The flow's last finishing rank on the source shard (its
    /// [`RankPolicy::flow_finish`]), which the destination adopts so
    /// the flow cannot dodge its backlog debt by migrating.
    pub last_finish: VirtualTime,
    /// The source shard's rank floor at extraction — the anchor
    /// [`VClockXlat`] re-bases the ranks from.
    pub floor: VirtualTime,
}

impl MigratedFlow {
    /// Queued packets being moved.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the flow had no queued backlog (migration then moves
    /// only its rank bookkeeping).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One checkpointed queue entry: the sorter tag, its quantizer tick and
/// FIFO stamp, the exact rank, the enqueue cycle stamp, and the packet.
struct CkptEntry {
    tag: Tag,
    tick: u64,
    stamp: u64,
    finish: VirtualTime,
    enq_cycle: u64,
    pkt: Packet,
}

/// Packs an admission policy into one checkpoint word (tag byte plus
/// WRED parameters), so restore can refuse a mismatched configuration.
fn admission_word(a: AdmissionPolicy) -> u64 {
    match a {
        AdmissionPolicy::TailDrop => 0,
        AdmissionPolicy::PushOut => 1,
        AdmissionPolicy::Wred {
            min_pct,
            max_pct,
            max_p_pm,
        } => 2 | (min_pct as u64) << 8 | (max_pct as u64) << 16 | (max_p_pm as u64) << 24,
    }
}

/// First eight bytes of a rank policy's name packed little-endian —
/// enough to tell the seven shipped policies apart at restore.
fn policy_name_word(name: &str) -> u64 {
    let mut w = 0u64;
    for (i, b) in name.bytes().take(8).enumerate() {
        w |= (b as u64) << (8 * i);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::FlowId;

    fn pkt(seq: u64, flow: u32, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(at),
            seq,
        }
    }

    fn flows(weights: &[f64]) -> Vec<FlowSpec> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| FlowSpec::new(FlowId(i as u32), w, 1e6))
            .collect()
    }

    fn sched(weights: &[f64]) -> HwScheduler {
        HwScheduler::new(&flows(weights), 1e9, SchedulerConfig::default())
    }

    #[test]
    fn serves_in_wfq_tag_order() {
        let mut s = sched(&[1.0, 1.0]);
        // Flow 0 sends a big packet, flow 1 three small ones: the small
        // finishing tags win.
        s.enqueue(pkt(0, 0, 0.0, 1500)).unwrap();
        for i in 1..=3 {
            s.enqueue(pkt(i, 1, 0.0, 100)).unwrap();
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue()).map(|p| p.seq).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
        assert!(s.is_empty());
    }

    #[test]
    fn weights_bias_the_order() {
        let mut s = sched(&[1.0, 8.0]);
        s.enqueue(pkt(0, 0, 0.0, 1000)).unwrap(); // F = 8000
        s.enqueue(pkt(1, 1, 0.0, 1000)).unwrap(); // F = 1000
        assert_eq!(s.dequeue().unwrap().seq, 1);
    }

    #[test]
    fn hardware_cost_is_four_cycles_per_packet() {
        let mut s = sched(&[1.0, 1.0, 1.0, 1.0]);
        for i in 0..400 {
            s.enqueue(pkt(i, (i % 4) as u32, i as f64 * 1e-5, 300))
                .unwrap();
        }
        for _ in 0..200 {
            s.dequeue().unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.circuit.cycles_per_op(), 4.0);
        assert_eq!(stats.enqueued, 400);
        assert_eq!(stats.dequeued, 200);
        assert_eq!(stats.inversions, 0);
    }

    #[test]
    fn interleaved_service_matches_software_wfq_order() {
        // The hardware path (quantized tags) must agree with the software
        // WFQ scheduler up to quantization ties. A 20-bit geometry with
        // one virtual unit per tick keeps quantization fine enough that
        // ties are the only possible divergence.
        use fairq::{Scheduler, Wfq};
        let fl = flows(&[1.0, 3.0]);
        let mut hw = HwScheduler::new(
            &fl,
            1e6,
            SchedulerConfig {
                geometry: Geometry::new(5, 4),
                tick_scale: 1.0,
                ..SchedulerConfig::default()
            },
        );
        let mut sw = Wfq::new(&fl, 1e6);
        // A third clock recomputes each packet's exact finishing tag for
        // order validation (identical inputs => identical tags).
        let mut oracle = fairq::GpsVirtualClock::new(&[1.0, 3.0], 1e6);
        let mut trace = Vec::new();
        for i in 0..50u64 {
            let f = (i % 2) as u32;
            let bytes = 200 + ((i * 97) % 1100) as u32;
            trace.push(pkt(i, f, i as f64 * 1e-4, bytes));
        }
        let mut finish_of = std::collections::HashMap::new();
        for p in &trace {
            hw.enqueue(*p).unwrap();
            sw.on_arrival(*p);
            let (_, f) = oracle.on_arrival(p.flow, p.size_bits(), p.arrival);
            finish_of.insert(p.seq, f.value());
        }
        let hw_order: Vec<u64> = std::iter::from_fn(|| hw.dequeue()).map(|p| p.seq).collect();
        let sw_order: Vec<u64> = std::iter::from_fn(|| sw.select(Time(1.0)))
            .map(|p| p.seq)
            .collect();
        // Same packets served.
        let mut a = hw_order.clone();
        let mut b = sw_order.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // The hardware order is a valid quantized-WFQ order: quantized
        // finishing tags never decrease along the service sequence.
        for w in hw_order.windows(2) {
            let (f0, f1) = (finish_of[&w[0]].floor(), finish_of[&w[1]].floor());
            assert!(f0 <= f1, "hw served {f0} after {f1}");
        }
        // And it agrees with software WFQ everywhere except (at most)
        // quantization ties.
        let disagreements = hw_order
            .iter()
            .zip(&sw_order)
            .filter(|(x, y)| x != y)
            .count();
        assert!(
            disagreements * 10 <= hw_order.len(),
            "hw and sw orders diverge too much: {disagreements}/{}",
            hw_order.len()
        );
        assert_eq!(hw.stats().clamped, 0);
    }

    #[test]
    fn buffer_full_is_reported_and_recoverable() {
        let mut s = HwScheduler::new(
            &flows(&[1.0]),
            1e9,
            SchedulerConfig {
                capacity: 2,
                ..SchedulerConfig::default()
            },
        );
        s.enqueue(pkt(0, 0, 0.0, 100)).unwrap();
        s.enqueue(pkt(1, 0, 0.0, 100)).unwrap();
        assert!(matches!(
            s.enqueue(pkt(2, 0, 0.0, 100)),
            Err(SchedulerError::BufferFull { capacity: 2 })
        ));
        s.dequeue().unwrap();
        s.enqueue(pkt(3, 0, 0.0, 100)).unwrap();
    }

    #[test]
    fn unknown_flow_rejected() {
        let mut s = sched(&[1.0]);
        assert!(matches!(
            s.enqueue(pkt(0, 5, 0.0, 100)),
            Err(SchedulerError::UnknownFlow { flow: 5, flows: 1 })
        ));
    }

    #[test]
    fn long_run_wraps_cleanly_under_wrap_policy() {
        // Drive virtual time through several laps of the 12-bit space;
        // the quantizer must recycle sections and the sorter must stay
        // coherent, with at most transient boundary inversions.
        let mut s = HwScheduler::new(
            &flows(&[1.0]),
            1e6,
            SchedulerConfig {
                tick_scale: 10.0,
                wrap_policy: WrapPolicy::Wrap,
                ..SchedulerConfig::default()
            },
        );
        // Each 125-byte packet advances the busy flow's tag by 1000
        // virtual units = 100 ticks, so 3000 packets sweep ~70 laps of
        // the 4096-tick space. Wrap-mode inversions make boundary
        // stragglers (old-lap tags) linger behind freshly wrapped small
        // tags, so the run drains fully every 25 packets — the service
        // lulls that keep the live window inside the lap, mirroring how
        // the fabricated circuit relies on the window staying bounded.
        let mut seq = 0u64;
        let mut t = 0.0;
        for _ in 0..120 {
            for _ in 0..25 {
                t += 1e-3;
                s.enqueue(pkt(seq, 0, t, 125)).unwrap();
                seq += 1;
                s.dequeue().unwrap();
            }
            while s.dequeue().is_some() {}
        }
        let stats = s.stats();
        assert_eq!(stats.dequeued, 3000);
        // Inversions are possible only at lap boundaries; they must be a
        // tiny fraction of the traffic.
        assert!(
            stats.inversions <= 60,
            "too many inversions: {}",
            stats.inversions
        );
    }

    #[test]
    fn saturate_policy_never_inverts() {
        let mut s = HwScheduler::new(
            &flows(&[1.0, 1.0]),
            1e6,
            SchedulerConfig {
                tick_scale: 10.0,
                wrap_policy: WrapPolicy::Saturate,
                ..SchedulerConfig::default()
            },
        );
        let mut seq = 0u64;
        let mut t = 0.0;
        for i in 0..3000 {
            t += 1e-3;
            s.enqueue(pkt(seq, (i % 2) as u32, t, 125)).unwrap();
            seq += 1;
            if seq.is_multiple_of(2) {
                s.dequeue().unwrap();
            }
        }
        while s.dequeue().is_some() {}
        assert_eq!(s.stats().inversions, 0);
    }

    #[test]
    fn sort_trace_convenience() {
        let mut s = sched(&[1.0, 2.0]);
        let trace = vec![pkt(0, 0, 0.0, 1000), pkt(1, 1, 0.0, 1000)];
        let served = s.sort_trace(&trace).unwrap();
        assert_eq!(served.len(), 2);
        assert_eq!(served[0].seq, 1, "heavier weight finishes first");
    }

    #[test]
    fn push_out_admits_better_ranked_arrivals() {
        let mut s = HwScheduler::new(
            &flows(&[1.0, 1.0]),
            1e6,
            SchedulerConfig {
                capacity: 2,
                admission: AdmissionPolicy::PushOut,
                ..SchedulerConfig::default()
            },
        );
        // Two big flow-0 packets fill the buffer with large tags...
        s.enqueue(pkt(0, 0, 0.0, 1500)).unwrap();
        s.enqueue(pkt(1, 0, 0.0, 1500)).unwrap();
        // ...a small flow-1 packet outranks the worst (seq 1) and takes
        // its slot...
        s.enqueue(pkt(2, 1, 0.0, 100)).unwrap();
        // ...while a further flow-0 packet ranks worst itself and is
        // tail-dropped as usual.
        assert!(matches!(
            s.enqueue(pkt(3, 0, 0.0, 1500)),
            Err(SchedulerError::BufferFull { capacity: 2 })
        ));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue()).map(|p| p.seq).collect();
        assert_eq!(order, vec![2, 0]);
        assert_eq!(s.stats().pushed_out, 1);
    }

    #[test]
    fn tail_drop_never_pushes_out() {
        let mut s = HwScheduler::new(
            &flows(&[1.0, 1.0]),
            1e6,
            SchedulerConfig {
                capacity: 2,
                ..SchedulerConfig::default()
            },
        );
        s.enqueue(pkt(0, 0, 0.0, 1500)).unwrap();
        s.enqueue(pkt(1, 0, 0.0, 1500)).unwrap();
        assert!(s.enqueue(pkt(2, 1, 0.0, 100)).is_err());
        assert_eq!(s.stats().pushed_out, 0);
    }

    #[test]
    fn srpt_policy_serves_shortest_first() {
        use fairq::SrptRank;
        let fl = flows(&[1.0, 1.0]);
        let mut s = HwScheduler::<SortRetrieveCircuit, SrptRank>::with_backend_and_policy(
            &fl,
            1e9,
            SchedulerConfig {
                tick_scale: 8.0,
                ..SchedulerConfig::default()
            },
            &SrptRank,
        );
        s.enqueue(pkt(0, 0, 0.0, 1500)).unwrap();
        s.enqueue(pkt(1, 1, 0.0, 40)).unwrap();
        s.enqueue(pkt(2, 0, 0.0, 400)).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue()).map(|p| p.seq).collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(s.policy().name(), "srpt");
    }

    #[test]
    #[should_panic(expected = "requires CleanupPolicy::Eager")]
    fn non_monotone_policy_rejects_lazy_cleanup() {
        use fairq::SrptRank;
        let _ = HwScheduler::<SortRetrieveCircuit, SrptRank>::with_backend_and_policy(
            &flows(&[1.0]),
            1e9,
            SchedulerConfig {
                cleanup: CleanupPolicy::Lazy,
                ..SchedulerConfig::default()
            },
            &SrptRank,
        );
    }

    #[test]
    fn error_display() {
        let e = SchedulerError::BufferFull { capacity: 7 };
        assert_eq!(e.to_string(), "shared packet buffer full (7 packets)");
        let e = SchedulerError::UnknownFlow { flow: 3, flows: 2 };
        assert_eq!(e.to_string(), "flow 3 not configured (2 flows)");
    }

    #[test]
    fn admission_policy_parses_and_displays_wred() {
        assert_eq!(
            "wred".parse::<AdmissionPolicy>().unwrap(),
            AdmissionPolicy::wred()
        );
        assert_eq!(AdmissionPolicy::wred().to_string(), "wred");
        let custom: AdmissionPolicy = "wred:10:60:500".parse().unwrap();
        assert_eq!(
            custom,
            AdmissionPolicy::Wred {
                min_pct: 10,
                max_pct: 60,
                max_p_pm: 500
            }
        );
        assert_eq!(custom.to_string(), "wred:10:60:500");
        assert_eq!(
            custom.to_string().parse::<AdmissionPolicy>().unwrap(),
            custom
        );
        assert!("wred:90:50:100".parse::<AdmissionPolicy>().is_err());
        assert!("wred:0:101:100".parse::<AdmissionPolicy>().is_err());
        assert!("wred:0:50:2000".parse::<AdmissionPolicy>().is_err());
        assert!("wred:1:2".parse::<AdmissionPolicy>().is_err());
    }

    #[test]
    fn checkpoint_restore_continues_the_departure_sequence() {
        let fl = flows(&[1.0, 3.0, 2.0]);
        let cfg = SchedulerConfig::default();
        let mut original = HwScheduler::new(&fl, 1e9, cfg);
        for i in 0..60u64 {
            original
                .enqueue(pkt(
                    i,
                    (i % 3) as u32,
                    i as f64 * 1e-6,
                    200 + (i * 37 % 900) as u32,
                ))
                .unwrap();
        }
        for _ in 0..15 {
            original.dequeue().unwrap();
        }
        let ckpt = original.checkpoint();
        let mut restored =
            HwScheduler::<SortRetrieveCircuit>::restore(&fl, 1e9, cfg, &WfqRank::default(), &ckpt)
                .unwrap();
        // Both continue: more arrivals, then drain. Sequences must agree
        // packet for packet.
        let mut tails = Vec::new();
        for s in [&mut original, &mut restored] {
            for i in 60..80u64 {
                s.enqueue(pkt(i, (i % 3) as u32, 1e-3 + i as f64 * 1e-6, 400))
                    .unwrap();
            }
            tails.push(
                std::iter::from_fn(|| s.dequeue())
                    .map(|p| p.seq)
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(tails[0], tails[1], "restored departure sequence diverged");
        let (a, b) = (original.stats(), restored.stats());
        assert_eq!(a.enqueued, b.enqueued);
        assert_eq!(a.dequeued, b.dequeued);
    }

    #[test]
    fn checkpoint_is_byte_deterministic_and_nondestructive() {
        let fl = flows(&[1.0, 2.0]);
        let mut s = sched(&[1.0, 2.0]);
        for i in 0..30u64 {
            s.enqueue(pkt(i, (i % 2) as u32, i as f64 * 1e-6, 500))
                .unwrap();
        }
        let first = s.checkpoint();
        first.verify().unwrap();
        // The read reinstalled the queue: a second checkpoint of the
        // same logical state is byte-identical (the CI determinism gate).
        let second = s.checkpoint();
        assert_eq!(first.to_bytes(), second.to_bytes());
        // And an identically-driven scheduler checkpoints identically.
        let mut twin = HwScheduler::new(&fl, 1e9, SchedulerConfig::default());
        for i in 0..30u64 {
            twin.enqueue(pkt(i, (i % 2) as u32, i as f64 * 1e-6, 500))
                .unwrap();
        }
        assert_eq!(twin.checkpoint().to_bytes(), first.to_bytes());
        // The queue still drains completely after all three reads.
        assert_eq!(std::iter::from_fn(|| s.dequeue()).count(), 30);
    }

    #[test]
    fn corrupted_checkpoints_are_refused_at_restore() {
        use faultsim::FaultTarget;
        let fl = flows(&[1.0]);
        let mut s = sched(&[1.0]);
        s.enqueue(pkt(0, 0, 0.0, 100)).unwrap();
        let mut ckpt = s.checkpoint();
        ckpt.inject_fault(5, 1 << 13);
        assert!(
            HwScheduler::<SortRetrieveCircuit>::restore(
                &fl,
                1e9,
                SchedulerConfig::default(),
                &WfqRank::default(),
                &ckpt
            )
            .is_err(),
            "bit-flipped checkpoint must not restore"
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn restore_refuses_a_mismatched_capacity() {
        let fl = flows(&[1.0]);
        let mut s = sched(&[1.0]);
        s.enqueue(pkt(0, 0, 0.0, 100)).unwrap();
        let ckpt = s.checkpoint();
        let small = SchedulerConfig {
            capacity: 8,
            ..SchedulerConfig::default()
        };
        let _ = HwScheduler::<SortRetrieveCircuit>::restore(
            &fl,
            1e9,
            small,
            &WfqRank::default(),
            &ckpt,
        );
    }

    #[test]
    fn wred_sheds_worst_ranked_backlog_before_the_buffer_fills() {
        let mut s = HwScheduler::new(
            &flows(&[1.0, 1.0]),
            1e6,
            SchedulerConfig {
                capacity: 16,
                admission: AdmissionPolicy::Wred {
                    min_pct: 25,
                    max_pct: 50,
                    max_p_pm: 1000,
                },
                ..SchedulerConfig::default()
            },
        );
        // Flow 0's big packets pile up worst-ranked backlog; flow 1's
        // small packets keep arriving with better ranks. Above 50%
        // occupancy every flow-1 arrival evicts flow 0's maximum.
        for i in 0..12u64 {
            s.enqueue(pkt(i, 0, 0.0, 1500)).unwrap();
        }
        for i in 12..20u64 {
            s.enqueue(pkt(i, 1, 0.0, 100)).unwrap();
        }
        let stats = s.stats();
        assert!(
            stats.pushed_out > 0,
            "the unconditional region above max_pct must evict"
        );
        assert!(
            s.len() < 20,
            "eviction keeps occupancy below the raw arrival count"
        );
        // Every flow-1 packet survived (they outrank the backlog).
        let served: Vec<u64> = std::iter::from_fn(|| s.dequeue()).map(|p| p.seq).collect();
        for seq in 12..20 {
            assert!(served.contains(&seq), "best-ranked packet {seq} evicted");
        }
    }

    #[test]
    fn wred_decisions_are_deterministic_across_runs() {
        let run = || {
            let mut s = HwScheduler::new(
                &flows(&[1.0, 2.0]),
                1e6,
                SchedulerConfig {
                    capacity: 32,
                    admission: AdmissionPolicy::wred(),
                    ..SchedulerConfig::default()
                },
            );
            for i in 0..200u64 {
                let _ = s.enqueue(pkt(
                    i,
                    (i % 2) as u32,
                    i as f64 * 1e-6,
                    300 + (i * 53 % 1100) as u32,
                ));
            }
            let order: Vec<u64> = std::iter::from_fn(|| s.dequeue()).map(|p| p.seq).collect();
            (order, s.stats().pushed_out)
        };
        assert_eq!(run(), run(), "counter-keyed coin must reproduce exactly");
    }

    #[test]
    fn extract_and_install_migrate_a_flow_between_schedulers() {
        let fl = flows(&[1.0, 2.0]);
        let cfg = SchedulerConfig::default();
        let mut src = HwScheduler::new(&fl, 1e9, cfg);
        let mut dst = HwScheduler::new(&fl, 1e9, cfg);
        // Advance the source clock well past the destination's so the
        // translation actually has work to do.
        for i in 0..40u64 {
            src.enqueue(pkt(i, (i % 2) as u32, i as f64 * 1e-6, 1000))
                .unwrap();
        }
        for _ in 0..20 {
            src.dequeue().unwrap();
        }
        let queued_before = src.len();
        let mf = src.extract_flow(FlowId(1));
        assert!(!mf.is_empty(), "flow 1 had backlog to move");
        assert_eq!(
            src.len() + mf.len(),
            queued_before,
            "extraction is lossless"
        );
        assert_eq!(src.stats().migrated_out, mf.len() as u64);
        // Source no longer serves flow 1.
        let rest: Vec<Packet> = std::iter::from_fn(|| src.dequeue()).collect();
        assert!(rest.iter().all(|p| p.flow == FlowId(0)));
        // Destination installs and serves the backlog in order,
        // interleaved fairly with its own traffic.
        dst.enqueue(pkt(100, 0, 0.0, 500)).unwrap();
        dst.install_flow(FlowId(1), &mf).unwrap();
        assert_eq!(dst.stats().migrated_in, mf.len() as u64);
        assert_eq!(dst.stats().enqueued, 1, "installs are not arrivals");
        let served: Vec<Packet> = std::iter::from_fn(|| dst.dequeue()).collect();
        let flow1: Vec<u64> = served
            .iter()
            .filter(|p| p.flow == FlowId(1))
            .map(|p| p.seq)
            .collect();
        let expected: Vec<u64> = mf.entries.iter().map(|e| e.packet.seq).collect();
        assert_eq!(flow1, expected, "per-flow order survives migration");
        assert_eq!(
            served.len(),
            mf.len() + 1,
            "nothing lost, nothing duplicated"
        );
    }

    #[test]
    fn install_refuses_a_backlog_that_does_not_fit() {
        let fl = flows(&[1.0, 1.0]);
        let mut src = HwScheduler::new(&fl, 1e9, SchedulerConfig::default());
        for i in 0..8u64 {
            src.enqueue(pkt(i, 1, 0.0, 500)).unwrap();
        }
        let mf = src.extract_flow(FlowId(1));
        let mut dst = HwScheduler::new(
            &fl,
            1e9,
            SchedulerConfig {
                capacity: 4,
                ..SchedulerConfig::default()
            },
        );
        assert!(matches!(
            dst.install_flow(FlowId(1), &mf),
            Err(SchedulerError::BufferFull { capacity: 4 })
        ));
        assert!(
            dst.is_empty(),
            "a refused install leaves the shard untouched"
        );
        assert_eq!(dst.stats().migrated_in, 0);
    }

    #[test]
    fn migration_preserves_the_flows_rank_debt() {
        // A flow that built up finishing-tag debt on the source cannot
        // reset to the destination floor by migrating: its adopted
        // history keeps its next arrival ranked behind a fresh flow.
        let fl = flows(&[1.0, 1.0]);
        let mut src = HwScheduler::new(&fl, 1e9, SchedulerConfig::default());
        for i in 0..10u64 {
            src.enqueue(pkt(i, 1, 0.0, 1500)).unwrap();
        }
        let mf = src.extract_flow(FlowId(1));
        let mut dst = HwScheduler::new(&fl, 1e9, SchedulerConfig::default());
        dst.install_flow(FlowId(1), &mf).unwrap();
        // Same-size packets arrive simultaneously on both flows: the
        // fresh flow 0 must finish first — flow 1 still owes its debt.
        dst.enqueue(pkt(100, 0, 0.0, 1000)).unwrap();
        dst.enqueue(pkt(200, 1, 0.0, 1000)).unwrap();
        let served: Vec<u64> = std::iter::from_fn(|| dst.dequeue())
            .map(|p| p.seq)
            .collect();
        let pos = |seq: u64| served.iter().position(|&s| s == seq).unwrap();
        assert!(
            pos(100) < pos(200),
            "migrated flow dodged its backlog debt: {served:?}"
        );
    }
}
