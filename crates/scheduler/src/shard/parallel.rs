//! Thread-per-shard parallel frontend: real concurrency for the
//! multi-port scheduler.
//!
//! [`super::ShardedScheduler`] models the hardware's per-port
//! replication faithfully but executes every shard on the caller's
//! thread, so its aggregate throughput on a real machine is bounded by
//! one core. [`ParallelShardedScheduler`] keeps the exact same
//! semantics — flow-affinity routing by [`super::shard_of`], global↔local
//! id remapping, per-shard WFQ order — and runs each port's
//! [`HwScheduler`] on its **own OS worker thread**, the software
//! analogue of N independent sort/retrieve circuits clocking
//! concurrently.
//!
//! # Architecture
//!
//! * **One worker thread per port.** Each worker owns its shard's
//!   complete `HwScheduler` (sorter + packet buffer + GPS virtual
//!   clock); nothing is shared between workers, mirroring the hardware
//!   where replicated circuits share no state.
//! * **Bounded channels, batched handoff.** The frontend talks to each
//!   worker over a bounded command channel and a bounded reply channel.
//!   Commands carry whole batches (the cross-thread analogue of
//!   [`super::ShardedScheduler::enqueue_batch`]'s per-shard bucketing),
//!   so the per-packet handoff cost is amortized across the batch.
//! * **Scatter/gather concurrency.** Batch operations first send every
//!   involved worker its command, then collect the replies: the shards'
//!   work overlaps in real time while the frontend waits.
//! * **Deterministic service order.** A flow's packets all pass through
//!   one shard in arrival order, and each shard's WFQ order is
//!   deterministic, so per-flow dequeue sequences are **identical** to
//!   the sequential frontend's regardless of thread scheduling. The
//!   aggregation paths ([`ParallelShardedScheduler::dequeue`],
//!   [`ParallelShardedScheduler::drain`],
//!   [`ParallelShardedScheduler::dequeue_round`]) reproduce the
//!   sequential work-conserving round-robin exactly, so even the global
//!   interleaving matches.
//! * **Clean shutdown, loud failure.** Dropping the frontend closes the
//!   command channels, joins every worker, and **re-raises any worker
//!   panic** on the calling thread — a crashed shard is never silent
//!   packet loss.
//!
//! # Example
//!
//! ```
//! use scheduler::{ParallelShardedScheduler, SchedulerConfig};
//! use traffic::{FlowId, FlowSpec, Packet, Time};
//!
//! let flows: Vec<FlowSpec> = (0..8)
//!     .map(|i| FlowSpec::new(FlowId(i), 1.0, 1e6))
//!     .collect();
//! // Two ports with different link rates, one worker thread each.
//! let mut fe =
//!     ParallelShardedScheduler::with_port_rates(&flows, &[10e9, 1e9], SchedulerConfig::default());
//! let batch: Vec<Packet> = (0..32)
//!     .map(|seq| Packet {
//!         flow: FlowId((seq % 8) as u32),
//!         size_bytes: 140,
//!         arrival: Time(seq as f64 * 1e-6),
//!         seq,
//!     })
//!     .collect();
//! assert_eq!(fe.enqueue_batch(&batch).unwrap(), 32);
//! let served = fe.drain();
//! assert_eq!(served.len(), 32);
//! // Workers are joined when `fe` drops.
//! ```

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use fairq::{RankPolicy, WfqRank};
use statesync::{Placement, Rebalancer, RebalancerConfig, ShardLoad};
use tagsort::{SortBackend, SortRetrieveCircuit};
use telemetry::{Counter, Telemetry};
use traffic::{FlowId, FlowSpec, Packet};

use crate::hwsched::{
    HwScheduler, MigratedFlow, SchedulerConfig, SchedulerError, SchedulerStats, SojournStamp,
};

use super::{aggregate_stats, check_rates, BatchError, Routing, ShardError, ShardMap, ShardStats};

/// Commands the frontend sends to a shard worker. Packets carry the
/// shard's **local** flow ids (the frontend routes and renumbers before
/// the handoff, exactly like the sequential frontend).
enum Command {
    /// Enqueue the batch in order; reply with [`Reply::Enqueued`].
    Enqueue(Vec<Packet>),
    /// Dequeue up to `max` packets in tag order; reply with
    /// [`Reply::Packets`].
    Dequeue { max: usize },
    /// Dequeue everything; reply with [`Reply::Packets`].
    DequeueAll,
    /// Reply with [`Reply::Stats`].
    Stats,
    /// Run end-of-run fault accounting on the shard; reply with
    /// [`Reply::FaultTotals`].
    ReconcileFaults,
    /// Extract one flow's queued backlog and rank state for migration
    /// (local flow id); reply with [`Reply::Extracted`].
    ExtractFlow {
        /// The flow to pull out (local id).
        flow: FlowId,
    },
    /// Install a migrated flow's backlog (local flow id); reply with
    /// [`Reply::Installed`].
    InstallFlow {
        /// The flow to install under (local id).
        flow: FlowId,
        /// The backlog extracted from the source shard.
        backlog: Box<MigratedFlow>,
    },
}

/// Worker replies, one per command, in command order.
enum Reply {
    /// Outcome of an [`Command::Enqueue`] batch: packets admitted before
    /// the first failure, and the failure if one occurred.
    Enqueued {
        accepted: usize,
        error: Option<SchedulerError>,
    },
    /// Dequeued packets (local flow ids) in the shard's WFQ order, each
    /// with its circuit-cycle sojourn stamps.
    Packets(Vec<(Packet, SojournStamp)>),
    /// The shard's scheduler statistics.
    Stats(Box<SchedulerStats>),
    /// The shard's reconciled `(injected, detected, repaired, silent)`
    /// fault-ledger totals.
    FaultTotals((u64, u64, u64, u64)),
    /// A flow's extracted backlog and rank state.
    Extracted(Box<MigratedFlow>),
    /// Outcome of an install: `None` on success; on refusal the error
    /// **and the backlog itself**, so the frontend can reinstall it on
    /// the source shard without ever cloning it.
    Installed {
        /// The refusal and the returned backlog, if the shard said no.
        refused: Option<(SchedulerError, Box<MigratedFlow>)>,
    },
}

/// Commands in flight per worker. Every public operation is
/// scatter/gather (at most one outstanding command per worker), so a
/// small constant bound never blocks and still caps channel memory.
const CHANNEL_DEPTH: usize = 2;

/// The worker thread's whole life: apply commands to the owned shard in
/// order, reply to each, exit when the frontend hangs up.
fn worker_loop<B: SortBackend, P: RankPolicy>(
    mut shard: HwScheduler<B, P>,
    commands: Receiver<Command>,
    replies: SyncSender<Reply>,
) {
    for cmd in commands {
        let reply = match cmd {
            Command::Enqueue(batch) => {
                let mut accepted = 0;
                let mut error = None;
                for pkt in batch {
                    match shard.enqueue(pkt) {
                        Ok(()) => accepted += 1,
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                Reply::Enqueued { accepted, error }
            }
            Command::Dequeue { max } => {
                let mut out = Vec::with_capacity(max.min(shard.len()));
                while out.len() < max {
                    match shard.dequeue_stamped() {
                        Some(p) => out.push(p),
                        None => break,
                    }
                }
                Reply::Packets(out)
            }
            Command::DequeueAll => {
                Reply::Packets(std::iter::from_fn(|| shard.dequeue_stamped()).collect())
            }
            Command::Stats => Reply::Stats(Box::new(shard.stats())),
            Command::ReconcileFaults => {
                shard.reconcile_faults();
                Reply::FaultTotals(shard.fault_totals())
            }
            Command::ExtractFlow { flow } => Reply::Extracted(Box::new(shard.extract_flow(flow))),
            Command::InstallFlow { flow, backlog } => Reply::Installed {
                refused: match shard.install_flow(flow, &backlog) {
                    Ok(()) => None,
                    Err(e) => Some((e, backlog)),
                },
            },
        };
        if replies.send(reply).is_err() {
            // Frontend dropped mid-command; nothing left to serve.
            break;
        }
    }
    // Shutdown path: reconcile before the shard (and its ledger) drops,
    // so a frontend that never asked explicitly still gets the silent-
    // corruption accounting folded into the shared telemetry.
    shard.reconcile_faults();
}

/// One port's worker: its channels and join handle.
struct Worker {
    /// `None` once shutdown has begun (dropping the sender is what
    /// tells the worker to exit).
    commands: Option<SyncSender<Command>>,
    replies: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

/// A multi-port egress frontend that runs one OS worker thread per
/// port, each driving that port's [`HwScheduler`].
///
/// Semantics match [`super::ShardedScheduler`] exactly (same routing, same
/// per-flow order, same work-conserving round-robin on the aggregation
/// paths); the difference is that shard work executes concurrently, so
/// on a multi-core host the frontend's wall-clock throughput scales
/// with the port count instead of being bounded by one core. See the
/// module docs for the architecture and
/// [`ParallelShardedScheduler::drain`]/[`ParallelShardedScheduler::dequeue_round`]
/// for the batched service paths that realize the parallelism.
///
/// Flow ids stay global at this interface, as in the sequential
/// frontend.
#[derive(Debug)]
pub struct ParallelShardedScheduler<
    B: SortBackend + Send + 'static = SortRetrieveCircuit,
    P: RankPolicy + Send + 'static = WfqRank,
> {
    workers: Vec<Worker>,
    /// Pins the backend and policy types the workers were built with,
    /// so the sequential and parallel frontends share one
    /// type-parameter vocabulary even though the schedulers themselves
    /// live on the worker threads.
    backend: std::marker::PhantomData<(B, P)>,
    /// Each port's egress link rate, bits per second.
    rates: Vec<f64>,
    /// Global flow id → (initial port, local flow id). The live port is
    /// [`ParallelShardedScheduler::map`]'s answer; this keeps the local
    /// id.
    route: Vec<(usize, u32)>,
    /// Per port: local flow id → global flow id.
    global_of: Vec<Vec<u32>>,
    /// Live flow → port ownership (mutated by migrations).
    map: ShardMap,
    /// Per-flow admitted-packet counts (global ids), maintained from
    /// admission replies — the rebalancer's victim-selection signal.
    flow_arrivals: Vec<u64>,
    /// Cumulative admitted packets per port (from admission replies).
    admitted: Vec<u64>,
    /// Per-port `admitted` at the last rebalance round, for arrival
    /// deltas.
    last_admitted: Vec<u64>,
    /// Migration advisor (None until
    /// [`ParallelShardedScheduler::with_rebalancer`]).
    rebalancer: Option<Rebalancer>,
    /// Completed flow migrations.
    migrations: u64,
    /// Queued packets per port, maintained from command replies (exact:
    /// every mutation flows through a reply).
    occupancy: Vec<usize>,
    /// Frontend-wide high-water mark of queued packets, observed at
    /// reply boundaries (see [`ParallelShardedScheduler::stats`]).
    peak: usize,
    /// Next port the work-conserving round-robin inspects.
    cursor: usize,
    /// Packets routed to a shard (disabled unless built with
    /// [`ParallelShardedScheduler::with_telemetry`]).
    handoffs: Counter,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("alive", &self.commands.is_some())
            .finish()
    }
}

impl ParallelShardedScheduler {
    /// Creates a frontend of `ports` output ports at a uniform
    /// `port_rate_bps`, spawning one worker thread per port, each
    /// driving a trie-backed scheduler. See
    /// [`super::ShardedScheduler::new`] for the shared routing semantics and
    /// [`ParallelShardedScheduler::with_port_rates`] for heterogeneous
    /// links.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero, the rate is not positive and finite,
    /// flow ids are not dense, or the hash leaves some port without any
    /// flow.
    pub fn new(
        flows: &[FlowSpec],
        port_rate_bps: f64,
        ports: usize,
        config: SchedulerConfig,
    ) -> Self {
        Self::with_backend(flows, port_rate_bps, ports, config)
    }

    /// Creates a frontend with one output port per entry of
    /// `port_rates_bps` (each port's WFQ clock runs at its own link
    /// rate), spawning one worker thread per port.
    ///
    /// # Panics
    ///
    /// Panics if `port_rates_bps` is empty, any rate is not positive
    /// and finite, flow ids are not dense, or the hash leaves some port
    /// without any flow.
    pub fn with_port_rates(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
    ) -> Self {
        Self::with_backend_port_rates(flows, port_rates_bps, config)
    }

    /// Creates a frontend whose shards all record into `tel` (each port
    /// as its own telemetry shard). Workers own their schedulers, so the
    /// registry must be connected **before** the threads spawn — which
    /// is why this is a constructor rather than an attach method; the
    /// handles are `Send` (atomics behind `Arc`s) and recording is
    /// lock-free, so workers never contend on telemetry.
    ///
    /// # Panics
    ///
    /// As [`ParallelShardedScheduler::with_port_rates`]; additionally if
    /// the registry is enabled with a shard count different from the
    /// port count.
    pub fn with_telemetry(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
        tel: &Telemetry,
    ) -> Self {
        Self::with_backend_telemetry(flows, port_rates_bps, config, tel)
    }

    /// [`ParallelShardedScheduler::new`] with an explicit [`Placement`]
    /// mode (see [`super::ShardedScheduler::with_placement`] — the
    /// semantics are shared).
    ///
    /// # Panics
    ///
    /// As [`ParallelShardedScheduler::new`], plus: dynamic placement
    /// requires `config.cleanup == CleanupPolicy::Eager`.
    pub fn with_placement(
        flows: &[FlowSpec],
        port_rate_bps: f64,
        ports: usize,
        config: SchedulerConfig,
        placement: Placement,
    ) -> Self {
        assert!(ports > 0, "at least one port required");
        Self::with_policy_telemetry_placement(
            flows,
            &vec![port_rate_bps; ports],
            config,
            &WfqRank::default(),
            &Telemetry::disabled(),
            placement,
        )
    }
}

impl<B: SortBackend + Send + 'static, P: RankPolicy + Send + 'static>
    ParallelShardedScheduler<B, P>
{
    /// [`ParallelShardedScheduler::new`] with the sorting backend chosen
    /// by the type parameter: every worker's scheduler is built from `B`
    /// (see [`SortBackend::build`]) and ranks with `P`'s [`Default`].
    ///
    /// # Panics
    ///
    /// As [`ParallelShardedScheduler::new`].
    pub fn with_backend(
        flows: &[FlowSpec],
        port_rate_bps: f64,
        ports: usize,
        config: SchedulerConfig,
    ) -> Self
    where
        P: Default,
    {
        assert!(ports > 0, "at least one port required");
        Self::with_backend_port_rates(flows, &vec![port_rate_bps; ports], config)
    }

    /// [`ParallelShardedScheduler::with_port_rates`] with the sorting
    /// backend chosen by the type parameter.
    ///
    /// # Panics
    ///
    /// As [`ParallelShardedScheduler::with_port_rates`].
    pub fn with_backend_port_rates(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
    ) -> Self
    where
        P: Default,
    {
        Self::with_backend_telemetry(flows, port_rates_bps, config, &Telemetry::disabled())
    }

    /// [`ParallelShardedScheduler::with_telemetry`] with the sorting
    /// backend chosen by the type parameter.
    ///
    /// # Panics
    ///
    /// As [`ParallelShardedScheduler::with_telemetry`].
    pub fn with_backend_telemetry(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
        tel: &Telemetry,
    ) -> Self
    where
        P: Default,
    {
        Self::with_policy_telemetry(flows, port_rates_bps, config, &P::default(), tel)
    }

    /// [`ParallelShardedScheduler::with_backend_telemetry`] ranking with
    /// `prototype` instead of `P`'s [`Default`]: every worker's
    /// scheduler is built from the same prototype, specialized to that
    /// port's flow subset and rate via [`RankPolicy::for_link`] (pass
    /// [`Telemetry::disabled`] to skip recording).
    ///
    /// # Panics
    ///
    /// As [`ParallelShardedScheduler::with_telemetry`], plus the
    /// policy/cleanup compatibility checks of
    /// [`HwScheduler::with_backend_and_policy`].
    pub fn with_policy_telemetry(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
        prototype: &P,
        tel: &Telemetry,
    ) -> Self {
        Self::with_policy_telemetry_placement(
            flows,
            port_rates_bps,
            config,
            prototype,
            tel,
            Placement::Hash,
        )
    }

    /// [`ParallelShardedScheduler::with_policy_telemetry_placement`]
    /// without a telemetry registry.
    ///
    /// # Panics
    ///
    /// As [`ParallelShardedScheduler::with_policy_telemetry_placement`].
    pub fn with_policy_placement(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
        prototype: &P,
        placement: Placement,
    ) -> Self {
        Self::with_policy_telemetry_placement(
            flows,
            port_rates_bps,
            config,
            prototype,
            &Telemetry::disabled(),
            placement,
        )
    }

    /// [`ParallelShardedScheduler::with_policy_telemetry`] with an
    /// explicit [`Placement`] mode (see
    /// [`super::ShardedScheduler::with_placement`]).
    ///
    /// # Panics
    ///
    /// As [`ParallelShardedScheduler::with_policy_telemetry`], plus:
    /// dynamic placement requires `config.cleanup ==
    /// CleanupPolicy::Eager`.
    pub fn with_policy_telemetry_placement(
        flows: &[FlowSpec],
        port_rates_bps: &[f64],
        config: SchedulerConfig,
        prototype: &P,
        tel: &Telemetry,
        placement: Placement,
    ) -> Self {
        check_rates(port_rates_bps);
        if tel.is_enabled() {
            assert_eq!(
                tel.shards(),
                port_rates_bps.len(),
                "registry shard count must match port count"
            );
        }
        if placement == Placement::Dynamic {
            assert_eq!(
                config.cleanup,
                tagsort::CleanupPolicy::Eager,
                "dynamic placement requires CleanupPolicy::Eager \
                 (flow extraction walks live tree markers)"
            );
        }
        let routing = Routing::build(flows, port_rates_bps.len(), placement);
        let workers = routing
            .local
            .iter()
            .zip(port_rates_bps)
            .enumerate()
            .map(|(port, (fl, &rate))| {
                let mut cfg = config;
                // Every port gets an independent fault stream: same
                // campaign, seed offset by port index — identical to the
                // sequential frontend, so faulted runs agree across both.
                cfg.faults = cfg.faults.map(|f| f.with_seed_offset(port as u64));
                let mut shard =
                    HwScheduler::<B, P>::with_backend_and_policy(fl, rate, cfg, prototype);
                shard.set_global_flow_ids(routing.global_of[port].clone());
                shard.attach_telemetry(tel, port);
                let (cmd_tx, cmd_rx) = sync_channel(CHANNEL_DEPTH);
                let (rep_tx, rep_rx) = sync_channel(CHANNEL_DEPTH);
                let handle = std::thread::Builder::new()
                    .name(format!("shard-{port}"))
                    .spawn(move || worker_loop(shard, cmd_rx, rep_tx))
                    .expect("spawn shard worker");
                Worker {
                    commands: Some(cmd_tx),
                    replies: rep_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        Self {
            workers,
            backend: std::marker::PhantomData,
            rates: port_rates_bps.to_vec(),
            route: routing.route,
            global_of: routing.global_of,
            map: ShardMap::new(flows.len(), port_rates_bps.len(), placement),
            flow_arrivals: vec![0; flows.len()],
            admitted: vec![0; port_rates_bps.len()],
            last_admitted: vec![0; port_rates_bps.len()],
            rebalancer: None,
            migrations: 0,
            occupancy: vec![0; port_rates_bps.len()],
            peak: 0,
            cursor: 0,
            handoffs: tel.counter("shard_handoffs"),
        }
    }

    /// Arms dynamic rebalancing (see
    /// [`super::ShardedScheduler::with_rebalancer`]).
    ///
    /// # Panics
    ///
    /// Panics unless the frontend was built with [`Placement::Dynamic`].
    pub fn with_rebalancer(mut self, cfg: RebalancerConfig) -> Self {
        assert_eq!(
            self.map.placement(),
            Placement::Dynamic,
            "rebalancing requires Placement::Dynamic"
        );
        self.rebalancer = Some(Rebalancer::new(self.workers.len(), cfg));
        self
    }

    /// Number of output ports (= worker threads).
    pub fn ports(&self) -> usize {
        self.workers.len()
    }

    /// Number of configured flows (across all ports).
    pub fn flows(&self) -> usize {
        self.route.len()
    }

    /// One port's egress link rate, bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn port_rate(&self, port: usize) -> f64 {
        self.rates[port]
    }

    /// Total queued packets across all ports (tracked from replies — no
    /// cross-thread round trip).
    pub fn len(&self) -> usize {
        self.occupancy.iter().sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued packets on one port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn port_len(&self, port: usize) -> usize {
        self.occupancy[port]
    }

    /// The port a configured flow is routed to, or `None` for an
    /// unknown flow id. Identical to the sequential frontend's map
    /// (both share [`ShardMap`]); under [`Placement::Dynamic`] the
    /// answer tracks migrations.
    pub fn port_of(&self, flow: FlowId) -> Option<usize> {
        self.map.port_of(flow)
    }

    /// The placement mode the frontend was built with.
    pub fn placement(&self) -> Placement {
        self.map.placement()
    }

    /// The live flow → port ownership table.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Completed flow migrations (see
    /// [`ParallelShardedScheduler::migrate_flow`]).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Sends a command to one worker, converting a closed channel —
    /// a panicked worker — into that panic on this thread.
    fn send(&mut self, port: usize, cmd: Command) {
        let sender = self.workers[port]
            .commands
            .as_ref()
            .expect("worker channel open until drop");
        if sender.send(cmd).is_err() {
            self.propagate_worker_exit(port);
        }
    }

    /// Receives one reply from one worker, converting a closed channel
    /// into the worker's panic.
    fn recv(&mut self, port: usize) -> Reply {
        match self.workers[port].replies.recv() {
            Ok(reply) => reply,
            Err(_) => self.propagate_worker_exit(port),
        }
    }

    /// A worker's channel closed early: join it and re-raise its panic
    /// (a worker only exits early by panicking).
    fn propagate_worker_exit(&mut self, port: usize) -> ! {
        let handle = self.workers[port]
            .handle
            .take()
            .expect("worker joined once");
        match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("worker {port} exited without panic while channels were open"),
        }
    }

    /// Looks up a packet's route, renumbering its flow id into the
    /// shard's local space (same contract as the sequential frontend).
    /// The port comes from the live [`ShardMap`], so packets racing an
    /// in-flight migration are routed to the flow's **new** owner — the
    /// install command precedes them in that worker's FIFO, keeping
    /// per-flow order intact.
    fn route_packet(&self, pkt: &Packet) -> Result<(usize, Packet), ShardError> {
        let &(_, local) = self
            .route
            .get(pkt.flow.0 as usize)
            .ok_or(ShardError::UnknownFlow {
                flow: pkt.flow.0,
                flows: self.route.len(),
            })?;
        let port = self
            .map
            .port_of(pkt.flow)
            .expect("flow validated against the route table");
        let mut routed = *pkt;
        routed.flow = FlowId(local);
        Ok((port, routed))
    }

    /// Restores a packet's global flow id on the way out.
    fn restore(&self, port: usize, mut pkt: Packet) -> Packet {
        pkt.flow = FlowId(self.global_of[port][pkt.flow.0 as usize]);
        pkt
    }

    /// Routes one packet to its shard's worker and waits for admission.
    ///
    /// For throughput use [`ParallelShardedScheduler::enqueue_batch`] —
    /// a single packet pays a full channel round trip.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownFlow`] for an unconfigured flow, or
    /// [`ShardError::Port`] wrapping the shard's refusal.
    pub fn enqueue(&mut self, pkt: Packet) -> Result<(), ShardError> {
        self.enqueue_batch(std::slice::from_ref(&pkt))
            .map(|_| ())
            .map_err(|b| b.error)
    }

    /// Routes a batch of packets: buckets them per shard (preserving
    /// batch order within each shard, the order WFQ tags care about),
    /// hands every involved worker its bucket in **one** channel send,
    /// and gathers the admission replies while the shards work
    /// concurrently.
    ///
    /// Returns the number of packets accepted.
    ///
    /// # Errors
    ///
    /// All flow ids are validated up front, so an unknown flow rejects
    /// the whole batch with nothing enqueued ([`BatchError::accepted`]
    /// is 0). If a shard refuses a packet, that shard stops at the
    /// refusal but **other shards still admit their complete buckets**
    /// (they run concurrently): the error's `accepted` counts every
    /// admitted packet across all shards, those packets stay enqueued,
    /// and the reported error is the lowest-numbered failing port's.
    /// This differs from the sequential frontend only in how much of
    /// the batch the *non-failing* shards admitted — per-shard admitted
    /// prefixes are identical.
    pub fn enqueue_batch(&mut self, pkts: &[Packet]) -> Result<usize, BatchError> {
        let ports = self.workers.len();
        let mut buckets: Vec<Vec<Packet>> = vec![Vec::new(); ports];
        let mut bucket_flows: Vec<Vec<u32>> = vec![Vec::new(); ports];
        for pkt in pkts {
            let (port, routed) = self
                .route_packet(pkt)
                .map_err(|error| BatchError { accepted: 0, error })?;
            bucket_flows[port].push(pkt.flow.0);
            buckets[port].push(routed);
        }
        // Scatter: every involved worker gets its whole bucket at once.
        let mut involved = Vec::new();
        for (port, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                self.send(port, Command::Enqueue(bucket));
                involved.push(port);
            }
        }
        // Gather admission results in port order.
        let mut total = 0;
        let mut first_error: Option<ShardError> = None;
        for port in involved {
            match self.recv(port) {
                Reply::Enqueued { accepted, error } => {
                    total += accepted;
                    self.occupancy[port] += accepted;
                    self.admitted[port] += accepted as u64;
                    // The shard admits its bucket as a prefix, so the
                    // first `accepted` bucket entries are the admitted
                    // flows.
                    for &f in &bucket_flows[port][..accepted] {
                        self.flow_arrivals[f as usize] += 1;
                    }
                    self.handoffs.inc(port, accepted as u64);
                    if let (Some(source), None) = (error, first_error.as_ref()) {
                        first_error = Some(ShardError::Port { port, source });
                    }
                }
                _ => unreachable!("worker replies in command order"),
            }
        }
        self.peak = self.peak.max(self.len());
        match first_error {
            None => Ok(total),
            Some(error) => Err(BatchError {
                accepted: total,
                error,
            }),
        }
    }

    /// Serves the next packet under the same work-conserving round-robin
    /// as [`super::ShardedScheduler::dequeue`]: starting from the port after
    /// the last one served, the first backlogged port's smallest tag is
    /// dequeued. Returns the serving port and the packet (global flow id
    /// restored), or `None` only when every shard is empty.
    ///
    /// Backlog is known locally, so only the serving port pays a channel
    /// round trip; still, batch service
    /// ([`ParallelShardedScheduler::dequeue_round`] /
    /// [`ParallelShardedScheduler::drain`]) is what exploits the
    /// parallelism.
    pub fn dequeue(&mut self) -> Option<(usize, Packet)> {
        let ports = self.workers.len();
        for step in 0..ports {
            let port = (self.cursor + step) % ports;
            if self.occupancy[port] == 0 {
                continue;
            }
            let pkt = self.dequeue_port(port).expect("occupancy says backlogged");
            self.cursor = (port + 1) % ports;
            return Some((port, pkt));
        }
        None
    }

    /// Serves one port's smallest tag, restoring the global flow id.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn dequeue_port(&mut self, port: usize) -> Option<Packet> {
        self.dequeue_port_stamped(port).map(|(pkt, _)| pkt)
    }

    /// Serves one port's smallest tag with the shard circuit's cycle
    /// stamps (see [`HwScheduler::dequeue_stamped`]), restoring the
    /// global flow id.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn dequeue_port_stamped(&mut self, port: usize) -> Option<(Packet, SojournStamp)> {
        self.send(port, Command::Dequeue { max: 1 });
        match self.recv(port) {
            Reply::Packets(mut pkts) => {
                let (pkt, stamp) = pkts.pop()?;
                self.occupancy[port] -= 1;
                Some((self.restore(port, pkt), stamp))
            }
            _ => unreachable!("worker replies in command order"),
        }
    }

    /// Serves up to `per_port` packets from **every** port concurrently,
    /// then interleaves the results in the exact order the sequential
    /// round-robin would have produced — the batched work-conserving
    /// service path. Returns `(port, packet)` pairs; empty only when
    /// every shard is empty.
    pub fn dequeue_round(&mut self, per_port: usize) -> Vec<(usize, Packet)> {
        self.gather_stamped(Some(per_port))
            .into_iter()
            .map(|(port, pkt, _)| (port, pkt))
            .collect()
    }

    /// Dequeues everything, concurrently, in the sequential frontend's
    /// round-robin order (see [`ParallelShardedScheduler::dequeue_round`]).
    pub fn drain(&mut self) -> Vec<(usize, Packet)> {
        self.gather_stamped(None)
            .into_iter()
            .map(|(port, pkt, _)| (port, pkt))
            .collect()
    }

    /// Dequeues everything, concurrently, in round-robin order, keeping
    /// each packet's circuit-cycle stamps — the parallel feed for
    /// per-flow latency attribution
    /// ([`telemetry::LatencyTracker`]).
    pub fn drain_stamped(&mut self) -> Vec<(usize, Packet, SojournStamp)> {
        self.gather_stamped(None)
    }

    /// Scatters one dequeue command (bounded by `max`, or everything) to
    /// every backlogged port, gathers the stamped tag-order runs while
    /// the shards pop concurrently, and merges them in round-robin
    /// order.
    fn gather_stamped(&mut self, max: Option<usize>) -> Vec<(usize, Packet, SojournStamp)> {
        let ports = self.workers.len();
        let involved: Vec<usize> = (0..ports).filter(|&p| self.occupancy[p] > 0).collect();
        for &port in &involved {
            let cmd = match max {
                Some(per_port) => Command::Dequeue { max: per_port },
                None => Command::DequeueAll,
            };
            self.send(port, cmd);
        }
        let mut runs: Vec<std::collections::VecDeque<(Packet, SojournStamp)>> = (0..ports)
            .map(|_| std::collections::VecDeque::new())
            .collect();
        for &port in &involved {
            match self.recv(port) {
                Reply::Packets(pkts) => {
                    self.occupancy[port] -= pkts.len();
                    runs[port] = pkts.into_iter().collect();
                }
                _ => unreachable!("worker replies in command order"),
            }
        }
        self.merge_round_robin(runs)
    }

    /// Replays the sequential work-conserving round-robin over per-port
    /// tag-order runs: starting at the cursor, each rotation serves one
    /// packet from the next non-exhausted port. Advances the cursor
    /// exactly as serving the packets one by one would have.
    fn merge_round_robin(
        &mut self,
        mut runs: Vec<std::collections::VecDeque<(Packet, SojournStamp)>>,
    ) -> Vec<(usize, Packet, SojournStamp)> {
        let ports = runs.len();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let mut out = Vec::with_capacity(total);
        while out.len() < total {
            for step in 0..ports {
                let port = (self.cursor + step) % ports;
                if let Some((pkt, stamp)) = runs[port].pop_front() {
                    out.push((port, self.restore(port, pkt), stamp));
                    self.cursor = (port + 1) % ports;
                    break;
                }
            }
        }
        out
    }

    /// Per-port and aggregated statistics, gathered from all workers
    /// concurrently.
    ///
    /// One caveat against the sequential frontend: the aggregate
    /// `buffer.peak` is the frontend-wide occupancy high-water mark
    /// observed at **batch boundaries** (after each gather), not after
    /// every individual admission — concurrent shards admit
    /// mid-batch states no single observer sees. Per-port peaks are
    /// exact.
    pub fn stats(&mut self) -> ShardStats {
        let ports = self.workers.len();
        for port in 0..ports {
            self.send(port, Command::Stats);
        }
        let per_port: Vec<SchedulerStats> = (0..ports)
            .map(|port| match self.recv(port) {
                Reply::Stats(s) => *s,
                _ => unreachable!("worker replies in command order"),
            })
            .collect();
        aggregate_stats(per_port, self.peak)
    }

    /// End-of-run fault accounting on every port (see
    /// [`HwScheduler::reconcile_faults`]): each worker sweeps
    /// outstanding detections, folds never-detected faults into its
    /// silent counter, and reports its ledger totals. Returns the
    /// aggregated `(injected, detected, repaired, silent)` across
    /// ports, so `detected + silent == injected` is verifiable from
    /// the parallel frontend exactly as from the sequential one.
    /// Idempotent; all zeros without a fault campaign. Workers also
    /// reconcile on shutdown, so dropping the frontend without calling
    /// this never loses the accounting.
    pub fn reconcile_faults(&mut self) -> (u64, u64, u64, u64) {
        let ports = self.workers.len();
        for port in 0..ports {
            self.send(port, Command::ReconcileFaults);
        }
        let mut totals = (0u64, 0u64, 0u64, 0u64);
        for port in 0..ports {
            match self.recv(port) {
                Reply::FaultTotals((injected, detected, repaired, silent)) => {
                    totals.0 += injected;
                    totals.1 += detected;
                    totals.2 += repaired;
                    totals.3 += silent;
                }
                _ => unreachable!("worker replies in command order"),
            }
        }
        totals
    }

    /// Moves one flow's entire queued backlog — and its rank state —
    /// from its current port's worker to `to`'s, preserving per-flow
    /// order and translating finishing tags into the destination's
    /// virtual clock. Identical semantics to
    /// [`super::ShardedScheduler::migrate_flow`]; the [`ShardMap`] flips
    /// ownership **before** the install command is sent, so any enqueue
    /// issued after this call returns (or racing it through the same
    /// coordinator) lands behind the installed backlog in the new
    /// worker's FIFO. Returns the number of packets moved.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownFlow`] for an unconfigured flow;
    /// [`ShardError::Port`] if the destination refuses the backlog
    /// (buffer full) — the flow is reinstalled on its source port
    /// unchanged and ownership does not move.
    ///
    /// # Panics
    ///
    /// Panics unless the frontend was built with [`Placement::Dynamic`],
    /// or if `to` is out of range.
    pub fn migrate_flow(&mut self, flow: FlowId, to: usize) -> Result<usize, ShardError> {
        assert!(
            to < self.workers.len(),
            "port {to} out of range ({} ports)",
            self.workers.len()
        );
        let from = self.map.port_of(flow).ok_or(ShardError::UnknownFlow {
            flow: flow.0,
            flows: self.route.len(),
        })?;
        if from == to {
            return Ok(0);
        }
        self.map.begin_migration(flow, to);
        // Dynamic placement gives every shard identity local ids, so
        // the global flow id is also the local one on both workers.
        self.send(from, Command::ExtractFlow { flow });
        let backlog = match self.recv(from) {
            Reply::Extracted(backlog) => backlog,
            _ => unreachable!("worker replies in command order"),
        };
        let packets = backlog.len();
        self.occupancy[from] -= packets;
        self.send(to, Command::InstallFlow { flow, backlog });
        match self.recv(to) {
            Reply::Installed { refused: None } => {
                self.occupancy[to] += packets;
                self.map.commit_migration();
                self.migrations += 1;
                self.peak = self.peak.max(self.len());
                Ok(packets)
            }
            Reply::Installed {
                refused: Some((source, backlog)),
            } => {
                self.send(from, Command::InstallFlow { flow, backlog });
                match self.recv(from) {
                    Reply::Installed { refused: None } => {}
                    _ => unreachable!("reinstalling into the slots just vacated cannot fail"),
                }
                self.occupancy[from] += packets;
                self.map.abort_migration();
                Err(ShardError::Port { port: to, source })
            }
            _ => unreachable!("worker replies in command order"),
        }
    }

    /// One rebalance round, identical in policy to
    /// [`super::ShardedScheduler::maybe_rebalance`]: per-port load is
    /// the admitted packets since the last round plus the current
    /// backlog (both tracked frontend-side — no worker round trip), and
    /// the advised migration moves the hottest flow of the overloaded
    /// port. Returns the migration performed, if any.
    ///
    /// # Panics
    ///
    /// Panics unless [`ParallelShardedScheduler::with_rebalancer`]
    /// armed a rebalancer.
    pub fn maybe_rebalance(&mut self) -> Option<(FlowId, usize, usize)> {
        assert!(
            self.rebalancer.is_some(),
            "no rebalancer armed; use with_rebalancer"
        );
        let loads: Vec<ShardLoad> = (0..self.workers.len())
            .map(|port| {
                let arrivals = self.admitted[port] - self.last_admitted[port];
                self.last_admitted[port] = self.admitted[port];
                ShardLoad {
                    arrivals,
                    backlog: self.occupancy[port] as u64,
                }
            })
            .collect();
        let hint = self
            .rebalancer
            .as_mut()
            .expect("checked above")
            .observe(&loads)?;
        let flow = (0..self.flow_arrivals.len())
            .filter(|&f| self.map.port_of(FlowId(f as u32)) == Some(hint.from))
            .max_by_key(|&f| (self.flow_arrivals[f], std::cmp::Reverse(f)))?;
        let flow = FlowId(flow as u32);
        match self.migrate_flow(flow, hint.to) {
            Ok(_) => Some((flow, hint.from, hint.to)),
            Err(_) => None,
        }
    }
}

impl<B: SortBackend + Send + 'static, P: RankPolicy + Send + 'static> Drop
    for ParallelShardedScheduler<B, P>
{
    /// Joins every worker. A worker that panicked is re-raised here
    /// (unless this thread is already panicking, to avoid an abort
    /// while unwinding).
    fn drop(&mut self) {
        let mut payload: Option<Box<dyn std::any::Any + Send>> = None;
        for worker in &mut self.workers {
            // Closing the command channel is the shutdown signal.
            worker.commands = None;
            if let Some(handle) = worker.handle.take() {
                if let Err(p) = handle.join() {
                    payload.get_or_insert(p);
                }
            }
        }
        if let Some(p) = payload {
            if !std::thread::panicking() {
                std::panic::resume_unwind(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedScheduler;
    use traffic::{SizeDist, Time};

    fn flows(n: usize) -> Vec<FlowSpec> {
        (0..n)
            .map(|i| {
                FlowSpec::new(FlowId(i as u32), 1.0 + (i % 3) as f64, 1e6)
                    .size(SizeDist::Fixed(500))
            })
            .collect()
    }

    fn pkt(seq: u64, flow: u32, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(at),
            seq,
        }
    }

    #[test]
    fn routes_and_restores_global_ids_like_the_sequential_frontend() {
        let fl = flows(16);
        let mut fe = ParallelShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        let seq = ShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        assert_eq!(fe.ports(), 4);
        assert_eq!(fe.flows(), 16);
        for f in 0..16u32 {
            assert_eq!(fe.port_of(FlowId(f)), seq.port_of(FlowId(f)));
        }
        assert_eq!(fe.port_of(FlowId(99)), None);
        fe.enqueue(pkt(0, 7, 0.0, 140)).unwrap();
        assert_eq!(fe.len(), 1);
        let (port, out) = fe.dequeue().unwrap();
        assert_eq!(Some(port), seq.port_of(FlowId(7)));
        assert_eq!(out.flow, FlowId(7), "global id restored");
        assert!(fe.is_empty());
    }

    #[test]
    fn batch_and_drain_match_the_sequential_round_robin_exactly() {
        let fl = flows(24);
        let batch: Vec<Packet> = (0..96)
            .map(|i| pkt(i, (i % 24) as u32, i as f64 * 1e-6, 500))
            .collect();

        let mut seq = ShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        seq.enqueue_batch(&batch).unwrap();
        let mut reference = Vec::new();
        while let Some(served) = seq.dequeue() {
            reference.push(served);
        }

        let mut par = ParallelShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        assert_eq!(par.enqueue_batch(&batch).unwrap(), 96);
        let drained = par.drain();
        assert_eq!(drained, reference, "global round-robin order must match");
    }

    #[test]
    fn dequeue_round_preserves_order_across_rounds() {
        let fl = flows(24);
        let batch: Vec<Packet> = (0..96)
            .map(|i| pkt(i, (i % 24) as u32, i as f64 * 1e-6, 500))
            .collect();
        let mut seq = ShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        seq.enqueue_batch(&batch).unwrap();
        let mut reference = Vec::new();
        while let Some(served) = seq.dequeue() {
            reference.push(served);
        }

        let mut par = ParallelShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        par.enqueue_batch(&batch).unwrap();
        let mut got = Vec::new();
        loop {
            let round = par.dequeue_round(5);
            if round.is_empty() {
                break;
            }
            got.extend(round);
        }
        // Each flow's packets come out in the same order as sequentially
        // (cross-round the global cursor position can differ from the
        // packet-at-a-time reference, but per-flow WFQ order cannot).
        let per_flow = |served: &[(usize, Packet)]| {
            let mut m: std::collections::HashMap<u32, Vec<u64>> = std::collections::HashMap::new();
            for (_, p) in served {
                m.entry(p.flow.0).or_default().push(p.seq);
            }
            m
        };
        assert_eq!(per_flow(&got), per_flow(&reference));
        assert_eq!(got.len(), reference.len());
    }

    #[test]
    fn drain_stamped_matches_sequential_cycle_stamps() {
        // Same batch through both frontends: each shard executes the
        // identical enqueue/dequeue sequence, so the per-port stamped
        // streams must be identical — the property that makes parallel
        // latency attribution trustworthy.
        let fl = flows(24);
        let batch: Vec<Packet> = (0..96)
            .map(|i| pkt(i, (i % 24) as u32, i as f64 * 1e-6, 500))
            .collect();
        let mut seq = ShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        seq.enqueue_batch(&batch).unwrap();
        let mut seq_runs: Vec<Vec<(u64, SojournStamp)>> = vec![Vec::new(); 4];
        for (port, run) in seq_runs.iter_mut().enumerate() {
            while let Some((p, st)) = seq.dequeue_port_stamped(port) {
                run.push((p.seq, st));
            }
        }
        let mut par = ParallelShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        par.enqueue_batch(&batch).unwrap();
        let mut par_runs: Vec<Vec<(u64, SojournStamp)>> = vec![Vec::new(); 4];
        for (port, p, st) in par.drain_stamped() {
            assert!(st.dequeued > st.enqueued);
            par_runs[port].push((p.seq, st));
        }
        assert_eq!(par_runs, seq_runs);
    }

    #[test]
    fn batch_errors_are_reported_with_accepted_counts() {
        // Unknown flow: validated up front, nothing enqueued.
        let mut fe = ParallelShardedScheduler::new(&flows(4), 1e9, 2, SchedulerConfig::default());
        let batch = [pkt(0, 0, 0.0, 140), pkt(1, 99, 0.0, 140)];
        let err = fe.enqueue_batch(&batch).unwrap_err();
        assert_eq!(err.accepted, 0);
        assert!(matches!(
            err.error,
            ShardError::UnknownFlow { flow: 99, .. }
        ));
        assert_eq!(fe.len(), 0);
        // Shard refusal: the failing shard stops, accepted count reported.
        let small = SchedulerConfig {
            capacity: 2,
            ..SchedulerConfig::default()
        };
        let mut fe = ParallelShardedScheduler::new(&flows(4), 1e9, 1, small);
        let batch: Vec<Packet> = (0..4).map(|i| pkt(i, 0, 0.0, 140)).collect();
        let err = fe.enqueue_batch(&batch).unwrap_err();
        assert_eq!(err.accepted, 2);
        assert!(matches!(err.error, ShardError::Port { port: 0, .. }));
        assert_eq!(fe.len(), 2, "admitted packets stay enqueued");
    }

    #[test]
    fn stats_aggregate_matches_traffic() {
        let fl = flows(16);
        let mut fe = ParallelShardedScheduler::new(&fl, 1e9, 4, SchedulerConfig::default());
        let batch: Vec<Packet> = (0..40).map(|i| pkt(i, (i % 16) as u32, 0.0, 500)).collect();
        fe.enqueue_batch(&batch).unwrap();
        let peak_now = fe.len();
        fe.drain();
        let stats = fe.stats();
        assert_eq!(stats.per_port.len(), 4);
        assert_eq!(stats.aggregate.enqueued, 40);
        assert_eq!(stats.aggregate.dequeued, 40);
        assert_eq!(stats.aggregate.buffer.peak, peak_now);
        assert!(stats.modeled_packets_per_second(143.2e6) > 0.0);
    }

    #[test]
    fn per_port_rates_flow_through() {
        let fl = flows(16);
        let fe =
            ParallelShardedScheduler::with_port_rates(&fl, &[4e9, 1e9], SchedulerConfig::default());
        assert_eq!(fe.ports(), 2);
        assert_eq!(fe.port_rate(0), 4e9);
        assert_eq!(fe.port_rate(1), 1e9);
    }

    #[test]
    fn migration_matches_the_sequential_frontend_departure_for_departure() {
        let fl = flows(8);
        let batch: Vec<Packet> = (0..48)
            .map(|i| pkt(i, (i % 8) as u32, i as f64 * 1e-6, 500))
            .collect();
        let flow = FlowId(0);
        let mut seq = ShardedScheduler::with_placement(
            &fl,
            1e9,
            2,
            SchedulerConfig::default(),
            Placement::Dynamic,
        );
        let mut par = ParallelShardedScheduler::with_placement(
            &fl,
            1e9,
            2,
            SchedulerConfig::default(),
            Placement::Dynamic,
        );
        let to = 1 - seq.port_of(flow).unwrap();
        seq.enqueue_batch(&batch).unwrap();
        par.enqueue_batch(&batch).unwrap();
        assert_eq!(
            seq.migrate_flow(flow, to).unwrap(),
            par.migrate_flow(flow, to).unwrap(),
            "both frontends move the same backlog"
        );
        assert_eq!(par.port_of(flow), Some(to));
        assert_eq!(par.migrations(), 1);
        // Post-migration arrivals chase the flow to its new port.
        let late: Vec<Packet> = (48..56).map(|i| pkt(i, 0, i as f64 * 1e-6, 500)).collect();
        seq.enqueue_batch(&late).unwrap();
        par.enqueue_batch(&late).unwrap();
        let mut expected = Vec::new();
        while let Some((port, p)) = seq.dequeue() {
            expected.push((port, p.flow, p.seq));
        }
        let got: Vec<_> = par
            .drain()
            .into_iter()
            .map(|(port, p)| (port, p.flow, p.seq))
            .collect();
        assert_eq!(got, expected, "departure sequences diverged");
        let stats = par.stats();
        assert_eq!(stats.aggregate.migrated_out, stats.aggregate.migrated_in);
        assert!(stats.aggregate.migrated_out > 0);
    }

    #[test]
    fn parallel_rebalancer_drains_everything_it_admitted() {
        let fl = flows(8);
        let mut fe = ParallelShardedScheduler::with_placement(
            &fl,
            1e9,
            2,
            SchedulerConfig::default(),
            Placement::Dynamic,
        )
        .with_rebalancer(RebalancerConfig::default());
        let hot: Vec<u32> = (0..8u32)
            .filter(|&f| crate::shard::shard_of(FlowId(f), 2) == 0)
            .collect();
        let mut admitted = 0usize;
        let mut migrated = None;
        let mut seq = 0;
        for _round in 0..8 {
            let mut batch = Vec::new();
            for _ in 0..16 {
                for &f in &hot {
                    batch.push(pkt(seq, f, 0.0, 500));
                    seq += 1;
                }
            }
            admitted += fe.enqueue_batch(&batch).unwrap();
            if let Some(m) = fe.maybe_rebalance() {
                migrated = Some(m);
                break;
            }
        }
        let (flow, from, to) = migrated.expect("skewed load trips the rebalancer");
        assert_eq!((from, to), (0, 1));
        assert_eq!(fe.port_of(flow), Some(1));
        // Every admitted packet is still serviceable, per-flow order
        // intact.
        let served = fe.drain();
        assert_eq!(served.len(), admitted);
        let mut last: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for (_, p) in served {
            if let Some(prev) = last.insert(p.flow.0, p.seq) {
                assert!(prev < p.seq, "flow {} reordered", p.flow.0);
            }
        }
    }

    #[test]
    fn worker_panic_is_propagated_not_swallowed() {
        // Force a worker panic by violating an internal invariant:
        // HwScheduler::dequeue on a healthy shard never panics, so use a
        // poisoned thread instead — enqueue a packet whose local id is
        // valid but whose admission will be fine, then panic the worker
        // by dropping the frontend while a worker is mid-panic is hard
        // to stage deterministically. Instead, check the machinery
        // directly: a frontend whose worker has already exited
        // re-raises on the next use.
        let fl = flows(4);
        let mut fe = ParallelShardedScheduler::new(&fl, 1e9, 1, SchedulerConfig::default());
        // Simulate a dead worker: close its reply side by replacing the
        // worker wholesale with one whose thread panics immediately.
        let (cmd_tx, _cmd_rx) = sync_channel::<Command>(CHANNEL_DEPTH);
        let (rep_tx, rep_rx) = sync_channel::<Reply>(CHANNEL_DEPTH);
        let handle = std::thread::Builder::new()
            .name("shard-poison".into())
            .spawn(move || {
                let _hold = rep_tx; // dropped on panic
                panic!("shard worker poisoned");
            })
            .expect("spawn");
        // Give the poisoned worker time to die, then swap it in.
        while !handle.is_finished() {
            std::thread::yield_now();
        }
        let old = std::mem::replace(
            &mut fe.workers[0],
            Worker {
                commands: Some(cmd_tx),
                replies: rep_rx,
                handle: Some(handle),
            },
        );
        drop(old.commands);
        if let Some(h) = { old.handle } {
            h.join().expect("original worker exits cleanly");
        }
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fe.dequeue_port(0);
        }));
        let payload = caught.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("unexpected payload");
        assert_eq!(msg, "shard worker poisoned");
        // Drop of `fe` must not re-panic (the handle was already joined).
    }
}
