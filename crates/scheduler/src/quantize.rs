//! Finishing-tag quantization and wrap-around (paper Fig. 6).
//!
//! The WFQ virtual clock produces unbounded real-valued tags; the silicon
//! sorts fixed-width integers. The quantizer divides virtual time into
//! ticks and maps each tag onto the circular W-bit space, recycling
//! top-level sections as the window advances — the Fig. 6 protocol.
//!
//! One subtlety the paper does not spell out: when live tags straddle the
//! wrap boundary, a *linear* sorter would serve just-wrapped (logically
//! newest) tags before the old lap's largest tags. This module makes the
//! resolution explicit via [`WrapPolicy`]:
//!
//! * [`WrapPolicy::Saturate`] (default) — tags that would wrap while
//!   older tags still occupy the top of the range are clamped to the
//!   range top. Service order is preserved exactly; the clamp introduces
//!   a bounded quantization error that disappears as soon as the window
//!   clears (and the base is rebased whenever the system drains empty).
//! * [`WrapPolicy::Wrap`] — the paper-literal behaviour: tags wrap
//!   modulo 2^W. Order inversions at the boundary are possible and are
//!   *measured* by experiment E4 rather than hidden.

use fairq::VirtualTime;
use tagsort::{Geometry, Tag};

/// How tags behave at the top of the W-bit range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WrapPolicy {
    /// Clamp new tags to the range top until the old lap drains
    /// (order-preserving; bounded extra quantization error).
    #[default]
    Saturate,
    /// Wrap modulo 2^W, as the paper describes; boundary inversions are
    /// possible and left observable.
    Wrap,
}

/// Result of quantizing one finishing tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizeOutcome {
    /// The W-bit tag to hand to the sorter.
    pub tag: Tag,
    /// The unwrapped tick the tag was derived from. Callers track the
    /// minimum outstanding tick with this and feed it back into
    /// [`TagQuantizer::quantize`].
    pub tick: u64,
    /// Sections that must be recycled (cleared) before this tag is
    /// inserted, in circular order — usually empty or one entry; more
    /// after a large virtual-time jump.
    pub recycle: Vec<u32>,
    /// Whether the saturate policy clamped this tag.
    pub clamped: bool,
}

/// Maps continuous [`VirtualTime`] finishing tags onto the sorter's
/// circular integer space.
///
/// # Example
///
/// ```
/// use fairq::VirtualTime;
/// use scheduler::TagQuantizer;
/// use tagsort::Geometry;
///
/// let mut q = TagQuantizer::new(Geometry::paper(), 100.0); // 100 v-units per tick
/// let out = q.quantize(VirtualTime(1234.0), None);
/// assert_eq!(out.tag.value(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct TagQuantizer {
    geometry: Geometry,
    /// Virtual-time units per tag tick.
    scale: f64,
    policy: WrapPolicy,
    /// Virtual time corresponding to tick 0 of the current numbering.
    base: f64,
    /// Highest tick handed out since the last rebase.
    max_tick: u64,
    /// Ticks per top-level section.
    section_ticks: u64,
    /// Last section that was prepared (recycled) for allocation.
    prepared_through: u64,
    clamped: u64,
}

impl TagQuantizer {
    /// Creates a quantizer with `scale` virtual units per tag tick.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn new(geometry: Geometry, scale: f64) -> Self {
        Self::with_policy(geometry, scale, WrapPolicy::default())
    }

    /// Creates a quantizer with an explicit wrap policy.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_policy(geometry: Geometry, scale: f64, policy: WrapPolicy) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive and finite"
        );
        let section_ticks = geometry.tag_space() / u64::from(geometry.sections());
        Self {
            geometry,
            scale,
            policy,
            base: 0.0,
            max_tick: 0,
            section_ticks,
            prepared_through: geometry.tag_space() - 1,
            clamped: 0,
        }
    }

    /// The configured geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Virtual units per tick.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// How many tags the saturate policy has clamped so far.
    pub fn clamped_count(&self) -> u64 {
        self.clamped
    }

    /// The wrap policy in force.
    pub fn policy(&self) -> WrapPolicy {
        self.policy
    }

    /// Quantizes a finishing tag given the smallest *tick* still
    /// outstanding in the sorter (`None` when the sorter is empty).
    /// Outstanding ticks are the [`QuantizeOutcome::tick`] values of
    /// previous calls whose tags have not yet been served.
    ///
    /// Returns the sorter tag plus any sections that must be recycled
    /// first. Callers must perform the recycling *before* inserting the
    /// tag.
    ///
    /// # Panics
    ///
    /// Panics if `finish` precedes the current base (virtual time never
    /// runs backwards) or if — under [`WrapPolicy::Wrap`] — the live
    /// window leaves less than one section of recycling slack, which no
    /// wrap protocol can recover.
    pub fn quantize(
        &mut self,
        finish: VirtualTime,
        min_outstanding_tick: Option<u64>,
    ) -> QuantizeOutcome {
        assert!(
            finish.value() >= self.base - 1e-9,
            "virtual time ran backwards past the quantizer base"
        );
        let space = self.geometry.tag_space();
        let mut tick = ((finish.value() - self.base) / self.scale).floor() as u64;
        let min_tick = min_outstanding_tick.unwrap_or(tick);
        let mut clamped = false;
        if self.policy == WrapPolicy::Saturate {
            // Order preservation requires every live tick to sit in the
            // same lap-aligned window (modular reduction is monotone only
            // within one lap). Clamp to the top of the oldest live tag's
            // lap; a rebase when the sorter drains restores headroom.
            let lap_base = (min_tick / space) * space;
            let limit = lap_base + space - 1;
            if tick > limit {
                tick = limit;
                clamped = true;
                self.clamped += 1;
            }
        } else {
            // (saturating: PGPS may legitimately emit a tag below the
            // smallest outstanding one; the window is then zero.)
            // One section of slack guarantees that when allocation enters
            // a wrapped section, the same section of the previous lap has
            // fully drained — the precondition for recycling it.
            let window = tick.saturating_sub(min_tick);
            assert!(
                window <= space - self.section_ticks,
                "live tag window ({window} ticks) leaves no recycling slack"
            );
        }
        self.max_tick = self.max_tick.max(tick);
        // Recycle any sections this tick newly enters. No lookahead: a
        // section is cleared exactly when its first wrapped tick is
        // allocated, at which point the window bound above guarantees the
        // previous lap's occupants of that section have departed.
        let mut recycle = Vec::new();
        while self.prepared_through < tick {
            let next_section_base = self.prepared_through + 1;
            let section =
                (next_section_base / self.section_ticks) % u64::from(self.geometry.sections());
            recycle.push(section as u32);
            self.prepared_through = next_section_base + self.section_ticks - 1;
        }
        QuantizeOutcome {
            tag: Tag((tick % space) as u32),
            tick,
            recycle,
            clamped,
        }
    }

    /// Rebases tick 0 to virtual time `at` — call when the sorter drains
    /// empty so tick numbering (and float precision) restarts cleanly.
    pub fn rebase(&mut self, at: VirtualTime) {
        self.base = at.value();
        self.max_tick = 0;
        self.prepared_through = self.geometry.tag_space() - 1;
    }

    /// The quantizer's mutable state as checkpoint words (base, tick
    /// high-water mark, section preparation cursor, clamp count).
    /// Configuration — geometry, scale, policy — is not included: a
    /// restore rebuilds the quantizer identically configured and then
    /// loads these words.
    pub fn state_words(&self) -> Vec<u64> {
        vec![
            self.base.to_bits(),
            self.max_tick,
            self.prepared_through,
            self.clamped,
        ]
    }

    /// Restores the state captured by [`TagQuantizer::state_words`].
    ///
    /// # Panics
    ///
    /// Panics if the word count is wrong.
    pub fn load_state_words(&mut self, words: &[u64]) {
        assert_eq!(words.len(), 4, "quantizer state is four words");
        self.base = f64::from_bits(words[0]);
        self.max_tick = words[1];
        self.prepared_through = words[2];
        self.clamped = words[3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quant() -> TagQuantizer {
        // 12-bit space (4096 ticks), 16 sections of 256 ticks.
        TagQuantizer::new(Geometry::paper(), 1.0)
    }

    #[test]
    fn quantizes_by_scale() {
        let mut q = TagQuantizer::new(Geometry::paper(), 100.0);
        let out = q.quantize(VirtualTime(1234.0), None);
        assert_eq!(out.tag, Tag(12));
        assert_eq!(out.tick, 12);
        assert!(!out.clamped);
        assert!(out.recycle.is_empty());
    }

    #[test]
    fn first_lap_needs_no_recycling() {
        let mut q = quant();
        for v in [0.0, 100.0, 2000.0, 4095.0] {
            let out = q.quantize(VirtualTime(v), Some(0));
            assert!(out.recycle.is_empty(), "at {v}: {:?}", out.recycle);
            assert_eq!(out.tag.value() as f64, v.floor());
        }
    }

    #[test]
    fn entering_wrapped_sections_recycles_them() {
        let mut q = TagQuantizer::with_policy(Geometry::paper(), 1.0, WrapPolicy::Wrap);
        q.quantize(VirtualTime(4000.0), Some(3800));
        // Tick 4100 wraps into section 0 (ticks 4096..4351 → wrapped 4..).
        let out = q.quantize(VirtualTime(4100.0), Some(3900));
        assert_eq!(out.tag, Tag(4)); // 4100 mod 4096
        assert!(out.recycle.contains(&0), "{:?}", out.recycle);
    }

    #[test]
    fn sections_recycle_in_circular_order() {
        // Wrap policy: the paper's Fig. 6 protocol reuses sections
        // circularly as the window advances.
        let mut q = TagQuantizer::with_policy(Geometry::paper(), 1.0, WrapPolicy::Wrap);
        let mut recycled = Vec::new();
        for step in 0..40u64 {
            let v = step as f64 * 256.0; // one section per step
            let min_tick = (step * 256).saturating_sub(200);
            let out = q.quantize(VirtualTime(v), Some(min_tick));
            recycled.extend(out.recycle);
        }
        // After several laps every section appears, in ascending circular
        // order.
        assert!(recycled.len() >= 16, "{recycled:?}");
        for w in recycled.windows(2) {
            assert_eq!((w[0] + 1) % 16, w[1], "{recycled:?}");
        }
    }

    #[test]
    fn saturate_clamps_to_the_live_lap_top() {
        let mut q = quant();
        // Oldest outstanding at tick 10 (lap 0); a tag 9000 would cross
        // into lap 2, breaking modular order — clamp to 4095.
        let out = q.quantize(VirtualTime(9000.0), Some(10));
        assert!(out.clamped);
        assert_eq!(out.tag, Tag(4095));
        assert_eq!(q.clamped_count(), 1);
        // A clamped tag never sorts below the live minimum.
        assert!(out.tag.value() >= 10);
    }

    #[test]
    fn saturate_preserves_order_across_rebases() {
        let mut q = quant();
        let a = q.quantize(VirtualTime(4000.0), Some(3990));
        let b = q.quantize(VirtualTime(5000.0), Some(3990));
        assert!(b.clamped);
        assert!(b.tag >= a.tag, "clamped tag must not precede older tags");
        // After the sorter drains, rebasing restores full resolution.
        q.rebase(VirtualTime(5000.0));
        let c = q.quantize(VirtualTime(5010.0), None);
        assert!(!c.clamped);
        assert_eq!(c.tag, Tag(10));
    }

    #[test]
    fn wrap_policy_wraps_and_panics_only_past_a_full_lap() {
        let mut q = TagQuantizer::with_policy(Geometry::paper(), 1.0, WrapPolicy::Wrap);
        let out = q.quantize(VirtualTime(5000.0), Some(2000));
        assert_eq!(out.tag.value(), 5000 % 4096);
        assert!(!out.clamped);
    }

    #[test]
    #[should_panic(expected = "leaves no recycling slack")]
    fn wrap_policy_rejects_oversized_window() {
        let mut q = TagQuantizer::with_policy(Geometry::paper(), 1.0, WrapPolicy::Wrap);
        let _ = q.quantize(VirtualTime(5000.0), Some(0));
    }

    #[test]
    fn rebase_restarts_numbering() {
        let mut q = quant();
        let _ = q.quantize(VirtualTime(3000.0), Some(2900));
        q.rebase(VirtualTime(3000.0));
        let out = q.quantize(VirtualTime(3005.0), None);
        assert_eq!(out.tag, Tag(5));
    }

    #[test]
    #[should_panic(expected = "ran backwards")]
    fn backwards_virtual_time_rejected() {
        let mut q = quant();
        q.rebase(VirtualTime(100.0));
        let _ = q.quantize(VirtualTime(50.0), None);
    }
}
