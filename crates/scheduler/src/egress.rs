//! Line-rate egress simulation of the hardware scheduler.
//!
//! [`fairq::LinkSim`] drives *software* schedulers; this is its twin for
//! the full hardware pipeline: arrivals enter through
//! [`HwScheduler::enqueue`] (tag computation → quantization → buffer →
//! sorter) and the output link serves [`HwScheduler::dequeue`]
//! back-to-back — so the hardware path produces the same
//! [`fairq::Departure`] records and can be scored with the same
//! delay/fairness/GPS-lag metrics as the algorithms it implements.

use fairq::{Departure, RankPolicy, WfqRank};
use tagsort::{SortBackend, SortRetrieveCircuit};
use telemetry::LatencyTracker;
use traffic::{Packet, Time};

use crate::hwsched::{HwScheduler, SchedulerError};

/// What [`HwLinkSim::run`] (and [`crate::ShardedLinkSim::run`]) does
/// when the scheduler refuses a packet (buffer exhaustion or tag
/// range).
///
/// The scheduler itself already *counts* every refusal —
/// [`crate::BufferStats::rejected`], the `sched_dropped` counter, and a
/// `Drop` trace event — regardless of policy; the policy only decides
/// whether the run survives it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Abort the run on the first refusal, returning the error
    /// (discarding computed departures). The default, preserving the
    /// original `run` semantics.
    #[default]
    Error,
    /// Count the drop and keep serving — the overload-bench semantics,
    /// where the departures of *accepted* packets are the result.
    /// Configuration errors ([`SchedulerError::UnknownFlow`]) still
    /// abort.
    CountAndContinue,
}

/// A fixed-rate output link served by the hardware scheduler.
///
/// # Example
///
/// ```
/// use scheduler::{HwLinkSim, HwScheduler, SchedulerConfig};
/// use traffic::{FlowId, FlowSpec, Packet, Time};
///
/// # fn main() -> Result<(), scheduler::SchedulerError> {
/// let flows = [FlowSpec::new(FlowId(0), 1.0, 1e6)];
/// let sched = HwScheduler::new(&flows, 1e6, SchedulerConfig::default());
/// let trace = vec![
///     Packet { flow: FlowId(0), size_bytes: 125, arrival: Time(0.0), seq: 0 },
///     Packet { flow: FlowId(0), size_bytes: 125, arrival: Time(0.0), seq: 1 },
/// ];
/// let deps = HwLinkSim::new(1e6, sched).run(&trace)?;
/// assert_eq!(deps[1].finish, Time(0.002));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HwLinkSim<B: SortBackend = SortRetrieveCircuit, P: RankPolicy = WfqRank> {
    rate_bps: f64,
    scheduler: HwScheduler<B, P>,
    drop_policy: DropPolicy,
    latency: Option<LatencyTracker>,
    drops: u64,
}

impl<B: SortBackend, P: RankPolicy> HwLinkSim<B, P> {
    /// Creates a link of `rate_bps` served by `scheduler` (any sorting
    /// backend and rank policy — the types are inferred from the
    /// scheduler handed in).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(rate_bps: f64, scheduler: HwScheduler<B, P>) -> Self {
        assert!(
            rate_bps > 0.0 && rate_bps.is_finite(),
            "rate must be positive and finite"
        );
        Self {
            rate_bps,
            scheduler,
            drop_policy: DropPolicy::default(),
            latency: None,
            drops: 0,
        }
    }

    /// Sets the refusal handling for subsequent runs (default
    /// [`DropPolicy::Error`]).
    pub fn with_drop_policy(mut self, policy: DropPolicy) -> Self {
        self.drop_policy = policy;
        self
    }

    /// Enables per-flow latency attribution: subsequent runs feed a
    /// [`LatencyTracker`] with each departure's circuit-cycle sojourn
    /// and the simulated wall-clock split (buffer wait vs. service).
    pub fn with_latency(mut self) -> Self {
        self.latency = Some(LatencyTracker::new());
        self
    }

    /// Runs the trace to completion, returning departures in service
    /// order.
    ///
    /// # Errors
    ///
    /// Under [`DropPolicy::Error`] (the default), propagates the first
    /// [`SchedulerError`] (buffer exhaustion, tag range, …). Under
    /// [`DropPolicy::CountAndContinue`], per-packet refusals are counted
    /// ([`HwLinkSim::drops`]) and service continues; only
    /// [`SchedulerError::UnknownFlow`] aborts.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time.
    pub fn run(&mut self, trace: &[Packet]) -> Result<Vec<Departure>, SchedulerError> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival time"
        );
        let mut out = Vec::with_capacity(trace.len());
        let mut now = Time::ZERO;
        let mut next = 0usize;
        loop {
            while next < trace.len() && trace[next].arrival <= now {
                if let Err(e) = self.scheduler.enqueue(trace[next]) {
                    match (self.drop_policy, &e) {
                        (
                            DropPolicy::CountAndContinue,
                            SchedulerError::BufferFull { .. } | SchedulerError::Sorter(_),
                        ) => self.drops += 1,
                        _ => return Err(e),
                    }
                }
                next += 1;
            }
            match self.scheduler.dequeue_stamped() {
                Some((pkt, stamp)) => {
                    let start = now;
                    let finish = now + pkt.service_time(self.rate_bps);
                    if let Some(lat) = &mut self.latency {
                        lat.record(
                            pkt.flow.0,
                            stamp.cycles(),
                            start.0 - pkt.arrival.0,
                            finish.0 - start.0,
                        );
                    }
                    out.push(Departure {
                        packet: pkt,
                        start,
                        finish,
                    });
                    now = finish;
                }
                None => {
                    if next < trace.len() {
                        now = trace[next].arrival;
                    } else {
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Packets refused and skipped under
    /// [`DropPolicy::CountAndContinue`] (0 under [`DropPolicy::Error`] —
    /// the run aborts instead). The scheduler-level views of the same
    /// refusals are [`crate::BufferStats::rejected`] and the
    /// `sched_dropped` counter.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// The per-flow latency attribution accumulated so far, if
    /// [`HwLinkSim::with_latency`] enabled it.
    pub fn latency(&self) -> Option<&LatencyTracker> {
        self.latency.as_ref()
    }

    /// The scheduler, for post-run inspection.
    pub fn scheduler(&self) -> &HwScheduler<B, P> {
        &self.scheduler
    }

    /// Mutable scheduler access, for post-run bookkeeping such as
    /// [`HwScheduler::reconcile_faults`].
    pub fn scheduler_mut(&mut self) -> &mut HwScheduler<B, P> {
        &mut self.scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hwsched::SchedulerConfig;
    use crate::quantize::WrapPolicy;
    use fairq::{metrics, LinkSim, Wfq};
    use tagsort::Geometry;
    use traffic::{generate, FlowId, FlowSpec, SizeDist};

    fn flows() -> Vec<FlowSpec> {
        vec![
            FlowSpec::new(FlowId(0), 4.0, 300_000.0).size(SizeDist::Fixed(140)),
            FlowSpec::new(FlowId(1), 1.0, 900_000.0).size(SizeDist::Imix),
        ]
    }

    fn hw(fl: &[FlowSpec], rate: f64) -> HwScheduler {
        HwScheduler::new(
            fl,
            rate,
            SchedulerConfig {
                geometry: Geometry::new(4, 5),
                tick_scale: 30.0,
                capacity: 1 << 14,
                wrap_policy: WrapPolicy::Saturate,
                ..SchedulerConfig::default()
            },
        )
    }

    #[test]
    fn hardware_path_meets_the_pgps_bound() {
        let fl = flows();
        let rate = 1e6;
        let trace = generate(&fl, 1.0, 31);
        let deps = HwLinkSim::new(rate, hw(&fl, rate)).run(&trace).unwrap();
        assert_eq!(deps.len(), trace.len());
        let lag = metrics::gps_lag(&fl, &trace, &deps, rate);
        let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
        // Quantization adds at most one tick of reordering slack on top
        // of the exact-WFQ bound.
        let tick_slack = 30.0 / rate; // one tick in seconds of service
        assert!(
            lag <= lmax / rate + tick_slack + 1e-9,
            "hw path lag {lag} vs bound {}",
            lmax / rate
        );
    }

    #[test]
    fn hardware_and_software_wfq_delays_agree() {
        let fl = flows();
        let rate = 1e6;
        let trace = generate(&fl, 1.0, 33);
        let hw_deps = HwLinkSim::new(rate, hw(&fl, rate)).run(&trace).unwrap();
        let sw_deps = LinkSim::new(rate, Wfq::new(&fl, rate)).run(&trace);
        let hw_m = metrics::analyze(&fl, &trace, &hw_deps);
        let sw_m = metrics::analyze(&fl, &trace, &sw_deps);
        for (h, s) in hw_m.iter().zip(&sw_m) {
            let rel = (h.mean_delay_s - s.mean_delay_s).abs() / s.mean_delay_s.max(1e-9);
            assert!(
                rel < 0.05,
                "flow {}: hw mean {} vs sw mean {}",
                h.flow,
                h.mean_delay_s,
                s.mean_delay_s
            );
        }
    }

    #[test]
    fn idle_links_jump_to_next_arrival() {
        let fl = vec![FlowSpec::new(FlowId(0), 1.0, 1e6)];
        let trace = vec![
            Packet {
                flow: FlowId(0),
                size_bytes: 125,
                arrival: Time(0.0),
                seq: 0,
            },
            Packet {
                flow: FlowId(0),
                size_bytes: 125,
                arrival: Time(5.0),
                seq: 1,
            },
        ];
        let deps = HwLinkSim::new(1e6, hw(&fl, 1e6)).run(&trace).unwrap();
        assert_eq!(deps[1].start, Time(5.0));
    }

    fn burst(n: u64) -> Vec<Packet> {
        (0..n)
            .map(|seq| Packet {
                flow: FlowId(0),
                size_bytes: 125,
                arrival: Time(0.0),
                seq,
            })
            .collect()
    }

    fn tiny_hw(capacity: usize) -> HwScheduler {
        HwScheduler::new(
            &[FlowSpec::new(FlowId(0), 1.0, 1e6)],
            1e6,
            SchedulerConfig {
                geometry: Geometry::new(4, 5),
                tick_scale: 30.0,
                capacity,
                ..SchedulerConfig::default()
            },
        )
    }

    #[test]
    fn drop_policy_error_aborts_on_buffer_full() {
        // The pre-DropPolicy behavior, still the default: the first
        // refusal kills the run and its departures.
        let mut sim = HwLinkSim::new(1e6, tiny_hw(2));
        assert!(matches!(
            sim.run(&burst(5)),
            Err(SchedulerError::BufferFull { capacity: 2 })
        ));
        assert_eq!(sim.drops(), 0);
    }

    #[test]
    fn drop_policy_count_and_continue_keeps_serving() {
        // Regression for the satellite bugfix: overload used to discard
        // every already-computed departure; now drops are counted and
        // the accepted packets are still served.
        let mut sim =
            HwLinkSim::new(1e6, tiny_hw(2)).with_drop_policy(DropPolicy::CountAndContinue);
        let deps = sim.run(&burst(5)).unwrap();
        assert_eq!(deps.len(), 2, "the two buffered packets are served");
        assert_eq!(sim.drops(), 3);
        let stats = sim.scheduler().stats();
        assert_eq!(stats.buffer.rejected, 3, "BufferStats records the drops");
        assert_eq!(stats.dequeued, 2);
        // Config errors still abort even under CountAndContinue.
        let bad = vec![Packet {
            flow: FlowId(9),
            size_bytes: 125,
            arrival: Time(100.0),
            seq: 99,
        }];
        assert!(matches!(
            sim.run(&bad),
            Err(SchedulerError::UnknownFlow { flow: 9, .. })
        ));
    }

    #[test]
    fn latency_tracking_attributes_every_departure() {
        let fl = flows();
        let trace = generate(&fl, 0.5, 35);
        let mut sim = HwLinkSim::new(1e6, hw(&fl, 1e6)).with_latency();
        let deps = sim.run(&trace).unwrap();
        let lat = sim.latency().unwrap();
        assert_eq!(lat.samples(), deps.len() as u64);
        assert_eq!(lat.flows(), 2);
        // Cycle-domain sojourns come straight from the circuit's
        // counter: every served packet spent at least the 4-cycle
        // insert slot inside it.
        let h = lat.flow_sojourn(0).unwrap();
        assert!(h.quantile(0.5) >= 4, "p50 sojourn below one op slot");
        // The exported keys follow the Snapshot contract.
        let mut snap = telemetry::Snapshot::empty(1);
        lat.export(&mut snap);
        assert!(snap.value("flow0_sojourn_p99").is_some());
        assert!(snap.value("flow1_wait_ns_p50").is_some());
        assert_eq!(snap.value("latency_samples"), Some(deps.len() as f64));
    }
}
