//! Line-rate egress simulation of the hardware scheduler.
//!
//! [`fairq::LinkSim`] drives *software* schedulers; this is its twin for
//! the full hardware pipeline: arrivals enter through
//! [`HwScheduler::enqueue`] (tag computation → quantization → buffer →
//! sorter) and the output link serves [`HwScheduler::dequeue`]
//! back-to-back — so the hardware path produces the same
//! [`fairq::Departure`] records and can be scored with the same
//! delay/fairness/GPS-lag metrics as the algorithms it implements.

use fairq::Departure;
use traffic::{Packet, Time};

use crate::hwsched::{HwScheduler, SchedulerError};

/// A fixed-rate output link served by the hardware scheduler.
///
/// # Example
///
/// ```
/// use scheduler::{HwLinkSim, HwScheduler, SchedulerConfig};
/// use traffic::{FlowId, FlowSpec, Packet, Time};
///
/// # fn main() -> Result<(), scheduler::SchedulerError> {
/// let flows = [FlowSpec::new(FlowId(0), 1.0, 1e6)];
/// let sched = HwScheduler::new(&flows, 1e6, SchedulerConfig::default());
/// let trace = vec![
///     Packet { flow: FlowId(0), size_bytes: 125, arrival: Time(0.0), seq: 0 },
///     Packet { flow: FlowId(0), size_bytes: 125, arrival: Time(0.0), seq: 1 },
/// ];
/// let deps = HwLinkSim::new(1e6, sched).run(&trace)?;
/// assert_eq!(deps[1].finish, Time(0.002));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HwLinkSim {
    rate_bps: f64,
    scheduler: HwScheduler,
}

impl HwLinkSim {
    /// Creates a link of `rate_bps` served by `scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(rate_bps: f64, scheduler: HwScheduler) -> Self {
        assert!(
            rate_bps > 0.0 && rate_bps.is_finite(),
            "rate must be positive and finite"
        );
        Self {
            rate_bps,
            scheduler,
        }
    }

    /// Runs the trace to completion, returning departures in service
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SchedulerError`] (buffer exhaustion, tag
    /// range, …).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time.
    pub fn run(&mut self, trace: &[Packet]) -> Result<Vec<Departure>, SchedulerError> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival time"
        );
        let mut out = Vec::with_capacity(trace.len());
        let mut now = Time::ZERO;
        let mut next = 0usize;
        loop {
            while next < trace.len() && trace[next].arrival <= now {
                self.scheduler.enqueue(trace[next])?;
                next += 1;
            }
            match self.scheduler.dequeue() {
                Some(pkt) => {
                    let start = now;
                    let finish = now + pkt.service_time(self.rate_bps);
                    out.push(Departure {
                        packet: pkt,
                        start,
                        finish,
                    });
                    now = finish;
                }
                None => {
                    if next < trace.len() {
                        now = trace[next].arrival;
                    } else {
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    /// The scheduler, for post-run inspection.
    pub fn scheduler(&self) -> &HwScheduler {
        &self.scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hwsched::SchedulerConfig;
    use crate::quantize::WrapPolicy;
    use fairq::{metrics, LinkSim, Wfq};
    use tagsort::Geometry;
    use traffic::{generate, FlowId, FlowSpec, SizeDist};

    fn flows() -> Vec<FlowSpec> {
        vec![
            FlowSpec::new(FlowId(0), 4.0, 300_000.0).size(SizeDist::Fixed(140)),
            FlowSpec::new(FlowId(1), 1.0, 900_000.0).size(SizeDist::Imix),
        ]
    }

    fn hw(fl: &[FlowSpec], rate: f64) -> HwScheduler {
        HwScheduler::new(
            fl,
            rate,
            SchedulerConfig {
                geometry: Geometry::new(4, 5),
                tick_scale: 30.0,
                capacity: 1 << 14,
                wrap_policy: WrapPolicy::Saturate,
                ..SchedulerConfig::default()
            },
        )
    }

    #[test]
    fn hardware_path_meets_the_pgps_bound() {
        let fl = flows();
        let rate = 1e6;
        let trace = generate(&fl, 1.0, 31);
        let deps = HwLinkSim::new(rate, hw(&fl, rate)).run(&trace).unwrap();
        assert_eq!(deps.len(), trace.len());
        let lag = metrics::gps_lag(&fl, &trace, &deps, rate);
        let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
        // Quantization adds at most one tick of reordering slack on top
        // of the exact-WFQ bound.
        let tick_slack = 30.0 / rate; // one tick in seconds of service
        assert!(
            lag <= lmax / rate + tick_slack + 1e-9,
            "hw path lag {lag} vs bound {}",
            lmax / rate
        );
    }

    #[test]
    fn hardware_and_software_wfq_delays_agree() {
        let fl = flows();
        let rate = 1e6;
        let trace = generate(&fl, 1.0, 33);
        let hw_deps = HwLinkSim::new(rate, hw(&fl, rate)).run(&trace).unwrap();
        let sw_deps = LinkSim::new(rate, Wfq::new(&fl, rate)).run(&trace);
        let hw_m = metrics::analyze(&fl, &trace, &hw_deps);
        let sw_m = metrics::analyze(&fl, &trace, &sw_deps);
        for (h, s) in hw_m.iter().zip(&sw_m) {
            let rel = (h.mean_delay_s - s.mean_delay_s).abs() / s.mean_delay_s.max(1e-9);
            assert!(
                rel < 0.05,
                "flow {}: hw mean {} vs sw mean {}",
                h.flow,
                h.mean_delay_s,
                s.mean_delay_s
            );
        }
    }

    #[test]
    fn idle_links_jump_to_next_arrival() {
        let fl = vec![FlowSpec::new(FlowId(0), 1.0, 1e6)];
        let trace = vec![
            Packet {
                flow: FlowId(0),
                size_bytes: 125,
                arrival: Time(0.0),
                seq: 0,
            },
            Packet {
                flow: FlowId(0),
                size_bytes: 125,
                arrival: Time(5.0),
                seq: 1,
            },
        ];
        let deps = HwLinkSim::new(1e6, hw(&fl, 1e6)).run(&trace).unwrap();
        assert_eq!(deps[1].start, Time(5.0));
    }
}
