//! The shared packet buffer (paper Fig. 1, reference \[9\]).
//!
//! Packets entering the scheduler are parked in a shared buffer memory;
//! the sort/retrieve circuit stores only a pointer per packet. The
//! buffer is a slotted memory with a free list — the same allocation
//! discipline as the tag store's empty list, at packet granularity.

use traffic::Packet;

use tagsort::PacketRef;

/// Occupancy statistics of the shared buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Packets currently stored.
    pub occupied: usize,
    /// High-water mark of occupancy.
    pub peak: usize,
    /// Total packets ever stored.
    pub stored: u64,
    /// Packets rejected because the buffer was full.
    pub rejected: u64,
}

impl BufferStats {
    /// Routes these counters into a telemetry snapshot under `prefix`
    /// (keys `{prefix}_occupied`, `_peak`, `_stored`, `_rejected`), so
    /// buffer figures travel in the same deterministic export as the
    /// registry metrics.
    pub fn export(&self, prefix: &str, snap: &mut telemetry::Snapshot) {
        snap.put(&format!("{prefix}_occupied"), self.occupied as f64);
        snap.put(&format!("{prefix}_peak"), self.peak as f64);
        snap.put(&format!("{prefix}_stored"), self.stored as f64);
        snap.put(&format!("{prefix}_rejected"), self.rejected as f64);
    }
}

/// A slotted shared packet buffer with free-list allocation.
///
/// # Example
///
/// ```
/// use scheduler::PacketBuffer;
/// use traffic::{FlowId, Packet, Time};
///
/// let mut buf = PacketBuffer::new(4);
/// let p = Packet { flow: FlowId(0), size_bytes: 64, arrival: Time(0.0), seq: 0 };
/// let r = buf.store(p).expect("space available");
/// assert_eq!(buf.release(r).seq, 0);
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuffer {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    stats: BufferStats,
}

impl PacketBuffer {
    /// Creates a buffer of `capacity` packet slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `u32` addressing.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(capacity <= u32::MAX as usize, "capacity exceeds addressing");
        Self {
            slots: vec![None; capacity],
            free: (0..capacity as u32).rev().collect(),
            stats: BufferStats::default(),
        }
    }

    /// Capacity in packets.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Stores a packet, returning its reference, or `None` if full
    /// (counted in [`BufferStats::rejected`]).
    pub fn store(&mut self, pkt: Packet) -> Option<PacketRef> {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(pkt);
                self.stats.occupied += 1;
                self.stats.peak = self.stats.peak.max(self.stats.occupied);
                self.stats.stored += 1;
                Some(PacketRef(slot))
            }
            None => {
                self.stats.rejected += 1;
                None
            }
        }
    }

    /// Reads a packet without freeing its slot.
    ///
    /// # Panics
    ///
    /// Panics if the reference does not point at a stored packet.
    pub fn peek(&self, r: PacketRef) -> &Packet {
        self.slots[r.index() as usize]
            .as_ref()
            .expect("dangling packet reference")
    }

    /// Removes and returns the packet, freeing its slot.
    ///
    /// # Panics
    ///
    /// Panics if the reference does not point at a stored packet.
    pub fn release(&mut self, r: PacketRef) -> Packet {
        let pkt = self.slots[r.index() as usize]
            .take()
            .expect("dangling packet reference");
        self.free.push(r.index());
        self.stats.occupied -= 1;
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{FlowId, Time};

    fn pkt(seq: u64) -> Packet {
        Packet {
            flow: FlowId(0),
            size_bytes: 100,
            arrival: Time(0.0),
            seq,
        }
    }

    #[test]
    fn store_and_release_roundtrip() {
        let mut b = PacketBuffer::new(2);
        let r0 = b.store(pkt(0)).unwrap();
        let r1 = b.store(pkt(1)).unwrap();
        assert_ne!(r0, r1);
        assert_eq!(b.peek(r1).seq, 1);
        assert_eq!(b.release(r0).seq, 0);
        assert_eq!(b.release(r1).seq, 1);
        assert_eq!(b.stats().occupied, 0);
        assert_eq!(b.stats().peak, 2);
    }

    #[test]
    fn full_buffer_rejects_and_counts() {
        let mut b = PacketBuffer::new(1);
        let r = b.store(pkt(0)).unwrap();
        assert_eq!(b.store(pkt(1)), None);
        assert_eq!(b.stats().rejected, 1);
        b.release(r);
        assert!(b.store(pkt(2)).is_some(), "freed slot is reusable");
    }

    /// Pins the aliasing hazard documented on [`PacketRef`]: a reference
    /// held across `release` is a raw slot index with no generation tag,
    /// so once the slot is reused it silently resolves to the *new*
    /// occupant instead of failing. Callers must treat a `PacketRef` as
    /// consumed by `release`.
    #[test]
    fn stale_ref_after_release_aliases_the_new_occupant() {
        let mut b = PacketBuffer::new(1);
        let stale = b.store(pkt(7)).unwrap();
        b.release(stale);
        let fresh = b.store(pkt(8)).unwrap();
        // Free-list reuse hands back the same slot index...
        assert_eq!(stale, fresh);
        // ...so the stale reference now reads the NEW packet, not the
        // released one, and releasing through it frees the new packet.
        assert_eq!(b.peek(stale).seq, 8);
        assert_eq!(b.release(stale).seq, 8);
        assert_eq!(b.stats().occupied, 0);
    }

    #[test]
    #[should_panic(expected = "dangling packet reference")]
    fn double_release_panics() {
        let mut b = PacketBuffer::new(1);
        let r = b.store(pkt(0)).unwrap();
        b.release(r);
        b.release(r);
    }
}
