//! The shared packet buffer (paper Fig. 1, reference \[9\]).
//!
//! Packets entering the scheduler are parked in a shared buffer memory;
//! the sort/retrieve circuit stores only a pointer per packet. The
//! buffer is a slotted memory with a free list — the same allocation
//! discipline as the tag store's empty list, at packet granularity.

use faultsim::FaultTarget;
use traffic::{FlowId, Packet};

use tagsort::{PacketRef, PACKET_SLOT_BITS};

/// Occupancy statistics of the shared buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Packets currently stored.
    pub occupied: usize,
    /// High-water mark of occupancy.
    pub peak: usize,
    /// Total packets ever stored.
    pub stored: u64,
    /// Packets rejected because the buffer was full.
    pub rejected: u64,
}

impl BufferStats {
    /// Routes these counters into a telemetry snapshot under `prefix`
    /// (keys `{prefix}_occupied`, `_peak`, `_stored`, `_rejected`), so
    /// buffer figures travel in the same deterministic export as the
    /// registry metrics.
    pub fn export(&self, prefix: &str, snap: &mut telemetry::Snapshot) {
        snap.put(&format!("{prefix}_occupied"), self.occupied as f64);
        snap.put(&format!("{prefix}_peak"), self.peak as f64);
        snap.put(&format!("{prefix}_stored"), self.stored as f64);
        snap.put(&format!("{prefix}_rejected"), self.rejected as f64);
    }
}

/// A slotted shared packet buffer with free-list allocation.
///
/// References handed out by [`store`](PacketBuffer::store) are
/// *generational* ([`PacketRef::generation`]): each slot carries a small
/// reuse counter that bumps on every release, so a reference held across
/// `release` no longer silently aliases the slot's next occupant — it is
/// detected and rejected instead.
///
/// # Example
///
/// ```
/// use scheduler::PacketBuffer;
/// use traffic::{FlowId, Packet, Time};
///
/// let mut buf = PacketBuffer::new(4);
/// let p = Packet { flow: FlowId(0), size_bytes: 64, arrival: Time(0.0), seq: 0 };
/// let r = buf.store(p).expect("space available");
/// assert_eq!(buf.release(r).seq, 0);
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuffer {
    slots: Vec<Option<Packet>>,
    gens: Vec<u8>,
    free: Vec<u32>,
    stats: BufferStats,
    /// One parity bit per slot over the descriptor word, packed 64 per
    /// entry. Refreshed by [`store`](PacketBuffer::store); fault
    /// injection deliberately leaves it stale, which is what makes a
    /// corrupted descriptor detectable at release time.
    parity: Vec<u64>,
    /// Slots whose mismatch has already been reported (alarm dedup).
    alarmed: Vec<u64>,
    alarms: Vec<u32>,
}

/// The descriptor word faults land in: flow id in the high half, packet
/// length in the low half. Arrival time and sequence number are modeled
/// as control metadata outside the buffer SRAM, so upsets cannot reach
/// them.
fn descriptor(pkt: &Packet) -> u64 {
    (u64::from(pkt.flow.0) << 32) | u64::from(pkt.size_bytes)
}

fn bitset_get(set: &[u64], idx: usize) -> bool {
    set[idx / 64] >> (idx % 64) & 1 == 1
}

fn bitset_assign(set: &mut [u64], idx: usize, value: bool) {
    if value {
        set[idx / 64] |= 1 << (idx % 64);
    } else {
        set[idx / 64] &= !(1 << (idx % 64));
    }
}

impl PacketBuffer {
    /// Creates a buffer of `capacity` packet slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds the
    /// [`PACKET_SLOT_BITS`]-bit slot index space.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            capacity <= 1usize << PACKET_SLOT_BITS,
            "capacity exceeds the {PACKET_SLOT_BITS}-bit slot index space"
        );
        Self {
            slots: vec![None; capacity],
            gens: vec![0; capacity],
            free: (0..capacity as u32).rev().collect(),
            stats: BufferStats::default(),
            parity: vec![0; capacity.div_ceil(64)],
            alarmed: vec![0; capacity.div_ceil(64)],
            alarms: Vec::new(),
        }
    }

    /// Whether `r` names the packet it was issued for: the slot is
    /// occupied *and* the slot's generation still matches.
    fn is_live(&self, r: PacketRef) -> bool {
        let slot = r.index() as usize;
        slot < self.slots.len() && self.slots[slot].is_some() && self.gens[slot] == r.generation()
    }

    /// Capacity in packets.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Stores a packet, returning its generation-stamped reference, or
    /// `None` if full (counted in [`BufferStats::rejected`]).
    pub fn store(&mut self, pkt: Packet) -> Option<PacketRef> {
        match self.free.pop() {
            Some(slot) => {
                let parity = descriptor(&pkt).count_ones() & 1 == 1;
                bitset_assign(&mut self.parity, slot as usize, parity);
                bitset_assign(&mut self.alarmed, slot as usize, false);
                self.slots[slot as usize] = Some(pkt);
                self.stats.occupied += 1;
                self.stats.peak = self.stats.peak.max(self.stats.occupied);
                self.stats.stored += 1;
                Some(PacketRef::new(slot, self.gens[slot as usize]))
            }
            None => {
                self.stats.rejected += 1;
                None
            }
        }
    }

    /// Reads a packet without freeing its slot.
    ///
    /// # Panics
    ///
    /// Panics if the reference's slot is empty or its generation is
    /// stale (the slot was released, and possibly reused, since the
    /// reference was issued).
    pub fn peek(&self, r: PacketRef) -> &Packet {
        self.try_peek(r).expect("stale packet reference")
    }

    /// Fallible [`peek`](PacketBuffer::peek): `None` for an empty slot
    /// or a stale generation instead of panicking. The degraded-mode
    /// read path for fault-tolerant schedulers.
    pub fn try_peek(&self, r: PacketRef) -> Option<&Packet> {
        if !self.is_live(r) {
            return None;
        }
        self.slots[r.index() as usize].as_ref()
    }

    /// Removes and returns the packet, freeing its slot and bumping its
    /// generation so outstanding references to it go stale.
    ///
    /// # Panics
    ///
    /// Panics if the reference's slot is empty or its generation is
    /// stale.
    pub fn release(&mut self, r: PacketRef) -> Packet {
        self.try_release(r).expect("stale packet reference")
    }

    /// Fallible [`release`](PacketBuffer::release): `None` for an empty
    /// slot or a stale generation instead of panicking; the buffer is
    /// unchanged in that case.
    pub fn try_release(&mut self, r: PacketRef) -> Option<Packet> {
        if !self.is_live(r) {
            return None;
        }
        let slot = r.index() as usize;
        self.check_parity(slot);
        let pkt = self.slots[slot].take().expect("checked occupied");
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(r.index());
        self.stats.occupied -= 1;
        Some(pkt)
    }

    /// Compares the slot's descriptor parity against the bit refreshed
    /// at store time, raising one alarm per corrupted occupancy.
    fn check_parity(&mut self, slot: usize) {
        if let Some(pkt) = &self.slots[slot] {
            let parity = descriptor(pkt).count_ones() & 1 == 1;
            if parity != bitset_get(&self.parity, slot) && !bitset_get(&self.alarmed, slot) {
                bitset_assign(&mut self.alarmed, slot, true);
                self.alarms.push(slot as u32);
            }
        }
    }

    /// Drains the slots whose descriptor failed its release-time parity
    /// check since the last drain. The scheduler treats each as a
    /// detected buffer fault: the packet's flow id or length can no
    /// longer be trusted, so it is dropped rather than served.
    pub fn take_fault_alarms(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.alarms)
    }
}

impl FaultTarget for PacketBuffer {
    fn fault_words(&self) -> usize {
        self.slots.len()
    }

    fn fault_word_bits(&self, _word: usize) -> u32 {
        64 // flow id (32) over length (32)
    }

    fn inject_fault(&mut self, word: usize, mask: u64) -> u64 {
        match self.slots[word].as_mut() {
            Some(pkt) => {
                let old = descriptor(pkt);
                let new = old ^ mask;
                pkt.flow = FlowId((new >> 32) as u32);
                pkt.size_bytes = new as u32;
                // Parity is NOT refreshed — the release-time check is
                // what detects the flip.
                old
            }
            // An upset in a free slot damages nothing observable; the
            // next store rewrites word and parity together.
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{FlowId, Time};

    fn pkt(seq: u64) -> Packet {
        Packet {
            flow: FlowId(0),
            size_bytes: 100,
            arrival: Time(0.0),
            seq,
        }
    }

    #[test]
    fn store_and_release_roundtrip() {
        let mut b = PacketBuffer::new(2);
        let r0 = b.store(pkt(0)).unwrap();
        let r1 = b.store(pkt(1)).unwrap();
        assert_ne!(r0, r1);
        assert_eq!(b.peek(r1).seq, 1);
        assert_eq!(b.release(r0).seq, 0);
        assert_eq!(b.release(r1).seq, 1);
        assert_eq!(b.stats().occupied, 0);
        assert_eq!(b.stats().peak, 2);
    }

    #[test]
    fn full_buffer_rejects_and_counts() {
        let mut b = PacketBuffer::new(1);
        let r = b.store(pkt(0)).unwrap();
        assert_eq!(b.store(pkt(1)), None);
        assert_eq!(b.stats().rejected, 1);
        b.release(r);
        assert!(b.store(pkt(2)).is_some(), "freed slot is reusable");
    }

    /// Pins the generational-handle guarantee on [`PacketRef`]: a
    /// reference held across `release` carries the slot's old
    /// generation, so once the slot is reused the stale reference is
    /// *detected* — it no longer silently resolves to the new occupant.
    #[test]
    fn stale_ref_after_release_aliases_the_new_occupant() {
        let mut b = PacketBuffer::new(1);
        let stale = b.store(pkt(7)).unwrap();
        b.release(stale);
        let fresh = b.store(pkt(8)).unwrap();
        // Free-list reuse hands back the same slot index, but under a
        // bumped generation...
        assert_eq!(stale.index(), fresh.index());
        assert_ne!(stale, fresh);
        assert_eq!(fresh.generation(), stale.generation().wrapping_add(1));
        // ...so the stale reference no longer resolves, while the fresh
        // one still does.
        assert_eq!(b.try_peek(stale), None);
        assert_eq!(b.try_release(stale), None);
        assert_eq!(b.peek(fresh).seq, 8);
        assert_eq!(b.release(fresh).seq, 8);
        assert_eq!(b.stats().occupied, 0);
    }

    #[test]
    #[should_panic(expected = "stale packet reference")]
    fn double_release_panics() {
        let mut b = PacketBuffer::new(1);
        let r = b.store(pkt(0)).unwrap();
        b.release(r);
        b.release(r);
    }

    #[test]
    fn injected_fault_trips_the_release_parity_check() {
        let mut b = PacketBuffer::new(4);
        let r = b.store(pkt(3)).unwrap();
        let old = b.inject_fault(r.index() as usize, 1 << 40); // flow-id bit
        assert_eq!(old, 100); // descriptor was flow 0, length 100
                              // The flip is live immediately...
        assert_eq!(b.peek(r).flow, FlowId(1 << 8));
        // ...and detected exactly once, at release.
        let released = b.try_release(r).unwrap();
        assert_eq!(released.flow, FlowId(1 << 8));
        assert_eq!(b.take_fault_alarms(), vec![r.index()]);
        assert_eq!(b.take_fault_alarms(), Vec::<u32>::new());
    }

    #[test]
    fn fault_in_a_free_slot_is_silent_and_store_heals_parity() {
        let mut b = PacketBuffer::new(2);
        assert_eq!(b.inject_fault(1, 0xff), 0);
        let r0 = b.store(pkt(0)).unwrap();
        let r1 = b.store(pkt(1)).unwrap();
        // Slot 1's parity was refreshed by the store, so no alarm.
        b.try_release(r1).unwrap();
        b.try_release(r0).unwrap();
        assert_eq!(b.take_fault_alarms(), Vec::<u32>::new());
    }

    #[test]
    fn even_bit_flips_defeat_buffer_parity() {
        let mut b = PacketBuffer::new(1);
        let r = b.store(pkt(0)).unwrap();
        b.inject_fault(0, 0b11); // two flipped bits keep parity even
        let released = b.try_release(r).unwrap();
        assert_eq!(released.size_bytes, 100 ^ 0b11);
        assert_eq!(b.take_fault_alarms(), Vec::<u32>::new(), "silent by design");
    }

    #[test]
    fn generation_wraps_after_256_reuses() {
        let mut b = PacketBuffer::new(1);
        let first = b.store(pkt(0)).unwrap();
        b.release(first);
        for i in 0..255 {
            let r = b.store(pkt(i)).unwrap();
            b.release(r);
        }
        // 256 releases bring the 8-bit generation back around; the
        // original reference aliases again — the classic ABA residue a
        // small counter cannot eliminate, pinned here as a known limit.
        let reused = b.store(pkt(99)).unwrap();
        assert_eq!(first, reused);
    }
}
