//! The shared packet buffer (paper Fig. 1, reference \[9\]).
//!
//! Packets entering the scheduler are parked in a shared buffer memory;
//! the sort/retrieve circuit stores only a pointer per packet. The
//! buffer is a slotted memory with a free list — the same allocation
//! discipline as the tag store's empty list, at packet granularity.

use traffic::Packet;

use tagsort::{PacketRef, PACKET_SLOT_BITS};

/// Occupancy statistics of the shared buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Packets currently stored.
    pub occupied: usize,
    /// High-water mark of occupancy.
    pub peak: usize,
    /// Total packets ever stored.
    pub stored: u64,
    /// Packets rejected because the buffer was full.
    pub rejected: u64,
}

impl BufferStats {
    /// Routes these counters into a telemetry snapshot under `prefix`
    /// (keys `{prefix}_occupied`, `_peak`, `_stored`, `_rejected`), so
    /// buffer figures travel in the same deterministic export as the
    /// registry metrics.
    pub fn export(&self, prefix: &str, snap: &mut telemetry::Snapshot) {
        snap.put(&format!("{prefix}_occupied"), self.occupied as f64);
        snap.put(&format!("{prefix}_peak"), self.peak as f64);
        snap.put(&format!("{prefix}_stored"), self.stored as f64);
        snap.put(&format!("{prefix}_rejected"), self.rejected as f64);
    }
}

/// A slotted shared packet buffer with free-list allocation.
///
/// References handed out by [`store`](PacketBuffer::store) are
/// *generational* ([`PacketRef::generation`]): each slot carries a small
/// reuse counter that bumps on every release, so a reference held across
/// `release` no longer silently aliases the slot's next occupant — it is
/// detected and rejected instead.
///
/// # Example
///
/// ```
/// use scheduler::PacketBuffer;
/// use traffic::{FlowId, Packet, Time};
///
/// let mut buf = PacketBuffer::new(4);
/// let p = Packet { flow: FlowId(0), size_bytes: 64, arrival: Time(0.0), seq: 0 };
/// let r = buf.store(p).expect("space available");
/// assert_eq!(buf.release(r).seq, 0);
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuffer {
    slots: Vec<Option<Packet>>,
    gens: Vec<u8>,
    free: Vec<u32>,
    stats: BufferStats,
}

impl PacketBuffer {
    /// Creates a buffer of `capacity` packet slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds the
    /// [`PACKET_SLOT_BITS`]-bit slot index space.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            capacity <= 1usize << PACKET_SLOT_BITS,
            "capacity exceeds the {PACKET_SLOT_BITS}-bit slot index space"
        );
        Self {
            slots: vec![None; capacity],
            gens: vec![0; capacity],
            free: (0..capacity as u32).rev().collect(),
            stats: BufferStats::default(),
        }
    }

    /// Whether `r` names the packet it was issued for: the slot is
    /// occupied *and* the slot's generation still matches.
    fn is_live(&self, r: PacketRef) -> bool {
        let slot = r.index() as usize;
        slot < self.slots.len() && self.slots[slot].is_some() && self.gens[slot] == r.generation()
    }

    /// Capacity in packets.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Stores a packet, returning its generation-stamped reference, or
    /// `None` if full (counted in [`BufferStats::rejected`]).
    pub fn store(&mut self, pkt: Packet) -> Option<PacketRef> {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(pkt);
                self.stats.occupied += 1;
                self.stats.peak = self.stats.peak.max(self.stats.occupied);
                self.stats.stored += 1;
                Some(PacketRef::new(slot, self.gens[slot as usize]))
            }
            None => {
                self.stats.rejected += 1;
                None
            }
        }
    }

    /// Reads a packet without freeing its slot.
    ///
    /// # Panics
    ///
    /// Panics if the reference's slot is empty or its generation is
    /// stale (the slot was released, and possibly reused, since the
    /// reference was issued).
    pub fn peek(&self, r: PacketRef) -> &Packet {
        self.try_peek(r).expect("stale packet reference")
    }

    /// Fallible [`peek`](PacketBuffer::peek): `None` for an empty slot
    /// or a stale generation instead of panicking. The degraded-mode
    /// read path for fault-tolerant schedulers.
    pub fn try_peek(&self, r: PacketRef) -> Option<&Packet> {
        if !self.is_live(r) {
            return None;
        }
        self.slots[r.index() as usize].as_ref()
    }

    /// Removes and returns the packet, freeing its slot and bumping its
    /// generation so outstanding references to it go stale.
    ///
    /// # Panics
    ///
    /// Panics if the reference's slot is empty or its generation is
    /// stale.
    pub fn release(&mut self, r: PacketRef) -> Packet {
        self.try_release(r).expect("stale packet reference")
    }

    /// Fallible [`release`](PacketBuffer::release): `None` for an empty
    /// slot or a stale generation instead of panicking; the buffer is
    /// unchanged in that case.
    pub fn try_release(&mut self, r: PacketRef) -> Option<Packet> {
        if !self.is_live(r) {
            return None;
        }
        let slot = r.index() as usize;
        let pkt = self.slots[slot].take().expect("checked occupied");
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(r.index());
        self.stats.occupied -= 1;
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{FlowId, Time};

    fn pkt(seq: u64) -> Packet {
        Packet {
            flow: FlowId(0),
            size_bytes: 100,
            arrival: Time(0.0),
            seq,
        }
    }

    #[test]
    fn store_and_release_roundtrip() {
        let mut b = PacketBuffer::new(2);
        let r0 = b.store(pkt(0)).unwrap();
        let r1 = b.store(pkt(1)).unwrap();
        assert_ne!(r0, r1);
        assert_eq!(b.peek(r1).seq, 1);
        assert_eq!(b.release(r0).seq, 0);
        assert_eq!(b.release(r1).seq, 1);
        assert_eq!(b.stats().occupied, 0);
        assert_eq!(b.stats().peak, 2);
    }

    #[test]
    fn full_buffer_rejects_and_counts() {
        let mut b = PacketBuffer::new(1);
        let r = b.store(pkt(0)).unwrap();
        assert_eq!(b.store(pkt(1)), None);
        assert_eq!(b.stats().rejected, 1);
        b.release(r);
        assert!(b.store(pkt(2)).is_some(), "freed slot is reusable");
    }

    /// Pins the generational-handle guarantee on [`PacketRef`]: a
    /// reference held across `release` carries the slot's old
    /// generation, so once the slot is reused the stale reference is
    /// *detected* — it no longer silently resolves to the new occupant.
    #[test]
    fn stale_ref_after_release_aliases_the_new_occupant() {
        let mut b = PacketBuffer::new(1);
        let stale = b.store(pkt(7)).unwrap();
        b.release(stale);
        let fresh = b.store(pkt(8)).unwrap();
        // Free-list reuse hands back the same slot index, but under a
        // bumped generation...
        assert_eq!(stale.index(), fresh.index());
        assert_ne!(stale, fresh);
        assert_eq!(fresh.generation(), stale.generation().wrapping_add(1));
        // ...so the stale reference no longer resolves, while the fresh
        // one still does.
        assert_eq!(b.try_peek(stale), None);
        assert_eq!(b.try_release(stale), None);
        assert_eq!(b.peek(fresh).seq, 8);
        assert_eq!(b.release(fresh).seq, 8);
        assert_eq!(b.stats().occupied, 0);
    }

    #[test]
    #[should_panic(expected = "stale packet reference")]
    fn double_release_panics() {
        let mut b = PacketBuffer::new(1);
        let r = b.store(pkt(0)).unwrap();
        b.release(r);
        b.release(r);
    }

    #[test]
    fn generation_wraps_after_256_reuses() {
        let mut b = PacketBuffer::new(1);
        let first = b.store(pkt(0)).unwrap();
        b.release(first);
        for i in 0..255 {
            let r = b.store(pkt(i)).unwrap();
            b.release(r);
        }
        // 256 releases bring the 8-bit generation back around; the
        // original reference aliases again — the classic ABA residue a
        // small counter cannot eliminate, pinned here as a known limit.
        let reused = b.store(pkt(99)).unwrap();
        assert_eq!(first, reused);
    }
}
