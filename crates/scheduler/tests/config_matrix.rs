//! Configuration-matrix sweep: every combination of wrap policy, cleanup
//! policy, memory technology, and geometry must serve a mixed workload
//! coherently — the "independently scalable and configurable" claim of
//! paper §III, exercised as a grid.

use scheduler::{HwLinkSim, HwScheduler, SchedulerConfig, WrapPolicy};
use tagsort::{CleanupPolicy, Geometry, MemoryKind};
use traffic::{generate, FlowId, FlowSpec, SizeDist};

fn flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec::new(FlowId(0), 3.0, 400_000.0).size(SizeDist::Fixed(140)),
        FlowSpec::new(FlowId(1), 1.0, 500_000.0).size(SizeDist::Imix),
    ]
}

#[test]
fn every_supported_configuration_serves_coherently() {
    let fl = flows();
    let rate = 1e6;
    let trace = generate(&fl, 0.5, 55);
    for geometry in [
        Geometry::paper(),
        Geometry::paper_wide(),
        Geometry::new(4, 5),
    ] {
        for memory in [MemoryKind::SinglePort, MemoryKind::QdrLike] {
            for wrap_policy in [WrapPolicy::Saturate, WrapPolicy::Wrap] {
                // Lazy cleanup requires monotone tags, which PGPS does
                // not guarantee — Eager is the supported policy here.
                let config = SchedulerConfig {
                    geometry,
                    capacity: 1 << 12,
                    tick_scale: 60.0,
                    wrap_policy,
                    cleanup: CleanupPolicy::Eager,
                    memory,
                    faults: None,
                    ..SchedulerConfig::default()
                };
                let hw = HwScheduler::new(&fl, rate, config);
                let deps = HwLinkSim::new(rate, hw)
                    .run(&trace)
                    .unwrap_or_else(|e| panic!("{geometry:?}/{memory:?}/{wrap_policy:?}: {e}"));
                assert_eq!(
                    deps.len(),
                    trace.len(),
                    "{geometry:?}/{memory:?}/{wrap_policy:?}: packet loss"
                );
                // Non-preemptive, work-conserving service.
                for w in deps.windows(2) {
                    assert!(w[1].start >= w[0].finish);
                }
            }
        }
    }
}

#[test]
fn qdr_scheduler_reports_two_cycle_slots() {
    let fl = flows();
    let mut hw = HwScheduler::new(
        &fl,
        1e9,
        SchedulerConfig {
            memory: MemoryKind::QdrLike,
            tick_scale: 1000.0,
            ..SchedulerConfig::default()
        },
    );
    let trace = generate(&fl, 0.05, 5);
    for p in &trace {
        hw.enqueue(*p).unwrap();
    }
    while hw.dequeue().is_some() {}
    assert_eq!(hw.stats().circuit.cycles_per_op(), 2.0);
}
