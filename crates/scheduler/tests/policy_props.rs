//! Property tests for the rank-policy library.
//!
//! Two classes of invariant that example-based tests cannot pin:
//!
//! * **Bounded-domain policies never invert.** SRPT and strict priority
//!   revisit small ranks forever, so the quantizer never rebases — the
//!   scheduler must keep serving the smallest queued rank (FIFO among
//!   equals) through arbitrarily long enqueue/dequeue programs, i.e.
//!   across what would be many virtual-clock laps for a monotone
//!   policy, with the inversion counter staying at zero.
//! * **Hierarchy degenerates cleanly.** Hierarchical WFQ with a single
//!   class is *exactly* flat WFQ: one clock, the full weight vector,
//!   the full link rate — the departure sequences must be identical
//!   packet for packet on any seeded workload.

use fairq::{HierarchicalWfqRank, RankPolicy, SrptRank, StrictPriorityRank, WfqRank};
use proptest::prelude::*;
use scheduler::{HwLinkSim, HwScheduler, SchedulerConfig};
use tagsort::{Geometry, SortRetrieveCircuit};
use traffic::{generate, FlowId, FlowSpec, Packet, SizeDist, Time};

/// A burst of (flow, size) arrivals followed by that many pops plus a
/// few extra against the (possibly) empty queue.
fn round_strategy() -> impl Strategy<Value = (Vec<(u32, u32)>, usize)> {
    (
        proptest::collection::vec(
            (
                0u32..3,
                prop_oneof![Just(64u32), Just(125u32), Just(700u32), Just(1500u32)],
            ),
            1..10,
        ),
        0usize..3,
    )
}

fn flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec::new(FlowId(0), 4.0, 300_000.0),
        FlowSpec::new(FlowId(1), 1.0, 500_000.0),
        FlowSpec::new(FlowId(2), 2.0, 200_000.0),
    ]
}

/// Drives an enqueue/dequeue program against the real scheduler while a
/// shadow list tracks every queued packet's quantized tick. Each
/// dequeue must serve the shadow's smallest (tick, insertion) pair, and
/// the scheduler's own inversion counter must stay at zero.
fn assert_never_inverts<P: RankPolicy>(
    proto: &P,
    tick_scale: f64,
    rank_of: impl Fn(&Packet) -> f64,
    rounds: &[(Vec<(u32, u32)>, usize)],
) {
    let fl = flows();
    let mut hw = HwScheduler::<SortRetrieveCircuit, P>::with_backend_and_policy(
        &fl,
        1e6,
        SchedulerConfig {
            tick_scale,
            capacity: 1 << 10,
            ..SchedulerConfig::default()
        },
        proto,
    );
    // Shadow queue: (tick, insertion order, flow, seq).
    let mut shadow: Vec<(u64, u64, u32, u64)> = Vec::new();
    let mut seq = 0u64;
    let mut t = 0.0f64;
    for (burst, extra_pops) in rounds {
        for &(flow, bytes) in burst {
            t += 0.1;
            let pkt = Packet {
                flow: FlowId(flow),
                size_bytes: bytes,
                arrival: Time(t),
                seq,
            };
            // Bounded ranks, base pinned at zero, no rebase: the tick is
            // a pure function of the packet.
            let tick = (rank_of(&pkt) / tick_scale).floor() as u64;
            shadow.push((tick, seq, flow, seq));
            seq += 1;
            hw.enqueue(pkt).expect("program fits the buffer");
        }
        for _ in 0..burst.len() + extra_pops {
            let served = hw.dequeue().map(|p| (p.flow.0, p.seq));
            let expect = shadow
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.0, e.1))
                .map(|(i, _)| i);
            match (served, expect) {
                (Some(got), Some(i)) => {
                    let (_, _, flow, s) = shadow.remove(i);
                    assert_eq!(got, (flow, s), "served out of rank order");
                }
                (None, None) => {}
                (got, _) => panic!("scheduler/shadow occupancy diverged: {got:?}"),
            }
        }
    }
    assert_eq!(
        hw.stats().inversions,
        0,
        "bounded-domain policy recorded a rank inversion"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SRPT: the shortest queued packet is always served, FIFO among
    /// equal sizes, through arbitrary burst/drain programs.
    #[test]
    fn srpt_never_inverts_rank_order(
        rounds in proptest::collection::vec(round_strategy(), 1..40),
    ) {
        // One tick per byte, matching the policy's own default scale.
        assert_never_inverts(&SrptRank, 8.0, |p| p.size_bits(), &rounds);
    }

    /// Strict priority: the highest-priority queued packet is always
    /// served, FIFO within a class, through arbitrary programs.
    #[test]
    fn strict_priority_never_inverts_rank_order(
        rounds in proptest::collection::vec(round_strategy(), 1..40),
    ) {
        // flows() weights 4/1/2 ⇒ classes: flow 0 → 0, flow 2 → 1,
        // flow 1 → 2 (heaviest weight is the highest priority).
        let class = |flow: u32| match flow {
            0 => 0.0,
            2 => 1.0,
            _ => 2.0,
        };
        assert_never_inverts(
            &StrictPriorityRank::default(),
            1.0,
            move |p| class(p.flow.0),
            &rounds,
        );
    }

    /// Hierarchical WFQ with one class is exactly flat WFQ: identical
    /// departure sequences on any seeded workload.
    #[test]
    fn single_class_hierarchy_is_flat_wfq(
        seed in 0u64..1_000_000,
        weights in proptest::collection::vec(
            prop_oneof![Just(1.0f64), Just(2.0), Just(4.0), Just(7.5)],
            2..5,
        ),
    ) {
        let rate = 1e6;
        let fl: Vec<FlowSpec> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                FlowSpec::new(FlowId(i as u32), w, rate / weights.len() as f64)
                    .size(SizeDist::Imix)
            })
            .collect();
        let trace = generate(&fl, 0.3, seed);
        prop_assert!(!trace.is_empty(), "seeded workload generated no packets");
        let config = SchedulerConfig {
            geometry: Geometry::new(4, 5),
            tick_scale: rate / 50_000.0,
            capacity: 1 << 12,
            ..SchedulerConfig::default()
        };
        fn departures<P: RankPolicy>(
            rate: f64,
            hw: HwScheduler<SortRetrieveCircuit, P>,
            trace: &[Packet],
        ) -> Vec<(u32, u64)> {
            HwLinkSim::new(rate, hw)
                .run(trace)
                .expect("workload fits")
                .into_iter()
                .map(|d| (d.packet.flow.0, d.packet.seq))
                .collect()
        }
        let flat = departures(
            rate,
            HwScheduler::with_backend_and_policy(&fl, rate, config, &WfqRank::default()),
            &trace,
        );
        let hier = departures(
            rate,
            HwScheduler::with_backend_and_policy(&fl, rate, config, &HierarchicalWfqRank::with_classes(1)),
            &trace,
        );
        prop_assert_eq!(flat, hier, "one-class hierarchy diverged from flat WFQ");
    }
}
