//! Policy library × reference-model conformance.
//!
//! Every shipped rank policy must be *the algorithm it claims to be*,
//! not merely self-consistent across backends. For each policy this
//! suite builds a small independent discrete-event model — the rank
//! formula restated from its paper, a plain `Vec` serve-the-minimum
//! queue with FIFO ties, and the same back-to-back egress stepping as
//! `HwLinkSim` — and requires the full hardware pipeline (tag
//! computation → quantization → shared buffer → sorting circuit) to
//! reproduce the model's departure sequence exactly, on every seeded
//! workload, for all three sorting backends.
//!
//! The model deliberately shares no code with the scheduler stack
//! except `GpsVirtualClock` (the WFQ/hierarchical rank *formula*, paper
//! eq. (1), which has its own tests against software WFQ); quantization,
//! clamping, rebase, tie-breaking, and time-stepping are all restated
//! here from first principles.

use fairq::{AnyPolicy, GpsVirtualClock, RankPolicy};
use fastpath::FfsSorter;
use scheduler::{HwLinkSim, HwScheduler, SchedulerConfig};
use tagsort::{Geometry, HeapSorter, SortBackend, SortRetrieveCircuit};
use traffic::{generate, FlowId, FlowSpec, Packet, SizeDist};

/// Departure identity: which packet left, in which position.
type Dep = (u32, u64);

fn flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec::new(FlowId(0), 4.0, 300_000.0).size(SizeDist::Fixed(140)),
        FlowSpec::new(FlowId(1), 1.0, 500_000.0).size(SizeDist::Imix),
        FlowSpec::new(FlowId(2), 2.0, 200_000.0).size(SizeDist::Fixed(700)),
    ]
}

/// The reference rank computation: per-policy state plus the three
/// callbacks the model's queue invokes. Each implementation restates
/// its policy's published formula.
trait RefRank {
    fn rank(&mut self, pkt: &Packet) -> f64;
    fn on_service(&mut self, _rank: f64) {}
    /// Lower bound on all future ranks (quantizer rebase point).
    fn rank_floor(&self) -> f64;
    /// Bounded-domain policies never rebase.
    fn monotone(&self) -> bool {
        true
    }
}

/// WFQ (PGPS): rank = GPS virtual finishing time, paper eq. (1).
struct RefWfq(GpsVirtualClock);

impl RefRank for RefWfq {
    fn rank(&mut self, pkt: &Packet) -> f64 {
        self.0
            .on_arrival(pkt.flow, pkt.size_bits(), pkt.arrival)
            .1
            .value()
    }
    fn rank_floor(&self) -> f64 {
        self.0.virtual_now().value()
    }
}

/// STFQ (Goyal et al.): rank = virtual start tag; V chases served ranks.
struct RefStfq {
    v: f64,
    weights: Vec<f64>,
    last_finish: Vec<f64>,
}

impl RefRank for RefStfq {
    fn rank(&mut self, pkt: &Packet) -> f64 {
        let f = pkt.flow.0 as usize;
        let start = self.v.max(self.last_finish[f]);
        self.last_finish[f] = start + pkt.size_bits() / self.weights[f];
        start
    }
    fn on_service(&mut self, rank: f64) {
        self.v = self.v.max(rank);
    }
    fn rank_floor(&self) -> f64 {
        self.v
    }
}

/// SRPT: rank = packet length in bits.
struct RefSrpt;

impl RefRank for RefSrpt {
    fn rank(&mut self, pkt: &Packet) -> f64 {
        pkt.size_bits()
    }
    fn rank_floor(&self) -> f64 {
        0.0
    }
    fn monotone(&self) -> bool {
        false
    }
}

/// FIFO+ (Clark/Shenker/Zhang): rank = arrival time.
struct RefFifoPlus {
    last_arrival: f64,
}

impl RefRank for RefFifoPlus {
    fn rank(&mut self, pkt: &Packet) -> f64 {
        self.last_arrival = pkt.arrival.0;
        pkt.arrival.0
    }
    fn rank_floor(&self) -> f64 {
        self.last_arrival
    }
}

/// Strict priority: rank = priority class (heavier weight ⇒ class 0).
struct RefPrio {
    prio_of: Vec<u32>,
}

impl RefPrio {
    fn new(fl: &[FlowSpec]) -> Self {
        let mut distinct: Vec<f64> = fl.iter().map(|f| f.weight).collect();
        distinct.sort_by(|a, b| b.total_cmp(a));
        distinct.dedup();
        let mut prio_of = vec![0u32; fl.len()];
        for f in fl {
            prio_of[f.id.0 as usize] = distinct.iter().position(|&d| d == f.weight).unwrap() as u32;
        }
        Self { prio_of }
    }
}

impl RefRank for RefPrio {
    fn rank(&mut self, pkt: &Packet) -> f64 {
        f64::from(self.prio_of[pkt.flow.0 as usize])
    }
    fn rank_floor(&self) -> f64 {
        0.0
    }
    fn monotone(&self) -> bool {
        false
    }
}

/// Leaky-bucket shaping order: rank = the packet's conforming time under
/// its flow's contracted token rate.
struct RefLeaky {
    rates: Vec<f64>,
    eta: Vec<f64>,
    last_arrival: f64,
}

impl RefRank for RefLeaky {
    fn rank(&mut self, pkt: &Packet) -> f64 {
        let f = pkt.flow.0 as usize;
        self.last_arrival = pkt.arrival.0;
        let conforming = self.eta[f].max(pkt.arrival.0) + pkt.size_bits() / self.rates[f];
        self.eta[f] = conforming;
        conforming
    }
    fn rank_floor(&self) -> f64 {
        self.last_arrival
    }
}

/// Two-level hierarchical WFQ: one GPS clock per class, each running at
/// the class's aggregate-weight share of the link; class = flow id %
/// classes. Restates the composition; only the per-class clock formula
/// is shared with the policy under test.
struct RefHwfq {
    clocks: Vec<GpsVirtualClock>,
    class_of: Vec<usize>,
}

impl RefHwfq {
    fn new(fl: &[FlowSpec], rate: f64, classes: usize) -> Self {
        let mut weights = vec![0.0; fl.len()];
        for f in fl {
            weights[f.id.0 as usize] = f.weight;
        }
        let classes = classes.min(fl.len()).max(1);
        let class_of: Vec<usize> = (0..fl.len()).map(|f| f % classes).collect();
        let total: f64 = weights.iter().sum();
        let clocks = (0..classes)
            .map(|c| {
                let share: f64 = weights
                    .iter()
                    .enumerate()
                    .filter(|&(f, _)| class_of[f] == c)
                    .map(|(_, &w)| w)
                    .sum();
                GpsVirtualClock::new(&weights, rate * share / total)
            })
            .collect();
        Self { clocks, class_of }
    }
}

impl RefRank for RefHwfq {
    fn rank(&mut self, pkt: &Packet) -> f64 {
        let class = self.class_of[pkt.flow.0 as usize];
        self.clocks[class]
            .on_arrival(pkt.flow, pkt.size_bits(), pkt.arrival)
            .1
            .value()
    }
    fn rank_floor(&self) -> f64 {
        self.clocks
            .iter()
            .map(|c| c.virtual_now().value())
            .fold(f64::INFINITY, f64::min)
    }
}

/// The reference scheduler: rank → quantize (floor-divide by the tick
/// scale, saturate-clamp to the oldest live tick's lap, rebase to the
/// rank floor whenever the queue drains under a monotone policy) →
/// serve the smallest tick, FIFO among equals.
struct RefModel<R: RefRank> {
    rank: R,
    scale: f64,
    space: u64,
    base: f64,
    /// (tick, insertion order, packet, raw rank)
    queue: Vec<(u64, u64, Packet, f64)>,
    counter: u64,
}

impl<R: RefRank> RefModel<R> {
    fn new(rank: R, scale: f64, space: u64) -> Self {
        Self {
            rank,
            scale,
            space,
            base: 0.0,
            queue: Vec::new(),
            counter: 0,
        }
    }

    fn enqueue(&mut self, pkt: Packet) {
        let r = self.rank.rank(&pkt);
        if self.queue.is_empty() && self.rank.monotone() {
            self.base = self.rank.rank_floor();
        }
        let mut tick = ((r - self.base) / self.scale).floor() as u64;
        let min_tick = self.queue.iter().map(|e| e.0).min().unwrap_or(tick);
        let limit = (min_tick / self.space) * self.space + self.space - 1;
        tick = tick.min(limit);
        self.queue.push((tick, self.counter, pkt, r));
        self.counter += 1;
    }

    fn dequeue(&mut self) -> Option<Packet> {
        let i = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.0, e.1))
            .map(|(i, _)| i)?;
        let (_, _, pkt, r) = self.queue.remove(i);
        self.rank.on_service(r);
        Some(pkt)
    }
}

/// The reference egress link: identical stepping to `HwLinkSim::run` —
/// admit every arrival at or before `now`, serve back-to-back, jump an
/// idle link to the next arrival.
fn run_reference<R: RefRank>(mut model: RefModel<R>, rate: f64, trace: &[Packet]) -> Vec<Dep> {
    let mut out = Vec::with_capacity(trace.len());
    let mut now = 0.0f64;
    let mut next = 0usize;
    loop {
        while next < trace.len() && trace[next].arrival.0 <= now {
            model.enqueue(trace[next]);
            next += 1;
        }
        match model.dequeue() {
            Some(pkt) => {
                out.push((pkt.flow.0, pkt.seq));
                now += pkt.size_bits() / rate;
            }
            None if next < trace.len() => now = trace[next].arrival.0,
            None => break,
        }
    }
    out
}

/// Runs the trace through the real pipeline behind sorting backend `B`.
fn run_hardware<B: SortBackend>(
    fl: &[FlowSpec],
    rate: f64,
    proto: &AnyPolicy,
    trace: &[Packet],
) -> Vec<Dep> {
    let geometry = Geometry::new(4, 5);
    let config = SchedulerConfig {
        geometry,
        capacity: 1 << 12,
        tick_scale: proto.tick_scale(rate),
        ..SchedulerConfig::default()
    };
    let hw = HwScheduler::<B, AnyPolicy>::with_backend_and_policy(fl, rate, config, proto);
    HwLinkSim::new(rate, hw)
        .run(trace)
        .expect("reference workloads fit the configuration")
        .into_iter()
        .map(|d| (d.packet.flow.0, d.packet.seq))
        .collect()
}

/// Builds the reference model for one policy name, mirroring the
/// policy's default prototype configuration.
fn reference_departures(name: &str, fl: &[FlowSpec], rate: f64, trace: &[Packet]) -> Vec<Dep> {
    let proto = AnyPolicy::by_name(name).expect("known policy");
    let scale = proto.tick_scale(rate);
    let space = Geometry::new(4, 5).tag_space();
    let mut weights = vec![0.0; fl.len()];
    for f in fl {
        weights[f.id.0 as usize] = f.weight;
    }
    match name {
        "wfq" => run_reference(
            RefModel::new(RefWfq(GpsVirtualClock::new(&weights, rate)), scale, space),
            rate,
            trace,
        ),
        "stfq" => run_reference(
            RefModel::new(
                RefStfq {
                    v: 0.0,
                    last_finish: vec![0.0; weights.len()],
                    weights,
                },
                scale,
                space,
            ),
            rate,
            trace,
        ),
        "srpt" => run_reference(RefModel::new(RefSrpt, scale, space), rate, trace),
        "fifo+" => run_reference(
            RefModel::new(RefFifoPlus { last_arrival: 0.0 }, scale, space),
            rate,
            trace,
        ),
        "prio" => run_reference(RefModel::new(RefPrio::new(fl), scale, space), rate, trace),
        "leaky" => run_reference(
            RefModel::new(
                RefLeaky {
                    rates: fl.iter().map(|f| f.rate_bps).collect(),
                    eta: vec![0.0; fl.len()],
                    last_arrival: 0.0,
                },
                scale,
                space,
            ),
            rate,
            trace,
        ),
        // The default hwfq prototype is two classes.
        "hwfq" => run_reference(
            RefModel::new(RefHwfq::new(fl, rate, 2), scale, space),
            rate,
            trace,
        ),
        other => panic!("no reference model for policy {other}"),
    }
}

/// The conformance sweep: every policy, three seeds, three backends —
/// each hardware run must reproduce the reference model's departure
/// sequence exactly.
#[test]
fn every_policy_matches_its_reference_model_on_every_backend() {
    let fl = flows();
    let rate = 1e6;
    for name in AnyPolicy::NAMES {
        for seed in [31, 47, 202] {
            let trace = generate(&fl, 0.8, seed);
            let reference = reference_departures(name, &fl, rate, &trace);
            assert_eq!(
                reference.len(),
                trace.len(),
                "policy {name} seed {seed}: reference lost packets"
            );
            let proto = AnyPolicy::by_name(name).expect("known policy");
            for (backend, got) in [
                (
                    "trie",
                    run_hardware::<SortRetrieveCircuit>(&fl, rate, &proto, &trace),
                ),
                (
                    "fastpath",
                    run_hardware::<FfsSorter>(&fl, rate, &proto, &trace),
                ),
                (
                    "heap",
                    run_hardware::<HeapSorter>(&fl, rate, &proto, &trace),
                ),
            ] {
                assert_eq!(
                    got, reference,
                    "policy {name} seed {seed}: backend {backend} diverges from the \
                     reference model"
                );
            }
        }
    }
}

/// The WFQ reference model itself is the pre-policy pipeline: its
/// departure order must match the software `fairq::Wfq` scheduler's
/// per-flow service share on the same trace (sanity that the model is
/// WFQ, not merely self-consistent).
#[test]
fn wfq_reference_model_orders_by_gps_finish_tags() {
    let fl = flows();
    let rate = 1e6;
    let trace = generate(&fl, 0.5, 31);
    let reference = reference_departures("wfq", &fl, rate, &trace);
    let hw = run_hardware::<SortRetrieveCircuit>(&fl, rate, &AnyPolicy::default(), &trace);
    assert_eq!(hw, reference, "default pipeline must be the WFQ model");
}
