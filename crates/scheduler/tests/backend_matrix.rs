//! Backend × workload conformance matrix.
//!
//! The `SortBackend` contract promises that swapping the sorting engine
//! never changes *what* the scheduler serves — only how fast the host
//! executes it. These tests pin that promise at the scheduler level:
//! the trie circuit (the paper's hardware), the FFS fast path (the
//! Eiffel-style software sorter), and the binary-heap oracle must
//! produce **identical departure sequences** on every seeded workload,
//! and identical per-operation outcomes (including errors) on adversarial
//! interleaves that wrap the virtual clock and recycle trie sections.
//!
//! A divergence fails with the first differing departure spelled out, so
//! a broken backend is diagnosable from the CI log alone.

use fairq::{AnyPolicy, RankPolicy};
use fastpath::FfsSorter;
use proptest::prelude::*;
use scheduler::{AdmissionPolicy, HwLinkSim, HwScheduler, SchedulerConfig, WrapPolicy};
use tagsort::{
    BackendSpec, CleanupPolicy, Geometry, HeapSorter, MemoryKind, PacketRef, PipelinedSortBackend,
    SortBackend, SortRetrieveCircuit, Tag,
};
use traffic::{generate, FlowId, FlowSpec, Packet, SizeDist, Time};

fn flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec::new(FlowId(0), 4.0, 300_000.0).size(SizeDist::Fixed(140)),
        FlowSpec::new(FlowId(1), 1.0, 500_000.0).size(SizeDist::Imix),
        FlowSpec::new(FlowId(2), 2.0, 200_000.0).size(SizeDist::Fixed(700)),
    ]
}

/// One departure, reduced to what identity means for the contract: which
/// packet left, in which position.
type Dep = (u32, u64);

/// Panics with a readable first-divergence diff when two backends'
/// departure sequences differ.
fn assert_identical(workload: &str, ref_name: &str, reference: &[Dep], name: &str, got: &[Dep]) {
    if reference == got {
        return;
    }
    let i = reference
        .iter()
        .zip(got.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| reference.len().min(got.len()));
    let window = |v: &[Dep]| {
        let lo = i.saturating_sub(2);
        v[lo..v.len().min(i + 3)].to_vec()
    };
    panic!(
        "workload `{workload}`: backend `{name}` diverges from `{ref_name}` \
         at departure #{i}\n  {ref_name}: ..{:?}.. ({} total)\n  {name}: ..{:?}.. ({} total)",
        window(reference),
        reference.len(),
        window(got),
        got.len(),
    );
}

/// Runs one workload through an egress link backed by `B`, returning the
/// departure sequence.
fn departures<B: SortBackend>(
    fl: &[FlowSpec],
    rate: f64,
    config: SchedulerConfig,
    trace: &[Packet],
) -> Vec<Dep> {
    let hw = HwScheduler::<B>::with_backend(fl, rate, config);
    HwLinkSim::new(rate, hw)
        .run(trace)
        .expect("conformance workloads fit the configuration")
        .into_iter()
        .map(|d| (d.packet.flow.0, d.packet.seq))
        .collect()
}

/// The CI matrix: every backend pair, across wrap policies, memory
/// technologies, and seeds. The trie circuit is the reference; fastpath
/// and the heap oracle must reproduce it departure for departure.
#[test]
fn backend_matrix_sequence_identity_on_seeded_workloads() {
    let fl = flows();
    let rate = 1e6;
    for seed in [31, 47, 202] {
        let trace = generate(&fl, 0.8, seed);
        for wrap_policy in [WrapPolicy::Saturate, WrapPolicy::Wrap] {
            for memory in [MemoryKind::SinglePort, MemoryKind::QdrLike] {
                let config = SchedulerConfig {
                    geometry: Geometry::new(4, 5),
                    capacity: 1 << 12,
                    tick_scale: 30.0,
                    wrap_policy,
                    memory,
                    ..SchedulerConfig::default()
                };
                let workload = format!("seed={seed}/{wrap_policy:?}/{memory:?}");
                let trie = departures::<SortRetrieveCircuit>(&fl, rate, config, &trace);
                assert_eq!(trie.len(), trace.len(), "{workload}: packet loss");
                let ffs = departures::<FfsSorter>(&fl, rate, config, &trace);
                let heap = departures::<HeapSorter>(&fl, rate, config, &trace);
                let pipelined = departures::<PipelinedSortBackend>(&fl, rate, config, &trace);
                assert_identical(&workload, "trie", &trie, "fastpath", &ffs);
                assert_identical(&workload, "trie", &trie, "heap", &heap);
                assert_identical(&workload, "trie", &trie, "pipelined", &pipelined);
            }
        }
    }
}

/// The policy dimension of the matrix: the `SortBackend` contract must
/// hold for *every* rank policy, not just the default WFQ — each policy
/// stresses a different tag distribution (bounded SRPT/priority ranks,
/// clustered FIFO+ timestamps, shaped leaky-bucket debt) against the
/// same three engines.
#[test]
fn backend_matrix_holds_for_every_rank_policy() {
    fn policy_departures<B: SortBackend>(
        fl: &[FlowSpec],
        rate: f64,
        config: SchedulerConfig,
        proto: &AnyPolicy,
        trace: &[Packet],
    ) -> Vec<Dep> {
        let hw = HwScheduler::<B, AnyPolicy>::with_backend_and_policy(fl, rate, config, proto);
        HwLinkSim::new(rate, hw)
            .run(trace)
            .expect("conformance workloads fit the configuration")
            .into_iter()
            .map(|d| (d.packet.flow.0, d.packet.seq))
            .collect()
    }
    let fl = flows();
    let rate = 1e6;
    for name in AnyPolicy::NAMES {
        let proto = AnyPolicy::by_name(name).expect("known policy");
        for admission in [AdmissionPolicy::TailDrop, AdmissionPolicy::PushOut] {
            let config = SchedulerConfig {
                geometry: Geometry::new(4, 5),
                capacity: 1 << 12,
                tick_scale: proto.tick_scale(rate),
                admission,
                ..SchedulerConfig::default()
            };
            let trace = generate(&fl, 0.6, 47);
            let workload = format!("policy={name}/{admission:?}");
            let trie = policy_departures::<SortRetrieveCircuit>(&fl, rate, config, &proto, &trace);
            assert_eq!(trie.len(), trace.len(), "{workload}: packet loss");
            let ffs = policy_departures::<FfsSorter>(&fl, rate, config, &proto, &trace);
            let heap = policy_departures::<HeapSorter>(&fl, rate, config, &proto, &trace);
            let pipelined =
                policy_departures::<PipelinedSortBackend>(&fl, rate, config, &proto, &trace);
            assert_identical(&workload, "trie", &trie, "fastpath", &ffs);
            assert_identical(&workload, "trie", &trie, "heap", &heap);
            assert_identical(&workload, "trie", &trie, "pipelined", &pipelined);
        }
    }
}

/// One step of a direct-drive program against a scheduler, with its
/// observable outcome — the unit of comparison for the adversarial
/// interleaves below.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Enqueued(Result<(), String>),
    Dequeued(Option<Dep>),
}

#[derive(Debug, Clone)]
enum Op {
    Enqueue { flow: u32, bytes: u32 },
    Dequeue,
}

/// Replays an op program against a fresh `B`-backed scheduler, recording
/// every observable outcome plus the final recycle counters.
fn replay<B: SortBackend>(
    fl: &[FlowSpec],
    config: SchedulerConfig,
    ops: &[Op],
) -> (Vec<Outcome>, u64, u64) {
    let mut hw = HwScheduler::<B>::with_backend(fl, 1e6, config);
    let mut outcomes = Vec::with_capacity(ops.len());
    let mut seq = 0u64;
    let mut t = 0.0f64;
    for op in ops {
        match op {
            Op::Enqueue { flow, bytes } => {
                // Generous inter-arrival gaps let the GPS virtual clock
                // catch up to every flow's finish between rounds (V never
                // overshoots the max outstanding finish), so tags stay
                // pinned near V and cross-flow drift cannot accumulate
                // past the Wrap policy's recycling-slack bound.
                t += 0.1;
                let pkt = Packet {
                    flow: FlowId(*flow),
                    size_bytes: *bytes,
                    arrival: Time(t),
                    seq,
                };
                seq += 1;
                outcomes.push(Outcome::Enqueued(
                    hw.enqueue(pkt).map_err(|e| e.to_string()),
                ));
            }
            Op::Dequeue => {
                outcomes.push(Outcome::Dequeued(hw.dequeue().map(|p| (p.flow.0, p.seq))));
            }
        }
    }
    while let Some(p) = hw.dequeue() {
        outcomes.push(Outcome::Dequeued(Some((p.flow.0, p.seq))));
    }
    let stats = hw.stats();
    (
        outcomes,
        stats.circuit.recycled_sections,
        stats.circuit.recycled_markers,
    )
}

/// Panics with the first divergent operation when two replays differ.
fn assert_replay_identical(name: &str, reference: &[Outcome], got: &[Outcome]) {
    if reference == got {
        return;
    }
    let i = reference
        .iter()
        .zip(got.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| reference.len().min(got.len()));
    panic!(
        "backend `{name}` diverges from `trie` at op #{i}:\n  \
         trie: {:?}\n  {name}: {:?}",
        reference.get(i),
        got.get(i),
    );
}

fn wrap_config(tick_scale: f64, capacity: usize) -> SchedulerConfig {
    SchedulerConfig {
        tick_scale,
        capacity,
        wrap_policy: WrapPolicy::Wrap,
        ..SchedulerConfig::default()
    }
}

/// The deterministic lap-sweep of the trie's wrap test, run on all three
/// backends at once: ~70 laps of the 12-bit tag space, with the
/// quantizer bulk-deleting (recycling) sections as the virtual clock
/// wraps, and — at capacity 1 — the buffer's 8-bit slot generation
/// wrapping its full 256-value range several times over.
#[test]
fn wrap_recycling_and_generation_reuse_agree_across_backends() {
    let fl = vec![FlowSpec::new(FlowId(0), 1.0, 1e6)];
    // Each 125-byte packet advances the tag by 100 ticks; drain lulls
    // every 25 packets keep the live window inside the lap (the same
    // shape as the trie's own wrap test).
    let mut ops = Vec::new();
    for _ in 0..120 {
        for _ in 0..25 {
            ops.push(Op::Enqueue {
                flow: 0,
                bytes: 125,
            });
            ops.push(Op::Dequeue);
        }
        for _ in 0..3 {
            ops.push(Op::Dequeue);
        }
    }
    // Capacity 1: every packet reuses the single buffer slot, so 3000
    // reuses sweep the 8-bit generation space ~12 times.
    let config = wrap_config(10.0, 1);
    let (trie, trie_sections, trie_markers) = replay::<SortRetrieveCircuit>(&fl, config, &ops);
    let (ffs, ffs_sections, ffs_markers) = replay::<FfsSorter>(&fl, config, &ops);
    let (heap, heap_sections, heap_markers) = replay::<HeapSorter>(&fl, config, &ops);
    let (pipe, pipe_sections, pipe_markers) = replay::<PipelinedSortBackend>(&fl, config, &ops);
    assert_replay_identical("fastpath", &trie, &ffs);
    assert_replay_identical("heap", &trie, &heap);
    assert_replay_identical("pipelined", &trie, &pipe);
    assert!(
        trie_sections > 0,
        "the sweep must actually exercise section recycling"
    );
    assert_eq!(
        (trie_sections, trie_markers),
        (ffs_sections, ffs_markers),
        "fastpath bulk-delete accounting diverged"
    );
    assert_eq!(
        (trie_sections, trie_markers),
        (heap_sections, heap_markers),
        "heap bulk-delete accounting diverged"
    );
    assert_eq!(
        (trie_sections, trie_markers),
        (pipe_sections, pipe_markers),
        "pipelined bulk-delete accounting diverged"
    );
}

/// A burst of arrivals followed by a full drain (plus a few extra pops
/// against the empty queue). Draining every round keeps the live-tag
/// window inside the Wrap policy's recycling-slack bound — the same
/// service-lull shape as the deterministic sweep above — while the burst
/// contents stay arbitrary.
fn round_strategy() -> impl Strategy<Value = (Vec<(u32, u32)>, usize)> {
    (
        proptest::collection::vec(
            (
                0u32..3,
                prop_oneof![Just(125u32), Just(700u32), Just(1500u32)],
            ),
            1..12,
        ),
        0usize..3,
    )
}

/// Flattens burst/drain rounds into the op program `replay` consumes.
fn rounds_to_ops(rounds: &[(Vec<(u32, u32)>, usize)]) -> Vec<Op> {
    let mut ops = Vec::new();
    for (burst, extra_pops) in rounds {
        for &(flow, bytes) in burst {
            ops.push(Op::Enqueue { flow, bytes });
        }
        for _ in 0..burst.len() + extra_pops {
            ops.push(Op::Dequeue);
        }
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bulk-delete equivalence under virtual-clock wrap: arbitrary
    /// burst/drain programs against a small wrap-mode scheduler (an
    /// 8-slot buffer, so bursts overflow it and slot generations recycle
    /// constantly) must agree across all three backends — per-operation
    /// outcomes including refusals, the full drain, and the
    /// section-recycle counters.
    #[test]
    fn wrapped_section_bulk_delete_is_backend_equivalent(
        rounds in proptest::collection::vec(round_strategy(), 1..60),
    ) {
        let fl = flows();
        let ops = rounds_to_ops(&rounds);
        // Coarse ticks: a worst-case burst (eleven 1500-byte packets on
        // the weight-1 flow) spans ~2200 ticks, inside the Wrap policy's
        // 3840-tick recycling-slack bound.
        let config = wrap_config(60.0, 8);
        let (trie, trie_sections, trie_markers) =
            replay::<SortRetrieveCircuit>(&fl, config, &ops);
        let (ffs, ffs_sections, ffs_markers) = replay::<FfsSorter>(&fl, config, &ops);
        let (heap, heap_sections, heap_markers) = replay::<HeapSorter>(&fl, config, &ops);
        let (pipe, pipe_sections, pipe_markers) =
            replay::<PipelinedSortBackend>(&fl, config, &ops);
        assert_replay_identical("fastpath", &trie, &ffs);
        assert_replay_identical("heap", &trie, &heap);
        assert_replay_identical("pipelined", &trie, &pipe);
        prop_assert_eq!((trie_sections, trie_markers), (ffs_sections, ffs_markers));
        prop_assert_eq!((trie_sections, trie_markers), (heap_sections, heap_markers));
        prop_assert_eq!((trie_sections, trie_markers), (pipe_sections, pipe_markers));
    }

    /// Hazard machinery must never leak into functional behaviour:
    /// arbitrary programs hammering back-to-back operations on a handful
    /// of trie sections — with section recycling standing in for
    /// virtual-clock laps and a tiny capacity forcing constant slot
    /// generation reuse — must be observation-identical between the deep
    /// pipeline and the sequential circuit oracle, and the pipeline's
    /// stall/forward/conflict counters must be a pure function of the op
    /// stream (identical across re-runs).
    #[test]
    fn back_to_back_section_traffic_matches_the_sequential_oracle(
        ops in proptest::collection::vec(direct_op_strategy(), 1..200),
    ) {
        let (oracle_log, _) = drive::<SortRetrieveCircuit>(&ops);
        let (pipe_log, pipe) = drive::<PipelinedSortBackend>(&ops);
        prop_assert_eq!(&oracle_log, &pipe_log, "pipelined diverges from the sequential oracle");
        let (replay_log, pipe_again) = drive::<PipelinedSortBackend>(&ops);
        prop_assert_eq!(&pipe_log, &replay_log, "pipelined replay diverged from itself");
        prop_assert_eq!(
            pipe.pipeline_stats(),
            pipe_again.pipeline_stats(),
            "stall/forward/conflict counts must be deterministic"
        );
    }
}

/// One direct-drive step against a bare `SortBackend`, biased so
/// consecutive ops frequently land in the same trie section (sections are
/// drawn from a pool of four) — the read-after-write shape the deep
/// pipeline's hazard unit exists for.
#[derive(Debug, Clone)]
enum DirectOp {
    Insert { section: u8, offset: u8 },
    PopMin,
    PopMax,
    Recycle { section: u8 },
}

fn direct_op_strategy() -> impl Strategy<Value = DirectOp> {
    prop_oneof![
        5 => (0u16..4, 0u16..256)
            .prop_map(|(section, offset)| DirectOp::Insert {
                section: section as u8,
                offset: offset as u8,
            }),
        3 => Just(DirectOp::PopMin),
        1 => Just(DirectOp::PopMax),
        1 => (0u8..4).prop_map(|section| DirectOp::Recycle { section }),
    ]
}

/// Replays a direct-drive program against a fresh `B` at the paper
/// geometry with a 16-tag capacity (so inserts overflow and refusals are
/// compared too), logging every observable outcome plus a full drain;
/// returns the backend for post-mortem inspection.
fn drive<B: SortBackend>(ops: &[DirectOp]) -> (Vec<String>, B) {
    let spec = BackendSpec {
        geometry: Geometry::paper(),
        capacity: 16,
        cleanup: CleanupPolicy::Eager,
        memory: MemoryKind::SinglePort,
    };
    let mut backend = B::build(&spec);
    let mut log = Vec::with_capacity(ops.len());
    // Live-tag shadow: recycling a section that still holds tags is a
    // contract violation (the circuit asserts on it), so the driver only
    // recycles empty sections — mirroring the quantizer, which recycles
    // only sections the virtual clock has fully drained.
    let mut live: Vec<Tag> = Vec::new();
    let section_of = |tag: Tag| tag.0 >> 8;
    for (i, op) in ops.iter().enumerate() {
        log.push(match op {
            DirectOp::Insert { section, offset } => {
                let tag = Tag(u32::from(*section) << 8 | u32::from(*offset));
                let result = backend.insert(tag, PacketRef(i as u32));
                if result.is_ok() {
                    live.push(tag);
                }
                format!("{result:?}")
            }
            DirectOp::PopMin => {
                let popped = backend.pop_min();
                if let Some((tag, _)) = popped {
                    let at = live.iter().position(|&t| t == tag).expect("popped live");
                    live.swap_remove(at);
                }
                format!("{popped:?}")
            }
            DirectOp::PopMax => {
                let popped = backend.pop_max();
                if let Some((tag, _)) = popped {
                    let at = live.iter().position(|&t| t == tag).expect("popped live");
                    live.swap_remove(at);
                }
                format!("{popped:?}")
            }
            DirectOp::Recycle { section } => {
                if live.iter().any(|&t| section_of(t) == u32::from(*section)) {
                    "recycle skipped (live section)".to_string()
                } else {
                    format!("recycled {}", backend.recycle_section(u32::from(*section)))
                }
            }
        });
    }
    while let Some(popped) = backend.pop_min() {
        log.push(format!("{popped:?}"));
    }
    log.push(format!("len {}", backend.len()));
    (log, backend)
}
