//! Sharded multi-port frontend invariants: stable flow-affinity routing,
//! work-conserving service across ports, and conservation of traffic
//! against the single-scheduler reference.

use scheduler::{shard_of, HwScheduler, SchedulerConfig, ShardedLinkSim, ShardedScheduler};
use traffic::{generate, generate_multiport, profiles, FlowId, FlowSpec, Packet, PortSpec, Time};

fn mixed_flows(n: usize) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            let base = FlowSpec::new(FlowId(i as u32), 1.0 + (i % 4) as f64, 300_000.0);
            match i % 3 {
                0 => base.size(traffic::SizeDist::Fixed(140)),
                1 => base.size(traffic::SizeDist::Imix),
                _ => base
                    .size(traffic::SizeDist::Fixed(500))
                    .arrivals(traffic::ArrivalProcess::Poisson),
            }
        })
        .collect()
}

/// Rebuilding the frontend — a router restart, a rehash — reassigns every
/// flow to the same port, because the affinity map is a pure function of
/// the flow id; and live routing agrees with that map.
#[test]
fn flow_affinity_is_stable_under_rehash() {
    let fl = mixed_flows(24);
    for ports in [1usize, 2, 3, 4, 8] {
        let a = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        let b = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        for f in 0..24u32 {
            assert_eq!(a.port_of(FlowId(f)), b.port_of(FlowId(f)));
            assert_eq!(a.port_of(FlowId(f)), Some(shard_of(FlowId(f), ports)));
        }
        // And routing in motion lands every packet on the mapped port.
        let mut fe = a;
        let trace = generate(&fl, 0.05, 3);
        for p in &trace {
            let port = fe.port_of(p.flow).unwrap();
            let before = fe.port_len(port);
            fe.enqueue(*p).unwrap();
            assert_eq!(fe.port_len(port), before + 1, "packet missed its shard");
        }
        while let Some((port, pkt)) = fe.dequeue() {
            assert_eq!(port, shard_of(pkt.flow, ports), "served off-shard");
        }
    }
}

/// The round-robin dequeue never reports an idle frontend while any port
/// holds backlog, and a backlogged port waits at most one full rotation.
#[test]
fn dequeue_is_work_conserving_across_ports() {
    let fl = mixed_flows(24);
    let ports = 4;
    let mut fe = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
    let trace = generate(&fl, 0.1, 17);
    fe.enqueue_batch(&trace).unwrap();
    let mut since_served = vec![0usize; ports];
    let mut total = 0usize;
    while !fe.is_empty() {
        let backlog: Vec<usize> = (0..ports).map(|p| fe.port_len(p)).collect();
        let (port, _) = fe
            .dequeue()
            .expect("frontend idle while ports hold backlog");
        total += 1;
        for (p, waited) in since_served.iter_mut().enumerate() {
            if p == port {
                *waited = 0;
            } else if backlog[p] > 0 {
                *waited += 1;
                assert!(
                    *waited < ports,
                    "port {p} starved for {waited} services with backlog"
                );
            }
        }
    }
    assert_eq!(total, trace.len());
}

/// Sharding loses nothing: every packet of the trace is served exactly
/// once, and the aggregate packet/byte counts match a single-scheduler
/// run of the same trace.
#[test]
fn aggregate_counts_match_the_single_scheduler_reference() {
    let fl = mixed_flows(24);
    let trace = generate(&fl, 0.1, 29);
    let total_bytes: u64 = trace.iter().map(|p| u64::from(p.size_bytes)).sum();

    // Reference: the whole trace through one scheduler.
    let mut single = HwScheduler::new(&fl, 1e9, SchedulerConfig::default());
    let served = single.sort_trace(&trace).unwrap();
    let single_bytes: u64 = served.iter().map(|p| u64::from(p.size_bytes)).sum();
    assert_eq!(single_bytes, total_bytes);

    for ports in [1usize, 2, 4] {
        let mut fe = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        fe.enqueue_batch(&trace).unwrap();
        let mut seqs: Vec<u64> = Vec::new();
        let mut bytes = 0u64;
        while let Some((_, pkt)) = fe.dequeue() {
            seqs.push(pkt.seq);
            bytes += u64::from(pkt.size_bytes);
        }
        assert_eq!(bytes, single_bytes, "{ports} ports lost bytes");
        seqs.sort_unstable();
        let mut expect: Vec<u64> = trace.iter().map(|p| p.seq).collect();
        expect.sort_unstable();
        assert_eq!(seqs, expect, "{ports} ports served a different packet set");
        let stats = fe.stats();
        assert_eq!(stats.aggregate.enqueued, trace.len() as u64);
        assert_eq!(stats.aggregate.dequeued, trace.len() as u64);
        assert_eq!(stats.aggregate.buffer.rejected, 0);
    }
}

/// One-port sharding is literally the single scheduler: identical service
/// order, packet for packet.
#[test]
fn one_port_frontend_equals_the_single_scheduler() {
    let fl = mixed_flows(12);
    let trace = generate(&fl, 0.1, 41);
    let mut single = HwScheduler::new(&fl, 1e9, SchedulerConfig::default());
    let reference = single.sort_trace(&trace).unwrap();

    let mut fe = ShardedScheduler::new(&fl, 1e9, 1, SchedulerConfig::default());
    fe.enqueue_batch(&trace).unwrap();
    let sharded: Vec<Packet> = std::iter::from_fn(|| fe.dequeue().map(|(_, p)| p)).collect();
    assert_eq!(sharded, reference);
}

/// The per-port link simulation serves the multi-port workload end to
/// end: every generated packet departs, per-flow order holds, and each
/// port's transmissions never overlap.
#[test]
fn link_sim_runs_a_multiport_workload() {
    let ports_spec = vec![
        PortSpec::new(1e7, profiles::diverse_mix(6, 700_000.0)),
        PortSpec::new(1e7, profiles::voip(5)),
    ];
    let mp = generate_multiport(&ports_spec, 0.2, 19);
    // Route by affinity over the global flow set (the frontend's own
    // partition, independent of the generator's port labels).
    let fe = ShardedScheduler::new(&mp.flows, 1e7, 2, SchedulerConfig::default());
    let mut sim = ShardedLinkSim::new(fe);
    let deps = sim.run(&mp.merged).unwrap();
    assert_eq!(deps.len(), mp.merged.len());

    for port in 0..2 {
        let mut last_finish = Time::ZERO;
        for d in deps.iter().filter(|d| d.port == port) {
            assert!(d.departure.start >= last_finish, "port {port} overlaps");
            last_finish = d.departure.finish;
        }
    }
    // Per-flow FIFO order survives sharding (the point of flow affinity).
    let mut last_seq: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for d in &deps {
        let f = d.departure.packet.flow.0;
        if let Some(prev) = last_seq.insert(f, d.departure.packet.seq) {
            assert!(prev < d.departure.packet.seq, "flow {f} reordered");
        }
    }
}
