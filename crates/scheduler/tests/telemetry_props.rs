//! No observer effect: attaching telemetry (counters, gauges,
//! histograms, and the bounded event tracer) to a frontend must not
//! change what the scheduler does — only what it reports. Instrumented
//! and uninstrumented runs over the same trace must produce identical
//! dequeue sequences, and the instrumented run's counters must agree
//! with the packets that actually moved.

use proptest::prelude::*;

use scheduler::{ParallelShardedScheduler, SchedulerConfig, ShardedScheduler};
use telemetry::Telemetry;
use traffic::{FlowId, FlowSpec, Packet, SizeDist, Time};

fn flows(n: usize) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            FlowSpec::new(FlowId(i as u32), 1.0 + (i % 5) as f64, 1e6).size(SizeDist::Fixed(500))
        })
        .collect()
}

/// A deterministic arrival stream over `n` flows (flow choice and sizes
/// driven by the generated `picks`).
fn stream(picks: &[u32], n: usize) -> Vec<Packet> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &p)| Packet {
            flow: FlowId(p % n as u32),
            size_bytes: 40 + (p % 1461),
            arrival: Time(i as f64 * 1e-6),
            seq: i as u64,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential frontend: a fully instrumented run (metrics + a small
    /// event ring, so eviction churn is also exercised) drains the exact
    /// dequeue sequence of a bare run, and the merged counters match the
    /// observed packet flow.
    #[test]
    fn instrumented_sharded_scheduler_matches_bare_run(
        picks in proptest::collection::vec(0u32..10_000, 16..200),
        ports in 1usize..6,
    ) {
        let fl = flows(24);
        let trace = stream(&picks, 24);

        let mut bare = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        bare.enqueue_batch(&trace).unwrap();
        let mut reference = Vec::new();
        while let Some(served) = bare.dequeue() {
            reference.push(served);
        }

        let tel = Telemetry::with_tracing(ports, 4);
        let mut wired = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        wired.attach_telemetry(&tel);
        wired.enqueue_batch(&trace).unwrap();
        let mut observed = Vec::new();
        while let Some(served) = wired.dequeue() {
            observed.push(served);
        }

        prop_assert_eq!(&observed, &reference, "telemetry changed the schedule");

        // The counters must agree with what actually happened.
        let snap = tel.snapshot();
        let n = trace.len() as f64;
        prop_assert_eq!(snap.value("sched_enqueued_total"), Some(n));
        prop_assert_eq!(snap.value("sched_dequeued_total"), Some(n));
        prop_assert_eq!(snap.value("shard_handoffs_total"), Some(n));
        prop_assert_eq!(snap.value("sched_dropped_total"), Some(0.0));
    }

    /// Thread-per-shard frontend: telemetry attached at construction
    /// must not perturb the drained global sequence relative to an
    /// uninstrumented parallel run.
    #[test]
    fn instrumented_parallel_frontend_matches_bare_run(
        picks in proptest::collection::vec(0u32..10_000, 16..200),
        ports in 1usize..5,
    ) {
        let fl = flows(24);
        let trace = stream(&picks, 24);
        let rates = vec![1e9; ports];

        let mut bare = ParallelShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        bare.enqueue_batch(&trace).unwrap();
        let reference = bare.drain();

        let tel = Telemetry::with_tracing(ports, 4);
        let mut wired =
            ParallelShardedScheduler::with_telemetry(&fl, &rates, SchedulerConfig::default(), &tel);
        wired.enqueue_batch(&trace).unwrap();
        let observed = wired.drain();

        prop_assert_eq!(&observed, &reference, "telemetry changed the schedule");

        let snap = tel.snapshot();
        let n = trace.len() as f64;
        prop_assert_eq!(snap.value("sched_enqueued_total"), Some(n));
        prop_assert_eq!(snap.value("sched_dequeued_total"), Some(n));
        prop_assert_eq!(snap.value("shard_handoffs_total"), Some(n));
    }
}
