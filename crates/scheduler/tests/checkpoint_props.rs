//! Property tests for checkpoint/restore determinism.
//!
//! The pinned invariant of [`HwScheduler::checkpoint`] /
//! [`HwScheduler::restore`]: splitting a run at **any** point —
//! checkpoint, restore into a fresh scheduler, continue — produces the
//! departure sequence of the unsplit run, packet for packet, across
//! every sorting backend, every rank policy, and paged/eager trie
//! memory. Example-based tests pin a few split points; this sweeps
//! seeded workloads and arbitrary splits over the whole matrix.

use fairq::{AnyPolicy, RankPolicy};
use fastpath::FfsSorter;
use proptest::prelude::*;
use scheduler::{HwScheduler, SchedulerConfig, WrapPolicy};
use tagsort::{HeapSorter, PipelinedSortBackend, SortBackend, SortRetrieveCircuit};
use traffic::{generate, ArrivalProcess, FlowId, FlowSpec, SizeDist};

const RATE: f64 = 1e6;

fn flows() -> Vec<FlowSpec> {
    [4.0, 1.0, 2.0, 1.0]
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            FlowSpec::new(FlowId(i as u32), w, RATE / 5.0)
                .size(SizeDist::Bimodal {
                    small: 64,
                    large: 1200,
                    p_small: 0.5,
                })
                .arrivals(ArrivalProcess::Poisson)
        })
        .collect()
}

fn config(proto: &AnyPolicy) -> SchedulerConfig {
    SchedulerConfig {
        tick_scale: proto.tick_scale(RATE),
        capacity: 1 << 10,
        wrap_policy: WrapPolicy::Saturate,
        ..SchedulerConfig::default()
    }
}

/// One deterministic program step: enqueue the next packet, and after
/// every third enqueue serve one packet — so the split lands in a
/// half-drained queue, not at a quiet boundary.
///
/// Runs the program over `trace`, splitting at `split` (checkpoint →
/// restore → continue) when `Some`, and returns the full departure
/// sequence as `(flow, seq)` pairs.
fn run_program<B: SortBackend>(
    proto: &AnyPolicy,
    paged: bool,
    trace: &[traffic::Packet],
    split: Option<usize>,
) -> Vec<(u32, u64)> {
    let fl = flows();
    let mut sched =
        HwScheduler::<B, AnyPolicy>::with_backend_and_policy(&fl, RATE, config(proto), proto);
    if paged {
        assert!(sched.set_paged_state());
    }
    let mut out = Vec::new();
    for (i, pkt) in trace.iter().enumerate() {
        if Some(i) == split {
            let ckpt = sched.checkpoint();
            ckpt.verify().expect("fresh checkpoint verifies");
            sched = HwScheduler::<B, AnyPolicy>::restore(&fl, RATE, config(proto), proto, &ckpt)
                .expect("uncorrupted checkpoint restores");
        }
        sched.enqueue(*pkt).expect("capacity covers the trace");
        if i % 3 == 2 {
            if let Some(p) = sched.dequeue() {
                out.push((p.flow.0, p.seq));
            }
        }
    }
    while let Some(p) = sched.dequeue() {
        out.push((p.flow.0, p.seq));
    }
    out
}

fn check_split(backend: usize, policy: &str, paged: bool, seed: u64, split_frac: f64) {
    let proto = AnyPolicy::by_name(policy).unwrap();
    // Paged state only exists on the trie backend.
    let paged = paged && backend == 0;
    let trace = generate(&flows(), 0.5, seed);
    assert!(!trace.is_empty(), "0.5 s of 4-flow traffic is never empty");
    let split = ((trace.len() - 1) as f64 * split_frac) as usize;
    let run = |s: Option<usize>| match backend {
        0 => run_program::<SortRetrieveCircuit>(&proto, paged, &trace, s),
        1 => run_program::<FfsSorter>(&proto, paged, &trace, s),
        2 => run_program::<HeapSorter>(&proto, paged, &trace, s),
        3 => run_program::<PipelinedSortBackend>(&proto, paged, &trace, s),
        _ => unreachable!(),
    };
    let unsplit = run(None);
    let rejoined = run(Some(split));
    assert_eq!(
        unsplit,
        rejoined,
        "departure sequence diverged: backend {backend}, policy {policy}, \
         paged {paged}, seed {seed}, split {split}/{}",
        trace.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any split point, any backend × policy × memory mode: the
    /// checkpointed-and-restored run departs identically to the
    /// unsplit one.
    #[test]
    fn any_split_point_restores_the_exact_departure_sequence(
        backend in 0usize..4,
        policy in prop_oneof![
            Just("wfq"), Just("stfq"), Just("srpt"), Just("fifo+"),
            Just("prio"), Just("leaky"), Just("hwfq"),
        ],
        paged in any::<bool>(),
        seed in 0u64..1_000,
        split_frac in 0.0f64..1.0,
    ) {
        check_split(backend, policy, paged, seed, split_frac);
    }
}

/// The full matrix at one fixed seed and mid-run split, so every
/// backend × policy pair is exercised on every CI run (the proptest
/// above samples the space; this pins the corners).
#[test]
fn every_backend_and_policy_survives_a_mid_run_split() {
    for backend in 0..4 {
        for policy in AnyPolicy::NAMES {
            check_split(backend, policy, true, 7, 0.5);
        }
    }
}
