//! Property tests for the tag quantizer: monotonicity, clamping, and the
//! circular recycling order, under arbitrary virtual-time trajectories.

use proptest::prelude::*;

use fairq::VirtualTime;
use scheduler::{TagQuantizer, WrapPolicy};
use tagsort::Geometry;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ticks never decrease for a monotone virtual-time input, under
    /// either policy, and the clamped flag fires exactly when the tick
    /// was reduced.
    #[test]
    fn ticks_are_monotone(
        steps in proptest::collection::vec(0.0f64..500.0, 1..200),
        saturate in proptest::bool::ANY,
    ) {
        let policy = if saturate { WrapPolicy::Saturate } else { WrapPolicy::Wrap };
        let mut q = TagQuantizer::with_policy(Geometry::paper(), 1.0, policy);
        let mut v = 0.0;
        let mut last_tick = 0u64;
        // Track a window of outstanding ticks (drain aggressively so the
        // wrap policy's slack bound holds for any generated trajectory).
        let mut outstanding: std::collections::VecDeque<u64> = Default::default();
        for s in steps {
            v += s;
            let min = outstanding.front().copied();
            // Keep the window under half a lap.
            let out = q.quantize(VirtualTime(v), min);
            prop_assert!(out.tick >= last_tick, "tick went backwards");
            prop_assert_eq!(
                out.tag.value() as u64,
                out.tick % 4096,
                "tag is the wrapped tick"
            );
            last_tick = out.tick;
            outstanding.push_back(out.tick);
            while outstanding.len() > 4
                || outstanding
                    .front()
                    .is_some_and(|&f| out.tick - f > 1800)
            {
                outstanding.pop_front();
            }
        }
    }

    /// Under Saturate, every assigned tick stays within the lap of the
    /// oldest outstanding tick — the invariant that makes modular
    /// reduction order-preserving.
    #[test]
    fn saturate_confines_ticks_to_the_live_lap(
        steps in proptest::collection::vec(0.0f64..3000.0, 1..150),
    ) {
        let mut q = TagQuantizer::new(Geometry::paper(), 1.0);
        let mut v = 0.0;
        let mut outstanding: Vec<u64> = Vec::new();
        for s in steps {
            v += s;
            let min = outstanding.iter().min().copied();
            let out = q.quantize(VirtualTime(v), min);
            if let Some(m) = min {
                let lap = m / 4096;
                prop_assert_eq!(out.tick / 4096, lap, "tick left the live lap");
            }
            outstanding.push(out.tick);
            if outstanding.len() > 6 {
                outstanding.remove(0);
            }
        }
    }

    /// Recycled sections always appear in circular order with no skips,
    /// whatever the trajectory (Wrap policy, bounded window).
    #[test]
    fn recycling_is_circular_and_gapless(
        steps in proptest::collection::vec(1.0f64..300.0, 1..300),
    ) {
        let mut q = TagQuantizer::with_policy(Geometry::paper(), 1.0, WrapPolicy::Wrap);
        let mut v = 0.0;
        let mut expected_next: Option<u32> = Some(0);
        for s in steps {
            v += s;
            // Keep the window trivially small: nothing outstanding.
            let out = q.quantize(VirtualTime(v), None);
            for r in out.recycle {
                prop_assert_eq!(Some(r), expected_next, "out-of-order recycle");
                expected_next = Some((r + 1) % 16);
            }
        }
    }

    /// Rebase restarts numbering without ever producing a smaller
    /// virtual-time base than before (monotone bases).
    #[test]
    fn rebase_roundtrip(jumps in proptest::collection::vec(0.0f64..5000.0, 1..50)) {
        let mut q = TagQuantizer::new(Geometry::paper(), 2.0);
        let mut v = 0.0;
        for j in jumps {
            v += j;
            q.rebase(VirtualTime(v));
            let out = q.quantize(VirtualTime(v + 10.0), None);
            // 10 virtual units / scale 2 = 5 ticks, minus at most one
            // tick of floating-point floor slack.
            prop_assert!((4..=5).contains(&out.tick), "tick {}", out.tick);
            prop_assert!(!out.clamped);
        }
    }
}
