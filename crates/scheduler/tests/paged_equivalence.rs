//! Paged-state equivalence: the lazily paged translation table and tag
//! store behind [`HwScheduler::set_paged_state`] are a pure allocation
//! strategy — the datapath never observes them.
//!
//! The contract is exact: on every workload of the backend-conformance
//! matrix (seeds × wrap policies × memory kinds × rank policies), a
//! paged trie scheduler must serve the **identical departure sequence**
//! to an eager one, while its resident footprint stays proportional to
//! live tags instead of the tag universe.

use fairq::AnyPolicy;
use fairq::RankPolicy;
use scheduler::{HwLinkSim, HwScheduler, SchedulerConfig, WrapPolicy};
use tagsort::{Geometry, MemoryKind, SortRetrieveCircuit};
use traffic::{generate, FlowId, FlowSpec, Packet, SizeDist};

fn flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec::new(FlowId(0), 4.0, 300_000.0).size(SizeDist::Fixed(140)),
        FlowSpec::new(FlowId(1), 1.0, 500_000.0).size(SizeDist::Imix),
        FlowSpec::new(FlowId(2), 2.0, 200_000.0).size(SizeDist::Fixed(700)),
    ]
}

type Dep = (u32, u64);

fn departures(
    fl: &[FlowSpec],
    rate: f64,
    config: SchedulerConfig,
    proto: &AnyPolicy,
    trace: &[Packet],
    paged: bool,
) -> Vec<Dep> {
    let mut hw = HwScheduler::<SortRetrieveCircuit, AnyPolicy>::with_backend_and_policy(
        fl, rate, config, proto,
    );
    if paged {
        assert!(hw.set_paged_state(), "the trie circuit pages its state");
    }
    HwLinkSim::new(rate, hw)
        .run(trace)
        .expect("conformance workloads fit the configuration")
        .into_iter()
        .map(|d| (d.packet.flow.0, d.packet.seq))
        .collect()
}

/// The backend-matrix sweep, paged against eager: identical departures
/// on every seed × wrap policy × memory kind.
#[test]
fn paged_matches_eager_on_backend_matrix_seeds() {
    let fl = flows();
    let rate = 1e6;
    let proto = AnyPolicy::default();
    for seed in [31, 47, 202] {
        let trace = generate(&fl, 0.8, seed);
        for wrap_policy in [WrapPolicy::Saturate, WrapPolicy::Wrap] {
            for memory in [MemoryKind::SinglePort, MemoryKind::QdrLike] {
                let config = SchedulerConfig {
                    geometry: Geometry::new(4, 5),
                    capacity: 1 << 12,
                    tick_scale: 30.0,
                    wrap_policy,
                    memory,
                    ..SchedulerConfig::default()
                };
                let eager = departures(&fl, rate, config, &proto, &trace, false);
                let paged = departures(&fl, rate, config, &proto, &trace, true);
                assert_eq!(
                    eager, paged,
                    "paged trie diverged on seed={seed}/{wrap_policy:?}/{memory:?}"
                );
            }
        }
    }
}

/// The policy dimension: paging is invisible to every rank policy,
/// including the non-monotone ones whose recycling patterns free and
/// re-materialize pages mid-run.
#[test]
fn paged_matches_eager_for_every_rank_policy() {
    let fl = flows();
    let rate = 1e6;
    let trace = generate(&fl, 0.5, 47);
    for name in AnyPolicy::NAMES {
        let proto = AnyPolicy::by_name(name).expect("known policy");
        let config = SchedulerConfig {
            geometry: Geometry::new(4, 5),
            capacity: 1 << 12,
            tick_scale: proto.tick_scale(rate),
            ..SchedulerConfig::default()
        };
        let eager = departures(&fl, rate, config, &proto, &trace, false);
        let paged = departures(&fl, rate, config, &proto, &trace, true);
        assert_eq!(eager, paged, "paged trie diverged under policy {name}");
    }
}

/// Resident memory is a live-tag figure, not a universe figure: a
/// paged scheduler holding a handful of packets keeps orders of
/// magnitude fewer words resident than the eager layout, and frees
/// pages again as the clock laps recycled sections.
#[test]
fn paged_resident_memory_tracks_live_tags() {
    let fl = flows();
    let trace = generate(&fl, 0.5, 31);
    let config = SchedulerConfig {
        geometry: Geometry::new(4, 5),
        capacity: 1 << 12,
        tick_scale: 30.0,
        ..SchedulerConfig::default()
    };
    let mut hw = HwScheduler::<SortRetrieveCircuit>::with_backend(&fl, 1e6, config);
    assert!(hw.set_paged_state());
    let before = hw.resident_memory().expect("the trie models memory");
    for p in &trace {
        hw.enqueue(*p).expect("trace fits");
    }
    let loaded = hw.resident_memory().expect("the trie models memory");
    while hw.dequeue().is_some() {}
    let drained = hw.resident_memory().expect("the trie models memory");

    assert!(
        loaded.resident_words > before.resident_words,
        "pages materialize on write"
    );
    assert!(
        loaded.peak_resident_words * 4 < loaded.total_words,
        "peak resident {} should stay well under the {}-word universe",
        loaded.peak_resident_words,
        loaded.total_words
    );
    assert!(
        drained.resident_words <= loaded.resident_words,
        "draining must never grow residency"
    );

    // The eager layout reports the whole universe resident.
    let eager = HwScheduler::<SortRetrieveCircuit>::with_backend(&fl, 1e6, config);
    let full = eager.resident_memory().expect("the trie models memory");
    assert_eq!(full.resident_words, full.total_words);
}
