//! Property tests for the sharded frontends: routing stability across
//! batch sizes, global↔local flow-id round-trips, and determinism of the
//! thread-per-shard frontend against the sequential reference.

use proptest::prelude::*;

use scheduler::{shard_of, ParallelShardedScheduler, SchedulerConfig, ShardedScheduler};
use traffic::{FlowId, FlowSpec, Packet, SizeDist, Time};

fn flows(n: usize) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            FlowSpec::new(FlowId(i as u32), 1.0 + (i % 5) as f64, 1e6).size(SizeDist::Fixed(500))
        })
        .collect()
}

/// A deterministic arrival stream over `n` flows (flow choice and sizes
/// driven by the generated `picks`).
fn stream(picks: &[u32], n: usize) -> Vec<Packet> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &p)| Packet {
            flow: FlowId(p % n as u32),
            size_bytes: 40 + (p % 1461),
            arrival: Time(i as f64 * 1e-6),
            seq: i as u64,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Routing is a pure function of the flow id: however a trace is cut
    /// into batches, every packet lands on `shard_of`'s port and the
    /// occupancy totals agree with single-packet enqueue.
    #[test]
    fn routing_is_stable_across_batch_sizes(
        picks in proptest::collection::vec(0u32..10_000, 16..200),
        ports in 1usize..9,
        cut in 1usize..32,
    ) {
        let fl = flows(24);
        let trace = stream(&picks, 24);

        let mut whole = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        whole.enqueue_batch(&trace).unwrap();

        let mut chunked = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        for chunk in trace.chunks(cut) {
            chunked.enqueue_batch(chunk).unwrap();
        }

        for port in 0..ports {
            prop_assert_eq!(whole.port_len(port), chunked.port_len(port));
        }
        // And the live routing is exactly the static map.
        for p in &trace {
            prop_assert_eq!(whole.port_of(p.flow), Some(shard_of(p.flow, ports)));
        }
    }

    /// Global → local → global flow-id remapping round-trips: every
    /// packet comes back out carrying the same global flow id it went in
    /// with, on the port the static map promised.
    #[test]
    fn flow_ids_round_trip_through_local_renumbering(
        picks in proptest::collection::vec(0u32..10_000, 16..200),
        ports in 1usize..9,
    ) {
        let fl = flows(24);
        let trace = stream(&picks, 24);
        let mut fe = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        fe.enqueue_batch(&trace).unwrap();
        let mut seen = 0usize;
        while let Some((port, pkt)) = fe.dequeue() {
            prop_assert!((pkt.flow.0 as usize) < 24, "local id leaked out");
            prop_assert_eq!(port, shard_of(pkt.flow, ports), "served off-shard");
            seen += 1;
        }
        prop_assert_eq!(seen, trace.len());
    }

    /// Determinism despite threading: for any trace and port count, the
    /// thread-per-shard frontend drains the exact global round-robin
    /// sequence of the sequential frontend — same packets, same ports,
    /// same order.
    #[test]
    fn parallel_frontend_matches_sequential_dequeue_sequence(
        picks in proptest::collection::vec(0u32..10_000, 16..200),
        ports in 1usize..5,
    ) {
        let fl = flows(24);
        let trace = stream(&picks, 24);

        let mut seq = ShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        seq.enqueue_batch(&trace).unwrap();
        let mut reference = Vec::new();
        while let Some(served) = seq.dequeue() {
            reference.push(served);
        }

        let mut par = ParallelShardedScheduler::new(&fl, 1e9, ports, SchedulerConfig::default());
        par.enqueue_batch(&trace).unwrap();
        let drained = par.drain();
        prop_assert_eq!(drained, reference);
    }
}
