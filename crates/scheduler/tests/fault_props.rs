//! Fault-tolerance properties of the instrumented scheduler.
//!
//! Two guarantees from DESIGN.md §13, exercised over randomized
//! workloads and fault plans:
//!
//! 1. **Scrub-and-repair exactness** — when every trie section is
//!    audited each dequeue round, a run whose injected trie faults are
//!    all repaired before the affected tag is retrieved serves the
//!    *exact* dequeue sequence of a fault-free run.
//! 2. **Detect-and-count accounting** — under `DetectAndCount` the
//!    scheduler never panics, and after reconciliation every injected
//!    fault is either detected or counted as a silent corruption:
//!    `faults_detected + silent_corruptions == faults_injected`.

use proptest::prelude::*;

use faultsim::{FaultConfig, FaultPolicy, FaultSpec};
use scheduler::{HwScheduler, SchedulerConfig};
use tagsort::Geometry;
use telemetry::Telemetry;
use traffic::{FlowId, FlowSpec, Packet, SizeDist, Time};

fn flows(n: usize) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            FlowSpec::new(FlowId(i as u32), 1.0 + (i % 5) as f64, 1e6).size(SizeDist::Fixed(500))
        })
        .collect()
}

/// A deterministic arrival stream over `n` flows (flow choice and sizes
/// driven by the generated `picks`).
fn stream(picks: &[u32], n: usize) -> Vec<Packet> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &p)| Packet {
            flow: FlowId(p % n as u32),
            size_bytes: 40 + (p % 1461),
            arrival: Time(i as f64 * 1e-6),
            seq: i as u64,
        })
        .collect()
}

fn drain(sched: &mut HwScheduler) -> Vec<Packet> {
    let mut out = Vec::new();
    while let Some(p) = sched.dequeue() {
        out.push(p);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With a full trie audit every dequeue round, every injected trie
    /// fault is repaired in the same round it lands — before the pop —
    /// so the served sequence is byte-identical to a fault-free run.
    #[test]
    fn scrub_and_repair_preserves_the_dequeue_sequence(
        picks in proptest::collection::vec(0u32..10_000, 16..200),
        count in 1u32..24,
        seed in 0u64..1_000,
    ) {
        let fl = flows(24);
        let trace = stream(&picks, 24);

        let mut clean = HwScheduler::new(&fl, 1e9, SchedulerConfig::default());
        for p in &trace {
            clean.enqueue(*p).unwrap();
        }
        let reference = drain(&mut clean);

        let spec: FaultSpec = format!("{count}@{seed}:trie:1").parse().unwrap();
        let mut cfg = FaultConfig::new(
            spec,
            FaultPolicy::ScrubAndRepair,
            2 * trace.len() as u64,
        );
        cfg.scrub_sections = Geometry::paper().sections();
        let mut faulted = HwScheduler::new(
            &fl,
            1e9,
            SchedulerConfig { faults: Some(cfg), ..SchedulerConfig::default() },
        );
        for p in &trace {
            faulted.enqueue(*p).unwrap();
        }
        let observed = drain(&mut faulted);

        prop_assert_eq!(&observed, &reference, "repair changed the schedule");

        // The run must have actually exercised the machinery: faults
        // landed, and every detected one was repaired.
        faulted.reconcile_faults();
        let (injected, detected, repaired, silent) = faulted.fault_totals();
        prop_assert!(injected > 0, "no faults materialized");
        prop_assert_eq!(detected, repaired, "a detected fault went unrepaired");
        prop_assert_eq!(detected + silent, injected);
    }

    /// `DetectAndCount` tolerates faults in any component without
    /// panicking, and the exported counters reconcile exactly:
    /// detected + silent == injected.
    #[test]
    fn detect_and_count_never_panics_and_reconciles(
        picks in proptest::collection::vec(0u32..10_000, 16..200),
        count in 1u32..24,
        seed in 0u64..1_000,
        bits in 1u32..3,
    ) {
        let fl = flows(24);
        let trace = stream(&picks, 24);

        let spec: FaultSpec = format!("{count}@{seed}:any:{bits}").parse().unwrap();
        let cfg = FaultConfig::new(
            spec,
            FaultPolicy::DetectAndCount,
            2 * trace.len() as u64,
        );
        let tel = Telemetry::with_tracing(1, 8);
        let mut sched = HwScheduler::new(
            &fl,
            1e9,
            SchedulerConfig { faults: Some(cfg), ..SchedulerConfig::default() },
        );
        sched.attach_telemetry(&tel, 0);
        for p in &trace {
            sched.enqueue(*p).unwrap();
        }
        let served = drain(&mut sched);
        // Corruption may lose packets, but never invent them.
        prop_assert!(served.len() <= trace.len());

        sched.reconcile_faults();
        let (injected, detected, _repaired, silent) = sched.fault_totals();
        prop_assert!(injected > 0, "no faults materialized");
        prop_assert_eq!(detected + silent, injected);

        // The exported snapshot must agree with the ledger.
        let snap = tel.snapshot();
        prop_assert_eq!(snap.value("faults_injected_total"), Some(injected as f64));
        prop_assert_eq!(
            snap.value("faults_detected_total").unwrap()
                + snap.value("silent_corruptions_total").unwrap(),
            injected as f64
        );
    }
}
