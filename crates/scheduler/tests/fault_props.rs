//! Fault-tolerance properties of the instrumented scheduler.
//!
//! Two guarantees from DESIGN.md §13, exercised over randomized
//! workloads and fault plans:
//!
//! 1. **Scrub-and-repair exactness** — when every trie section is
//!    audited each dequeue round, a run whose injected trie faults are
//!    all repaired before the affected tag is retrieved serves the
//!    *exact* dequeue sequence of a fault-free run.
//! 2. **Detect-and-count accounting** — under `DetectAndCount` the
//!    scheduler never panics, and after reconciliation every injected
//!    fault is either detected or counted as a silent corruption:
//!    `faults_detected + silent_corruptions == faults_injected`.

use proptest::prelude::*;

use fairq::{AnyPolicy, RankPolicy};
use faultsim::{DetectionKind, FaultConfig, FaultPolicy, FaultSpec, ScrubOrder};
use scheduler::{HwScheduler, ParallelShardedScheduler, SchedulerConfig, ShardedScheduler};
use tagsort::{Geometry, SortRetrieveCircuit};
use telemetry::Telemetry;
use traffic::{FlowId, FlowSpec, Packet, SizeDist, Time};

fn flows(n: usize) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            FlowSpec::new(FlowId(i as u32), 1.0 + (i % 5) as f64, 1e6).size(SizeDist::Fixed(500))
        })
        .collect()
}

/// A deterministic arrival stream over `n` flows (flow choice and sizes
/// driven by the generated `picks`).
fn stream(picks: &[u32], n: usize) -> Vec<Packet> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &p)| Packet {
            flow: FlowId(p % n as u32),
            size_bytes: 40 + (p % 1461),
            arrival: Time(i as f64 * 1e-6),
            seq: i as u64,
        })
        .collect()
}

fn drain(sched: &mut HwScheduler) -> Vec<Packet> {
    let mut out = Vec::new();
    while let Some(p) = sched.dequeue() {
        out.push(p);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With a full audit of every section each dequeue round, every
    /// injected trie *or translation* fault is repaired in the same
    /// round it lands — before the pop — so the served sequence is
    /// byte-identical to a fault-free run. (Trie repairs rebuild from
    /// the translation table; translation repairs rebuild from the tag
    /// store's per-section check codes and list walk.)
    #[test]
    fn scrub_and_repair_preserves_the_dequeue_sequence(
        picks in proptest::collection::vec(0u32..10_000, 16..200),
        count in 1u32..24,
        seed in 0u64..1_000,
        component in prop_oneof![Just("trie"), Just("translation")],
    ) {
        let fl = flows(24);
        let trace = stream(&picks, 24);

        let mut clean = HwScheduler::new(&fl, 1e9, SchedulerConfig::default());
        for p in &trace {
            clean.enqueue(*p).unwrap();
        }
        let reference = drain(&mut clean);

        let spec: FaultSpec = format!("{count}@{seed}:{component}:1").parse().unwrap();
        let mut cfg = FaultConfig::new(
            spec,
            FaultPolicy::ScrubAndRepair,
            2 * trace.len() as u64,
        );
        cfg.scrub_sections = Geometry::paper().sections();
        let mut faulted = HwScheduler::new(
            &fl,
            1e9,
            SchedulerConfig { faults: Some(cfg), ..SchedulerConfig::default() },
        );
        for p in &trace {
            faulted.enqueue(*p).unwrap();
        }
        let observed = drain(&mut faulted);

        prop_assert_eq!(&observed, &reference, "repair changed the schedule");

        // The run must have actually exercised the machinery: faults
        // landed, and every detected one was repaired.
        faulted.reconcile_faults();
        let (injected, detected, repaired, silent) = faulted.fault_totals();
        prop_assert!(injected > 0, "no faults materialized");
        prop_assert_eq!(detected, repaired, "a detected fault went unrepaired");
        prop_assert_eq!(detected + silent, injected);
    }

    /// `DetectAndCount` tolerates faults in any component without
    /// panicking, and the exported counters reconcile exactly:
    /// detected + silent == injected.
    #[test]
    fn detect_and_count_never_panics_and_reconciles(
        picks in proptest::collection::vec(0u32..10_000, 16..200),
        count in 1u32..24,
        seed in 0u64..1_000,
        bits in 1u32..3,
    ) {
        let fl = flows(24);
        let trace = stream(&picks, 24);

        let spec: FaultSpec = format!("{count}@{seed}:any:{bits}").parse().unwrap();
        let cfg = FaultConfig::new(
            spec,
            FaultPolicy::DetectAndCount,
            2 * trace.len() as u64,
        );
        let tel = Telemetry::with_tracing(1, 8);
        let mut sched = HwScheduler::new(
            &fl,
            1e9,
            SchedulerConfig { faults: Some(cfg), ..SchedulerConfig::default() },
        );
        sched.attach_telemetry(&tel, 0);
        for p in &trace {
            sched.enqueue(*p).unwrap();
        }
        let served = drain(&mut sched);
        // Corruption may lose packets, but never invent them.
        prop_assert!(served.len() <= trace.len());

        sched.reconcile_faults();
        let (injected, detected, _repaired, silent) = sched.fault_totals();
        prop_assert!(injected > 0, "no faults materialized");
        prop_assert_eq!(detected + silent, injected);

        // The exported snapshot must agree with the ledger.
        let snap = tel.snapshot();
        prop_assert_eq!(snap.value("faults_injected_total"), Some(injected as f64));
        prop_assert_eq!(
            snap.value("faults_detected_total").unwrap()
                + snap.value("silent_corruptions_total").unwrap(),
            injected as f64
        );
    }
}

/// Buffer SEUs go through the same ledger as sorter faults: descriptor
/// corruption is caught by the per-slot parity check at release (odd
/// flip counts), or folded into `silent_corruptions` at reconciliation
/// (even flips, or flips into already-released slots). Either way the
/// books balance exactly.
#[test]
fn buffer_fault_ledger_reconciles() {
    let fl = flows(24);
    let picks: Vec<u32> = (0..400u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
    let trace = stream(&picks, 24);
    let mut detected_somewhere = 0u64;
    for seed in 0..8u64 {
        let spec: FaultSpec = format!("12@{seed}:buffer:1").parse().unwrap();
        let cfg = FaultConfig::new(spec, FaultPolicy::DetectAndCount, 2 * trace.len() as u64);
        // A buffer sized to the trace keeps most slots occupied, so the
        // plan's uniform word draws mostly land on live descriptors.
        let mut sched = HwScheduler::new(
            &fl,
            1e9,
            SchedulerConfig {
                capacity: 512,
                faults: Some(cfg),
                ..SchedulerConfig::default()
            },
        );
        for p in &trace {
            sched.enqueue(*p).unwrap();
        }
        while sched.dequeue().is_some() {}
        sched.reconcile_faults();
        let (injected, detected, repaired, silent) = sched.fault_totals();
        assert!(injected > 0, "seed {seed}: no buffer faults materialized");
        assert_eq!(
            detected + silent,
            injected,
            "seed {seed}: buffer ledger must reconcile"
        );
        assert_eq!(repaired, 0, "detect-and-count never repairs");
        assert!(
            sched
                .fault_records()
                .iter()
                .all(|r| r.component == faultsim::FaultComponent::Buffer),
            "a buffer-only plan may not touch other components"
        );
        detected_somewhere += detected;
    }
    assert!(
        detected_somewhere > 0,
        "across seeds, the release parity check must catch some corruption"
    );
}

/// The parallel frontend reconciles its per-worker fault ledgers: with
/// the same per-port seed offsets as the sequential frontend, the same
/// campaign run through [`ParallelShardedScheduler`] serves the same
/// schedule and reports the same aggregated `(injected, detected,
/// repaired, silent)` totals, and the `detected + silent == injected`
/// invariant is verifiable from the parallel side. The op clock also
/// ticks on *empty* dequeue polls, and the sequential round-robin
/// polls idle ports where the parallel drain does not — so the horizon
/// is kept below every port's enqueue count, making the whole plan due
/// before the first dequeue in both frontends; scrub-and-repair with a
/// full section budget then pins the detected/silent split too.
#[test]
fn parallel_frontend_reconciles_fault_ledgers_like_the_sequential_one() {
    let fl = flows(24);
    let picks: Vec<u32> = (0..300u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
    let trace = stream(&picks, 24);
    for (seed, component) in [(3u64, "trie"), (11, "translation"), (17, "trie")] {
        let spec: FaultSpec = format!("12@{seed}:{component}:1").parse().unwrap();
        let mut cfg = FaultConfig::new(spec, FaultPolicy::ScrubAndRepair, 32);
        cfg.scrub_sections = Geometry::paper().sections();
        let config = SchedulerConfig {
            faults: Some(cfg),
            ..SchedulerConfig::default()
        };

        let mut seq = ShardedScheduler::new(&fl, 1e9, 4, config);
        for p in &trace {
            seq.enqueue(*p).unwrap();
        }
        let mut seq_order = Vec::new();
        while let Some(served) = seq.dequeue() {
            seq_order.push(served);
        }
        seq.reconcile_faults();
        let seq_totals = seq.fault_totals();

        let mut par = ParallelShardedScheduler::new(&fl, 1e9, 4, config);
        for p in &trace {
            par.enqueue(*p).unwrap();
        }
        let par_order = par.drain();
        let par_totals = par.reconcile_faults();

        assert_eq!(
            par_order, seq_order,
            "seed {seed}/{component}: frontends must serve the same schedule"
        );
        assert_eq!(
            par_totals, seq_totals,
            "seed {seed}/{component}: ledger totals must agree"
        );
        let (injected, detected, repaired, silent) = par_totals;
        assert!(
            injected > 0,
            "seed {seed}/{component}: no faults materialized"
        );
        assert_eq!(detected, repaired, "a detected fault went unrepaired");
        assert_eq!(
            detected + silent,
            injected,
            "seed {seed}/{component}: the parallel ledger must reconcile"
        );
        // Idempotent, like the sequential reconcile.
        assert_eq!(par.reconcile_faults(), par_totals);
    }
}

/// Detection-latency accounting for the scrub orders on *skewed*
/// writes. The strict-priority policy maps every rank to a tiny class
/// index, so under the paper geometry every tag lands in trie section
/// 0 — the most extreme write skew expressible. With a one-section
/// scrub budget and an interleaved enqueue/dequeue loop (each insert
/// re-dirties section 0 before the next audit), write-priority spends
/// every round on the hot section and catches its faults almost
/// immediately, while round-robin blindly rotates through all sixteen
/// sections. Returns the summed scrub-detection latency and count.
fn scrub_latency(order: ScrubOrder, fault_seed: u64, trace: &[Packet]) -> (u64, u64) {
    let fl = flows(24);
    let proto = AnyPolicy::by_name("prio").expect("prio is a library policy");
    let spec: FaultSpec = format!("64@{fault_seed}:trie:1").parse().unwrap();
    let mut cfg = FaultConfig::new(spec, FaultPolicy::DetectAndCount, 2 * trace.len() as u64);
    cfg.scrub_sections = 1;
    cfg.scrub_order = order;
    let mut sched = HwScheduler::<SortRetrieveCircuit, AnyPolicy>::with_backend_and_policy(
        &fl,
        1e6,
        SchedulerConfig {
            tick_scale: proto.tick_scale(1e6),
            faults: Some(cfg),
            ..SchedulerConfig::default()
        },
        &proto,
    );
    let mut arrivals = trace.iter();
    for p in arrivals.by_ref().take(8) {
        sched.enqueue(*p).unwrap();
    }
    for p in arrivals {
        sched.enqueue(*p).unwrap();
        sched.dequeue();
    }
    while sched.dequeue().is_some() {}
    sched.reconcile_faults();
    let mut latency = 0u64;
    let mut scrub_detected = 0u64;
    for r in sched.fault_records() {
        if r.detected_by == Some(DetectionKind::Scrub) {
            latency += r.detected_cycle.unwrap() - r.injected_cycle;
            scrub_detected += 1;
        }
    }
    (latency, scrub_detected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On write-skewed workloads the write-priority scrub order detects
    /// faults by scrubbing with a lower mean latency than round-robin:
    /// its budget goes to the section the traffic keeps writing (where
    /// a landed fault is audited the very next round), where the blind
    /// rotation averages half a sweep before revisiting any section.
    /// Summed over a handful of fault plans to wash out per-plan luck.
    #[test]
    fn write_priority_scrub_detects_faster_on_skewed_writes(
        hot in proptest::collection::vec(0u32..3, 192..256),
    ) {
        let trace = stream(&hot, 24);
        let (mut rr_lat, mut rr_n, mut wp_lat, mut wp_n) = (0u64, 0u64, 0u64, 0u64);
        for fault_seed in [2, 5, 8, 13] {
            let (lat, n) = scrub_latency(ScrubOrder::RoundRobin, fault_seed, &trace);
            rr_lat += lat;
            rr_n += n;
            let (lat, n) = scrub_latency(ScrubOrder::WritePriority, fault_seed, &trace);
            wp_lat += lat;
            wp_n += n;
        }
        prop_assert!(rr_n > 0, "round-robin scrubbing must detect something");
        prop_assert!(wp_n > 0, "write-priority scrubbing must detect something");
        let rr_mean = rr_lat as f64 / rr_n as f64;
        let wp_mean = wp_lat as f64 / wp_n as f64;
        prop_assert!(
            wp_mean < rr_mean,
            "write-priority mean scrub latency {wp_mean:.0} cycles should beat \
             round-robin's {rr_mean:.0} on fully skewed writes"
        );
    }
}
