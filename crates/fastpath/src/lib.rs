//! The software fast path: a flat find-first-set sorter.
//!
//! Eiffel (Saeed et al.) observes that the bucketed priority queue the
//! paper fabricates — occupancy bits over tag buckets, searched for the
//! first set bit — maps directly onto modern CPUs: pack the occupancy
//! bits into `u64` words, summarize 64 words per word up a shallow
//! hierarchy, and *find-first-set* (`u64::trailing_zeros`, one
//! instruction) walks to the minimum tag in a handful of cache lines.
//! [`FfsSorter`] is that design, implementing
//! [`tagsort::SortBackend`] with semantics *identical* to the paper's
//! trie circuit:
//!
//! * ascending tag order with FIFO service among duplicates (the
//!   circuit's FCFS tie-break via per-bucket linked lists);
//! * one storage slot of [`tagsort::MemoryKind::slot_cycles`] modeled cycles per
//!   insert and per pop, so a scheduler driving it produces the same
//!   sojourn stamps as one driving the circuit;
//! * the same wrap contract: under [`CleanupPolicy::Lazy`] inserts
//!   below the live minimum (or below the stale-marker maximum when
//!   drained) are rejected, and [`FfsSorter::recycle_section`]
//!   bulk-clears a wrapped top-level section (Fig. 6);
//! * the same fault surface shape: the occupancy hierarchy is an
//!   addressable word array ([`faultsim::FaultTarget`], attached as
//!   [`FaultComponent::Trie`]); there is no translation table or
//!   external SRAM to corrupt, so those components are rejected with a
//!   structured [`FaultAttachError`]. In tolerant mode, corrupted
//!   occupancy words degrade to logged [`IntegrityEvent`]s and
//!   self-healing searches instead of panics, and
//!   [`FfsSorter::scrub_section`] audits occupancy words against the
//!   buckets' ground truth exactly as the circuit's scrubber audits the
//!   trie against the translation table.
//!
//! The layout is cache-conscious: the hot pop path touches one `u64`
//! per hierarchy level (at the paper's 12-bit geometry: two words) plus
//! one interleaved `(head, tail)` bucket pair and one arena node, and
//! the batch verbs ([`FfsSorter::insert_batch`],
//! [`FfsSorter::pop_batch`]) amortize the descent across consecutive
//! operations by draining or filling a leaf word before re-walking the
//! hierarchy.
//!
//! Memory is `O(tag_space)` for buckets and leaf occupancy — the same
//! scaling as the circuit's translation table, and a few MiB for every
//! geometry the repo exercises.
//!
//! Sequence identity with the trie backend (and the heap oracle) on
//! arbitrary seeded workloads is enforced by property tests here and in
//! the scheduler crate, and by the CI backend × workload conformance
//! matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use faultsim::{FaultAttachError, FaultComponent, FaultTarget};
use hwsim::{AccessStats, SramStats};
use tagsort::{
    BackendSpec, CircuitStats, CleanupPolicy, Geometry, IntegrityEvent, PacketRef, SectionScrub,
    SortBackend, SortError, Tag, TrieMismatch,
};

/// Sentinel for "no node" in bucket heads/tails and node links.
const NONE: u32 = u32::MAX;

/// One FIFO bucket: head and tail arena indices, interleaved so a tag's
/// entire bucket state lands in one cache line fetch.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        head: NONE,
        tail: NONE,
    };
}

/// One arena node: a queued packet reference and its FIFO successor.
#[derive(Debug, Clone, Copy)]
struct Node {
    payload: u32,
    next: u32,
}

/// Where a min/max descent of an occupancy hierarchy ended.
enum Descent {
    /// Reached a leaf bit; the value is the tag.
    Found(usize),
    /// Hit an all-zero word a parent bit claimed was occupied (or an
    /// empty root with tags outstanding) — a corruption symptom.
    DeadEnd { level: u32, index: u32 },
}

/// The Eiffel-style flat FFS sorter. See the [module docs](self).
///
/// # Example
///
/// ```
/// use fastpath::FfsSorter;
/// use tagsort::{
///     BackendSpec, CleanupPolicy, Geometry, MemoryKind, PacketRef, SortBackend, Tag,
/// };
///
/// let mut sorter = FfsSorter::build(&BackendSpec {
///     geometry: Geometry::paper(),
///     capacity: 1 << 12,
///     cleanup: CleanupPolicy::Eager,
///     memory: MemoryKind::SinglePort,
/// });
/// sorter.insert(Tag(140), PacketRef(2)).unwrap();
/// sorter.insert(Tag(17), PacketRef(1)).unwrap();
/// assert_eq!(sorter.pop_min(), Some((Tag(17), PacketRef(1))));
/// // Same cycle model as the circuit: one four-cycle slot per op.
/// assert_eq!(sorter.cycles(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct FfsSorter {
    geometry: Geometry,
    capacity: usize,
    policy: CleanupPolicy,
    slot_cycles: u64,
    /// Live-tag occupancy hierarchy, top-first: `occ[0]` is the single
    /// root word, each word summarizes 64 words of the level below, and
    /// the last level holds one bit per tag value.
    occ: Vec<Vec<u64>>,
    /// Marker hierarchy, same shape: live bits plus — under lazy
    /// cleanup — stale bits of departed values, the software analog of
    /// the trie's leftover markers. Under eager cleanup it mirrors
    /// `occ`.
    marked: Vec<Vec<u64>>,
    /// Flattened fault-word offset of each hierarchy level.
    flat_offsets: Vec<usize>,
    /// Per-tag FIFO buckets.
    buckets: Vec<Bucket>,
    /// Node arena with an intrusive free list.
    nodes: Vec<Node>,
    free_head: u32,
    len: usize,
    cycles: u64,
    ops: u64,
    recycled_sections: u64,
    recycled_markers: u64,
    tolerant: bool,
    integrity_log: Vec<IntegrityEvent>,
    occ_stats: AccessStats,
    bucket_stats: AccessStats,
    sram: SramStats,
}

/// Word/bit split of a bit index within one hierarchy level.
fn split(idx: usize) -> (usize, u64) {
    (idx / 64, 1u64 << (idx % 64))
}

impl FfsSorter {
    /// Number of hierarchy levels (1 for tag spaces up to 64 values).
    fn depth(&self) -> usize {
        self.occ.len()
    }

    /// Sets the bit for `tag` in a hierarchy, leaf upward.
    fn set_bit(levels: &mut [Vec<u64>], tag: usize) -> u64 {
        let mut idx = tag;
        let mut writes = 0;
        for level in levels.iter_mut().rev() {
            let (w, bit) = split(idx);
            level[w] |= bit;
            writes += 1;
            idx = w;
        }
        writes
    }

    /// Clears the bit for `tag`, propagating emptied words upward.
    fn clear_bit(levels: &mut [Vec<u64>], tag: usize) -> u64 {
        let mut idx = tag;
        let mut writes = 0;
        for level in levels.iter_mut().rev() {
            let (w, bit) = split(idx);
            level[w] &= !bit;
            writes += 1;
            if level[w] != 0 {
                break;
            }
            idx = w;
        }
        writes
    }

    /// Walks a hierarchy to its smallest set bit with find-first-set.
    fn descend_min(levels: &[Vec<u64>]) -> Descent {
        let mut idx = 0usize;
        for (l, words) in levels.iter().enumerate() {
            let word = words[idx];
            if word == 0 {
                return Descent::DeadEnd {
                    level: l as u32,
                    index: idx as u32,
                };
            }
            idx = idx * 64 + word.trailing_zeros() as usize;
        }
        Descent::Found(idx)
    }

    /// Walks a hierarchy to its largest set bit (`None` if empty or the
    /// hierarchy is corrupt).
    fn descend_max(levels: &[Vec<u64>]) -> Option<usize> {
        let mut idx = 0usize;
        for words in levels {
            let word = words[idx];
            if word == 0 {
                return None;
            }
            idx = idx * 64 + (63 - word.leading_zeros()) as usize;
        }
        Some(idx)
    }

    /// The live minimum via the occupancy hierarchy (`None` when empty
    /// or, tolerantly, when the hierarchy is corrupt).
    fn occ_min(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        match Self::descend_min(&self.occ) {
            Descent::Found(tag) => Some(tag),
            Descent::DeadEnd { .. } => None,
        }
    }

    /// Linear ground-truth scan for the smallest non-empty bucket — the
    /// corruption-recovery slow path only.
    fn scan_buckets_min(&self) -> Option<usize> {
        self.buckets.iter().position(|b| b.head != NONE)
    }

    fn alloc_node(&mut self, payload: u32) -> u32 {
        if self.free_head != NONE {
            let idx = self.free_head;
            self.free_head = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = Node {
                payload,
                next: NONE,
            };
            idx
        } else {
            self.nodes.push(Node {
                payload,
                next: NONE,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Appends to the tag's FIFO bucket and sets occupancy + marker
    /// bits. The caller has already validated the insert.
    fn commit_insert(&mut self, tag: usize, payload: PacketRef) {
        let node = self.alloc_node(payload.0);
        self.sram.writes += 1;
        self.bucket_stats.record_read();
        let tail = self.buckets[tag].tail;
        if tail == NONE {
            self.buckets[tag] = Bucket {
                head: node,
                tail: node,
            };
        } else {
            self.buckets[tag].tail = node;
            self.nodes[tail as usize].next = node;
            self.sram.writes += 1;
        }
        self.bucket_stats.record_write();
        let w = Self::set_bit(&mut self.occ, tag);
        Self::set_bit(&mut self.marked, tag);
        for _ in 0..w {
            self.occ_stats.record_write();
        }
        self.len += 1;
        self.charge_slot();
    }

    /// Pops the FIFO head of a non-empty bucket, clearing occupancy (and
    /// — under eager cleanup — marker) bits when it empties.
    fn pop_bucket(&mut self, tag: usize) -> PacketRef {
        self.bucket_stats.record_read();
        let head = self.buckets[tag].head;
        debug_assert_ne!(head, NONE, "pop from empty bucket");
        let node = self.nodes[head as usize];
        self.sram.reads += 1;
        self.buckets[tag].head = node.next;
        if node.next == NONE {
            self.buckets[tag].tail = NONE;
            let w = Self::clear_bit(&mut self.occ, tag);
            for _ in 0..w {
                self.occ_stats.record_write();
            }
            if self.policy == CleanupPolicy::Eager {
                Self::clear_bit(&mut self.marked, tag);
            }
        }
        self.bucket_stats.record_write();
        self.nodes[head as usize] = Node {
            payload: 0,
            next: self.free_head,
        };
        self.free_head = head;
        self.len -= 1;
        self.charge_slot();
        PacketRef(node.payload)
    }

    /// Charges the fixed storage slot the backend contract requires.
    fn charge_slot(&mut self) {
        self.cycles += self.slot_cycles;
        self.sram.busy_cycles += self.slot_cycles;
        self.ops += 1;
    }

    /// Validates an insert against geometry, wrap contract, and
    /// capacity — the same checks, in the same order, as the circuit.
    fn check_insert(&mut self, tag: Tag) -> Result<(), SortError> {
        if !self.geometry.contains(tag) {
            return Err(SortError::TagOutOfRange {
                tag,
                tag_bits: self.geometry.tag_bits(),
            });
        }
        if self.policy == CleanupPolicy::Lazy {
            if self.len > 0 {
                // A corrupt hierarchy degrades the check (tolerant mode
                // keeps serving; the scrubber repairs), like the
                // circuit's tolerant head-insert fallback.
                if let Some(minimum) = self.occ_min() {
                    if (tag.value() as usize) < minimum {
                        return Err(SortError::BelowMinimum {
                            tag,
                            minimum: Tag(minimum as u32),
                        });
                    }
                }
            } else if let Some(stale_max) = Self::descend_max(&self.marked) {
                if (tag.value() as usize) < stale_max {
                    return Err(SortError::BelowMinimum {
                        tag,
                        minimum: Tag(stale_max as u32),
                    });
                }
            }
        }
        if self.len == self.capacity {
            return Err(SortError::Full {
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Finds the tag the next pop serves, healing corrupt occupancy
    /// words along the way in tolerant mode (panicking otherwise).
    fn locate_min_for_pop(&mut self) -> Option<usize> {
        loop {
            self.occ_stats.record_batch(self.depth() as u64);
            match Self::descend_min(&self.occ) {
                Descent::Found(tag) => {
                    if self.buckets[tag].head != NONE {
                        return Some(tag);
                    }
                    // A set bit over an empty bucket: the software
                    // analog of a trie marker with no translation entry.
                    assert!(
                        self.tolerant,
                        "occupancy bit set for empty bucket {tag} (corrupted state?)"
                    );
                    self.integrity_log.push(IntegrityEvent::MissingTranslation {
                        tag: Tag(tag as u32),
                    });
                    Self::clear_bit(&mut self.occ, tag);
                }
                Descent::DeadEnd { level, index } => {
                    // A parent bit led into an all-zero word (or the
                    // root went dark with tags outstanding).
                    assert!(
                        self.tolerant,
                        "occupancy dead end at level {level} word {index} (corrupted state?)"
                    );
                    self.integrity_log
                        .push(IntegrityEvent::TrieDeadEnd { level, index });
                    if level == 0 {
                        // Hidden occupancy: heal from ground truth by
                        // re-marking the true minimum's path.
                        let tag = self.scan_buckets_min()?;
                        Self::set_bit(&mut self.occ, tag);
                    } else {
                        // Clear the lying parent bit; each iteration
                        // heals one level, so the search terminates.
                        let (w, bit) = split(index as usize);
                        self.occ[level as usize - 1][w] &= !bit;
                        self.occ_stats.record_write();
                    }
                }
            }
        }
    }

    /// Total flattened fault words across the hierarchy.
    fn fault_word_count(&self) -> usize {
        self.flat_offsets.last().copied().unwrap_or(0)
            + self.occ.last().map_or(0, |leaf| leaf.len())
    }

    /// Maps a flattened fault-word index to `(level, word)`.
    fn unflatten(&self, word: usize) -> (usize, usize) {
        for l in (0..self.depth()).rev() {
            if word >= self.flat_offsets[l] {
                return (l, word - self.flat_offsets[l]);
            }
        }
        (0, 0)
    }

    /// Number of meaningful bits in hierarchy word `(level, word)`: the
    /// children (or tag values) it actually covers, handling partial
    /// tail words and tag spaces below 64.
    fn word_bits(&self, level: usize, word: usize) -> u32 {
        let children = if level + 1 == self.depth() {
            self.geometry.tag_space() as usize
        } else {
            self.occ[level + 1].len()
        };
        (children - word * 64).min(64) as u32
    }
}

impl SortBackend for FfsSorter {
    fn build(spec: &BackendSpec) -> Self {
        let tag_space = spec.geometry.tag_space() as usize;
        let mut sizes = vec![tag_space.div_ceil(64)];
        while *sizes.last().expect("at least the leaf level") > 1 {
            let next = sizes.last().expect("non-empty").div_ceil(64);
            sizes.push(next);
        }
        sizes.reverse(); // top-first
        let mut flat_offsets = Vec::with_capacity(sizes.len());
        let mut offset = 0usize;
        for &size in &sizes {
            flat_offsets.push(offset);
            offset += size;
        }
        FfsSorter {
            geometry: spec.geometry,
            capacity: spec.capacity,
            policy: spec.cleanup,
            slot_cycles: spec.memory.slot_cycles(),
            occ: sizes.iter().map(|&s| vec![0u64; s]).collect(),
            marked: sizes.iter().map(|&s| vec![0u64; s]).collect(),
            flat_offsets,
            buckets: vec![Bucket::EMPTY; tag_space],
            nodes: Vec::new(),
            free_head: NONE,
            len: 0,
            cycles: 0,
            ops: 0,
            recycled_sections: 0,
            recycled_markers: 0,
            tolerant: false,
            integrity_log: Vec::new(),
            occ_stats: AccessStats::new(),
            bucket_stats: AccessStats::new(),
            sram: SramStats::default(),
        }
    }

    fn name(&self) -> &'static str {
        "fastpath"
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) -> Result<(), SortError> {
        self.occ_stats.begin_op();
        self.bucket_stats.begin_op();
        self.check_insert(tag)?;
        self.commit_insert(tag.value() as usize, payload);
        Ok(())
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        if self.len == 0 {
            return None;
        }
        self.occ_stats.begin_op();
        self.bucket_stats.begin_op();
        let tag = self.locate_min_for_pop()?;
        let payload = self.pop_bucket(tag);
        Some((Tag(tag as u32), payload))
    }

    fn pop_max(&mut self) -> Option<(Tag, PacketRef)> {
        if self.len == 0 {
            return None;
        }
        self.occ_stats.begin_op();
        self.bucket_stats.begin_op();
        self.occ_stats.record_batch(self.depth() as u64);
        let tag = match Self::descend_max(&self.occ) {
            Some(tag) if self.buckets[tag].head != NONE => tag,
            // Corrupt hierarchy: ground-truth scan, as peek_min does.
            _ => self.buckets.iter().rposition(|b| b.head != NONE)?,
        };
        self.bucket_stats.record_read();
        let tail = self.buckets[tag].tail;
        let node = self.nodes[tail as usize];
        self.sram.reads += 1;
        let head = self.buckets[tag].head;
        if head == tail {
            self.buckets[tag] = Bucket::EMPTY;
            let w = Self::clear_bit(&mut self.occ, tag);
            for _ in 0..w {
                self.occ_stats.record_write();
            }
            // Always eager, even under lazy cleanup (trait contract): a
            // stale marker above the live set must not survive push-out.
            Self::clear_bit(&mut self.marked, tag);
        } else {
            // Unlink the tail: chain walk from the head for its
            // predecessor (push-out is the rare path; FIFO pops stay
            // O(1)).
            let mut prev = head;
            while self.nodes[prev as usize].next != tail {
                prev = self.nodes[prev as usize].next;
            }
            self.nodes[prev as usize].next = NONE;
            self.buckets[tag].tail = prev;
            self.sram.writes += 1;
        }
        self.bucket_stats.record_write();
        self.nodes[tail as usize] = Node {
            payload: 0,
            next: self.free_head,
        };
        self.free_head = tail;
        self.len -= 1;
        self.charge_slot();
        Some((Tag(tag as u32), PacketRef(node.payload)))
    }

    fn peek_min(&self) -> Option<(Tag, PacketRef)> {
        if self.len == 0 {
            return None;
        }
        // Read-only: a corrupt hierarchy falls back to the ground-truth
        // scan without healing or logging (pop does both).
        let tag = match Self::descend_min(&self.occ) {
            Descent::Found(tag) if self.buckets[tag].head != NONE => tag,
            _ => self.scan_buckets_min()?,
        };
        let head = self.buckets[tag].head;
        Some((
            Tag(tag as u32),
            PacketRef(self.nodes[head as usize].payload),
        ))
    }

    fn recycle_section(&mut self, section: u32) -> usize {
        assert!(
            section < self.geometry.sections(),
            "section {section} out of range"
        );
        let span = (self.geometry.tag_space() / u64::from(self.geometry.sections())) as usize;
        let base = section as usize * span;
        debug_assert!(
            self.buckets[base..base + span]
                .iter()
                .all(|b| b.head == NONE),
            "recycling section {section} with live tags"
        );
        let mut cleared = 0usize;
        for tag in base..base + span {
            let (w, bit) = split(tag);
            let leaf = self.depth() - 1;
            if self.marked[leaf][w] & bit != 0 {
                Self::clear_bit(&mut self.marked, tag);
                cleared += 1;
            }
            if self.occ[leaf][w] & bit != 0 {
                Self::clear_bit(&mut self.occ, tag);
            }
        }
        self.recycled_sections += 1;
        self.recycled_markers += cleared as u64;
        cleared
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn stats(&self) -> CircuitStats {
        CircuitStats {
            ops: self.ops,
            store_cycles: self.cycles,
            trie: self.occ_stats,
            translation: self.bucket_stats,
            sram: self.sram,
            recycled_sections: self.recycled_sections,
            recycled_markers: self.recycled_markers,
        }
    }

    fn insert_batch(&mut self, items: &[(Tag, PacketRef)]) -> Result<(), SortError> {
        // Amortized validation: under lazy cleanup the live minimum can
        // only drop to the smallest tag inserted so far in this batch,
        // so one descent up front covers the whole run. `live_min`
        // gates inserts while tags are stored; `stale_gate` only gates
        // the restart insert into a drained system.
        let lazy = self.policy == CleanupPolicy::Lazy;
        let mut live_min = if lazy && self.len > 0 {
            self.occ_stats.record_batch(self.depth() as u64);
            self.occ_min()
        } else {
            None
        };
        let stale_gate = if lazy && self.len == 0 {
            Self::descend_max(&self.marked)
        } else {
            None
        };
        for &(tag, payload) in items {
            if !self.geometry.contains(tag) {
                return Err(SortError::TagOutOfRange {
                    tag,
                    tag_bits: self.geometry.tag_bits(),
                });
            }
            if lazy {
                let gate = match live_min {
                    Some(m) => Some(m),
                    None if self.len == 0 => stale_gate,
                    None => None,
                };
                if let Some(minimum) = gate {
                    if (tag.value() as usize) < minimum {
                        return Err(SortError::BelowMinimum {
                            tag,
                            minimum: Tag(minimum as u32),
                        });
                    }
                }
            }
            if self.len == self.capacity {
                return Err(SortError::Full {
                    capacity: self.capacity,
                });
            }
            if lazy {
                let t = tag.value() as usize;
                live_min = Some(live_min.map_or(t, |m| m.min(t)));
            }
            self.occ_stats.begin_op();
            self.bucket_stats.begin_op();
            self.commit_insert(tag.value() as usize, payload);
        }
        Ok(())
    }

    fn pop_batch(&mut self, max: usize, out: &mut Vec<(Tag, PacketRef)>) -> usize {
        let mut popped = 0usize;
        let leaf = self.depth() - 1;
        while popped < max && self.len > 0 {
            self.occ_stats.begin_op();
            self.bucket_stats.begin_op();
            let Some(tag) = self.locate_min_for_pop() else {
                break;
            };
            // Drain the located leaf word before re-walking the
            // hierarchy: consecutive minima usually share it.
            let mut word = tag / 64;
            loop {
                let bits = self.occ[leaf][word];
                if bits == 0 || popped == max || self.len == 0 {
                    break;
                }
                let t = word * 64 + bits.trailing_zeros() as usize;
                if self.buckets[t].head == NONE {
                    // Corruption: fall back to the healing path.
                    break;
                }
                let payload = self.pop_bucket(t);
                out.push((Tag(t as u32), payload));
                popped += 1;
                word = t / 64;
            }
        }
        popped
    }

    fn set_tolerant(&mut self, tolerant: bool) {
        self.tolerant = tolerant;
    }

    fn fault_target_mut(
        &mut self,
        component: FaultComponent,
    ) -> Result<&mut dyn FaultTarget, FaultAttachError> {
        match component {
            FaultComponent::Trie => Ok(self),
            other => Err(FaultAttachError {
                backend: "fastpath",
                component: other,
            }),
        }
    }

    fn scrub_section(&mut self, section: u32, repair: bool) -> SectionScrub {
        assert!(
            section < self.geometry.sections(),
            "section {section} out of range"
        );
        let span = (self.geometry.tag_space() / u64::from(self.geometry.sections())) as usize;
        let base = section as usize * span;
        let depth = self.depth();
        let mut words_checked = 0u64;
        // Expected (masked-merged) occupancy per level over the covered
        // word range, leaf upward: bits outside the section keep their
        // found value — the root-word treatment the circuit's scrubber
        // applies, generalized to every partially covered word.
        let mut expected: Vec<(usize, Vec<u64>)> = vec![(0, Vec::new()); depth];
        let leaf = depth - 1;
        let lo = base / 64;
        let hi = (base + span).div_ceil(64);
        let mut live_markers = 0u64;
        let mut words = Vec::with_capacity(hi - lo);
        for w in lo..hi {
            let found = self.occ[leaf][w];
            let mut mask = 0u64;
            let mut bits = 0u64;
            for i in 0..64usize {
                let tag = w * 64 + i;
                if tag >= base && tag < base + span {
                    mask |= 1 << i;
                    if self.buckets[tag].head != NONE {
                        bits |= 1 << i;
                        live_markers += 1;
                    }
                }
            }
            words.push((found & !mask) | bits);
        }
        expected[leaf] = (lo, words);
        for level in (0..leaf).rev() {
            let (child_lo, child_words) = (expected[level + 1].0, &expected[level + 1].1);
            let plo = child_lo / 64;
            let phi = (child_lo + child_words.len()).div_ceil(64);
            let mut words = Vec::with_capacity(phi - plo);
            for w in plo..phi {
                let found = self.occ[level][w];
                let mut mask = 0u64;
                let mut bits = 0u64;
                for i in 0..64usize {
                    let child = w * 64 + i;
                    if child >= child_lo && child < child_lo + child_words.len() {
                        mask |= 1 << i;
                        if child_words[child - child_lo] != 0 {
                            bits |= 1 << i;
                        }
                    }
                }
                words.push((found & !mask) | bits);
            }
            expected[level] = (plo, words);
        }
        let mut mismatches = Vec::new();
        for (level, (wlo, words)) in expected.iter().enumerate() {
            for (k, &want) in words.iter().enumerate() {
                words_checked += 1;
                let index = wlo + k;
                let found = self.occ[level][index];
                if found != want {
                    mismatches.push(TrieMismatch {
                        level: level as u32,
                        index: index as u32,
                        flat: self.flat_offsets[level] + index,
                        expected: want,
                        found,
                    });
                }
            }
        }
        let run_repair = repair && !mismatches.is_empty();
        let mut repaired_markers = 0u64;
        if run_repair {
            for (level, (wlo, words)) in expected.iter().enumerate() {
                for (k, &want) in words.iter().enumerate() {
                    self.occ[level][wlo + k] = want;
                }
            }
            // Markers are a superset of live occupancy: re-assert the
            // live bits (stale lazy markers are left untouched).
            for tag in base..base + span {
                if self.buckets[tag].head != NONE {
                    Self::set_bit(&mut self.marked, tag);
                    repaired_markers += 1;
                }
            }
            debug_assert_eq!(repaired_markers, live_markers);
        }
        SectionScrub {
            section,
            words_checked,
            mismatches,
            repaired_markers,
            repaired: run_repair,
        }
    }

    fn take_integrity_events(&mut self) -> Vec<IntegrityEvent> {
        std::mem::take(&mut self.integrity_log)
    }

    fn trie_fault_word_index(&self, level: u32, index: u32) -> usize {
        let level = (level as usize).min(self.depth() - 1);
        self.flat_offsets[level] + index as usize
    }
}

impl FaultTarget for FfsSorter {
    fn fault_words(&self) -> usize {
        self.fault_word_count()
    }

    fn fault_word_bits(&self, word: usize) -> u32 {
        let (level, idx) = self.unflatten(word);
        self.word_bits(level, idx)
    }

    fn inject_fault(&mut self, word: usize, mask: u64) -> u64 {
        let (level, idx) = self.unflatten(word);
        let before = self.occ[level][idx];
        self.occ[level][idx] ^= mask;
        before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tagsort::{HeapSorter, MemoryKind, SortRetrieveCircuit};

    fn spec(cleanup: CleanupPolicy) -> BackendSpec {
        BackendSpec {
            geometry: Geometry::paper(),
            capacity: 1024,
            cleanup,
            memory: MemoryKind::SinglePort,
        }
    }

    fn drain(s: &mut FfsSorter) -> Vec<(u32, u32)> {
        std::iter::from_fn(|| s.pop_min())
            .map(|(t, p)| (t.value(), p.index()))
            .collect()
    }

    #[test]
    fn extract_flow_leaves_survivors_sequence_identical_to_the_trie() {
        // The fastpath's migration walk must agree with the circuit's:
        // extract the same flow from both, the survivors must drain in
        // the same sequence.
        let mut ffs = FfsSorter::build(&spec(CleanupPolicy::Eager));
        let mut trie = SortRetrieveCircuit::build(&spec(CleanupPolicy::Eager));
        for i in 0..100u32 {
            let tag = Tag((i * 37) % 512);
            ffs.insert(tag, PacketRef(i)).unwrap();
            trie.insert(tag, PacketRef(i)).unwrap();
        }
        let mut belongs = |p: PacketRef| p.index().is_multiple_of(3);
        let a = ffs.extract_flow(&mut belongs);
        let b = trie.extract_flow(&mut belongs);
        assert_eq!(a, b, "extracted sequences diverge");
        assert_eq!(drain(&mut ffs), {
            let mut out = Vec::new();
            while let Some((t, p)) = trie.pop_min() {
                out.push((t.value(), p.index()));
            }
            out
        });
    }

    #[test]
    fn sorts_arbitrary_insert_order() {
        let mut s = FfsSorter::build(&spec(CleanupPolicy::Eager));
        for (i, t) in [500u32, 3, 1000, 42, 999, 4, 4095, 0].iter().enumerate() {
            s.insert(Tag(*t), PacketRef(i as u32)).unwrap();
        }
        let tags: Vec<u32> = drain(&mut s).iter().map(|&(t, _)| t).collect();
        assert_eq!(tags, vec![0, 3, 4, 42, 500, 999, 1000, 4095]);
        assert!(s.is_empty());
    }

    #[test]
    fn duplicates_serve_fifo() {
        let mut s = FfsSorter::build(&spec(CleanupPolicy::Eager));
        for i in 0..4u32 {
            s.insert(Tag(7), PacketRef(i)).unwrap();
        }
        assert_eq!(
            drain(&mut s),
            vec![(7, 0), (7, 1), (7, 2), (7, 3)],
            "FCFS among equal tags"
        );
    }

    #[test]
    fn cycle_model_matches_the_circuit() {
        let mut s = FfsSorter::build(&spec(CleanupPolicy::Eager));
        let mut c = <SortRetrieveCircuit as SortBackend>::build(&spec(CleanupPolicy::Eager));
        for t in [9u32, 2, 700, 2] {
            s.insert(Tag(t), PacketRef(0)).unwrap();
            c.insert(Tag(t), PacketRef(0)).unwrap();
        }
        while s.pop_min().is_some() {
            c.pop_min();
        }
        assert_eq!(SortBackend::cycles(&s), SortBackend::cycles(&c));
        assert_eq!(s.stats().cycles_per_op(), 4.0);
    }

    #[test]
    fn single_level_geometry_works() {
        // tag_bits <= 6 collapses the hierarchy to one word.
        let mut s = FfsSorter::build(&BackendSpec {
            geometry: Geometry::new(2, 2), // 4-bit tags
            capacity: 16,
            cleanup: CleanupPolicy::Eager,
            memory: MemoryKind::SinglePort,
        });
        assert_eq!(s.depth(), 1);
        for t in [9u32, 2, 15, 0] {
            s.insert(Tag(t), PacketRef(t)).unwrap();
        }
        assert_eq!(
            drain(&mut s).iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![0, 2, 9, 15]
        );
    }

    #[test]
    fn lazy_wrap_contract_matches_the_circuit() {
        let mut s = FfsSorter::build(&spec(CleanupPolicy::Lazy));
        s.insert(Tag(100), PacketRef(0)).unwrap();
        assert_eq!(
            s.insert(Tag(50), PacketRef(1)),
            Err(SortError::BelowMinimum {
                tag: Tag(50),
                minimum: Tag(100)
            })
        );
        s.pop_min().unwrap();
        // Drained: the stale marker still gates restarts below it.
        assert_eq!(
            s.insert(Tag(50), PacketRef(1)),
            Err(SortError::BelowMinimum {
                tag: Tag(50),
                minimum: Tag(100)
            })
        );
        let section = Geometry::paper().section_of(Tag(100));
        assert_eq!(s.recycle_section(section), 1);
        s.insert(Tag(50), PacketRef(1)).unwrap();
        assert_eq!(s.pop_min(), Some((Tag(50), PacketRef(1))));
    }

    #[test]
    fn batch_verbs_match_singleton_verbs() {
        let items: Vec<(Tag, PacketRef)> = [40u32, 7, 7, 3000, 40, 0, 512]
            .iter()
            .enumerate()
            .map(|(i, &t)| (Tag(t), PacketRef(i as u32)))
            .collect();
        let mut batched = FfsSorter::build(&spec(CleanupPolicy::Eager));
        batched.insert_batch(&items).unwrap();
        let mut singles = FfsSorter::build(&spec(CleanupPolicy::Eager));
        for &(t, p) in &items {
            singles.insert(t, p).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(batched.pop_batch(items.len(), &mut out), items.len());
        assert_eq!(
            out,
            std::iter::from_fn(|| singles.pop_min()).collect::<Vec<_>>()
        );
        assert_eq!(SortBackend::cycles(&batched), SortBackend::cycles(&singles));
    }

    #[test]
    fn fault_attachment_covers_the_occupancy_hierarchy_only() {
        let mut s = FfsSorter::build(&spec(CleanupPolicy::Eager));
        let words = {
            let target = s.fault_target_mut(FaultComponent::Trie).unwrap();
            let words = target.fault_words();
            assert_eq!(words, 1 + 64, "paper geometry: one root + 64 leaf words");
            assert_eq!(target.fault_word_bits(0), 64);
            words
        };
        for component in [FaultComponent::Translation, FaultComponent::TagStore] {
            let err = s.fault_target_mut(component).err().unwrap();
            assert_eq!(err.backend, "fastpath");
            assert_eq!(err.component, component);
        }
        assert!(words > 0);
    }

    #[test]
    fn tolerant_mode_heals_a_false_occupancy_bit() {
        let mut s = FfsSorter::build(&spec(CleanupPolicy::Eager));
        s.set_tolerant(true);
        // Tag 3 keeps leaf word 0 (and its root bit) legitimately live,
        // so the false bit for tag 0 is actually reachable.
        s.insert(Tag(3), PacketRef(1)).unwrap();
        {
            let target = s.fault_target_mut(FaultComponent::Trie).unwrap();
            target.inject_fault(1, 1); // leaf word 0 => flat index 1
        }
        // The pop detects the lie, logs it, heals, and serves the real
        // minimum.
        assert_eq!(s.pop_min(), Some((Tag(3), PacketRef(1))));
        let events = s.take_integrity_events();
        assert_eq!(
            events,
            vec![IntegrityEvent::MissingTranslation { tag: Tag(0) }]
        );
    }

    #[test]
    fn tolerant_mode_clears_a_lying_parent_bit() {
        let mut s = FfsSorter::build(&spec(CleanupPolicy::Eager));
        s.set_tolerant(true);
        s.insert(Tag(100), PacketRef(1)).unwrap();
        // Set the root bit for leaf word 0, whose word is all zero: the
        // descent dead-ends there and must clear the bad bit.
        {
            let target = s.fault_target_mut(FaultComponent::Trie).unwrap();
            target.inject_fault(0, 1);
        }
        assert_eq!(s.pop_min(), Some((Tag(100), PacketRef(1))));
        let events = s.take_integrity_events();
        assert_eq!(
            events,
            vec![IntegrityEvent::TrieDeadEnd { level: 1, index: 0 }]
        );
    }

    #[test]
    fn tolerant_mode_recovers_from_a_hidden_subtree() {
        let mut s = FfsSorter::build(&spec(CleanupPolicy::Eager));
        s.set_tolerant(true);
        s.insert(Tag(100), PacketRef(1)).unwrap();
        // Zero the root word: the only live path goes dark.
        {
            let target = s.fault_target_mut(FaultComponent::Trie).unwrap();
            let before = target.inject_fault(0, 0);
            let root = before; // re-flip to zero it
            target.inject_fault(0, root);
        }
        assert_eq!(s.pop_min(), Some((Tag(100), PacketRef(1))));
        let events = s.take_integrity_events();
        assert!(
            matches!(
                events[0],
                IntegrityEvent::TrieDeadEnd { level: 0, index: 0 }
            ),
            "expected a root dead end, got {events:?}"
        );
    }

    #[test]
    fn scrub_detects_and_repairs_injected_faults() {
        let mut s = FfsSorter::build(&spec(CleanupPolicy::Eager));
        for t in [5u32, 6, 300] {
            s.insert(Tag(t), PacketRef(t)).unwrap();
        }
        // Clean scrub first.
        let clean = s.scrub_section(0, false);
        assert!(clean.mismatches.is_empty());
        assert!(clean.words_checked > 0);
        // Corrupt leaf word 0 (tags 0..64, section 0 spans tags 0..256).
        {
            let target = s.fault_target_mut(FaultComponent::Trie).unwrap();
            target.inject_fault(1, 0b1000);
        }
        let audit = s.scrub_section(0, true);
        assert_eq!(audit.mismatches.len(), 1);
        assert_eq!(audit.mismatches[0].flat, 1);
        assert!(audit.repaired);
        assert_eq!(audit.repaired_markers, 2, "tags 5 and 6 live in section 0");
        // Post-repair the section audits clean and service is intact.
        assert!(s.scrub_section(0, false).mismatches.is_empty());
        assert_eq!(
            drain(&mut s),
            vec![(5, 5), (6, 6), (300, 300)],
            "repair must not disturb live tags"
        );
    }

    /// An operation against a backend pair.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32),
        Pop,
        PopMax,
    }

    fn op_strategy(tag_space: u32) -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0..tag_space).prop_map(Op::Insert),
            2 => Just(Op::Pop),
            1 => Just(Op::PopMax),
        ]
    }

    fn cross_check<A: SortBackend, B: SortBackend>(a: &mut A, b: &mut B, ops: &[Op]) {
        let mut payload = 0u32;
        for op in ops {
            match op {
                Op::Insert(t) => {
                    let ra = a.insert(Tag(*t), PacketRef(payload));
                    let rb = b.insert(Tag(*t), PacketRef(payload));
                    assert_eq!(ra, rb, "insert({t}) diverged");
                    payload += 1;
                }
                Op::Pop => {
                    assert_eq!(a.pop_min(), b.pop_min(), "pop_min diverged");
                }
                Op::PopMax => {
                    assert_eq!(a.pop_max(), b.pop_max(), "pop_max diverged");
                }
            }
            assert_eq!(a.len(), b.len());
            assert_eq!(a.peek_min(), b.peek_min());
            assert_eq!(a.cycles(), b.cycles(), "cycle accounting diverged");
        }
        loop {
            let (pa, pb) = (a.pop_min(), b.pop_min());
            assert_eq!(pa, pb, "drain diverged");
            if pa.is_none() {
                break;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Fastpath == trie circuit == heap oracle on arbitrary op
        /// programs (eager cleanup, arbitrary tag order).
        #[test]
        fn sequence_identical_to_trie_and_heap(
            ops in proptest::collection::vec(op_strategy(4096), 1..300),
        ) {
            let s = spec(CleanupPolicy::Eager);
            let mut ffs = FfsSorter::build(&s);
            let mut trie = <SortRetrieveCircuit as SortBackend>::build(&s);
            cross_check(&mut ffs, &mut trie, &ops);
            let mut ffs = FfsSorter::build(&s);
            let mut heap = HeapSorter::build(&s);
            cross_check(&mut ffs, &mut heap, &ops);
        }

        /// Same, under the paper's lazy cleanup: the error contract
        /// (BelowMinimum included) must agree operation by operation.
        #[test]
        fn lazy_cleanup_sequence_identical(
            ops in proptest::collection::vec(op_strategy(4096), 1..300),
        ) {
            let s = spec(CleanupPolicy::Lazy);
            let mut ffs = FfsSorter::build(&s);
            let mut trie = <SortRetrieveCircuit as SortBackend>::build(&s);
            cross_check(&mut ffs, &mut trie, &ops);
            let mut ffs = FfsSorter::build(&s);
            let mut heap = HeapSorter::build(&s);
            cross_check(&mut ffs, &mut heap, &ops);
        }
    }
}
