//! The five leading-one/second-leading-one extraction chains.
//!
//! Each design consumes the candidate vector from the shared frontend and
//! produces two one-hot outputs:
//!
//! * `m[i]` — position *i* holds the **primary** match: `c[i]` is set and
//!   no candidate exists above *i*;
//! * `b[i]` — position *i* holds the **backup** match: `c[i]` is set and
//!   *exactly one* candidate exists above *i*.
//!
//! The scan direction is from the most significant bit downward, mirroring
//! the "search for the next smallest literal" behaviour of the paper's
//! node matching circuitry. All designs implement the same two-bit state
//! machine — `a` = "no candidate seen yet", `e` = "exactly one seen" —
//! and differ only in how the state chain is accelerated, exactly as adder
//! carry chains differ in carry acceleration.

use hwsim::{Netlist, Signal};

/// One-hot primary and backup outputs of a chain.
pub(crate) struct ChainOutputs {
    /// Primary one-hot: `m[i]` ⇔ `c[i]` is the leading candidate.
    pub m: Vec<Signal>,
    /// Backup one-hot: `b[i]` ⇔ `c[i]` is the second-leading candidate.
    pub b: Vec<Signal>,
}

/// Plain ripple chain: the two-bit state advances one candidate bit per
/// step, the direct analogue of a ripple-carry adder.
pub(crate) fn ripple_chain(n: &mut Netlist, c: &[Signal]) -> ChainOutputs {
    let width = c.len();
    let mut a = n.constant(true);
    let mut e = n.constant(false);
    let mut m = vec![a; width];
    let mut b = vec![a; width];
    for i in (0..width).rev() {
        m[i] = n.and2(c[i], a);
        b[i] = n.and2(c[i], e);
        let nc = n.not(c[i]);
        let a_next = n.and2(a, nc);
        let one_here = n.and2(a, c[i]);
        let still_one = n.and2(e, nc);
        e = n.or2(one_here, still_one);
        a = a_next;
    }
    ChainOutputs { m, b }
}

/// Standard (flat) look-ahead: every position computes its own
/// "none above" and "exactly one above" with private OR trees —
/// logarithmic depth, quadratic area, the carry-look-ahead analogue.
pub(crate) fn lookahead_chain(n: &mut Netlist, c: &[Signal]) -> ChainOutputs {
    let width = c.len();
    // z[i]: no candidate above i. nonlead[i]: c[i] set but not leading.
    let mut z = Vec::with_capacity(width);
    for i in 0..width {
        let above: Vec<Signal> = c[i + 1..].to_vec();
        let any_above = n.reduce_or(&above);
        z.push(n.not(any_above));
    }
    let m: Vec<Signal> = (0..width).map(|i| n.and2(c[i], z[i])).collect();
    let nonlead: Vec<Signal> = (0..width)
        .map(|i| {
            let nz = n.not(z[i]);
            n.and2(c[i], nz)
        })
        .collect();
    let b = (0..width)
        .map(|i| {
            // Exactly one candidate above i: the leading candidate is
            // above i, and no non-leading candidate is above i.
            let lead_above = n.reduce_or(&m[i + 1..]);
            let two_above = n.reduce_or(&nonlead[i + 1..]);
            let no_two = n.not(two_above);
            let exactly_one = n.and2(lead_above, no_two);
            n.and2(c[i], exactly_one)
        })
        .collect();
    ChainOutputs { m, b }
}

/// Block look-ahead with fixed 4-bit blocks: flat look-ahead inside each
/// block, two-gate state ripple between blocks — the 4-bit-group CLA
/// analogue.
pub(crate) fn block_lookahead_chain(n: &mut Netlist, c: &[Signal]) -> ChainOutputs {
    blocked_chain(n, c, 4, BlockStyle::Tree, InterChain::Ripple)
}

/// Skip & look-ahead with √B blocks: cheap ripple prefixes inside each
/// block, and the inter-block state carried by a two-gate bypass per
/// block — the carry-skip analogue (empty blocks cost only the bypass).
pub(crate) fn skip_lookahead_chain(n: &mut Netlist, c: &[Signal]) -> ChainOutputs {
    let g = sqrt_block(c.len());
    blocked_chain(n, c, g, BlockStyle::Ripple, InterChain::Ripple)
}

/// Select & look-ahead with √B blocks: flat prefixes inside each block,
/// a logarithmic parallel-prefix network over the block summaries, and
/// per-block output selection muxes — the carry-select analogue and the
/// design the paper fabricates.
pub(crate) fn select_lookahead_chain(n: &mut Netlist, c: &[Signal]) -> ChainOutputs {
    let g = pow2_block(c.len());
    blocked_chain(n, c, g, BlockStyle::Tree, InterChain::PrefixNetwork)
}

fn sqrt_block(width: usize) -> usize {
    ((width as f64).sqrt().round() as usize).max(2)
}

/// Nearest power of two to √width — even partitions keep the select
/// design's block boundaries aligned and its mux tree balanced.
fn pow2_block(width: usize) -> usize {
    let target = (width as f64).sqrt();
    let mut best = 2usize;
    let mut g = 2usize;
    while g <= width {
        if (g as f64 / target - 1.0).abs() < (best as f64 / target - 1.0).abs() {
            best = g;
        }
        g *= 2;
    }
    best.max(2)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BlockStyle {
    /// Flat trees inside the block (fast, more gates).
    Tree,
    /// Rippled state inside the block (slow, fewest gates).
    Ripple,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum InterChain {
    /// State ripples block to block (two gate levels per block).
    Ripple,
    /// Kogge–Stone parallel prefix over block summaries.
    PrefixNetwork,
}

/// Per-block intermediate results, positions within the block descending.
struct BlockPrefixes {
    /// For each bit: no candidate above it *within the block*.
    z_local: Vec<Signal>,
    /// For each bit: exactly one candidate above it *within the block*.
    o_local: Vec<Signal>,
    /// Block summary: block holds no candidate.
    blk_z: Signal,
    /// Block summary: block holds exactly one candidate.
    blk_o: Signal,
}

/// Shared skeleton of the three blocked designs.
fn blocked_chain(
    n: &mut Netlist,
    c: &[Signal],
    block_size: usize,
    style: BlockStyle,
    inter: InterChain,
) -> ChainOutputs {
    let width = c.len();
    assert!(block_size >= 1);
    // Blocks from MSB down: block 0 covers the highest positions.
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut pos: isize = width as isize - 1;
    while pos >= 0 {
        let lo = (pos - block_size as isize + 1).max(0);
        blocks.push((lo..=pos).rev().map(|p| p as usize).collect());
        pos = lo - 1;
    }

    let prefixes: Vec<BlockPrefixes> = blocks
        .iter()
        .map(|blk| match style {
            BlockStyle::Tree => block_prefixes_tree(n, c, blk),
            BlockStyle::Ripple => block_prefixes_ripple(n, c, blk),
        })
        .collect();

    // Incoming (a, e) state for each block.
    let states: Vec<(Signal, Signal)> = match inter {
        InterChain::Ripple => {
            let mut acc = Vec::with_capacity(blocks.len());
            let mut a = n.constant(true);
            let mut e = n.constant(false);
            for p in &prefixes {
                acc.push((a, e));
                let a_next = n.and2(a, p.blk_z);
                let one_here = n.and2(a, p.blk_o);
                let still_one = n.and2(e, p.blk_z);
                e = n.or2(one_here, still_one);
                a = a_next;
            }
            acc
        }
        InterChain::PrefixNetwork => prefix_states(n, &prefixes),
    };

    let mut m = vec![c[0]; width];
    let mut b = vec![c[0]; width];
    for (blk_idx, blk) in blocks.iter().enumerate() {
        let (a_in, e_in) = states[blk_idx];
        let p = &prefixes[blk_idx];
        for (k, &i) in blk.iter().enumerate() {
            // Primary: virgin entry and locally leading.
            let lead = n.and2(c[i], p.z_local[k]);
            m[i] = n.and2(lead, a_in);
            // Backup: select between the two precomputed block variants
            // by the incoming state (the "select" of carry-select).
            let second_if_virgin = n.and2(c[i], p.o_local[k]);
            let lead_if_one_seen = n.and2(lead, e_in);
            b[i] = n.mux(a_in, second_if_virgin, lead_if_one_seen);
        }
    }
    ChainOutputs { m, b }
}

/// Flat per-bit prefixes inside one block (positions descending).
fn block_prefixes_tree(n: &mut Netlist, c: &[Signal], blk: &[usize]) -> BlockPrefixes {
    let k = blk.len();
    let mut z_local = Vec::with_capacity(k);
    for idx in 0..k {
        let above: Vec<Signal> = blk[..idx].iter().map(|&p| c[p]).collect();
        let any = n.reduce_or(&above);
        z_local.push(n.not(any));
    }
    let lead: Vec<Signal> = (0..k)
        .map(|idx| n.and2(c[blk[idx]], z_local[idx]))
        .collect();
    let nonlead: Vec<Signal> = (0..k)
        .map(|idx| {
            let nz = n.not(z_local[idx]);
            n.and2(c[blk[idx]], nz)
        })
        .collect();
    let mut o_local = Vec::with_capacity(k);
    for idx in 0..k {
        let lead_above = n.reduce_or(&lead[..idx]);
        let two_above = n.reduce_or(&nonlead[..idx]);
        let no_two = n.not(two_above);
        o_local.push(n.and2(lead_above, no_two));
    }
    let any_all = n.reduce_or(&blk.iter().map(|&p| c[p]).collect::<Vec<_>>());
    let blk_z = n.not(any_all);
    let lead_any = n.reduce_or(&lead);
    let two_any = n.reduce_or(&nonlead);
    let no_two_any = n.not(two_any);
    let blk_o = n.and2(lead_any, no_two_any);
    BlockPrefixes {
        z_local,
        o_local,
        blk_z,
        blk_o,
    }
}

/// Rippled per-bit prefixes inside one block (positions descending).
fn block_prefixes_ripple(n: &mut Netlist, c: &[Signal], blk: &[usize]) -> BlockPrefixes {
    let mut a = n.constant(true);
    let mut e = n.constant(false);
    let mut z_local = Vec::with_capacity(blk.len());
    let mut o_local = Vec::with_capacity(blk.len());
    for &i in blk {
        z_local.push(a);
        o_local.push(e);
        let nc = n.not(c[i]);
        let a_next = n.and2(a, nc);
        let one_here = n.and2(a, c[i]);
        let still_one = n.and2(e, nc);
        e = n.or2(one_here, still_one);
        a = a_next;
    }
    BlockPrefixes {
        z_local,
        o_local,
        blk_z: a,
        blk_o: e,
    }
}

/// Kogge–Stone parallel prefix of the block (z, o) summaries.
///
/// The summary pair forms a monoid under "group 1 sits above group 2":
/// `z12 = z1 & z2`, `o12 = (o1 & z2) | (z1 & o2)`. An exclusive prefix
/// scan of it yields each block's incoming `(a, e)` state in logarithmic
/// depth.
fn prefix_states(n: &mut Netlist, prefixes: &[BlockPrefixes]) -> Vec<(Signal, Signal)> {
    let count = prefixes.len();
    // Exclusive scan: element k of the working vector holds the combined
    // summary of blocks 0..k, seeded with the identity (z=1, o=0).
    let ident = (n.constant(true), n.constant(false));
    let mut scan: Vec<(Signal, Signal)> = Vec::with_capacity(count);
    scan.push(ident);
    for p in &prefixes[..count.saturating_sub(1)] {
        scan.push((p.blk_z, p.blk_o));
    }
    let mut d = 1;
    while d < count {
        let snapshot = scan.clone();
        for k in d..count {
            let (z1, o1) = snapshot[k - d];
            let (z2, o2) = snapshot[k];
            let z = n.and2(z1, z2);
            let t1 = n.and2(o1, z2);
            let t2 = n.and2(z1, o2);
            let o = n.or2(t1, t2);
            scan[k] = (z, o);
        }
        d *= 2;
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle for the chains: leading and second-leading candidate.
    fn oracle(cand: u64, width: usize) -> (Option<usize>, Option<usize>) {
        let set: Vec<usize> = (0..width).rev().filter(|&i| cand >> i & 1 == 1).collect();
        (set.first().copied(), set.get(1).copied())
    }

    fn run_chain(
        build: fn(&mut Netlist, &[Signal]) -> ChainOutputs,
        width: usize,
        cand: u64,
    ) -> (Option<usize>, Option<usize>) {
        let mut n = Netlist::new();
        let w = n.input_word(width);
        let out = build(&mut n, w.bits());
        for &s in &out.m {
            n.mark_output(s);
        }
        for &s in &out.b {
            n.mark_output(s);
        }
        let bits = n.eval_u64(cand);
        let decode = |slice: &[bool]| {
            let ones: Vec<usize> = slice
                .iter()
                .enumerate()
                .filter_map(|(i, &v)| v.then_some(i))
                .collect();
            assert!(ones.len() <= 1, "output not one-hot: {ones:?}");
            ones.first().copied()
        };
        (decode(&bits[..width]), decode(&bits[width..]))
    }

    fn exhaustive(build: fn(&mut Netlist, &[Signal]) -> ChainOutputs, width: usize) {
        for cand in 0..(1u64 << width) {
            assert_eq!(
                run_chain(build, width, cand),
                oracle(cand, width),
                "width {width}, candidates {cand:#b}"
            );
        }
    }

    #[test]
    fn ripple_chain_exhaustive_to_10_bits() {
        for width in 1..=10 {
            exhaustive(ripple_chain, width);
        }
    }

    #[test]
    fn lookahead_chain_exhaustive_to_10_bits() {
        for width in 1..=10 {
            exhaustive(lookahead_chain, width);
        }
    }

    #[test]
    fn block_chain_exhaustive_to_10_bits() {
        for width in 1..=10 {
            exhaustive(block_lookahead_chain, width);
        }
    }

    #[test]
    fn skip_chain_exhaustive_to_10_bits() {
        for width in 1..=10 {
            exhaustive(skip_lookahead_chain, width);
        }
    }

    #[test]
    fn select_chain_exhaustive_to_10_bits() {
        for width in 1..=10 {
            exhaustive(select_lookahead_chain, width);
        }
    }

    #[test]
    fn sixteen_bit_node_spot_checks_all_designs() {
        // The fabricated node width, checked on structured patterns.
        let patterns: [u64; 6] = [0, 1, 1 << 15, (1 << 15) | 1, 0b1010_1010_1010_1010, 0xffff];
        for build in [
            ripple_chain,
            lookahead_chain,
            block_lookahead_chain,
            skip_lookahead_chain,
            select_lookahead_chain,
        ] {
            for &p in &patterns {
                assert_eq!(run_chain(build, 16, p), oracle(p, 16));
            }
        }
    }

    #[test]
    fn sqrt_block_sizing() {
        assert_eq!(sqrt_block(4), 2);
        assert_eq!(sqrt_block(16), 4);
        assert_eq!(sqrt_block(64), 8);
        assert_eq!(sqrt_block(2), 2);
    }
}
