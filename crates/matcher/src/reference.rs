//! Software reference model for the node matching operation.
//!
//! This is the oracle every gate-level design is verified against, and
//! also the implementation the fast behavioural trie uses when cycle
//! accuracy is not required.

/// Outcome of a closest-match lookup within one node.
///
/// # Example
///
/// ```
/// use matcher::reference::closest_match;
///
/// // Occupancy 0b0110 (literals 1 and 2 present), searching for 3:
/// let r = closest_match(0b0110, 4, 3);
/// assert_eq!(r.primary, Some(2)); // next-smallest present literal
/// assert_eq!(r.backup, Some(1));  // fallback if the child search fails
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchResult {
    /// Highest set bit at position ≤ the requested literal, if any.
    pub primary: Option<u32>,
    /// Next set bit strictly below the primary, if any.
    pub backup: Option<u32>,
}

impl MatchResult {
    /// True when the primary match hit the requested literal exactly.
    pub fn is_exact(&self, literal: u32) -> bool {
        self.primary == Some(literal)
    }

    /// A result with neither primary nor backup.
    pub const MISS: MatchResult = MatchResult {
        primary: None,
        backup: None,
    };
}

/// Position of the highest set bit of `x`, if any.
#[inline]
pub fn leading_one(x: u64) -> Option<u32> {
    if x == 0 {
        None
    } else {
        Some(63 - x.leading_zeros())
    }
}

/// Closest match with backup: the paper's per-node search (§III-A).
///
/// `word` is the node occupancy (bit *i* set ⇔ literal *i* present),
/// `width` the node width in bits, `literal` the requested literal.
///
/// # Panics
///
/// Panics if `width` is 0 or over 64, if `word` has bits above `width`,
/// or if `literal` is not below `width`.
pub fn closest_match(word: u64, width: u32, literal: u32) -> MatchResult {
    assert!((1..=64).contains(&width), "node width must be 1..=64");
    if width < 64 {
        assert!(
            word >> width == 0,
            "occupancy word {word:#x} wider than {width} bits"
        );
    }
    assert!(
        literal < width,
        "literal {literal} out of range for {width}-bit node"
    );
    // Candidates: occupancy restricted to positions <= literal.
    let mask = if literal == 63 {
        u64::MAX
    } else {
        (1u64 << (literal + 1)) - 1
    };
    let candidates = word & mask;
    let primary = leading_one(candidates);
    let backup = primary.and_then(|p| {
        let below = candidates & !(1u64 << p);
        leading_one(below)
    });
    MatchResult { primary, backup }
}

/// Highest set bit strictly below `pos`, if any.
///
/// This is the "next smallest bit in the parent node" lookup the backup
/// path performs when it has to climb levels (paper Fig. 5).
pub fn next_below(word: u64, pos: u32) -> Option<u32> {
    if pos == 0 {
        return None;
    }
    let mask = (1u64 << pos) - 1;
    leading_one(word & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_with_backup() {
        // Paper Fig. 4 step 3: node 0b0011-ish cases.
        let r = closest_match(0b0011, 4, 1);
        assert_eq!(r.primary, Some(1));
        assert!(r.is_exact(1));
        assert_eq!(r.backup, Some(0));
    }

    #[test]
    fn next_smallest_when_exact_absent() {
        // Fig. 4 walkthrough: searching "10" in a node holding "01" and
        // "11" returns "01".
        let r = closest_match(0b1010, 4, 2);
        assert_eq!(r.primary, Some(1));
        assert!(!r.is_exact(2));
        assert_eq!(r.backup, None);
    }

    #[test]
    fn miss_when_nothing_at_or_below() {
        // Fig. 5 point "A": no bit at or below the request.
        let r = closest_match(0b1000, 4, 2);
        assert_eq!(r, MatchResult::MISS);
    }

    #[test]
    fn full_word_request_sees_everything() {
        let r = closest_match(0b0101, 4, 3);
        assert_eq!(r.primary, Some(2));
        assert_eq!(r.backup, Some(0));
    }

    #[test]
    fn empty_node_misses() {
        assert_eq!(closest_match(0, 16, 9), MatchResult::MISS);
    }

    #[test]
    fn sixteen_bit_node_like_fabricated_circuit() {
        // Occupancy with literals {2, 7, 11} present.
        let word = (1 << 2) | (1 << 7) | (1 << 11);
        let r = closest_match(word, 16, 10);
        assert_eq!(r.primary, Some(7));
        assert_eq!(r.backup, Some(2));
        let r = closest_match(word, 16, 15);
        assert_eq!(r.primary, Some(11));
        assert_eq!(r.backup, Some(7));
        let r = closest_match(word, 16, 1);
        assert_eq!(r, MatchResult::MISS);
    }

    #[test]
    fn width_64_and_literal_63_do_not_overflow() {
        let word = u64::MAX;
        let r = closest_match(word, 64, 63);
        assert_eq!(r.primary, Some(63));
        assert_eq!(r.backup, Some(62));
        let r = closest_match(1, 64, 63);
        assert_eq!(r.primary, Some(0));
        assert_eq!(r.backup, None);
    }

    #[test]
    fn leading_one_basics() {
        assert_eq!(leading_one(0), None);
        assert_eq!(leading_one(1), Some(0));
        assert_eq!(leading_one(0b100100), Some(5));
        assert_eq!(leading_one(u64::MAX), Some(63));
    }

    #[test]
    fn next_below_basics() {
        let word = 0b10110;
        assert_eq!(next_below(word, 4), Some(2));
        assert_eq!(next_below(word, 2), Some(1));
        assert_eq!(next_below(word, 1), None);
        assert_eq!(next_below(word, 0), None);
    }

    #[test]
    #[should_panic(expected = "literal 4 out of range")]
    fn literal_out_of_range_panics() {
        let _ = closest_match(0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn oversized_word_panics() {
        let _ = closest_match(0x10, 4, 0);
    }

    /// Brute-force oracle-vs-oracle: compare against a naive scan.
    #[test]
    fn matches_naive_scan_exhaustively_at_width_6() {
        for word in 0u64..64 * 8 {
            let word = word % 64;
            for literal in 0..6u32 {
                let got = closest_match(word, 6, literal);
                let mut primary = None;
                for i in (0..=literal).rev() {
                    if word & (1 << i) != 0 {
                        primary = Some(i);
                        break;
                    }
                }
                let backup = primary.and_then(|p| (0..p).rev().find(|i| word & (1u64 << i) != 0));
                assert_eq!(got, MatchResult { primary, backup });
            }
        }
    }
}
