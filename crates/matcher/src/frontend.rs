//! Shared matcher frontend: literal decoding and candidate masking.
//!
//! All five matcher designs consume the same *candidate* vector
//! `c[i] = v[i] AND (literal >= i)`: the node occupancy restricted to
//! positions at or below the requested literal. The comparison against
//! each constant position is built directly from the binary literal bits
//! (a thermometer decoder), so the frontend depth is logarithmic in the
//! node width and identical across designs — the designs differ only in
//! the leading-one extraction chain behind it.

use hwsim::{Netlist, Signal};

/// Number of literal input bits for a `width`-bit node.
pub(crate) fn literal_bits(width: usize) -> usize {
    assert!(width >= 2, "node width must be at least 2");
    (usize::BITS - (width - 1).leading_zeros()) as usize
}

/// Builds the shared frontend.
///
/// Creates `width` occupancy inputs (LSB first) followed by
/// [`literal_bits`] literal inputs (LSB first), and returns the candidate
/// signals `c[0..width]`.
pub(crate) fn build_frontend(n: &mut Netlist, width: usize) -> Vec<Signal> {
    let v = n.input_word(width);
    let lit = n.input_word(literal_bits(width));
    (0..width)
        .map(|i| {
            let ge = ge_const(n, lit.bits(), i as u64);
            n.and2(v.bit(i), ge)
        })
        .collect()
}

/// Signal for `value(p_bits) >= k`, with `k` a compile-time constant.
///
/// Built as a divide-and-conquer comparator — `(gt, eq)` pairs merge as
/// `gt = gt_hi | (eq_hi & gt_lo)`, `eq = eq_hi & eq_lo` — so the depth is
/// logarithmic in the literal width and the frontend never dominates a
/// design's chain.
fn ge_const(n: &mut Netlist, p_bits: &[Signal], k: u64) -> Signal {
    if k == 0 {
        return n.constant(true);
    }
    let (gt, eq) = cmp_range(n, p_bits, k, 0, p_bits.len());
    n.or2(gt, eq)
}

/// `(p > k, p == k)` restricted to bit positions `lo..hi`.
fn cmp_range(n: &mut Netlist, p_bits: &[Signal], k: u64, lo: usize, hi: usize) -> (Signal, Signal) {
    debug_assert!(lo < hi);
    if hi - lo == 1 {
        let bit = p_bits[lo];
        return if (k >> lo) & 1 == 0 {
            let ne = n.not(bit);
            (bit, ne) // p bit 1 beats k bit 0; equal iff p bit 0
        } else {
            (n.constant(false), bit) // can't beat a 1; equal iff p bit 1
        };
    }
    let mid = lo + (hi - lo) / 2;
    let (gt_lo, eq_lo) = cmp_range(n, p_bits, k, lo, mid);
    let (gt_hi, eq_hi) = cmp_range(n, p_bits, k, mid, hi);
    let carry = n.and2(eq_hi, gt_lo);
    let gt = n.or2(gt_hi, carry);
    let eq = n.and2(eq_hi, eq_lo);
    (gt, eq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_bits_covers_common_widths() {
        assert_eq!(literal_bits(2), 1);
        assert_eq!(literal_bits(4), 2);
        assert_eq!(literal_bits(16), 4); // the fabricated circuit's nodes
        assert_eq!(literal_bits(32), 5); // the 15-bit-word variant
        assert_eq!(literal_bits(5), 3);
        assert_eq!(literal_bits(64), 6);
    }

    #[test]
    fn ge_const_is_a_correct_comparator() {
        for width in [1usize, 3, 4] {
            for k in 0..(1u64 << width) {
                let mut n = Netlist::new();
                let p = n.input_word(width);
                let s = ge_const(&mut n, p.bits(), k);
                n.mark_output(s);
                for pv in 0..(1u64 << width) {
                    assert_eq!(
                        n.eval_u64(pv),
                        vec![pv >= k],
                        "width {width}, p {pv} >= k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidates_mask_occupancy_by_thermometer() {
        let width = 8;
        let mut n = Netlist::new();
        let c = build_frontend(&mut n, width);
        for &s in &c {
            n.mark_output(s);
        }
        let word: u64 = 0b1011_0101;
        for literal in 0..width as u64 {
            let inputs = word | (literal << width);
            let out = n.eval_u64(inputs);
            for (i, &bit) in out.iter().enumerate() {
                let expected = (word >> i) & 1 == 1 && (i as u64) <= literal;
                assert_eq!(bit, expected, "literal {literal}, bit {i}");
            }
        }
    }

    #[test]
    fn frontend_depth_is_logarithmic() {
        // The frontend must not dominate any design's chain: its depth
        // grows with log(width), not width.
        let depth_of = |width: usize| {
            let mut n = Netlist::new();
            let c = build_frontend(&mut n, width);
            for &s in &c {
                n.mark_output(s);
            }
            n.delay()
        };
        let d16 = depth_of(16);
        let d64 = depth_of(64);
        assert!(d16 <= 12, "16-bit frontend too deep: {d16}");
        assert!(
            d64 <= d16 + 6,
            "frontend depth not logarithmic: {d16} -> {d64}"
        );
    }
}
