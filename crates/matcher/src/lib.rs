//! Closest-match matching circuits for multi-bit tree nodes.
//!
//! Every node of the paper's multi-bit search tree is a *B*-bit occupancy
//! word (B = 16 in the fabricated circuit). Searching a node means, given
//! a requested literal *p*:
//!
//! * **primary match** — the highest set bit at position ≤ *p* (the exact
//!   literal if present, else the next smaller one present), and
//! * **backup match** — the next set bit strictly below the primary, used
//!   when the search fails in a deeper level and must fall back (paper
//!   Fig. 5, point "B").
//!
//! Both lookups happen in parallel inside one node (paper §III-A). The
//! companion study (\[13\] in the paper) compares five circuit designs for
//! this operation, all derived from adder carry-chain acceleration; this
//! crate reconstructs all five as [`hwsim`] gate netlists sharing one
//! frontend (literal decoder → thermometer mask → candidate bits) and
//! differing in how the leading-one / second-leading-one extraction chain
//! is accelerated:
//!
//! | design | chain structure | delay model | area model |
//! |---|---|---|---|
//! | [`MatcherKind::Ripple`] | 2-bit state ripples bit by bit | Θ(B) | Θ(B) |
//! | [`MatcherKind::LookAhead`] | flat per-position trees | Θ(log B) | Θ(B²) |
//! | [`MatcherKind::BlockLookAhead`] | flat inside 4-bit blocks, state ripples between blocks | Θ(B) (¼ slope) | Θ(B) |
//! | [`MatcherKind::SkipLookAhead`] | ripple inside √B blocks, empty blocks skipped by mux | Θ(√B) | Θ(B) |
//! | [`MatcherKind::SelectLookAhead`] | flat inside √B blocks, flat look-ahead across blocks, per-block select muxes | Θ(log B) small constant | Θ(B^1.5) |
//!
//! Delay is measured with the fan-out-aware model of
//! [`hwsim::Netlist::delay_buffered`] and area with the LUT-style gate
//! count of [`hwsim::Netlist::area`]. These preserve the growth shapes of
//! the paper's Figs. 7–8: ripple is linear and slowest, the flat
//! look-ahead pays quadratic area, and select & look-ahead delivers
//! near-minimal (logarithmic) delay at a fraction of the flat design's
//! gates — the best delay–area product of the five, which is why the
//! paper fabricates it. (Under a purely structural model the flat design
//! retains a few gate-levels of depth advantage; on the authors' FPGA the
//! same design loses outright to routing and fan-in effects. See
//! EXPERIMENTS.md, experiment E2.)
//!
//! # Example
//!
//! ```
//! use matcher::{MatcherKind, MatcherCircuit, reference};
//!
//! // The paper's Fig. 4 third-level node: literals "00" and "11" present.
//! let word = 0b1001;
//! let circuit = MatcherCircuit::build(MatcherKind::SelectLookAhead, 4);
//! let hw = circuit.evaluate(word, 0b10); // search literal "10"
//! let sw = reference::closest_match(word, 4, 0b10);
//! assert_eq!(hw, sw);
//! assert_eq!(hw.primary, Some(0)); // "00" is the next-smallest literal
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod designs;
mod frontend;
pub mod reference;

pub use circuit::{MatcherCircuit, MatcherKind};
pub use reference::MatchResult;
