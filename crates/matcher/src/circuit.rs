//! Complete matcher circuits: frontend + extraction chain, measurable.

use std::fmt;

use hwsim::Netlist;

use crate::designs::{
    block_lookahead_chain, lookahead_chain, ripple_chain, select_lookahead_chain,
    skip_lookahead_chain, ChainOutputs,
};
use crate::frontend::{build_frontend, literal_bits};
use crate::reference::MatchResult;

/// The five matching-circuit architectures of the paper's Figs. 7–8.
///
/// See the [crate documentation](crate) for the structural mapping of
/// each name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatcherKind {
    /// Bit-serial ripple chain (baseline).
    Ripple,
    /// Flat per-position look-ahead.
    LookAhead,
    /// 4-bit-block look-ahead with rippled block state.
    BlockLookAhead,
    /// √B-block carry-skip style chain.
    SkipLookAhead,
    /// √B-block carry-select style chain — the design the paper selects.
    SelectLookAhead,
}

impl MatcherKind {
    /// All five kinds, in the order the paper's figures list them.
    pub const ALL: [MatcherKind; 5] = [
        MatcherKind::Ripple,
        MatcherKind::LookAhead,
        MatcherKind::BlockLookAhead,
        MatcherKind::SkipLookAhead,
        MatcherKind::SelectLookAhead,
    ];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            MatcherKind::Ripple => "ripple",
            MatcherKind::LookAhead => "look-ahead",
            MatcherKind::BlockLookAhead => "block look-ahead",
            MatcherKind::SkipLookAhead => "skip & look-ahead",
            MatcherKind::SelectLookAhead => "select & look-ahead",
        }
    }
}

impl fmt::Display for MatcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully elaborated matching circuit for one node width.
///
/// Inputs are the node occupancy word and the binary search literal;
/// outputs are the one-hot primary and backup matches. The circuit's
/// [`delay`](MatcherCircuit::delay) and [`area`](MatcherCircuit::area)
/// are measured from the gate netlist.
///
/// # Example
///
/// ```
/// use matcher::{MatcherCircuit, MatcherKind};
///
/// let m = MatcherCircuit::build(MatcherKind::Ripple, 16);
/// let r = m.evaluate(0b0000_1000_1000_0100, 11);
/// assert_eq!(r.primary, Some(11));
/// assert_eq!(r.backup, Some(7));
/// assert!(m.delay() > MatcherCircuit::build(MatcherKind::SelectLookAhead, 16).delay());
/// ```
#[derive(Debug, Clone)]
pub struct MatcherCircuit {
    kind: MatcherKind,
    width: usize,
    netlist: Netlist,
}

impl MatcherCircuit {
    /// Elaborates a matcher of the given design for a `width`-bit node.
    ///
    /// Widths up to 128 bits are supported for delay/area extraction
    /// (the paper's Figs. 7–8 sweep to 128); gate-level
    /// [`evaluate`](MatcherCircuit::evaluate) is limited to 64 bits by
    /// its word argument — use [`evaluate_bits`](MatcherCircuit::evaluate_bits)
    /// above that.
    ///
    /// # Panics
    ///
    /// Panics if `width` is below 2 or above 128.
    pub fn build(kind: MatcherKind, width: usize) -> Self {
        assert!(
            (2..=128).contains(&width),
            "node width must be 2..=128, got {width}"
        );
        let mut n = Netlist::new();
        let candidates = build_frontend(&mut n, width);
        let ChainOutputs { m, b } = match kind {
            MatcherKind::Ripple => ripple_chain(&mut n, &candidates),
            MatcherKind::LookAhead => lookahead_chain(&mut n, &candidates),
            MatcherKind::BlockLookAhead => block_lookahead_chain(&mut n, &candidates),
            MatcherKind::SkipLookAhead => skip_lookahead_chain(&mut n, &candidates),
            MatcherKind::SelectLookAhead => select_lookahead_chain(&mut n, &candidates),
        };
        for s in m.into_iter().chain(b) {
            n.mark_output(s);
        }
        Self {
            kind,
            width,
            netlist: n,
        }
    }

    /// The design this circuit implements.
    pub fn kind(&self) -> MatcherKind {
        self.kind
    }

    /// Node width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Critical-path depth including fan-out buffering — the model behind
    /// the paper's Fig. 7 axis (post-synthesis delays see load effects;
    /// see [`hwsim::Netlist::delay_buffered`]).
    pub fn delay(&self) -> u32 {
        self.netlist.delay_buffered()
    }

    /// Critical-path depth under the pure unit-delay model, ignoring
    /// fan-out loading. Useful for separating architectural depth from
    /// load effects; Fig. 7 uses [`MatcherCircuit::delay`].
    pub fn delay_unit(&self) -> u32 {
        self.netlist.delay()
    }

    /// Gate count under the LUT-style model (the paper's Fig. 8 axis).
    pub fn area(&self) -> u32 {
        self.netlist.area()
    }

    /// Emits the circuit as structural Verilog (see
    /// [`hwsim::Netlist::to_verilog`]); inputs are the occupancy bits
    /// (LSB first) followed by the binary literal, outputs the primary
    /// then backup one-hots.
    ///
    /// # Panics
    ///
    /// Panics if `module_name` is not a valid Verilog identifier.
    pub fn netlist_verilog(&self, module_name: &str) -> String {
        self.netlist.to_verilog(module_name)
    }

    /// Runs the gate-level circuit on an occupancy `word` and search
    /// `literal`, decoding the one-hot outputs.
    ///
    /// # Panics
    ///
    /// Panics if `word` has bits at or above the node width, or `literal`
    /// is out of range.
    pub fn evaluate(&self, word: u64, literal: u32) -> MatchResult {
        assert!(
            self.width <= 64,
            "use evaluate_bits for nodes above 64 bits"
        );
        assert!(
            self.width == 64 || word >> self.width == 0,
            "occupancy word wider than {} bits",
            self.width
        );
        assert!(
            (literal as usize) < self.width,
            "literal {literal} out of range for {}-bit node",
            self.width
        );
        let bits: Vec<bool> = (0..self.width).map(|i| (word >> i) & 1 == 1).collect();
        self.evaluate_bits(&bits, literal)
    }

    /// Runs the circuit on an occupancy bit-slice (LSB first) — the
    /// arbitrary-width form of [`evaluate`](MatcherCircuit::evaluate).
    ///
    /// # Panics
    ///
    /// Panics if `occupancy.len()` differs from the node width or
    /// `literal` is out of range.
    pub fn evaluate_bits(&self, occupancy: &[bool], literal: u32) -> MatchResult {
        assert_eq!(occupancy.len(), self.width, "occupancy width mismatch");
        assert!(
            (literal as usize) < self.width,
            "literal {literal} out of range for {}-bit node",
            self.width
        );
        let lit_bits = literal_bits(self.width);
        let mut inputs = occupancy.to_vec();
        for i in 0..lit_bits {
            inputs.push((literal >> i) & 1 == 1);
        }
        let out = self.netlist.eval(&inputs);
        let decode = |slice: &[bool]| -> Option<u32> {
            let mut found = None;
            for (i, &v) in slice.iter().enumerate() {
                if v {
                    debug_assert!(found.is_none(), "matcher output not one-hot");
                    found = Some(i as u32);
                }
            }
            found
        };
        MatchResult {
            primary: decode(&out[..self.width]),
            backup: decode(&out[self.width..]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::closest_match;

    /// Every design, exhaustive equivalence with the software reference at
    /// widths 4 and 8 (all words × all literals).
    #[test]
    fn all_designs_match_reference_exhaustively() {
        for kind in MatcherKind::ALL {
            for width in [4usize, 8] {
                let circuit = MatcherCircuit::build(kind, width);
                for word in 0..(1u64 << width) {
                    for literal in 0..width as u32 {
                        assert_eq!(
                            circuit.evaluate(word, literal),
                            closest_match(word, width as u32, literal),
                            "{kind} width {width} word {word:#b} literal {literal}"
                        );
                    }
                }
            }
        }
    }

    /// Randomized equivalence at the fabricated width (16) and wider.
    #[test]
    fn designs_match_reference_randomized_at_16_and_32() {
        // Simple deterministic LCG so the test needs no external RNG.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for kind in MatcherKind::ALL {
            for width in [16usize, 32] {
                let circuit = MatcherCircuit::build(kind, width);
                for _ in 0..200 {
                    let word = next() & ((1u64 << width) - 1);
                    let literal = (next() % width as u64) as u32;
                    assert_eq!(
                        circuit.evaluate(word, literal),
                        closest_match(word, width as u32, literal),
                        "{kind} width {width} word {word:#x} literal {literal}"
                    );
                }
            }
        }
    }

    /// Fig. 7's headline, under this crate's structural model: select &
    /// look-ahead is the fastest design with sub-quadratic area at every
    /// plotted width, and stays within 25% of the flat look-ahead's depth
    /// while avoiding its Θ(B²) gate count (see EXPERIMENTS.md for the
    /// full discussion of this substitution).
    #[test]
    fn select_is_fastest_practical_design() {
        for width in [8usize, 16, 32, 64] {
            let select = MatcherCircuit::build(MatcherKind::SelectLookAhead, width);
            for kind in [
                MatcherKind::Ripple,
                MatcherKind::BlockLookAhead,
                MatcherKind::SkipLookAhead,
            ] {
                let other = MatcherCircuit::build(kind, width).delay();
                assert!(
                    select.delay() <= other,
                    "width {width}: select ({}) slower than {kind} ({other})",
                    select.delay()
                );
            }
            let flat = MatcherCircuit::build(MatcherKind::LookAhead, width);
            assert!(
                f64::from(select.delay()) <= 1.25 * f64::from(flat.delay()),
                "width {width}: select ({}) not within 25% of flat ({})",
                select.delay(),
                flat.delay()
            );
            if width >= 32 {
                assert!(
                    flat.area() >= 2 * select.area(),
                    "width {width}: flat area {} should dwarf select {}",
                    flat.area(),
                    select.area()
                );
            }
        }
    }

    /// The paper's "most hardware efficient" claim, as a delay–area
    /// product: select beats every other accelerated design at the
    /// fabricated width and above.
    #[test]
    fn select_wins_delay_area_product() {
        for width in [16usize, 32, 64] {
            let cost = |kind| {
                let c = MatcherCircuit::build(kind, width);
                u64::from(c.delay()) * u64::from(c.area())
            };
            let select = cost(MatcherKind::SelectLookAhead);
            for kind in [MatcherKind::LookAhead, MatcherKind::BlockLookAhead] {
                assert!(
                    select <= cost(kind),
                    "width {width}: select delay*area {select} lost to {kind} ({})",
                    cost(kind)
                );
            }
        }
    }

    /// Fig. 8's headline: flat look-ahead pays quadratic area; ripple is
    /// the smallest; select sits in between.
    #[test]
    fn area_ordering_matches_figure_8() {
        for width in [16usize, 32, 64] {
            let ripple = MatcherCircuit::build(MatcherKind::Ripple, width).area();
            let select = MatcherCircuit::build(MatcherKind::SelectLookAhead, width).area();
            let flat = MatcherCircuit::build(MatcherKind::LookAhead, width).area();
            assert!(
                ripple < select,
                "width {width}: ripple {ripple} !< select {select}"
            );
            assert!(
                select < flat,
                "width {width}: select {select} !< flat {flat}"
            );
        }
    }

    #[test]
    fn ripple_delay_is_linear() {
        let d16 = MatcherCircuit::build(MatcherKind::Ripple, 16).delay();
        let d64 = MatcherCircuit::build(MatcherKind::Ripple, 64).delay();
        // Quadrupling the width should roughly quadruple the chain delay.
        assert!(d64 > 3 * d16 / 2, "ripple not linear: {d16} -> {d64}");
    }

    #[test]
    fn select_delay_is_sublinear() {
        let d16 = MatcherCircuit::build(MatcherKind::SelectLookAhead, 16).delay();
        let d64 = MatcherCircuit::build(MatcherKind::SelectLookAhead, 64).delay();
        assert!(
            d64 < 2 * d16,
            "select delay should grow sublinearly: {d16} -> {d64}"
        );
    }

    #[test]
    fn width_128_builds_and_evaluates_via_bits() {
        let c = MatcherCircuit::build(MatcherKind::SelectLookAhead, 128);
        assert!(c.delay() > 0 && c.area() > 0);
        let mut occupancy = vec![false; 128];
        occupancy[5] = true;
        occupancy[90] = true;
        occupancy[127] = true;
        let r = c.evaluate_bits(&occupancy, 100);
        assert_eq!(r.primary, Some(90));
        assert_eq!(r.backup, Some(5));
        let r = c.evaluate_bits(&occupancy, 4);
        assert_eq!(r.primary, None);
        // The Fig. 7 claim extends to the full axis: select stays ahead
        // of ripple/block/skip at 128 bits.
        for kind in [
            MatcherKind::Ripple,
            MatcherKind::BlockLookAhead,
            MatcherKind::SkipLookAhead,
        ] {
            assert!(
                c.delay() < MatcherCircuit::build(kind, 128).delay(),
                "{kind}"
            );
        }
    }

    #[test]
    fn evaluate_bits_matches_evaluate_at_64() {
        let c = MatcherCircuit::build(MatcherKind::Ripple, 16);
        let word = 0b0010_0100_0001_0000u64;
        for lit in 0..16u32 {
            let bits: Vec<bool> = (0..16).map(|i| (word >> i) & 1 == 1).collect();
            assert_eq!(c.evaluate_bits(&bits, lit), c.evaluate(word, lit));
        }
    }

    #[test]
    fn kind_names_match_paper_terms() {
        assert_eq!(
            MatcherKind::SelectLookAhead.to_string(),
            "select & look-ahead"
        );
        assert_eq!(MatcherKind::ALL.len(), 5);
    }

    #[test]
    #[should_panic(expected = "literal 16 out of range")]
    fn evaluate_rejects_bad_literal() {
        let m = MatcherCircuit::build(MatcherKind::Ripple, 16);
        let _ = m.evaluate(0, 16);
    }

    #[test]
    #[should_panic(expected = "node width must be 2..=128")]
    fn build_rejects_width_1() {
        let _ = MatcherCircuit::build(MatcherKind::Ripple, 1);
    }
}
