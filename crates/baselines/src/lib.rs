//! Every lookup method of the paper's Table I, instrumented.
//!
//! Table I compares nine ways of storing finishing tags and retrieving
//! the smallest, by their worst-case memory accesses per lookup. This
//! crate implements all of them behind one trait so the table can be
//! *measured* rather than transcribed:
//!
//! | implementation | model | worst-case lookup | exact order? |
//! |---|---|---|---|
//! | [`SortedLinkedList`] | sort | O(n) insert scan | yes |
//! | [`BinaryHeapPq`] | sort | O(log n) | yes |
//! | [`VebTree`] | sort | O(log W) | yes |
//! | [`CalendarQueue`] | sort | O(buckets) | yes |
//! | [`TwoDimCalendarQueue`] | sort | O(days + slots) | **no** (slot aggregation) |
//! | [`BinningCbfq`] | search | O(bins) | **no** (bin aggregation) |
//! | [`BinaryCam`] | search | O(2^W) value probes | yes |
//! | [`HashLookup`] | search | > O(2^W) (probes × chains) | yes |
//! | [`Tcam`] | search | W masked probes | yes |
//! | [`BinaryTreeQueue`] | sort | W node reads | yes |
//! | [`MultiBitTreeQueue`] | sort | W / log₂(BF) node reads | yes |
//!
//! "Model" is the paper's §II-C distinction: *sort* structures pay at
//! insertion and serve the minimum in fixed time; *search* structures pay
//! at retrieval, so their service time is only bounded by the worst case.
//! The two aggregating structures ([`TwoDimCalendarQueue`],
//! [`BinningCbfq`]) trade exact ordering for speed — the inaccuracy the
//! paper calls out ("this method is unsatisfactory because it aggregates
//! values together in groups").
//!
//! # Example
//!
//! ```
//! use baselines::{BinaryHeapPq, MinTagQueue, Tcam};
//! use tagsort::{PacketRef, Tag};
//!
//! let mut heap = BinaryHeapPq::new(12);
//! let mut tcam = Tcam::new(12);
//! for (i, t) in [9u32, 3, 200, 3].iter().enumerate() {
//!     heap.insert(Tag(*t), PacketRef(i as u32));
//!     tcam.insert(Tag(*t), PacketRef(i as u32));
//! }
//! // Exact structures agree on the service order...
//! assert_eq!(heap.pop_min().unwrap().0, Tag(3));
//! assert_eq!(tcam.pop_min().unwrap().0, Tag(3));
//! // ...but pay very differently: the TCAM searches per retrieval.
//! assert!(tcam.stats().worst_op_accesses() >= 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binning;
mod calendar;
mod cam;
mod hash;
mod heap;
mod queue;
mod sorted_list;
mod tree;
mod veb;

pub use binning::BinningCbfq;
pub use calendar::{CalendarQueue, TwoDimCalendarQueue};
pub use cam::{BinaryCam, Tcam};
pub use hash::HashLookup;
pub use heap::BinaryHeapPq;
pub use queue::{LookupModel, MinTagQueue};
pub use sorted_list::SortedLinkedList;
pub use tree::{BinaryTreeQueue, MultiBitTreeQueue};
pub use veb::VebTree;

use tagsort::Tag;

/// Builds one instance of every Table I structure for `tag_bits`-wide
/// tags, in the table's row order.
pub fn all_methods(tag_bits: u32) -> Vec<Box<dyn MinTagQueue>> {
    vec![
        Box::new(SortedLinkedList::new(tag_bits)),
        Box::new(BinaryHeapPq::new(tag_bits)),
        Box::new(VebTree::new(tag_bits)),
        Box::new(CalendarQueue::new(tag_bits, 64)),
        Box::new(TwoDimCalendarQueue::new(tag_bits, 16)),
        Box::new(BinningCbfq::new(tag_bits, 64)),
        Box::new(BinaryCam::new(tag_bits)),
        Box::new(HashLookup::new(tag_bits, 64)),
        Box::new(Tcam::new(tag_bits)),
        Box::new(BinaryTreeQueue::new(tag_bits)),
        Box::new(MultiBitTreeQueue::new(tag_bits)),
    ]
}

/// Convenience: the subset of [`all_methods`] that maintains *exact*
/// service order (excludes the two aggregating structures).
pub fn exact_methods(tag_bits: u32) -> Vec<Box<dyn MinTagQueue>> {
    all_methods(tag_bits)
        .into_iter()
        .filter(|m| m.is_exact())
        .collect()
}

/// Reference service order for a batch of (tag, payload) inserts: sorted
/// by tag, first-come-first-served among duplicates.
pub fn reference_order(items: &[(Tag, tagsort::PacketRef)]) -> Vec<(Tag, tagsort::PacketRef)> {
    let mut indexed: Vec<(usize, (Tag, tagsort::PacketRef))> =
        items.iter().copied().enumerate().collect();
    indexed.sort_by_key(|&(i, (t, _))| (t, i));
    indexed.into_iter().map(|(_, x)| x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagsort::PacketRef;

    /// The headline cross-structure test: every exact method serves the
    /// same (tag, payload) sequence on a mixed workload with duplicates.
    #[test]
    fn all_exact_methods_agree_on_service_order() {
        let mut state = 0xfeed_beef_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let items: Vec<(Tag, PacketRef)> = (0..300)
            .map(|i| (Tag((next() % 4096) as u32), PacketRef(i)))
            .collect();
        let want = reference_order(&items);
        for mut m in exact_methods(12) {
            for &(t, p) in &items {
                m.insert(t, p);
            }
            assert_eq!(m.len(), items.len(), "{}", m.name());
            let got: Vec<(Tag, PacketRef)> = std::iter::from_fn(|| m.pop_min()).collect();
            assert_eq!(got, want, "{} order mismatch", m.name());
            assert_eq!(m.len(), 0);
        }
    }

    /// Interleaved insert/pop mix: exact methods match a BTreeMap oracle.
    #[test]
    fn exact_methods_match_oracle_under_interleaving() {
        use std::collections::BTreeMap;
        let mut state = 0x0dd_ba11u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let ops: Vec<Option<(Tag, PacketRef)>> = (0..400)
            .map(|i| {
                if next() % 3 == 0 {
                    None // pop
                } else {
                    Some((Tag((next() % 4096) as u32), PacketRef(i)))
                }
            })
            .collect();
        for mut m in exact_methods(12) {
            let mut oracle: BTreeMap<(u32, u64), PacketRef> = BTreeMap::new();
            let mut stamp = 0u64;
            for op in &ops {
                match op {
                    Some((t, p)) => {
                        m.insert(*t, *p);
                        oracle.insert((t.value(), stamp), *p);
                        stamp += 1;
                    }
                    None => {
                        let got = m.pop_min();
                        let want = oracle.iter().next().map(|(&(t, s), &p)| ((t, s), p));
                        match (got, want) {
                            (Some((gt, gp)), Some(((wt, ws), wp))) => {
                                assert_eq!((gt.value(), gp), (wt, wp), "{}", m.name());
                                oracle.remove(&(wt, ws));
                            }
                            (None, None) => {}
                            (g, w) => panic!("{}: {g:?} vs {w:?}", m.name()),
                        }
                    }
                }
            }
            assert_eq!(m.len(), oracle.len(), "{}", m.name());
        }
    }

    /// Table I's central claim, measured: the multi-bit tree's worst-case
    /// accesses per lookup beat every other exact method on a dense
    /// workload.
    #[test]
    fn multibit_tree_has_lowest_worst_case_accesses() {
        let items: Vec<(Tag, PacketRef)> = (0..512)
            .map(|i| (Tag((i * 7) % 4096), PacketRef(i)))
            .collect();
        let mut results = Vec::new();
        for mut m in exact_methods(12) {
            for &(t, p) in &items {
                m.insert(t, p);
            }
            while m.pop_min().is_some() {}
            results.push((m.name().to_string(), m.stats().worst_op_accesses()));
        }
        let tree_worst = results
            .iter()
            .find(|(n, _)| n.contains("multi-bit"))
            .expect("multi-bit tree present")
            .1;
        for (name, worst) in &results {
            if !name.contains("multi-bit") {
                assert!(
                    tree_worst <= *worst,
                    "multi-bit tree ({tree_worst}) lost to {name} ({worst})"
                );
            }
        }
    }

    #[test]
    fn aggregating_methods_are_flagged_inexact() {
        let inexact: Vec<String> = all_methods(12)
            .iter()
            .filter(|m| !m.is_exact())
            .map(|m| m.name().to_string())
            .collect();
        assert_eq!(inexact.len(), 2, "{inexact:?}");
        assert!(inexact.iter().any(|n| n.contains("binning")));
        assert!(inexact.iter().any(|n| n.contains("2-D")));
    }

    #[test]
    fn reference_order_is_fcfs_among_duplicates() {
        let items = vec![
            (Tag(5), PacketRef(0)),
            (Tag(3), PacketRef(1)),
            (Tag(5), PacketRef(2)),
        ];
        assert_eq!(
            reference_order(&items),
            vec![
                (Tag(3), PacketRef(1)),
                (Tag(5), PacketRef(0)),
                (Tag(5), PacketRef(2))
            ]
        );
    }
}
