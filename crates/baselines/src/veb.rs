//! The van Emde Boas tree — the classic O(log log U) priority queue [10].
//!
//! The paper cites van Emde Boas as the asymptotically strongest software
//! method but rules it out for hardware ("the van Emde Boas method is
//! unsuitable for implementation in hardware" [11]): the recursive
//! √U-way decomposition maps to pointer-chasing through irregular
//! memories, which is exactly what the access counts here exhibit.

use hwsim::AccessStats;
use tagsort::{PacketRef, Tag};

use crate::queue::{LookupModel, MinTagQueue, TagBuckets};

/// One recursive vEB node over a universe of `2^u_bits` values.
#[derive(Debug, Clone)]
struct VebNode {
    u_bits: u32,
    low_bits: u32,
    min: Option<u32>,
    max: Option<u32>,
    summary: Option<Box<VebNode>>,
    clusters: Vec<Option<Box<VebNode>>>,
}

impl VebNode {
    fn new(u_bits: u32) -> Self {
        let low_bits = u_bits / 2;
        Self {
            u_bits,
            low_bits,
            min: None,
            max: None,
            summary: None,
            clusters: Vec::new(),
        }
    }

    fn high(&self, x: u32) -> u32 {
        x >> self.low_bits
    }

    fn low(&self, x: u32) -> u32 {
        x & ((1 << self.low_bits) - 1)
    }

    fn index(&self, h: u32, l: u32) -> u32 {
        (h << self.low_bits) | l
    }

    fn cluster_mut(&mut self, h: u32) -> &mut VebNode {
        let high_count = 1usize << (self.u_bits - self.low_bits);
        if self.clusters.is_empty() {
            self.clusters.resize_with(high_count, || None);
        }
        self.clusters[h as usize].get_or_insert_with(|| Box::new(VebNode::new(self.low_bits)))
    }

    fn cluster_min(&self, h: u32) -> Option<u32> {
        self.clusters
            .get(h as usize)
            .and_then(|c| c.as_ref())
            .and_then(|c| c.min)
    }

    fn summary_mut(&mut self) -> &mut VebNode {
        let bits = self.u_bits - self.low_bits;
        self.summary
            .get_or_insert_with(|| Box::new(VebNode::new(bits)))
    }

    fn insert(&mut self, mut x: u32, stats: &mut AccessStats) {
        stats.record_write();
        match self.min {
            None => {
                self.min = Some(x);
                self.max = Some(x);
                return;
            }
            Some(m) if x == m => return, // presence structure: idempotent
            Some(m) if x < m => {
                self.min = Some(x);
                x = m; // push the old minimum down
            }
            Some(_) => {}
        }
        if self.u_bits > 1 {
            let (h, l) = (self.high(x), self.low(x));
            if self.cluster_min(h).is_none() {
                self.summary_mut().insert(h, stats);
                // Inserting into an empty cluster is O(1): only min/max.
                self.cluster_mut(h).insert(l, stats);
            } else {
                self.cluster_mut(h).insert(l, stats);
            }
        }
        if Some(x) > self.max {
            self.max = Some(x);
        }
    }

    fn delete(&mut self, mut x: u32, stats: &mut AccessStats) {
        stats.record_write();
        if self.min == self.max {
            if self.min == Some(x) {
                self.min = None;
                self.max = None;
            }
            return;
        }
        if self.u_bits == 1 {
            // Both 0 and 1 were present; the survivor is the other one.
            let other = 1 - x;
            self.min = Some(other);
            self.max = Some(other);
            return;
        }
        if Some(x) == self.min {
            // Pull the next value up to be the new minimum.
            let first = self
                .summary
                .as_ref()
                .and_then(|s| s.min)
                .expect("min != max implies a populated cluster");
            let l = self.cluster_min(first).expect("summary points at data");
            x = self.index(first, l);
            self.min = Some(x);
        }
        let (h, l) = (self.high(x), self.low(x));
        self.cluster_mut(h).delete(l, stats);
        if self.cluster_min(h).is_none() {
            self.summary_mut().delete(h, stats);
            if Some(x) == self.max {
                match self.summary.as_ref().and_then(|s| s.max) {
                    None => self.max = self.min,
                    Some(sm) => {
                        let cmax = self.clusters[sm as usize]
                            .as_ref()
                            .and_then(|c| c.max)
                            .expect("summary points at a populated cluster");
                        self.max = Some(self.index(sm, cmax));
                    }
                }
            }
        } else if Some(x) == self.max {
            let cm = self.clusters[h as usize]
                .as_ref()
                .and_then(|c| c.max)
                .expect("cluster populated");
            self.max = Some(self.index(h, cm));
        }
    }
}

/// The vEB-based min-tag queue (with FIFO payload buckets per value).
///
/// # Example
///
/// ```
/// use baselines::{MinTagQueue, VebTree};
/// use tagsort::{PacketRef, Tag};
///
/// let mut v = VebTree::new(12);
/// v.insert(Tag(100), PacketRef(0));
/// v.insert(Tag(7), PacketRef(1));
/// assert_eq!(v.pop_min(), Some((Tag(7), PacketRef(1))));
/// ```
#[derive(Debug, Clone)]
pub struct VebTree {
    tag_bits: u32,
    root: VebNode,
    buckets: TagBuckets,
    stats: AccessStats,
}

impl VebTree {
    /// Creates an empty tree over a `2^tag_bits` universe.
    ///
    /// # Panics
    ///
    /// Panics if `tag_bits` is 0 or above 24.
    pub fn new(tag_bits: u32) -> Self {
        assert!((1..=24).contains(&tag_bits), "tag width must be 1..=24");
        Self {
            tag_bits,
            root: VebNode::new(tag_bits),
            buckets: TagBuckets::new(1 << tag_bits),
            stats: AccessStats::new(),
        }
    }
}

impl MinTagQueue for VebTree {
    fn name(&self) -> &'static str {
        "van Emde Boas"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Sort
    }

    fn complexity(&self) -> &'static str {
        "O(log W)"
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        assert!(
            u64::from(tag.value()) < (1u64 << self.tag_bits),
            "tag too wide"
        );
        self.stats.begin_op();
        if self.buckets.push(tag, payload) {
            self.root.insert(tag.value(), &mut self.stats);
        } else {
            self.stats.record_write(); // duplicate: bucket append only
        }
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        let min = self.root.min?;
        self.stats.begin_op();
        self.stats.record_read();
        let tag = Tag(min);
        let (payload, now_absent) = self.buckets.pop(tag);
        if now_absent {
            self.root.delete(min, &mut self.stats);
        }
        Some((tag, payload))
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn matches_btreeset_under_random_mix() {
        let mut v = VebTree::new(12);
        let mut oracle: BTreeSet<u32> = BTreeSet::new();
        let mut state = 0xabcdefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..3000u32 {
            match next() % 3 {
                0 | 1 => {
                    let t = (next() % 4096) as u32;
                    if !oracle.contains(&t) {
                        // Keep the oracle simple: unique values only.
                        v.insert(Tag(t), PacketRef(i));
                        oracle.insert(t);
                    }
                }
                _ => {
                    let got = v.pop_min().map(|(t, _)| t.value());
                    let want = oracle.pop_first();
                    assert_eq!(got, want);
                }
            }
            assert_eq!(v.len(), oracle.len());
        }
    }

    #[test]
    fn duplicates_fifo() {
        let mut v = VebTree::new(12);
        v.insert(Tag(9), PacketRef(0));
        v.insert(Tag(9), PacketRef(1));
        assert_eq!(v.pop_min(), Some((Tag(9), PacketRef(0))));
        assert_eq!(v.pop_min(), Some((Tag(9), PacketRef(1))));
        assert_eq!(v.pop_min(), None);
    }

    #[test]
    fn access_cost_is_loglog_of_universe() {
        let mut v = VebTree::new(16);
        for i in 0..1000u32 {
            v.insert(Tag((i * 61) % 65536), PacketRef(i));
        }
        // Each op touches O(log W) = O(4) recursion levels, each a few
        // accesses — far below a heap's log n but above the multi-bit
        // tree's fixed 3.
        let worst = v.stats().worst_op_accesses();
        assert!((2..=16).contains(&(worst as usize)), "worst {worst}");
    }

    #[test]
    fn drain_is_sorted() {
        let mut v = VebTree::new(12);
        for t in [500u32, 3, 4095, 0, 77, 78, 76] {
            v.insert(Tag(t), PacketRef(t));
        }
        let got: Vec<u32> = std::iter::from_fn(|| v.pop_min())
            .map(|(t, _)| t.value())
            .collect();
        assert_eq!(got, vec![0, 3, 76, 77, 78, 500, 4095]);
    }
}
