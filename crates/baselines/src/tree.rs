//! Tree-based queues: the 1-bit binary tree and the paper's multi-bit
//! tree, both as adapters over the [`tagsort`] core.

use hwsim::AccessStats;
use tagsort::{Geometry, MultiBitTrie, PacketRef, Tag};

use crate::queue::{LookupModel, MinTagQueue, TagBuckets};

/// Shared adapter: a [`MultiBitTrie`] of any geometry plus FIFO payload
/// buckets, giving the Table I "tree" rows their measured access counts.
#[derive(Debug, Clone)]
struct TrieQueue {
    trie: MultiBitTrie,
    buckets: TagBuckets,
    stats: AccessStats,
}

impl TrieQueue {
    fn new(geometry: Geometry) -> Self {
        Self {
            trie: MultiBitTrie::new(geometry),
            buckets: TagBuckets::new(geometry.tag_space() as usize),
            stats: AccessStats::new(),
        }
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        self.stats.begin_op();
        // The lookup that positions the tag: one node read per level
        // (primary and backup paths run in parallel; paper §III-A).
        self.stats
            .record_batch(u64::from(self.trie.geometry().levels()));
        if self.buckets.push(tag, payload) {
            self.trie.insert_marker(tag);
            self.stats.record_write();
        }
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        let min = self.trie.min()?;
        self.stats.begin_op();
        // Serving the head is a fixed-cost read (sort model).
        self.stats.record_read();
        let (payload, now_absent) = self.buckets.pop(min);
        if now_absent {
            self.trie.remove_marker(min);
            self.stats.record_write();
        }
        Some((min, payload))
    }
}

/// A plain binary (1-bit-literal) tree: W node reads per lookup — the
/// Table I "tree" row that the multi-bit variant improves on.
///
/// # Example
///
/// ```
/// use baselines::{BinaryTreeQueue, MinTagQueue};
/// use tagsort::{PacketRef, Tag};
///
/// let mut t = BinaryTreeQueue::new(12);
/// t.insert(Tag(9), PacketRef(0));
/// t.reset_stats();
/// t.insert(Tag(3), PacketRef(1));
/// assert_eq!(t.stats().worst_op_accesses(), 13); // 12 levels + marker
/// ```
#[derive(Debug, Clone)]
pub struct BinaryTreeQueue {
    inner: TrieQueue,
}

impl BinaryTreeQueue {
    /// Creates a binary tree over `tag_bits`-wide tags.
    pub fn new(tag_bits: u32) -> Self {
        Self {
            inner: TrieQueue::new(Geometry::new(1, tag_bits)),
        }
    }
}

impl MinTagQueue for BinaryTreeQueue {
    fn name(&self) -> &'static str {
        "binary tree"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Sort
    }

    fn complexity(&self) -> &'static str {
        "O(W)"
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        self.inner.insert(tag, payload);
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        self.inner.pop_min()
    }

    fn len(&self) -> usize {
        self.inner.buckets.len()
    }

    fn stats(&self) -> &AccessStats {
        &self.inner.stats
    }

    fn reset_stats(&mut self) {
        self.inner.stats.reset();
    }
}

/// The paper's multi-bit tree: `W / log₂(BF)` node reads per lookup —
/// three for the fabricated 12-bit, 16-way geometry. The winning Table I
/// row.
#[derive(Debug, Clone)]
pub struct MultiBitTreeQueue {
    inner: TrieQueue,
}

impl MultiBitTreeQueue {
    /// Creates the tree with the fabricated geometry scaled to
    /// `tag_bits` (4-bit literals; `tag_bits` must be a multiple of 4).
    ///
    /// # Panics
    ///
    /// Panics if `tag_bits` is not a positive multiple of 4.
    pub fn new(tag_bits: u32) -> Self {
        assert!(
            tag_bits >= 4 && tag_bits.is_multiple_of(4),
            "tag width must be a positive multiple of 4"
        );
        Self {
            inner: TrieQueue::new(Geometry::new(4, tag_bits / 4)),
        }
    }

    /// Creates the tree with an explicit geometry (for the branching
    /// ablation experiment).
    pub fn with_geometry(geometry: Geometry) -> Self {
        Self {
            inner: TrieQueue::new(geometry),
        }
    }
}

impl MinTagQueue for MultiBitTreeQueue {
    fn name(&self) -> &'static str {
        "multi-bit tree"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Sort
    }

    fn complexity(&self) -> &'static str {
        "O(W / log2 BF)"
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        self.inner.insert(tag, payload);
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        self.inner.pop_min()
    }

    fn len(&self) -> usize {
        self.inner.buckets.len()
    }

    fn stats(&self) -> &AccessStats {
        &self.inner.stats
    }

    fn reset_stats(&mut self) {
        self.inner.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multibit_lookup_is_three_reads_at_paper_geometry() {
        let mut t = MultiBitTreeQueue::new(12);
        t.insert(Tag(100), PacketRef(0));
        t.reset_stats();
        t.insert(Tag(200), PacketRef(1));
        // 3 level reads + up to 3 marker writes.
        assert!(t.stats().worst_op_accesses() <= 6);
        t.reset_stats();
        t.insert(Tag(201), PacketRef(2));
        assert!(t.stats().worst_op_accesses() <= 4 + 1);
    }

    #[test]
    fn binary_tree_costs_w_reads() {
        let mut t = BinaryTreeQueue::new(12);
        t.insert(Tag(100), PacketRef(0));
        t.reset_stats();
        t.insert(Tag(4095), PacketRef(1));
        assert!(t.stats().worst_op_accesses() >= 12);
    }

    #[test]
    fn both_trees_sort_with_fcfs_duplicates() {
        for mut t in [
            Box::new(BinaryTreeQueue::new(12)) as Box<dyn MinTagQueue>,
            Box::new(MultiBitTreeQueue::new(12)),
        ] {
            t.insert(Tag(8), PacketRef(0));
            t.insert(Tag(8), PacketRef(1));
            t.insert(Tag(2), PacketRef(2));
            let got: Vec<_> = std::iter::from_fn(|| t.pop_min()).collect();
            assert_eq!(
                got,
                vec![
                    (Tag(2), PacketRef(2)),
                    (Tag(8), PacketRef(0)),
                    (Tag(8), PacketRef(1))
                ],
                "{}",
                t.name()
            );
        }
    }

    #[test]
    fn custom_geometry_for_ablation() {
        let mut t = MultiBitTreeQueue::with_geometry(Geometry::new(2, 6));
        t.insert(Tag(100), PacketRef(0));
        t.reset_stats();
        t.insert(Tag(50), PacketRef(1));
        // 6 levels with 2-bit literals.
        assert!(t.stats().worst_op_accesses() >= 6);
        assert_eq!(t.pop_min().unwrap().0, Tag(50));
    }
}
