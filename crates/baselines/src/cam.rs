//! Content-addressable memory models: binary CAM and TCAM.
//!
//! Table I's hardware alternatives. Both store tags associatively with
//! O(1) insertion; the cost is in *finding the minimum*: "techniques such
//! as hashing and content addressable memories cannot deliver the
//! smallest value from a set within a fixed and predictable time period"
//! (paper §II-B). The binary CAM probes candidate values one by one
//! (worst case 2^W lookups); the TCAM's masked matching supports a
//! bitwise binary descent (worst case W lookups).

use hwsim::AccessStats;
use tagsort::{PacketRef, Tag};

use crate::queue::{LookupModel, MinTagQueue, TagBuckets};

/// Shared associative store: per-value presence plus FIFO payloads; the
/// CAM flavours differ only in their minimum-search strategy.
#[derive(Debug, Clone)]
struct CamStore {
    tag_bits: u32,
    present: Vec<bool>,
    buckets: TagBuckets,
    stats: AccessStats,
}

impl CamStore {
    fn new(tag_bits: u32) -> Self {
        assert!((1..=24).contains(&tag_bits), "tag width must be 1..=24");
        Self {
            tag_bits,
            present: vec![false; 1 << tag_bits],
            buckets: TagBuckets::new(1 << tag_bits),
            stats: AccessStats::new(),
        }
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        assert!(
            u64::from(tag.value()) < (1u64 << self.tag_bits),
            "tag too wide"
        );
        self.stats.begin_op();
        // Associative insert: one write to a free CAM row.
        self.stats.record_write();
        if self.buckets.push(tag, payload) {
            self.present[tag.value() as usize] = true;
        }
    }

    fn remove_min(&mut self, min: u32) -> (Tag, PacketRef) {
        let tag = Tag(min);
        let (payload, now_absent) = self.buckets.pop(tag);
        if now_absent {
            self.present[min as usize] = false;
        }
        // Invalidating the CAM row is one write.
        self.stats.record_write();
        (tag, payload)
    }
}

/// Binary CAM: match-lines answer "is value v present?" in one cycle, so
/// the minimum search must iterate v = 0, 1, 2, … from the last known
/// floor. Worst case 2^W probes — the Table I row that rules it out.
///
/// # Example
///
/// ```
/// use baselines::{BinaryCam, MinTagQueue};
/// use tagsort::{PacketRef, Tag};
///
/// let mut cam = BinaryCam::new(12);
/// cam.insert(Tag(500), PacketRef(0));
/// assert_eq!(cam.pop_min(), Some((Tag(500), PacketRef(0))));
/// // Finding 500 cost ~500 probes:
/// assert!(cam.stats().worst_op_accesses() >= 500);
/// ```
#[derive(Debug, Clone)]
pub struct BinaryCam {
    store: CamStore,
    /// Values below this are known absent (tags depart in sorted order
    /// only when the caller pops, so this floor only helps, never lies).
    floor: u32,
}

impl BinaryCam {
    /// Creates an empty CAM over `2^tag_bits` values.
    pub fn new(tag_bits: u32) -> Self {
        Self {
            store: CamStore::new(tag_bits),
            floor: 0,
        }
    }
}

impl MinTagQueue for BinaryCam {
    fn name(&self) -> &'static str {
        "binary CAM"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Search
    }

    fn complexity(&self) -> &'static str {
        "O(2^W) probes"
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        self.store.insert(tag, payload);
        if tag.value() < self.floor {
            self.floor = tag.value();
        }
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        if self.store.buckets.len() == 0 {
            return None;
        }
        self.store.stats.begin_op();
        let mut v = self.floor;
        loop {
            self.store.stats.record_read(); // one match-line probe
            if self.store.present[v as usize] {
                break;
            }
            v += 1;
        }
        self.floor = v;
        Some(self.store.remove_min(v))
    }

    fn len(&self) -> usize {
        self.store.buckets.len()
    }

    fn stats(&self) -> &AccessStats {
        &self.store.stats
    }

    fn reset_stats(&mut self) {
        self.store.stats.reset();
    }
}

/// Ternary CAM: masked probes answer "is any value with prefix p
/// present?", enabling a bitwise binary descent to the minimum —
/// W probes, the `O(W)` Table I row.
#[derive(Debug, Clone)]
pub struct Tcam {
    store: CamStore,
    /// Presence counts per prefix, per level — the match-line aggregation
    /// a TCAM evaluates in parallel. `prefix_count[l]` has 2^(l+1)
    /// entries counting stored tags under each (l+1)-bit prefix.
    prefix_count: Vec<Vec<u32>>,
}

impl Tcam {
    /// Creates an empty TCAM over `2^tag_bits` values.
    pub fn new(tag_bits: u32) -> Self {
        let prefix_count = (0..tag_bits).map(|l| vec![0u32; 1 << (l + 1)]).collect();
        Self {
            store: CamStore::new(tag_bits),
            prefix_count,
        }
    }

    fn adjust(&mut self, tag: Tag, delta: i64) {
        let w = self.store.tag_bits;
        for l in 0..w {
            let prefix = tag.value() >> (w - l - 1);
            let c = &mut self.prefix_count[l as usize][prefix as usize];
            *c = (i64::from(*c) + delta) as u32;
        }
    }
}

impl MinTagQueue for Tcam {
    fn name(&self) -> &'static str {
        "TCAM"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Search
    }

    fn complexity(&self) -> &'static str {
        "O(W) probes"
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        self.store.insert(tag, payload);
        self.adjust(tag, 1);
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        if self.store.buckets.len() == 0 {
            return None;
        }
        self.store.stats.begin_op();
        // Bitwise descent: at each level probe "prefix·0 present?".
        let w = self.store.tag_bits;
        let mut prefix = 0u32;
        for l in 0..w {
            self.store.stats.record_read(); // one masked probe
            let zero_branch = prefix << 1;
            prefix = if self.prefix_count[l as usize][zero_branch as usize] > 0 {
                zero_branch
            } else {
                zero_branch | 1
            };
        }
        let tag = Tag(prefix);
        self.adjust(tag, -1);
        Some(self.store.remove_min(prefix))
    }

    fn len(&self) -> usize {
        self.store.buckets.len()
    }

    fn stats(&self) -> &AccessStats {
        &self.store.stats
    }

    fn reset_stats(&mut self) {
        self.store.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cam_iterative_search_counts_probes() {
        let mut cam = BinaryCam::new(12);
        cam.insert(Tag(1000), PacketRef(0));
        cam.insert(Tag(2000), PacketRef(1));
        cam.reset_stats();
        assert_eq!(cam.pop_min().unwrap().0, Tag(1000));
        let first = cam.stats().worst_op_accesses();
        assert!(first > 900, "expected ~1001 probes, got {first}");
        // The floor persists: the next search starts from 1000.
        cam.reset_stats();
        assert_eq!(cam.pop_min().unwrap().0, Tag(2000));
        assert!(cam.stats().worst_op_accesses() < 1100);
    }

    #[test]
    fn cam_floor_rewinds_on_smaller_insert() {
        let mut cam = BinaryCam::new(12);
        cam.insert(Tag(100), PacketRef(0));
        cam.pop_min().unwrap();
        cam.insert(Tag(50), PacketRef(1));
        assert_eq!(cam.pop_min().unwrap().0, Tag(50));
    }

    #[test]
    fn tcam_descent_is_exactly_w_probes() {
        let mut t = Tcam::new(12);
        for v in [4095u32, 17, 1024, 17] {
            t.insert(Tag(v), PacketRef(v));
        }
        t.reset_stats();
        assert_eq!(t.pop_min().unwrap().0, Tag(17));
        // One pop: W probes + the bucket/CAM writes.
        assert!(
            (12..=14).contains(&t.stats().worst_op_accesses()),
            "got {}",
            t.stats().worst_op_accesses()
        );
    }

    #[test]
    fn tcam_orders_exactly_with_duplicates() {
        let mut t = Tcam::new(12);
        t.insert(Tag(5), PacketRef(0));
        t.insert(Tag(5), PacketRef(1));
        t.insert(Tag(2), PacketRef(2));
        let got: Vec<_> = std::iter::from_fn(|| t.pop_min()).collect();
        assert_eq!(
            got,
            vec![
                (Tag(2), PacketRef(2)),
                (Tag(5), PacketRef(0)),
                (Tag(5), PacketRef(1))
            ]
        );
    }

    #[test]
    fn empty_pops() {
        assert_eq!(BinaryCam::new(8).pop_min(), None);
        assert_eq!(Tcam::new(8).pop_min(), None);
    }
}
