//! The common instrumented min-tag queue interface.

use hwsim::AccessStats;
use tagsort::{PacketRef, Tag};

/// Which of the paper's §II-C models a structure follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupModel {
    /// Sorting happens at insertion; the minimum is served in fixed time.
    Sort,
    /// Entries are stored as they arrive; retrieval searches for the
    /// minimum, so service time varies up to the worst case.
    Search,
}

impl std::fmt::Display for LookupModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LookupModel::Sort => "sort",
            LookupModel::Search => "search",
        })
    }
}

/// A priority structure holding (tag, packet reference) pairs and serving
/// the smallest tag, with memory-access instrumentation.
///
/// Every access a real implementation would make to its backing memory is
/// recorded in [`MinTagQueue::stats`]; one logical operation (insert or
/// pop) is one `op` in the counters, so `worst_op_accesses` is directly
/// the Table I column.
pub trait MinTagQueue {
    /// Row name as it appears in Table I.
    fn name(&self) -> &'static str;

    /// Sort vs search model (Table I column).
    fn model(&self) -> LookupModel;

    /// The closed-form worst-case lookup cost from Table I.
    fn complexity(&self) -> &'static str;

    /// Whether the structure preserves exact tag order (the aggregating
    /// structures do not — the paper's accuracy objection).
    fn is_exact(&self) -> bool {
        true
    }

    /// Stores a tag with its packet reference.
    fn insert(&mut self, tag: Tag, payload: PacketRef);

    /// Removes and returns the smallest stored tag (FCFS among equals for
    /// exact structures).
    fn pop_min(&mut self) -> Option<(Tag, PacketRef)>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether the structure is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Access instrumentation.
    fn stats(&self) -> &AccessStats;

    /// Clears the instrumentation counters.
    fn reset_stats(&mut self);
}

/// Per-tag-value FIFO payload buckets — shared by the structures that
/// natively store only tag *presence* (vEB, CAMs, trees, bins).
///
/// Keeps duplicates in arrival order so those structures still serve
/// first-come-first-served among equal tags.
#[derive(Debug, Clone)]
pub(crate) struct TagBuckets {
    queues: Vec<std::collections::VecDeque<PacketRef>>,
    len: usize,
}

impl TagBuckets {
    pub fn new(tag_space: usize) -> Self {
        Self {
            queues: vec![std::collections::VecDeque::new(); tag_space],
            len: 0,
        }
    }

    /// Appends a payload; returns `true` if the tag value was previously
    /// absent (the presence structure must be updated).
    pub fn push(&mut self, tag: Tag, payload: PacketRef) -> bool {
        let q = &mut self.queues[tag.value() as usize];
        let was_empty = q.is_empty();
        q.push_back(payload);
        self.len += 1;
        was_empty
    }

    /// Pops the oldest payload of `tag`; returns it and whether the tag
    /// value is now absent.
    pub fn pop(&mut self, tag: Tag) -> (PacketRef, bool) {
        let q = &mut self.queues[tag.value() as usize];
        let payload = q.pop_front().expect("pop from empty tag bucket");
        self.len -= 1;
        (payload, q.is_empty())
    }

    pub fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_display() {
        assert_eq!(LookupModel::Sort.to_string(), "sort");
        assert_eq!(LookupModel::Search.to_string(), "search");
    }

    #[test]
    fn buckets_fifo_and_presence() {
        let mut b = TagBuckets::new(16);
        assert!(b.push(Tag(3), PacketRef(1)));
        assert!(!b.push(Tag(3), PacketRef(2)));
        assert_eq!(b.len(), 2);
        let (p, empty) = b.pop(Tag(3));
        assert_eq!(p, PacketRef(1));
        assert!(!empty);
        let (p, empty) = b.pop(Tag(3));
        assert_eq!(p, PacketRef(2));
        assert!(empty);
        assert_eq!(b.len(), 0);
    }
}
