//! Calendar queues — the hardware-friendly bucket schemes of \[14\]–\[16\].

use hwsim::AccessStats;
use std::collections::VecDeque;
use tagsort::{PacketRef, Tag};

use crate::queue::{LookupModel, MinTagQueue};

/// A single-level calendar queue: the tag space is divided into equal
/// buckets; each bucket keeps a sorted list. Inserts pay the intra-bucket
/// scan; pops scan forward from the current bucket. O(1) on friendly
/// distributions, but — as the paper notes of \[14\], \[15\] — "limited in
/// their size and scalability": pathological distributions concentrate
/// everything in one bucket.
#[derive(Debug, Clone)]
pub struct CalendarQueue {
    tag_bits: u32,
    buckets: Vec<VecDeque<(Tag, u64, PacketRef)>>,
    bucket_span: u32,
    cursor: usize,
    stamp: u64,
    len: usize,
    stats: AccessStats,
}

impl CalendarQueue {
    /// Creates a calendar of `bucket_count` equal buckets over the
    /// `2^tag_bits` tag space.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is zero or exceeds the tag space.
    pub fn new(tag_bits: u32, bucket_count: u32) -> Self {
        let space = 1u64 << tag_bits;
        assert!(
            bucket_count > 0 && u64::from(bucket_count) <= space,
            "bucket count must be 1..=2^W"
        );
        Self {
            tag_bits,
            buckets: vec![VecDeque::new(); bucket_count as usize],
            bucket_span: (space / u64::from(bucket_count)) as u32,
            cursor: 0,
            stamp: 0,
            len: 0,
            stats: AccessStats::new(),
        }
    }

    fn bucket_of(&self, tag: Tag) -> usize {
        (tag.value() / self.bucket_span) as usize
    }
}

impl MinTagQueue for CalendarQueue {
    fn name(&self) -> &'static str {
        "calendar queue"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Sort
    }

    fn complexity(&self) -> &'static str {
        "O(1) avg, O(n) worst"
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        assert!(
            u64::from(tag.value()) < (1u64 << self.tag_bits),
            "tag too wide"
        );
        self.stats.begin_op();
        let b = self.bucket_of(tag);
        // Sorted insert within the bucket (stable: after equals).
        let bucket = &mut self.buckets[b];
        let mut pos = bucket.len();
        for (i, entry) in bucket.iter().enumerate() {
            self.stats.record_read();
            if entry.0 > tag {
                pos = i;
                break;
            }
        }
        bucket.insert(pos, (tag, self.stamp, payload));
        self.stamp += 1;
        self.stats.record_write();
        self.len += 1;
        if b < self.cursor {
            self.cursor = b;
        }
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        if self.len == 0 {
            return None;
        }
        self.stats.begin_op();
        // Scan forward from the cursor for the next non-empty bucket.
        loop {
            self.stats.record_read();
            if let Some((tag, _, payload)) = self.buckets[self.cursor].pop_front() {
                self.len -= 1;
                return Some((tag, payload));
            }
            self.cursor += 1;
            debug_assert!(self.cursor < self.buckets.len(), "len>0 but no bucket");
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

/// The 2-D calendar queue of \[16\] (and the LFVC scheme of \[17\]): a coarse
/// "day" level over fine "slot" FIFOs. Entries within one slot are *not*
/// sorted — the aggregation that gives O(1) behaviour but "produces a
/// degradation of the delay guarantees provided by the WFQ algorithm"
/// (paper §II-B). [`MinTagQueue::is_exact`] is therefore `false`.
#[derive(Debug, Clone)]
pub struct TwoDimCalendarQueue {
    tag_bits: u32,
    /// days × slots; each slot is a FIFO.
    slots: Vec<Vec<VecDeque<(Tag, PacketRef)>>>,
    days: u32,
    slots_per_day: u32,
    slot_span: u32,
    cursor: (usize, usize),
    len: usize,
    stats: AccessStats,
}

impl TwoDimCalendarQueue {
    /// Creates a 2-D calendar with `days` coarse divisions, each split
    /// into `days` slots (a square layout; slot span = 2^W / days²).
    ///
    /// # Panics
    ///
    /// Panics if `days`² exceeds the tag space or `days` is zero.
    pub fn new(tag_bits: u32, days: u32) -> Self {
        let space = 1u64 << tag_bits;
        assert!(
            days > 0 && u64::from(days) * u64::from(days) <= space,
            "days^2 must be 1..=2^W"
        );
        let slots_per_day = days;
        let slot_span = (space / (u64::from(days) * u64::from(slots_per_day))) as u32;
        Self {
            tag_bits,
            slots: vec![vec![VecDeque::new(); slots_per_day as usize]; days as usize],
            days,
            slots_per_day,
            slot_span,
            cursor: (0, 0),
            len: 0,
            stats: AccessStats::new(),
        }
    }

    fn position_of(&self, tag: Tag) -> (usize, usize) {
        let slot_index = tag.value() / self.slot_span;
        let day = slot_index / self.slots_per_day;
        let slot = slot_index % self.slots_per_day;
        (day as usize, slot as usize)
    }
}

impl MinTagQueue for TwoDimCalendarQueue {
    fn name(&self) -> &'static str {
        "2-D calendar queue (TCQ)"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Sort
    }

    fn complexity(&self) -> &'static str {
        "O(1) amortized"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        assert!(
            u64::from(tag.value()) < (1u64 << self.tag_bits),
            "tag too wide"
        );
        self.stats.begin_op();
        let pos = self.position_of(tag);
        // One write: FIFO append, no intra-slot sorting — the source of
        // both the O(1) cost and the inaccuracy.
        self.slots[pos.0][pos.1].push_back((tag, payload));
        self.stats.record_write();
        self.len += 1;
        if pos < self.cursor {
            self.cursor = pos;
        }
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        if self.len == 0 {
            return None;
        }
        self.stats.begin_op();
        loop {
            let (d, s) = self.cursor;
            self.stats.record_read();
            if let Some((tag, payload)) = self.slots[d][s].pop_front() {
                self.len -= 1;
                return Some((tag, payload));
            }
            self.cursor = if s + 1 < self.slots_per_day as usize {
                (d, s + 1)
            } else {
                (d + 1, 0)
            };
            debug_assert!(self.cursor.0 < self.days as usize, "len>0 but no slot");
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_sorts_exactly() {
        let mut c = CalendarQueue::new(12, 64);
        for t in [4000u32, 5, 70, 65, 5] {
            c.insert(Tag(t), PacketRef(t));
        }
        let got: Vec<u32> = std::iter::from_fn(|| c.pop_min())
            .map(|(t, _)| t.value())
            .collect();
        assert_eq!(got, vec![5, 5, 65, 70, 4000]);
    }

    #[test]
    fn calendar_degrades_when_one_bucket_concentrates() {
        let mut c = CalendarQueue::new(12, 64);
        // All tags inside bucket 0 (span 64): inserts scan the bucket.
        for i in 0..50u32 {
            c.insert(Tag(i % 64), PacketRef(i));
        }
        assert!(
            c.stats().worst_op_accesses() >= 40,
            "worst {}",
            c.stats().worst_op_accesses()
        );
    }

    #[test]
    fn tcq_is_fast_but_reorders_within_slots() {
        // Slot span = 4096/256 = 16: tags 3 and 9 share slot 0.
        let mut q = TwoDimCalendarQueue::new(12, 16);
        q.insert(Tag(9), PacketRef(0));
        q.insert(Tag(3), PacketRef(1));
        // FIFO within the slot: 9 (inserted first) comes out before 3 —
        // the delay-guarantee degradation the paper describes.
        assert_eq!(q.pop_min(), Some((Tag(9), PacketRef(0))));
        assert_eq!(q.pop_min(), Some((Tag(3), PacketRef(1))));
        // But every op was O(1) in accesses.
        assert!(q.stats().worst_op_accesses() <= 2);
    }

    #[test]
    fn tcq_is_accurate_across_slots() {
        let mut q = TwoDimCalendarQueue::new(12, 16);
        q.insert(Tag(100), PacketRef(0));
        q.insert(Tag(20), PacketRef(1));
        q.insert(Tag(3000), PacketRef(2));
        let got: Vec<u32> = std::iter::from_fn(|| q.pop_min())
            .map(|(t, _)| t.value())
            .collect();
        assert_eq!(got, vec![20, 100, 3000]);
    }

    #[test]
    fn cursor_rewinds_for_earlier_inserts() {
        let mut c = CalendarQueue::new(12, 64);
        c.insert(Tag(4000), PacketRef(0));
        assert_eq!(c.pop_min().unwrap().0, Tag(4000));
        c.insert(Tag(5), PacketRef(1));
        assert_eq!(c.pop_min().unwrap().0, Tag(5));
        let mut q = TwoDimCalendarQueue::new(12, 16);
        q.insert(Tag(4000), PacketRef(0));
        assert_eq!(q.pop_min().unwrap().0, Tag(4000));
        q.insert(Tag(5), PacketRef(1));
        assert_eq!(q.pop_min().unwrap().0, Tag(5));
    }
}
