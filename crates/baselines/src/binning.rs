//! The CBFQ "binning" technique [12].
//!
//! Bins aggregate ranges of tag values; retrieval scans for the lowest
//! non-empty bin and serves it FIFO. The paper's §II-B verdict: "this
//! method is unsatisfactory because it aggregates values together in
//! groups and is inherently inaccurate" — visible here as
//! [`MinTagQueue::is_exact`] returning `false`.

use hwsim::AccessStats;
use std::collections::VecDeque;
use tagsort::{PacketRef, Tag};

use crate::queue::{LookupModel, MinTagQueue};

/// Range-binned tag store: `bin_count` equal bins over the tag space,
/// each a FIFO.
#[derive(Debug, Clone)]
pub struct BinningCbfq {
    tag_bits: u32,
    bins: Vec<VecDeque<(Tag, PacketRef)>>,
    bin_span: u32,
    len: usize,
    stats: AccessStats,
}

impl BinningCbfq {
    /// Creates `bin_count` bins over the `2^tag_bits` tag space.
    ///
    /// # Panics
    ///
    /// Panics if `bin_count` is zero or exceeds the tag space.
    pub fn new(tag_bits: u32, bin_count: u32) -> Self {
        let space = 1u64 << tag_bits;
        assert!(
            bin_count > 0 && u64::from(bin_count) <= space,
            "bin count must be 1..=2^W"
        );
        Self {
            tag_bits,
            bins: vec![VecDeque::new(); bin_count as usize],
            bin_span: (space / u64::from(bin_count)) as u32,
            len: 0,
            stats: AccessStats::new(),
        }
    }

    /// The number of tag values each bin aggregates — the granularity of
    /// the inaccuracy.
    pub fn bin_span(&self) -> u32 {
        self.bin_span
    }
}

impl MinTagQueue for BinningCbfq {
    fn name(&self) -> &'static str {
        "binning (CBFQ)"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Search
    }

    fn complexity(&self) -> &'static str {
        "O(bins)"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        assert!(
            u64::from(tag.value()) < (1u64 << self.tag_bits),
            "tag too wide"
        );
        self.stats.begin_op();
        let b = (tag.value() / self.bin_span) as usize;
        self.bins[b].push_back((tag, payload));
        self.stats.record_write();
        self.len += 1;
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        if self.len == 0 {
            return None;
        }
        self.stats.begin_op();
        // Search model: every retrieval scans from bin 0 (tags may have
        // arrived below the last-served bin at any time).
        for b in 0..self.bins.len() {
            self.stats.record_read();
            if let Some(entry) = self.bins[b].pop_front() {
                self.len -= 1;
                return Some(entry);
            }
        }
        unreachable!("len > 0 but all bins empty")
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_aggregates_within_a_bin() {
        // Span 64: tags 10 and 5 share bin 0 and come out FIFO, not
        // sorted — the paper's inaccuracy objection.
        let mut b = BinningCbfq::new(12, 64);
        assert_eq!(b.bin_span(), 64);
        b.insert(Tag(10), PacketRef(0));
        b.insert(Tag(5), PacketRef(1));
        assert_eq!(b.pop_min(), Some((Tag(10), PacketRef(0))));
        assert_eq!(b.pop_min(), Some((Tag(5), PacketRef(1))));
    }

    #[test]
    fn binning_orders_across_bins() {
        let mut b = BinningCbfq::new(12, 64);
        b.insert(Tag(4000), PacketRef(0));
        b.insert(Tag(100), PacketRef(1));
        assert_eq!(b.pop_min().unwrap().0, Tag(100));
        assert_eq!(b.pop_min().unwrap().0, Tag(4000));
    }

    #[test]
    fn worst_case_is_the_bin_count() {
        let mut b = BinningCbfq::new(12, 64);
        b.insert(Tag(4095), PacketRef(0)); // last bin
        b.reset_stats();
        b.pop_min().unwrap();
        assert_eq!(b.stats().worst_op_accesses(), 64);
    }

    #[test]
    fn empty_pop() {
        assert_eq!(BinningCbfq::new(12, 16).pop_min(), None);
    }
}
