//! The hashing option the paper analyzes and excludes (§II-D).
//!
//! "The option of a hash solution has not been included for comparison.
//! The variables associated with such an implementation include the hash
//! function itself, the size of table compared to the number of tags it
//! must store, collision resolution and an iterative policy to find the
//! smallest value. ... it is likely that the worst case performance
//! would be worse than O(2^W)."
//!
//! This module builds exactly that strawman so the claim can be
//! *measured*: an associative hash table with chaining, O(1 + chain)
//! insertion, and a minimum search that — like the binary CAM — must
//! probe candidate values upward from a floor, paying a hash *and* a
//! chain walk per probe. The measured worst case lands above the binary
//! CAM's, as the paper predicted.

use hwsim::AccessStats;
use tagsort::{PacketRef, Tag};

use crate::queue::{LookupModel, MinTagQueue, TagBuckets};

/// Hash-table tag store with iterative minimum search.
///
/// # Example
///
/// ```
/// use baselines::{HashLookup, MinTagQueue};
/// use tagsort::{PacketRef, Tag};
///
/// let mut h = HashLookup::new(12, 64);
/// h.insert(Tag(900), PacketRef(0));
/// h.insert(Tag(30), PacketRef(1));
/// assert_eq!(h.pop_min(), Some((Tag(30), PacketRef(1))));
/// ```
#[derive(Debug, Clone)]
pub struct HashLookup {
    tag_bits: u32,
    /// Chained buckets of stored tag values (presence; duplicates via
    /// `TagBuckets`).
    table: Vec<Vec<u32>>,
    buckets: TagBuckets,
    /// Values below this are known absent.
    floor: u32,
    stats: AccessStats,
}

impl HashLookup {
    /// Creates a table of `slots` chains over `2^tag_bits` values.
    ///
    /// # Panics
    ///
    /// Panics if `tag_bits` is outside 1..=24 or `slots` is zero.
    pub fn new(tag_bits: u32, slots: usize) -> Self {
        assert!((1..=24).contains(&tag_bits), "tag width must be 1..=24");
        assert!(slots > 0, "table needs at least one slot");
        Self {
            tag_bits,
            table: vec![Vec::new(); slots],
            buckets: TagBuckets::new(1 << tag_bits),
            floor: 0,
            stats: AccessStats::new(),
        }
    }

    /// Fibonacci-style multiplicative hash — any fixed function works;
    /// the worst case comes from the probe loop, not the mixer.
    fn slot(&self, value: u32) -> usize {
        (value.wrapping_mul(2654435761) as usize) % self.table.len()
    }

    /// Membership probe: one hash access plus one access per chain node.
    fn contains(&mut self, value: u32) -> bool {
        let s = self.slot(value);
        self.stats.record_read(); // bucket fetch
        for &v in &self.table[s] {
            if v == value {
                return true;
            }
            self.stats.record_read(); // chain walk
        }
        false
    }
}

impl MinTagQueue for HashLookup {
    fn name(&self) -> &'static str {
        "hashing (excluded by paper)"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Search
    }

    fn complexity(&self) -> &'static str {
        "> O(2^W) worst"
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        assert!(
            u64::from(tag.value()) < (1u64 << self.tag_bits),
            "tag too wide"
        );
        self.stats.begin_op();
        if self.buckets.push(tag, payload) {
            let s = self.slot(tag.value());
            self.stats.record_write();
            self.table[s].push(tag.value());
        } else {
            self.stats.record_write(); // duplicate rides the side bucket
        }
        if tag.value() < self.floor {
            self.floor = tag.value();
        }
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        if self.buckets.len() == 0 {
            return None;
        }
        self.stats.begin_op();
        // Iterative search from the floor: each candidate costs a hash
        // probe plus its collision chain — the paper's "worse than
        // O(2^W)" accounting.
        let mut v = self.floor;
        while !self.contains(v) {
            v += 1;
        }
        self.floor = v;
        let tag = Tag(v);
        let (payload, now_absent) = self.buckets.pop(tag);
        if now_absent {
            let s = self.slot(v);
            self.stats.record_write();
            self.table[s].retain(|&x| x != v);
        }
        Some((tag, payload))
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_exactly_with_fcfs_duplicates() {
        let mut h = HashLookup::new(12, 32);
        h.insert(Tag(9), PacketRef(0));
        h.insert(Tag(2), PacketRef(1));
        h.insert(Tag(9), PacketRef(2));
        let got: Vec<_> = std::iter::from_fn(|| h.pop_min()).collect();
        assert_eq!(
            got,
            vec![
                (Tag(2), PacketRef(1)),
                (Tag(9), PacketRef(0)),
                (Tag(9), PacketRef(2))
            ]
        );
    }

    #[test]
    fn worst_case_exceeds_the_binary_cam() {
        use crate::cam::BinaryCam;
        // One tag at the top of the range: both structures probe the
        // whole value space, but the hash pays chain walks on top.
        let mut h = HashLookup::new(12, 16); // heavily loaded chains
        let mut c = BinaryCam::new(12);
        for v in (0..4096u32).step_by(97) {
            h.insert(Tag(v), PacketRef(v));
            c.insert(Tag(v), PacketRef(v));
        }
        // Pop everything; compare worst retrieval costs.
        h.reset_stats();
        c.reset_stats();
        while h.pop_min().is_some() {}
        while c.pop_min().is_some() {}
        assert!(
            h.stats().worst_op_accesses() > c.stats().worst_op_accesses(),
            "hash {} should exceed CAM {}",
            h.stats().worst_op_accesses(),
            c.stats().worst_op_accesses()
        );
    }

    #[test]
    fn floor_rewinds_on_smaller_insert() {
        let mut h = HashLookup::new(12, 8);
        h.insert(Tag(100), PacketRef(0));
        h.pop_min().unwrap();
        h.insert(Tag(40), PacketRef(1));
        assert_eq!(h.pop_min().unwrap().0, Tag(40));
        assert_eq!(h.pop_min(), None);
    }
}
