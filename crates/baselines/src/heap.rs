//! The binary heap — Table I's O(log n) software queue.

use hwsim::AccessStats;
use tagsort::{PacketRef, Tag};

use crate::queue::{LookupModel, MinTagQueue};

/// An array-backed binary min-heap with explicit access counting: each
/// element read or write during sift-up/down is one memory access, which
/// is how "heap methods are generally limited to O(log n) performance"
/// (paper §II-B) shows up in the measurements.
///
/// Entries carry an insertion stamp so equal tags stay FCFS.
#[derive(Debug, Clone)]
pub struct BinaryHeapPq {
    tag_bits: u32,
    heap: Vec<(Tag, u64, PacketRef)>,
    stamp: u64,
    stats: AccessStats,
}

impl BinaryHeapPq {
    /// Creates an empty heap for `tag_bits`-wide tags.
    pub fn new(tag_bits: u32) -> Self {
        Self {
            tag_bits,
            heap: Vec::new(),
            stamp: 0,
            stats: AccessStats::new(),
        }
    }

    fn key(&self, i: usize) -> (Tag, u64) {
        (self.heap[i].0, self.heap[i].1)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            self.stats.record_read();
            if self.key(parent) <= self.key(i) {
                break;
            }
            self.heap.swap(i, parent);
            self.stats.record_write();
            self.stats.record_write();
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() {
                self.stats.record_read();
                if self.key(l) < self.key(smallest) {
                    smallest = l;
                }
            }
            if r < self.heap.len() {
                self.stats.record_read();
                if self.key(r) < self.key(smallest) {
                    smallest = r;
                }
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            self.stats.record_write();
            self.stats.record_write();
            i = smallest;
        }
    }
}

impl MinTagQueue for BinaryHeapPq {
    fn name(&self) -> &'static str {
        "binary heap"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Sort
    }

    fn complexity(&self) -> &'static str {
        "O(log n)"
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        assert!(
            u64::from(tag.value()) < (1u64 << self.tag_bits),
            "tag too wide"
        );
        self.stats.begin_op();
        self.heap.push((tag, self.stamp, payload));
        self.stamp += 1;
        self.stats.record_write();
        self.sift_up(self.heap.len() - 1);
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        if self.heap.is_empty() {
            return None;
        }
        self.stats.begin_op();
        self.stats.record_read();
        let n = self.heap.len();
        self.heap.swap(0, n - 1);
        let (tag, _, payload) = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.stats.record_write();
            self.sift_down(0);
        }
        Some((tag, payload))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_orders_with_fcfs_ties() {
        let mut h = BinaryHeapPq::new(12);
        h.insert(Tag(7), PacketRef(0));
        h.insert(Tag(7), PacketRef(1));
        h.insert(Tag(2), PacketRef(2));
        h.insert(Tag(7), PacketRef(3));
        let got: Vec<_> = std::iter::from_fn(|| h.pop_min()).collect();
        assert_eq!(
            got,
            vec![
                (Tag(2), PacketRef(2)),
                (Tag(7), PacketRef(0)),
                (Tag(7), PacketRef(1)),
                (Tag(7), PacketRef(3)),
            ]
        );
    }

    #[test]
    fn cost_is_logarithmic() {
        let mut h = BinaryHeapPq::new(12);
        for i in (0..1024u32).rev() {
            h.insert(Tag(i % 4096), PacketRef(i));
        }
        h.reset_stats();
        h.insert(Tag(0), PacketRef(9999)); // sifts all the way up
        let worst = h.stats().worst_op_accesses();
        // log2(1024) = 10 levels; each costs a handful of accesses.
        assert!((10..=40).contains(&(worst as usize)), "worst {worst}");
    }

    #[test]
    fn empty_pop() {
        let mut h = BinaryHeapPq::new(12);
        assert_eq!(h.pop_min(), None);
        assert!(h.is_empty());
    }
}
