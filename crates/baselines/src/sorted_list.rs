//! The software sorted linked list — Table I's O(n) baseline.

use hwsim::AccessStats;
use tagsort::{PacketRef, Tag};

use crate::queue::{LookupModel, MinTagQueue};

/// A singly linked list kept in tag order, as a software router would
/// implement it: inserting scans from the head, one memory access per
/// node visited.
///
/// # Example
///
/// ```
/// use baselines::{MinTagQueue, SortedLinkedList};
/// use tagsort::{PacketRef, Tag};
///
/// let mut l = SortedLinkedList::new(12);
/// l.insert(Tag(30), PacketRef(0));
/// l.insert(Tag(10), PacketRef(1));
/// assert_eq!(l.pop_min(), Some((Tag(10), PacketRef(1))));
/// ```
#[derive(Debug, Clone)]
pub struct SortedLinkedList {
    tag_bits: u32,
    // Arena-based singly linked list: (tag, payload, next).
    nodes: Vec<(Tag, PacketRef, Option<usize>)>,
    head: Option<usize>,
    free: Vec<usize>,
    len: usize,
    stats: AccessStats,
}

impl SortedLinkedList {
    /// Creates an empty list for `tag_bits`-wide tags.
    pub fn new(tag_bits: u32) -> Self {
        Self {
            tag_bits,
            nodes: Vec::new(),
            head: None,
            free: Vec::new(),
            len: 0,
            stats: AccessStats::new(),
        }
    }
}

impl MinTagQueue for SortedLinkedList {
    fn name(&self) -> &'static str {
        "sorted linked list"
    }

    fn model(&self) -> LookupModel {
        LookupModel::Sort
    }

    fn complexity(&self) -> &'static str {
        "O(n)"
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) {
        assert!(
            u64::from(tag.value()) < (1u64 << self.tag_bits),
            "tag too wide"
        );
        self.stats.begin_op();
        // Scan for the last node with tag <= new tag (FCFS among equals).
        let mut prev: Option<usize> = None;
        let mut cursor = self.head;
        while let Some(i) = cursor {
            self.stats.record_read();
            if self.nodes[i].0 > tag {
                break;
            }
            prev = Some(i);
            cursor = self.nodes[i].2;
        }
        let next = match prev {
            Some(p) => self.nodes[p].2,
            None => self.head,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = (tag, payload, next);
                i
            }
            None => {
                self.nodes.push((tag, payload, next));
                self.nodes.len() - 1
            }
        };
        self.stats.record_write();
        match prev {
            Some(p) => {
                self.nodes[p].2 = Some(idx);
                self.stats.record_write();
            }
            None => self.head = Some(idx),
        }
        self.len += 1;
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        let head = self.head?;
        self.stats.begin_op();
        self.stats.record_read();
        let (tag, payload, next) = self.nodes[head];
        self.head = next;
        self.free.push(head);
        self.len -= 1;
        Some((tag, payload))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_is_fcfs() {
        let mut l = SortedLinkedList::new(12);
        l.insert(Tag(5), PacketRef(0));
        l.insert(Tag(1), PacketRef(1));
        l.insert(Tag(5), PacketRef(2));
        l.insert(Tag(3), PacketRef(3));
        let got: Vec<_> = std::iter::from_fn(|| l.pop_min()).collect();
        assert_eq!(
            got,
            vec![
                (Tag(1), PacketRef(1)),
                (Tag(3), PacketRef(3)),
                (Tag(5), PacketRef(0)),
                (Tag(5), PacketRef(2)),
            ]
        );
    }

    #[test]
    fn insert_cost_grows_linearly() {
        let mut l = SortedLinkedList::new(12);
        for i in 0..100u32 {
            l.insert(Tag(i), PacketRef(i));
        }
        // Inserting at the tail scans all 100 nodes.
        l.reset_stats();
        l.insert(Tag(4000), PacketRef(999));
        assert!(l.stats().worst_op_accesses() >= 100);
        // Pop is O(1).
        l.reset_stats();
        l.pop_min();
        assert!(l.stats().worst_op_accesses() <= 2);
    }

    #[test]
    fn freed_nodes_are_reused() {
        let mut l = SortedLinkedList::new(12);
        for i in 0..10u32 {
            l.insert(Tag(i), PacketRef(i));
        }
        for _ in 0..10 {
            l.pop_min();
        }
        let arena = l.nodes.len();
        for i in 0..10u32 {
            l.insert(Tag(i), PacketRef(i));
        }
        assert_eq!(l.nodes.len(), arena, "arena should not grow");
        assert_eq!(l.len(), 10);
    }
}
