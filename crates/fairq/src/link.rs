//! Non-preemptive output-link simulation.

use traffic::{Packet, Time};

use crate::scheduler::Scheduler;

/// One served packet with its transmission window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Departure {
    /// The packet served.
    pub packet: Packet,
    /// Transmission start.
    pub start: Time,
    /// Transmission end (the departure/finish time compared against GPS).
    pub finish: Time,
}

impl Departure {
    /// Queueing + transmission delay experienced by the packet.
    pub fn delay(&self) -> Time {
        self.finish - self.packet.arrival
    }
}

/// Drives a [`Scheduler`] over an arrival trace on a fixed-rate link.
///
/// The link is non-preemptive and work-conserving: whenever it is idle
/// and the scheduler holds packets, the scheduler picks one and the link
/// transmits it back to back.
///
/// # Example
///
/// ```
/// use fairq::{Fifo, LinkSim};
/// use traffic::{FlowId, Packet, Time};
///
/// let trace = vec![
///     Packet { flow: FlowId(0), size_bytes: 125, arrival: Time(0.0), seq: 0 },
///     Packet { flow: FlowId(0), size_bytes: 125, arrival: Time(0.0), seq: 1 },
/// ];
/// let deps = LinkSim::new(1e6, Fifo::new()).run(&trace);
/// assert_eq!(deps.len(), 2);
/// assert_eq!(deps[1].finish, Time(0.002)); // two 1000-bit packets at 1 Mb/s
/// ```
#[derive(Debug)]
pub struct LinkSim<S> {
    rate_bps: f64,
    scheduler: S,
}

impl<S: Scheduler> LinkSim<S> {
    /// Creates a link of `rate_bps` driven by `scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(rate_bps: f64, scheduler: S) -> Self {
        assert!(
            rate_bps > 0.0 && rate_bps.is_finite(),
            "rate must be positive and finite"
        );
        Self {
            rate_bps,
            scheduler,
        }
    }

    /// Runs the full trace to completion and returns every departure in
    /// service order.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time, or if the
    /// scheduler violates work conservation or loses packets.
    pub fn run(&mut self, trace: &[Packet]) -> Vec<Departure> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival time"
        );
        let mut out = Vec::with_capacity(trace.len());
        let mut now = Time::ZERO;
        let mut next_arrival = 0usize;
        loop {
            while next_arrival < trace.len() && trace[next_arrival].arrival <= now {
                self.scheduler.on_arrival(trace[next_arrival]);
                next_arrival += 1;
            }
            match self.scheduler.select(now) {
                Some(pkt) => {
                    let start = now;
                    let finish = now + pkt.service_time(self.rate_bps);
                    out.push(Departure {
                        packet: pkt,
                        start,
                        finish,
                    });
                    now = finish;
                }
                None => {
                    assert_eq!(
                        self.scheduler.backlog(),
                        0,
                        "{} is not work-conserving",
                        self.scheduler.name()
                    );
                    if next_arrival < trace.len() {
                        now = trace[next_arrival].arrival;
                    } else {
                        break;
                    }
                }
            }
        }
        assert_eq!(out.len(), trace.len(), "scheduler lost packets");
        out
    }

    /// The scheduler, for post-run inspection.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Fifo;
    use crate::timestamp::Wfq;
    use traffic::{FlowId, FlowSpec};

    fn pkt(seq: u64, flow: u32, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(at),
            seq,
        }
    }

    #[test]
    fn back_to_back_service_when_backlogged() {
        let trace = vec![
            pkt(0, 0, 0.0, 125),
            pkt(1, 0, 0.0, 125),
            pkt(2, 0, 0.0, 125),
        ];
        let deps = LinkSim::new(1e6, Fifo::new()).run(&trace);
        assert_eq!(deps[0].start, Time(0.0));
        assert_eq!(deps[1].start, deps[0].finish);
        assert_eq!(deps[2].start, deps[1].finish);
    }

    #[test]
    fn idle_gaps_jump_to_next_arrival() {
        let trace = vec![pkt(0, 0, 0.0, 125), pkt(1, 0, 5.0, 125)];
        let deps = LinkSim::new(1e6, Fifo::new()).run(&trace);
        assert_eq!(deps[1].start, Time(5.0));
    }

    #[test]
    fn arrivals_during_transmission_wait_for_completion() {
        // Packet 1 arrives while packet 0 is on the wire; a later, more
        // urgent packet cannot preempt.
        let flows = vec![
            FlowSpec::new(FlowId(0), 1.0, 1e6),
            FlowSpec::new(FlowId(1), 100.0, 1e6),
        ];
        let trace = vec![pkt(0, 0, 0.0, 1250), pkt(1, 1, 0.001, 125)];
        let deps = LinkSim::new(1e6, Wfq::new(&flows, 1e6)).run(&trace);
        assert_eq!(deps[0].packet.seq, 0);
        assert_eq!(deps[1].start, deps[0].finish, "non-preemptive");
    }

    #[test]
    fn delay_accounts_queueing_and_transmission() {
        let trace = vec![pkt(0, 0, 0.0, 125), pkt(1, 0, 0.0, 125)];
        let deps = LinkSim::new(1e6, Fifo::new()).run(&trace);
        assert!((deps[1].delay().seconds() - 0.002).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let trace = vec![pkt(0, 0, 1.0, 125), pkt(1, 0, 0.0, 125)];
        let _ = LinkSim::new(1e6, Fifo::new()).run(&trace);
    }
}
