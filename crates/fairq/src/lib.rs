//! Fair-queueing scheduling algorithms and baselines.
//!
//! The sort/retrieve circuit of the paper exists to serve a *family* of
//! fair-queueing algorithms ("the tag sorting architecture ... can
//! operate with any of the family of fair queueing algorithms that
//! requires finishing tag timestamps to be sorted", §I-B). This crate
//! implements that family, plus the round-robin schedulers the paper
//! compares against and the GPS fluid model they all approximate:
//!
//! * [`GpsVirtualClock`] — the incremental GPS virtual-time tracker of
//!   paper eq. (1) and reference \[8\]: the WFQ tag computation circuit's
//!   algorithm, exposed for the `scheduler` crate to pair with the
//!   sorter.
//! * [`gps_finish_times`] — the exact fluid GPS reference, used to
//!   verify the PGPS delay bound ("WFQ ... approximates GPS within one
//!   packet transmission time regardless of the arrival patterns").
//! * [`Scheduler`] implementations: [`Wfq`] (PGPS), [`Wf2q`], [`Wf2qPlus`],
//!   [`Scfq`], [`Sfq`], [`Fbfq`], the round-robin family [`Wrr`],
//!   [`Drr`], [`Mdrr`], the stratified scheme [`StratifiedRr`] the paper
//!   contrasts against (ref. \[11\]), plus a [`Fifo`] baseline.
//! * [`LinkSim`] — a non-preemptive output link that drives any scheduler
//!   over a packet trace, and [`metrics`] to analyze the departures.
//!
//! # Example
//!
//! ```
//! use fairq::{LinkSim, Wfq, metrics};
//! use traffic::{FlowId, FlowSpec, SizeDist, generate};
//!
//! let flows = vec![
//!     FlowSpec::new(FlowId(0), 3.0, 600_000.0).size(SizeDist::Fixed(500)),
//!     FlowSpec::new(FlowId(1), 1.0, 600_000.0).size(SizeDist::Fixed(500)),
//! ];
//! let trace = generate(&flows, 1.0, 7);
//! let link_rate = 800_000.0; // oversubscribed: weights decide shares
//! let departures = LinkSim::new(link_rate, Wfq::new(&flows, link_rate)).run(&trace);
//! // While both flows are backlogged (the first second), flow 0
//! // (weight 3) receives about three times flow 1's bandwidth.
//! let mut bytes = [0u64; 2];
//! for d in departures.iter().filter(|d| d.finish <= traffic::Time(1.0)) {
//!     bytes[d.packet.flow.0 as usize] += u64::from(d.packet.size_bytes);
//! }
//! let ratio = bytes[0] as f64 / bytes[1] as f64;
//! assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
//! let report = metrics::analyze(&flows, &trace, &departures);
//! assert!(report[0].mean_delay_s < report[1].mean_delay_s);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gps;
mod hierarchy;
mod link;
pub mod metrics;
mod network;
pub mod rank;
mod rr;
mod scheduler;
mod stratified;
mod timestamp;
mod virtual_time;

pub use gps::gps_finish_times;
pub use hierarchy::{Cbq, ClassMap, HierarchicalWf2q};
pub use link::{Departure, LinkSim};
pub use network::{end_to_end_delays, pg_end_to_end_bound, NetworkSim};
pub use rank::{
    AnyPolicy, FifoPlusRank, HierarchicalWfqRank, LeakyBucketRank, RankPolicy, SrptRank, StfqRank,
    StrictPriorityRank, WfqRank,
};
pub use rr::{Drr, Mdrr, Wrr};
pub use scheduler::{Fifo, Scheduler};
pub use stratified::{Fbfq, StratifiedRr};
pub use timestamp::{Scfq, Sfq, Wf2q, Wf2qPlus, Wfq};
pub use virtual_time::{GpsVirtualClock, VirtualTime};
