//! Timestamp-based fair queueing: WFQ, WF²Q, WF²Q+, SCFQ, and SFQ.
//!
//! All five follow the same shape — tag packets with virtual start/finish
//! times on arrival, serve by tag order — and differ in how virtual time
//! is tracked and which tag orders service. They are exactly the family
//! the paper's sort/retrieve circuit accelerates.

use std::collections::{BTreeSet, VecDeque};

use traffic::{FlowSpec, Packet, Time};

use crate::scheduler::Scheduler;
use crate::virtual_time::{GpsVirtualClock, VirtualTime};

/// A queued packet with its virtual start and finishing tags.
#[derive(Debug, Clone, Copy)]
struct Tagged {
    pkt: Packet,
    start: VirtualTime,
    finish: VirtualTime,
}

/// Per-flow FIFO queues with an index of head-of-line finishing tags.
///
/// Within one flow both tags are non-decreasing, so only head-of-line
/// packets ever compete for service — the index holds exactly those.
#[derive(Debug, Clone)]
struct FlowQueues {
    queues: Vec<VecDeque<Tagged>>,
    /// Head-of-line packets keyed by (finish, flow): iteration order is
    /// the WFQ service order; ties broken by flow id for determinism.
    hol_by_finish: BTreeSet<(VirtualTime, u32)>,
    backlog: usize,
}

impl FlowQueues {
    fn new(flows: usize) -> Self {
        Self {
            queues: vec![VecDeque::new(); flows],
            hol_by_finish: BTreeSet::new(),
            backlog: 0,
        }
    }

    fn push(&mut self, flow: usize, t: Tagged) {
        if self.queues[flow].is_empty() {
            self.hol_by_finish.insert((t.finish, flow as u32));
        }
        self.queues[flow].push_back(t);
        self.backlog += 1;
    }

    /// Removes and returns flow's head-of-line packet, maintaining the
    /// index.
    fn pop(&mut self, flow: usize) -> Tagged {
        let t = self.queues[flow].pop_front().expect("pop from empty flow");
        self.hol_by_finish.remove(&(t.finish, flow as u32));
        if let Some(next) = self.queues[flow].front() {
            self.hol_by_finish.insert((next.finish, flow as u32));
        }
        self.backlog -= 1;
        t
    }

    /// Flow holding the smallest head-of-line finishing tag.
    fn min_finish_flow(&self) -> Option<usize> {
        self.hol_by_finish.iter().next().map(|&(_, f)| f as usize)
    }

    /// Flow with the smallest finishing tag among heads whose start tag
    /// is at or below `v` (WF²Q eligibility); `None` if nothing is
    /// eligible. The comparison carries a relative tolerance: a packet
    /// whose GPS service starts exactly "now" is eligible, and the
    /// incremental virtual-time integration must not lose that to
    /// floating-point rounding.
    fn min_finish_eligible(&self, v: VirtualTime) -> Option<usize> {
        let v_eps = VirtualTime(v.0 + v.0.abs() * 1e-9 + 1e-9);
        self.hol_by_finish
            .iter()
            .map(|&(_, f)| f as usize)
            .find(|&f| self.queues[f].front().is_some_and(|t| t.start <= v_eps))
    }

    /// Smallest head-of-line *start* tag (WF²Q+ virtual-time floor).
    fn min_hol_start(&self) -> Option<VirtualTime> {
        self.hol_by_finish
            .iter()
            .filter_map(|&(_, f)| self.queues[f as usize].front())
            .map(|t| t.start)
            .min()
    }
}

fn weights_of(flows: &[FlowSpec]) -> Vec<f64> {
    let mut weights = vec![0.0; flows.len()];
    for f in flows {
        let idx = f.id.0 as usize;
        assert!(
            idx < flows.len() && weights[idx] == 0.0,
            "flow ids must be dense and unique"
        );
        weights[idx] = f.weight;
    }
    weights
}

/// Weighted fair queueing (PGPS): tags from the exact GPS virtual clock,
/// service in increasing finishing-tag order — the algorithm the paper's
/// scheduler implements in hardware.
///
/// # Example
///
/// ```
/// use fairq::{Scheduler, Wfq};
/// use traffic::{FlowId, FlowSpec, Packet, Time};
///
/// let flows = [
///     FlowSpec::new(FlowId(0), 1.0, 1e6),
///     FlowSpec::new(FlowId(1), 1.0, 1e6),
/// ];
/// let mut wfq = Wfq::new(&flows, 1e6);
/// wfq.on_arrival(Packet { flow: FlowId(0), size_bytes: 1500, arrival: Time(0.0), seq: 0 });
/// wfq.on_arrival(Packet { flow: FlowId(1), size_bytes: 40, arrival: Time(0.0), seq: 1 });
/// // The small packet's finishing tag is smaller: it goes first.
/// assert_eq!(wfq.select(Time(0.0)).unwrap().seq, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Wfq {
    clock: GpsVirtualClock,
    queues: FlowQueues,
}

impl Wfq {
    /// Creates a WFQ scheduler for `flows` on a link of `rate_bps`.
    pub fn new(flows: &[FlowSpec], rate_bps: f64) -> Self {
        let weights = weights_of(flows);
        Self {
            clock: GpsVirtualClock::new(&weights, rate_bps),
            queues: FlowQueues::new(flows.len()),
        }
    }

    /// The finishing tag that was assigned to the most recent arrival —
    /// what the hardware forwards to the sort/retrieve circuit.
    pub fn virtual_clock(&self) -> &GpsVirtualClock {
        &self.clock
    }
}

impl Scheduler for Wfq {
    fn name(&self) -> &'static str {
        "WFQ"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let (start, finish) = self
            .clock
            .on_arrival(pkt.flow, pkt.size_bits(), pkt.arrival);
        self.queues
            .push(pkt.flow.0 as usize, Tagged { pkt, start, finish });
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        let flow = self.queues.min_finish_flow()?;
        Some(self.queues.pop(flow).pkt)
    }

    fn backlog(&self) -> usize {
        self.queues.backlog
    }
}

/// Worst-case fair weighted fair queueing (WF²Q): WFQ restricted to
/// packets whose GPS service has already started, removing PGPS's
/// ahead-of-GPS unfairness at the cost the paper notes in §I-B.
#[derive(Debug, Clone)]
pub struct Wf2q {
    clock: GpsVirtualClock,
    queues: FlowQueues,
    fallbacks: u64,
}

impl Wf2q {
    /// Creates a WF²Q scheduler for `flows` on a link of `rate_bps`.
    pub fn new(flows: &[FlowSpec], rate_bps: f64) -> Self {
        let weights = weights_of(flows);
        Self {
            clock: GpsVirtualClock::new(&weights, rate_bps),
            queues: FlowQueues::new(flows.len()),
            fallbacks: 0,
        }
    }

    /// Times the eligibility rule found nothing and the scheduler fell
    /// back to plain min-finish (work conservation guard; stays 0 in a
    /// correct run).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

impl Scheduler for Wf2q {
    fn name(&self) -> &'static str {
        "WF2Q"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let (start, finish) = self
            .clock
            .on_arrival(pkt.flow, pkt.size_bits(), pkt.arrival);
        self.queues
            .push(pkt.flow.0 as usize, Tagged { pkt, start, finish });
    }

    fn select(&mut self, now: Time) -> Option<Packet> {
        if self.queues.backlog == 0 {
            return None;
        }
        self.clock.advance(now);
        let v = self.clock.virtual_now();
        let flow = match self.queues.min_finish_eligible(v) {
            Some(f) => f,
            None => {
                self.fallbacks += 1;
                self.queues.min_finish_flow()?
            }
        };
        Some(self.queues.pop(flow).pkt)
    }

    fn backlog(&self) -> usize {
        self.queues.backlog
    }
}

/// WF²Q+ — all of WF²Q's fairness with the cheap virtual clock of
/// Bennett & Zhang \[6\]: `V ← max(V + L/Φ, min HOL start)`.
#[derive(Debug, Clone)]
pub struct Wf2qPlus {
    weights: Vec<f64>,
    phi_total: f64,
    v: VirtualTime,
    last_finish: Vec<VirtualTime>,
    queues: FlowQueues,
    last_selected_bits: f64,
    fallbacks: u64,
}

impl Wf2qPlus {
    /// Creates a WF²Q+ scheduler for `flows` (link rate folds into the
    /// virtual clock's normalization and is not needed).
    pub fn new(flows: &[FlowSpec]) -> Self {
        let weights = weights_of(flows);
        let phi_total = weights.iter().sum();
        Self {
            last_finish: vec![VirtualTime::ZERO; weights.len()],
            queues: FlowQueues::new(weights.len()),
            weights,
            phi_total,
            v: VirtualTime::ZERO,
            last_selected_bits: 0.0,
            fallbacks: 0,
        }
    }

    /// See [`Wf2q::fallbacks`].
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

impl Scheduler for Wf2qPlus {
    fn name(&self) -> &'static str {
        "WF2Q+"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let idx = pkt.flow.0 as usize;
        let start = self.v.max(self.last_finish[idx]);
        let finish = VirtualTime(start.0 + pkt.size_bits() / self.weights[idx]);
        self.last_finish[idx] = finish;
        self.queues.push(idx, Tagged { pkt, start, finish });
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        if self.queues.backlog == 0 {
            return None;
        }
        // The WF²Q+ system-clock update at each service opportunity.
        let advanced = VirtualTime(self.v.0 + self.last_selected_bits / self.phi_total);
        let floor = self.queues.min_hol_start().unwrap_or(advanced);
        self.v = advanced.max(floor);
        let flow = match self.queues.min_finish_eligible(self.v) {
            Some(f) => f,
            None => {
                self.fallbacks += 1;
                self.queues.min_finish_flow()?
            }
        };
        let t = self.queues.pop(flow);
        self.last_selected_bits = t.pkt.size_bits();
        Some(t.pkt)
    }

    fn backlog(&self) -> usize {
        self.queues.backlog
    }
}

/// Self-clocked fair queueing: virtual time is simply the finishing tag
/// of the packet in service — no GPS simulation at all.
#[derive(Debug, Clone)]
pub struct Scfq {
    weights: Vec<f64>,
    v: VirtualTime,
    last_finish: Vec<VirtualTime>,
    queues: FlowQueues,
}

impl Scfq {
    /// Creates an SCFQ scheduler for `flows`.
    pub fn new(flows: &[FlowSpec]) -> Self {
        let weights = weights_of(flows);
        Self {
            last_finish: vec![VirtualTime::ZERO; weights.len()],
            queues: FlowQueues::new(weights.len()),
            weights,
            v: VirtualTime::ZERO,
        }
    }
}

impl Scheduler for Scfq {
    fn name(&self) -> &'static str {
        "SCFQ"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let idx = pkt.flow.0 as usize;
        let start = self.v.max(self.last_finish[idx]);
        let finish = VirtualTime(start.0 + pkt.size_bits() / self.weights[idx]);
        self.last_finish[idx] = finish;
        self.queues.push(idx, Tagged { pkt, start, finish });
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        let flow = self.queues.min_finish_flow()?;
        let t = self.queues.pop(flow);
        self.v = t.finish; // self-clocking
        Some(t.pkt)
    }

    fn backlog(&self) -> usize {
        self.queues.backlog
    }
}

/// Start-time fair queueing: like SCFQ but serves by *start* tag, with
/// virtual time self-clocked to the start tag of the packet in service.
#[derive(Debug, Clone)]
pub struct Sfq {
    weights: Vec<f64>,
    v: VirtualTime,
    last_finish: Vec<VirtualTime>,
    queues: Vec<VecDeque<Tagged>>,
    hol_by_start: BTreeSet<(VirtualTime, u32)>,
    backlog: usize,
}

impl Sfq {
    /// Creates an SFQ scheduler for `flows`.
    pub fn new(flows: &[FlowSpec]) -> Self {
        let weights = weights_of(flows);
        Self {
            last_finish: vec![VirtualTime::ZERO; weights.len()],
            queues: vec![VecDeque::new(); weights.len()],
            hol_by_start: BTreeSet::new(),
            backlog: 0,
            weights,
            v: VirtualTime::ZERO,
        }
    }
}

impl Scheduler for Sfq {
    fn name(&self) -> &'static str {
        "SFQ"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let idx = pkt.flow.0 as usize;
        let start = self.v.max(self.last_finish[idx]);
        let finish = VirtualTime(start.0 + pkt.size_bits() / self.weights[idx]);
        self.last_finish[idx] = finish;
        if self.queues[idx].is_empty() {
            self.hol_by_start.insert((start, pkt.flow.0));
        }
        self.queues[idx].push_back(Tagged { pkt, start, finish });
        self.backlog += 1;
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        let &(start, flow) = self.hol_by_start.iter().next()?;
        self.hol_by_start.remove(&(start, flow));
        let t = self.queues[flow as usize]
            .pop_front()
            .expect("indexed head exists");
        if let Some(next) = self.queues[flow as usize].front() {
            self.hol_by_start.insert((next.start, flow));
        }
        self.backlog -= 1;
        self.v = t.start; // self-clocked on start tags
        Some(t.pkt)
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::FlowId;

    fn flows2() -> Vec<FlowSpec> {
        vec![
            FlowSpec::new(FlowId(0), 1.0, 1e6),
            FlowSpec::new(FlowId(1), 1.0, 1e6),
        ]
    }

    fn pkt(seq: u64, flow: u32, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(at),
            seq,
        }
    }

    #[test]
    fn wfq_orders_by_finishing_tag_not_arrival() {
        let mut s = Wfq::new(&flows2(), 1e6);
        s.on_arrival(pkt(0, 0, 0.0, 1500)); // F = 12000
        s.on_arrival(pkt(1, 1, 0.0, 100)); // F = 800
        s.on_arrival(pkt(2, 1, 0.0, 100)); // F = 1600
        let order: Vec<u64> = std::iter::from_fn(|| s.select(Time(1.0)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn wfq_respects_per_flow_fifo() {
        let mut s = Wfq::new(&flows2(), 1e6);
        for i in 0..5 {
            s.on_arrival(pkt(i, 0, 0.0, 500));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.select(Time(1.0)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wf2q_defers_ahead_of_gps_packets() {
        // The classic WF²Q example shape: a heavy flow dumps a burst; its
        // later packets have start tags in the GPS future and must not
        // monopolize the link early even if their finish tags are small.
        let flows = vec![
            FlowSpec::new(FlowId(0), 10.0, 1e6),
            FlowSpec::new(FlowId(1), 1.0, 1e6),
        ];
        let mut wf2q = Wf2q::new(&flows, 1e6);
        for i in 0..5 {
            wf2q.on_arrival(pkt(i, 0, 0.0, 1000)); // burst on heavy flow
        }
        wf2q.on_arrival(pkt(5, 1, 0.0, 1000));
        // Serve at the times a 1 Mb/s link would finish each packet.
        let mut order = Vec::new();
        let mut now = Time(0.0);
        while let Some(p) = wf2q.select(now) {
            now = now + p.service_time(1e6);
            order.push(p.seq);
        }
        assert_eq!(wf2q.fallbacks(), 0, "eligibility rule must suffice");
        // WFQ would serve all five heavy packets first (tags 800..4000 vs
        // 8000). WF²Q interleaves: flow 1's packet is eligible from t=0
        // and must appear before the heavy flow's GPS-future packets.
        let pos_light = order.iter().position(|&s| s == 5).unwrap();
        assert!(
            pos_light < 5,
            "WF2Q must interleave the light flow, got {order:?}"
        );
        // WFQ on the same input serves the light packet last.
        let mut wfq = Wfq::new(&flows, 1e6);
        for i in 0..5 {
            wfq.on_arrival(pkt(i, 0, 0.0, 1000));
        }
        wfq.on_arrival(pkt(5, 1, 0.0, 1000));
        let wfq_order: Vec<u64> = std::iter::from_fn(|| wfq.select(Time(1.0)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(wfq_order.last(), Some(&5));
    }

    #[test]
    fn wf2q_plus_matches_wf2q_interleaving() {
        let flows = vec![
            FlowSpec::new(FlowId(0), 10.0, 1e6),
            FlowSpec::new(FlowId(1), 1.0, 1e6),
        ];
        let mut s = Wf2qPlus::new(&flows);
        for i in 0..5 {
            s.on_arrival(pkt(i, 0, 0.0, 1000));
        }
        s.on_arrival(pkt(5, 1, 0.0, 1000));
        let mut order = Vec::new();
        let mut now = Time(0.0);
        while let Some(p) = s.select(now) {
            now = now + p.service_time(1e6);
            order.push(p.seq);
        }
        let pos_light = order.iter().position(|&q| q == 5).unwrap();
        assert!(pos_light < 5, "WF2Q+ should interleave, got {order:?}");
    }

    #[test]
    fn scfq_tags_without_gps_clock() {
        let mut s = Scfq::new(&flows2());
        s.on_arrival(pkt(0, 0, 0.0, 1000)); // F = 8000
        s.on_arrival(pkt(1, 1, 0.0, 250)); // F = 2000
        assert_eq!(s.select(Time(0.0)).unwrap().seq, 1);
        // V jumped to 2000; a new arrival on flow 1 starts there.
        s.on_arrival(pkt(2, 1, 0.0, 250)); // F = 2000 + 2000
        assert_eq!(s.select(Time(0.0)).unwrap().seq, 2);
        assert_eq!(s.select(Time(0.0)).unwrap().seq, 0);
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn sfq_serves_by_start_tag() {
        let mut s = Sfq::new(&flows2());
        s.on_arrival(pkt(0, 0, 0.0, 1500)); // S=0, F=12000
        s.on_arrival(pkt(1, 0, 0.0, 100)); // S=12000
        s.on_arrival(pkt(2, 1, 0.0, 100)); // S=0, F=800
        let order: Vec<u64> = std::iter::from_fn(|| s.select(Time(0.0)))
            .map(|p| p.seq)
            .collect();
        // Ties at S=0 break by flow id (flow 0 first), then S=12000.
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn all_timestamp_schedulers_drain_completely() {
        let flows = flows2();
        let mk: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Wfq::new(&flows, 1e6)),
            Box::new(Wf2q::new(&flows, 1e6)),
            Box::new(Wf2qPlus::new(&flows)),
            Box::new(Scfq::new(&flows)),
            Box::new(Sfq::new(&flows)),
        ];
        for mut s in mk {
            for i in 0..20 {
                s.on_arrival(pkt(i, (i % 2) as u32, i as f64 * 1e-4, 200));
            }
            assert_eq!(s.backlog(), 20, "{}", s.name());
            let mut served = std::collections::BTreeSet::new();
            let mut now = Time(0.01);
            while let Some(p) = s.select(now) {
                now = now + p.service_time(1e6);
                assert!(served.insert(p.seq), "{}: duplicate service", s.name());
            }
            assert_eq!(served.len(), 20, "{}: lost packets", s.name());
            assert_eq!(s.backlog(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "dense and unique")]
    fn sparse_flow_ids_rejected() {
        let flows = vec![FlowSpec::new(FlowId(5), 1.0, 1e6)];
        let _ = Wfq::new(&flows, 1e6);
    }
}
