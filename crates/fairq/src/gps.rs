//! The exact GPS fluid reference model.
//!
//! GPS serves "an infinitesimally small amount of data ... from each
//! non-empty queue in turn" (paper §I-B) — unimplementable, but the
//! theoretical standard every fair-queueing algorithm is judged against.
//! This module computes, for a complete arrival trace, the exact fluid
//! finish time of every packet, by running the
//! [`GpsVirtualClock`](crate::GpsVirtualClock) over the arrivals and
//! inverting the recorded piecewise-linear V(t) at each packet's
//! finishing tag.

use traffic::{Packet, Time};

use crate::virtual_time::GpsVirtualClock;

/// Exact GPS finish time of each packet in `trace` (parallel array).
///
/// `weights[i]` is flow *i*'s GPS weight; flow ids must be dense indices
/// into it. The trace must be sorted by arrival time.
///
/// # Panics
///
/// Panics if a flow id is out of range or arrivals are out of order.
///
/// # Example
///
/// ```
/// use fairq::gps_finish_times;
/// use traffic::{FlowId, Packet, Time};
///
/// // Two equal flows sending one 1000-bit packet each at t=0 on a
/// // 1 Mb/s link: under fluid sharing both finish at t = 2 ms.
/// let trace = vec![
///     Packet { flow: FlowId(0), size_bytes: 125, arrival: Time(0.0), seq: 0 },
///     Packet { flow: FlowId(1), size_bytes: 125, arrival: Time(0.0), seq: 1 },
/// ];
/// let finish = gps_finish_times(&trace, &[1.0, 1.0], 1e6);
/// assert!((finish[0].seconds() - 0.002).abs() < 1e-9);
/// assert!((finish[1].seconds() - 0.002).abs() < 1e-9);
/// ```
pub fn gps_finish_times(trace: &[Packet], weights: &[f64], rate_bps: f64) -> Vec<Time> {
    let mut clock = GpsVirtualClock::new(weights, rate_bps).recording();
    let mut tags = Vec::with_capacity(trace.len());
    for pkt in trace {
        let (_, finish) = clock.on_arrival(pkt.flow, pkt.size_bits(), pkt.arrival);
        tags.push(finish);
    }
    clock.drain();
    tags.into_iter().map(|f| clock.real_time_of(f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::FlowId;

    fn pkt(seq: u64, flow: u32, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(at),
            seq,
        }
    }

    #[test]
    fn single_flow_is_plain_transmission() {
        // One flow alone: GPS == dedicated link.
        let trace = vec![pkt(0, 0, 0.0, 1250), pkt(1, 0, 0.0, 1250)];
        let f = gps_finish_times(&trace, &[1.0], 1e6);
        assert!((f[0].seconds() - 0.01).abs() < 1e-9);
        assert!((f[1].seconds() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn weights_divide_the_fluid() {
        // Flow 0 (weight 3) and flow 1 (weight 1) both backlogged: flow 0
        // gets 750 kb/s, flow 1 gets 250 kb/s.
        let trace = vec![pkt(0, 0, 0.0, 7500), pkt(1, 1, 0.0, 2500)];
        let f = gps_finish_times(&trace, &[3.0, 1.0], 1e6);
        // 60 kb at 750 kb/s = 80 ms; 20 kb at 250 kb/s = 80 ms.
        assert!((f[0].seconds() - 0.08).abs() < 1e-9, "{}", f[0]);
        assert!((f[1].seconds() - 0.08).abs() < 1e-9, "{}", f[1]);
    }

    #[test]
    fn early_finisher_frees_capacity() {
        // Equal weights; flow 0 sends 1000 bits, flow 1 sends 9000 bits.
        // Phase 1: both at 500 kb/s until flow 0 finishes at 2 ms.
        // Phase 2: flow 1 alone at 1 Mb/s: remaining 8000 bits in 8 ms.
        let trace = vec![pkt(0, 0, 0.0, 125), pkt(1, 1, 0.0, 1125)];
        let f = gps_finish_times(&trace, &[1.0, 1.0], 1e6);
        assert!((f[0].seconds() - 0.002).abs() < 1e-9, "{}", f[0]);
        assert!((f[1].seconds() - 0.010).abs() < 1e-9, "{}", f[1]);
    }

    #[test]
    fn idle_gaps_restart_cleanly() {
        let trace = vec![pkt(0, 0, 0.0, 125), pkt(1, 0, 1.0, 125)];
        let f = gps_finish_times(&trace, &[1.0], 1e6);
        assert!((f[0].seconds() - 0.001).abs() < 1e-9);
        assert!((f[1].seconds() - 1.001).abs() < 1e-9);
    }

    #[test]
    fn staggered_arrival_shares_remaining_capacity() {
        // Flow 0 starts alone at t=0 with 10000 bits; flow 1 arrives at
        // t=2ms with 4000 bits. Phase 1 (0..2ms): flow 0 alone sends
        // 2000 bits. Phase 2: both share 500 kb/s each. Flow 1 finishes
        // 4000 bits at t = 2ms + 8ms = 10ms; flow 0 has 8000 bits left at
        // phase-2 start, sends 4000 by t=10ms, then finishes the last
        // 4000 alone by t = 14ms.
        let trace = vec![pkt(0, 0, 0.0, 1250), pkt(1, 1, 0.002, 500)];
        let f = gps_finish_times(&trace, &[1.0, 1.0], 1e6);
        assert!((f[1].seconds() - 0.010).abs() < 1e-9, "{}", f[1]);
        assert!((f[0].seconds() - 0.014).abs() < 1e-9, "{}", f[0]);
    }

    #[test]
    fn gps_is_work_conserving() {
        // Total service time equals total bits / rate when continuously
        // backlogged, regardless of weights.
        let trace: Vec<Packet> = (0..20).map(|i| pkt(i, (i % 3) as u32, 0.0, 1000)).collect();
        let f = gps_finish_times(&trace, &[1.0, 2.0, 5.0], 1e6);
        let last = f.iter().map(|t| t.seconds()).fold(0.0, f64::max);
        let expect = 20.0 * 8000.0 / 1e6;
        assert!((last - expect).abs() < 1e-9, "{last} vs {expect}");
    }
}
