//! Post-run analysis: per-flow delays, throughput shares, fairness
//! indices, and the PGPS lag against the GPS fluid reference.

use traffic::{FlowSpec, Packet, Time};

use crate::gps::gps_finish_times;
use crate::link::Departure;

/// Per-flow service report.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMetrics {
    /// Flow index (dense ids).
    pub flow: u32,
    /// Packets served.
    pub packets: u64,
    /// Bytes served.
    pub bytes: u64,
    /// Mean queueing + transmission delay, seconds.
    pub mean_delay_s: f64,
    /// 99th-percentile delay, seconds.
    pub p99_delay_s: f64,
    /// Worst-case delay, seconds.
    pub max_delay_s: f64,
    /// Served throughput over the flow's active window, bits per second.
    pub throughput_bps: f64,
}

/// Builds per-flow metrics from a run.
///
/// Throughput is measured over the span from each flow's first arrival to
/// its last departure.
pub fn analyze(flows: &[FlowSpec], trace: &[Packet], departures: &[Departure]) -> Vec<FlowMetrics> {
    let n = flows.len();
    let mut delays: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut bytes = vec![0u64; n];
    let mut first_arrival = vec![f64::INFINITY; n];
    let mut last_finish = vec![0.0f64; n];
    for p in trace {
        let i = p.flow.0 as usize;
        first_arrival[i] = first_arrival[i].min(p.arrival.seconds());
    }
    for d in departures {
        let i = d.packet.flow.0 as usize;
        delays[i].push(d.delay().seconds());
        bytes[i] += u64::from(d.packet.size_bytes);
        last_finish[i] = last_finish[i].max(d.finish.seconds());
    }
    (0..n)
        .map(|i| {
            let mut ds = std::mem::take(&mut delays[i]);
            ds.sort_by(f64::total_cmp);
            let packets = ds.len() as u64;
            let mean = if ds.is_empty() {
                0.0
            } else {
                ds.iter().sum::<f64>() / ds.len() as f64
            };
            let p99 = percentile(&ds, 0.99);
            let max = ds.last().copied().unwrap_or(0.0);
            let span = last_finish[i] - first_arrival[i];
            let throughput = if span > 0.0 {
                bytes[i] as f64 * 8.0 / span
            } else {
                0.0
            };
            FlowMetrics {
                flow: i as u32,
                packets,
                bytes: bytes[i],
                mean_delay_s: mean,
                p99_delay_s: p99,
                max_delay_s: max,
                throughput_bps: throughput,
            }
        })
        .collect()
}

/// A rollup of per-flow reports into one summary — what a multi-port
/// frontend reports per shard, and what its ports sum into a line-card
/// total.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateMetrics {
    /// Flows represented (including idle ones).
    pub flows: usize,
    /// Total packets served.
    pub packets: u64,
    /// Total bytes served.
    pub bytes: u64,
    /// Packet-weighted mean delay, seconds.
    pub mean_delay_s: f64,
    /// The worst flow's 99th-percentile delay, seconds.
    pub worst_p99_delay_s: f64,
    /// The worst flow's worst-case delay, seconds.
    pub max_delay_s: f64,
    /// Summed per-flow throughput, bits per second.
    pub throughput_bps: f64,
    /// Jain's index of the active flows' throughputs (1.0 if none).
    pub jain_throughput: f64,
}

/// Rolls per-flow reports up into one [`AggregateMetrics`].
///
/// Means are packet-weighted, worst cases take the maximum, totals add.
/// The fairness index covers only flows that served traffic, so idle
/// flows on other ports don't read as unfairness.
///
/// # Example
///
/// ```
/// # use fairq::metrics::{aggregate, FlowMetrics};
/// let per_flow = vec![
///     FlowMetrics { flow: 0, packets: 3, bytes: 300, mean_delay_s: 0.1,
///                   p99_delay_s: 0.2, max_delay_s: 0.2, throughput_bps: 800.0 },
///     FlowMetrics { flow: 1, packets: 1, bytes: 100, mean_delay_s: 0.3,
///                   p99_delay_s: 0.4, max_delay_s: 0.5, throughput_bps: 800.0 },
/// ];
/// let agg = aggregate(&per_flow);
/// assert_eq!(agg.packets, 4);
/// assert!((agg.mean_delay_s - 0.15).abs() < 1e-12);
/// assert_eq!(agg.max_delay_s, 0.5);
/// assert!((agg.jain_throughput - 1.0).abs() < 1e-12);
/// ```
pub fn aggregate(per_flow: &[FlowMetrics]) -> AggregateMetrics {
    let packets: u64 = per_flow.iter().map(|m| m.packets).sum();
    let mean = if packets == 0 {
        0.0
    } else {
        per_flow
            .iter()
            .map(|m| m.mean_delay_s * m.packets as f64)
            .sum::<f64>()
            / packets as f64
    };
    let active: Vec<f64> = per_flow
        .iter()
        .filter(|m| m.packets > 0)
        .map(|m| m.throughput_bps)
        .collect();
    AggregateMetrics {
        flows: per_flow.len(),
        packets,
        bytes: per_flow.iter().map(|m| m.bytes).sum(),
        mean_delay_s: mean,
        worst_p99_delay_s: per_flow.iter().map(|m| m.p99_delay_s).fold(0.0, f64::max),
        max_delay_s: per_flow.iter().map(|m| m.max_delay_s).fold(0.0, f64::max),
        throughput_bps: per_flow.iter().map(|m| m.throughput_bps).sum(),
        jain_throughput: jain_index(&active),
    }
}

/// Value at quantile `q` of a sorted sample (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Jain's fairness index of weight-normalized shares: 1.0 is perfectly
/// fair, 1/n is maximally unfair.
///
/// # Example
///
/// ```
/// let even = fairq::metrics::jain_index(&[5.0, 5.0, 5.0]);
/// assert!((even - 1.0).abs() < 1e-12);
/// let skewed = fairq::metrics::jain_index(&[10.0, 0.0, 0.0]);
/// assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (shares.len() as f64 * sum_sq)
    }
}

/// A flow's guaranteed rate under GPS/WFQ: its weight share of the link,
/// `g_i = φ_i / Σφ · R`.
pub fn guaranteed_rate(flows: &[FlowSpec], flow: traffic::FlowId, link_bps: f64) -> f64 {
    let total: f64 = flows.iter().map(|f| f.weight).sum();
    let w = flows
        .iter()
        .find(|f| f.id == flow)
        .expect("flow present")
        .weight;
    w / total * link_bps
}

/// The single-node Parekh–Gallager worst-case delay bound for a
/// (σ, ρ)-shaped flow served by WFQ at guaranteed rate `g_bps` on a link
/// of `link_bps` with maximum packet size `lmax_bits`:
///
/// `D ≤ σ/g + L_max/R` (valid when ρ ≤ g).
///
/// This is the "worst case end-to-end queueing delay ... guaranteed for
/// all connections" the paper's §I-B invokes, in its one-hop form.
pub fn pgps_delay_bound(sigma_bits: f64, g_bps: f64, lmax_bits: f64, link_bps: f64) -> f64 {
    assert!(g_bps > 0.0 && link_bps > 0.0);
    sigma_bits / g_bps + lmax_bits / link_bps
}

/// The worst lateness of any packet relative to the GPS fluid reference:
/// `max_k (finish_sched(k) − finish_GPS(k))`, in seconds.
///
/// The PGPS theorem (Parekh–Gallager; the property the paper cites as
/// "WFQ ... approximates GPS within one packet transmission time") bounds
/// this by `L_max / R` for WFQ.
pub fn gps_lag(
    flows: &[FlowSpec],
    trace: &[Packet],
    departures: &[Departure],
    rate_bps: f64,
) -> f64 {
    let weights: Vec<f64> = {
        let mut w = vec![0.0; flows.len()];
        for f in flows {
            w[f.id.0 as usize] = f.weight;
        }
        w
    };
    let gps = gps_finish_times(trace, &weights, rate_bps);
    let finish_of: std::collections::HashMap<u64, Time> = departures
        .iter()
        .map(|d| (d.packet.seq, d.finish))
        .collect();
    trace
        .iter()
        .zip(&gps)
        .map(|(p, g)| finish_of[&p.seq].seconds() - g.seconds())
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSim;
    use crate::scheduler::Fifo;
    use crate::timestamp::Wfq;
    use traffic::{FlowId, SizeDist};

    fn pkt(seq: u64, flow: u32, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(at),
            seq,
        }
    }

    fn flows2() -> Vec<FlowSpec> {
        vec![
            FlowSpec::new(FlowId(0), 1.0, 1e6).size(SizeDist::Fixed(125)),
            FlowSpec::new(FlowId(1), 1.0, 1e6).size(SizeDist::Fixed(125)),
        ]
    }

    #[test]
    fn analyze_counts_and_delays() {
        let flows = flows2();
        let trace = vec![
            pkt(0, 0, 0.0, 125),
            pkt(1, 0, 0.0, 125),
            pkt(2, 1, 0.0, 125),
        ];
        let deps = LinkSim::new(1e6, Fifo::new()).run(&trace);
        let m = analyze(&flows, &trace, &deps);
        assert_eq!(m[0].packets, 2);
        assert_eq!(m[1].packets, 1);
        assert_eq!(m[0].bytes, 250);
        assert!(m[0].max_delay_s >= m[0].mean_delay_s);
        assert!(m[0].p99_delay_s <= m[0].max_delay_s);
    }

    #[test]
    fn aggregate_rolls_up_totals_and_worst_cases() {
        let flows = flows2();
        let trace = vec![
            pkt(0, 0, 0.0, 125),
            pkt(1, 0, 0.0, 125),
            pkt(2, 1, 0.0, 125),
        ];
        let deps = LinkSim::new(1e6, Fifo::new()).run(&trace);
        let per_flow = analyze(&flows, &trace, &deps);
        let agg = aggregate(&per_flow);
        assert_eq!(agg.flows, 2);
        assert_eq!(agg.packets, 3);
        assert_eq!(agg.bytes, 375);
        assert_eq!(
            agg.max_delay_s,
            per_flow.iter().map(|m| m.max_delay_s).fold(0.0, f64::max)
        );
        assert!(agg.worst_p99_delay_s <= agg.max_delay_s);
        assert!(agg.throughput_bps > 0.0);
        assert!(agg.jain_throughput > 0.0 && agg.jain_throughput <= 1.0);
        // Packet-weighted mean sits between the per-flow means.
        let lo = per_flow
            .iter()
            .map(|m| m.mean_delay_s)
            .fold(f64::INFINITY, f64::min);
        let hi = per_flow.iter().map(|m| m.mean_delay_s).fold(0.0, f64::max);
        assert!(agg.mean_delay_s >= lo && agg.mean_delay_s <= hi);
    }

    #[test]
    fn aggregate_of_idle_flows_is_zeroed() {
        let per_flow = analyze(&flows2(), &[], &[]);
        let agg = aggregate(&per_flow);
        assert_eq!(agg.packets, 0);
        assert_eq!(agg.mean_delay_s, 0.0);
        assert_eq!(agg.jain_throughput, 1.0, "no active flows: vacuously fair");
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(jain_index(&[9.0, 1.0]) < 0.7);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.99), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    /// The PGPS theorem, empirically: WFQ finishes every packet within
    /// one maximum packet transmission time of its GPS fluid finish.
    #[test]
    fn wfq_gps_lag_bounded_by_one_packet_time() {
        let flows = vec![
            FlowSpec::new(FlowId(0), 1.0, 1e6),
            FlowSpec::new(FlowId(1), 2.0, 1e6),
            FlowSpec::new(FlowId(2), 4.0, 1e6),
        ];
        // A bursty deterministic pattern with mixed sizes.
        let mut trace = Vec::new();
        let mut seq = 0;
        for k in 0..60 {
            let at = k as f64 * 0.0007;
            for f in 0..3u32 {
                if (k + f as usize).is_multiple_of(f as usize + 2) {
                    let bytes = 300 + ((k as u32 * 37 + f * 131) % 1200);
                    trace.push(pkt(seq, f, at, bytes));
                    seq += 1;
                }
            }
        }
        let rate = 1e6;
        let deps = LinkSim::new(rate, Wfq::new(&flows, rate)).run(&trace);
        let lag = gps_lag(&flows, &trace, &deps, rate);
        let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
        assert!(
            lag <= lmax / rate + 1e-9,
            "PGPS bound violated: lag {lag} > {}",
            lmax / rate
        );
    }

    /// The full Parekh–Gallager guarantee: a shaped flow's measured
    /// worst-case delay under WFQ stays below σ/g + Lmax/R no matter what
    /// the cross-traffic does.
    #[test]
    fn shaped_flow_meets_the_pg_delay_bound() {
        use traffic::TokenBucket;
        let rate = 1e6;
        let flows = vec![
            FlowSpec::new(FlowId(0), 1.0, 1e6), // the guaranteed flow
            FlowSpec::new(FlowId(1), 1.0, 1e6), // hostile cross-traffic
        ];
        // Flow 0: shaped bursts — 3 x 500 B every 50 ms (σ ≈ 12 kb,
        // ρ = 240 kb/s ≤ g = 500 kb/s).
        let mut trace = Vec::new();
        let mut seq = 0;
        for k in 0..40 {
            for j in 0..3 {
                trace.push(pkt(seq, 0, k as f64 * 0.05 + j as f64 * 1e-4, 500));
                seq += 1;
            }
        }
        // Flow 1: saturating 1500-byte packets.
        for k in 0..130 {
            trace.push(pkt(seq, 1, k as f64 * 0.015, 1500));
            seq += 1;
        }
        trace.sort_by_key(|p| p.arrival);
        for (i, p) in trace.iter_mut().enumerate() {
            p.seq = i as u64;
        }
        let g = guaranteed_rate(&flows, FlowId(0), rate);
        let bucket = TokenBucket::fit(&trace, FlowId(0), 240_000.0).unwrap();
        let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
        let bound = pgps_delay_bound(bucket.burst_bits(), g, lmax, rate);

        let deps = LinkSim::new(rate, Wfq::new(&flows, rate)).run(&trace);
        let measured = analyze(&flows, &trace, &deps)[0].max_delay_s;
        assert!(
            measured <= bound + 1e-9,
            "measured {measured} exceeds PG bound {bound}"
        );
        // And the bound is not vacuous: FIFO breaks it.
        let deps = LinkSim::new(rate, Fifo::new()).run(&trace);
        let fifo = analyze(&flows, &trace, &deps)[0].max_delay_s;
        assert!(fifo > bound, "FIFO {fifo} unexpectedly within {bound}");
    }

    #[test]
    fn fifo_violates_the_gps_bound_under_cross_traffic() {
        // Sanity check that the bound is not vacuous: FIFO lets a big
        // burst from one flow delay another far beyond Lmax/R.
        let flows = flows2();
        let mut trace = vec![];
        for i in 0..20 {
            trace.push(pkt(i, 0, 0.0, 1500)); // 20-packet burst
        }
        trace.push(pkt(20, 1, 0.0001, 125));
        trace.sort_by_key(|a| a.arrival);
        let rate = 1e6;
        let deps = LinkSim::new(rate, Fifo::new()).run(&trace);
        let lag = gps_lag(&flows, &trace, &deps, rate);
        let lmax = 1500.0 * 8.0;
        assert!(
            lag > lmax / rate,
            "expected FIFO to blow the bound, lag {lag}"
        );
    }
}
