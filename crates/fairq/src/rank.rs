//! Programmable rank policies: the PIFO view of the sorting circuit.
//!
//! Sivaraman et al.'s *Programmable Packet Scheduling at Line Rate*
//! observes that a push-in-first-out queue — exactly what the paper's
//! sort/retrieve circuit implements — expresses a whole family of
//! schedulers if only the **rank computation** is swapped: WFQ, STFQ,
//! SRPT, shaping, strict priority, and hierarchical schemes all reduce
//! to "compute a rank, push, pop the minimum". [`RankPolicy`] is that
//! swap point. The scheduler stack (`scheduler::HwScheduler` and both
//! sharded frontends) is generic over it, with [`WfqRank`] — the
//! paper's WFQ finishing-tag computation — as the default, so the
//! default pipeline is bit-for-bit the pre-policy behavior.
//!
//! A policy owns all per-flow scheduling state. The contract with the
//! scheduler is small:
//!
//! * [`RankPolicy::rank`] is called once per arriving packet, in
//!   arrival order, and returns the packet's rank (served ascending,
//!   FIFO among equal ranks after quantization). The call may update
//!   per-flow state (virtual clocks, last-finish tags, bucket levels).
//! * [`RankPolicy::on_service`] is called once per departing packet
//!   with the rank it was enqueued under — the hook start-time fair
//!   queueing needs to advance its virtual time.
//! * [`RankPolicy::rank_floor`] must never exceed any rank the policy
//!   will emit in the future. The scheduler rebases its quantizer there
//!   when the sorter drains (monotone policies only), restoring tag
//!   headroom exactly as the WFQ pipeline always has.
//! * [`RankPolicy::monotone`] says whether ranks track a non-decreasing
//!   virtual time. Bounded-domain policies (SRPT, strict priority)
//!   return `false`: their ranks revisit small values forever, so the
//!   quantizer must never rebase past them.
//!
//! Policies are built with the **prototype pattern**: a prototype value
//! carries configuration only (e.g. the hierarchical class count), and
//! [`RankPolicy::for_link`] stamps out the live instance for a concrete
//! link — the sharded frontends call it once per port with that port's
//! locally renumbered flows, exactly as they build one sorter per port.
//!
//! See `POLICIES.md` at the repository root for the cookbook: each
//! policy's rank formula, reference-model pseudocode, and example
//! `wfqsim --policy` invocations.

use traffic::{FlowId, FlowSpec, Packet, Time};

use crate::virtual_time::{GpsVirtualClock, VirtualTime};

/// A programmable rank computation over the sorting circuit.
///
/// See the [module docs](self) for the contract. Implementations also
/// serve as their own prototypes: a value built by `Default` (or a
/// configuring constructor such as
/// [`HierarchicalWfqRank::with_classes`]) carries configuration, and
/// [`RankPolicy::for_link`] derives the live per-link instance.
pub trait RankPolicy: std::fmt::Debug + Clone {
    /// Builds the live policy instance for a link: `flows` are the
    /// link's flows (dense ids starting at 0) and `link_rate_bps` its
    /// rate. Reads only this prototype's configuration, never its
    /// per-flow state.
    fn for_link(&self, flows: &[FlowSpec], link_rate_bps: f64) -> Self;

    /// Computes the rank of an arriving packet, updating per-flow
    /// state. Called once per packet, in arrival order.
    fn rank(&mut self, pkt: &Packet) -> VirtualTime;

    /// Notifies the policy that `pkt` — enqueued under `rank` — was
    /// served. Most policies ignore this; STFQ advances its virtual
    /// time here.
    fn on_service(&mut self, _pkt: &Packet, _rank: VirtualTime) {}

    /// Advances any internal real-time state to `now` without an
    /// arrival (the analogue of `GpsVirtualClock::advance`).
    fn advance(&mut self, _now: Time) {}

    /// A lower bound on every rank the policy will emit from now on.
    /// The scheduler rebases its quantizer here when the sorter drains
    /// (monotone policies only).
    fn rank_floor(&self) -> VirtualTime;

    /// Whether ranks track a non-decreasing virtual time. `false` for
    /// bounded-domain policies (SRPT, strict priority), whose ranks
    /// revisit small values forever; the scheduler then never rebases
    /// and requires eager marker cleanup.
    fn monotone(&self) -> bool {
        true
    }

    /// A sensible quantizer tick (rank units per tag tick) for this
    /// policy's rank domain on a link of `link_rate_bps` — what the CLI
    /// uses when no calibrated scale is supplied.
    fn tick_scale(&self, link_rate_bps: f64) -> f64;

    /// Stable lowercase policy name (`wfq`, `stfq`, ...), used in CLI
    /// flags and reports.
    fn name(&self) -> &'static str;

    /// The policy's mutable per-link state as checkpoint words (virtual
    /// clocks, last-finish tags, bucket levels — everything `rank`
    /// mutates). Configuration is *not* included: a restore builds the
    /// policy for the same link via [`RankPolicy::for_link`] first and
    /// then loads these words. Stateless policies return an empty
    /// vector, which is also the default.
    fn state_words(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores the state captured by [`RankPolicy::state_words`] into
    /// a policy built for the same link.
    ///
    /// # Panics
    ///
    /// Panics if the words do not match this policy's shape (wrong
    /// policy, or a different flow population).
    fn load_state_words(&mut self, words: &[u64]) {
        assert!(
            words.is_empty(),
            "{} carries no checkpoint state, got {} words",
            self.name(),
            words.len()
        );
    }

    /// The scheduling history a flow takes with it when it migrates off
    /// this link: the largest rank the policy has handed the flow so
    /// far, on this link's rank axis. Policies without per-flow history
    /// (the default) export the rank floor — the flow restarts at the
    /// destination as if freshly idle.
    fn flow_finish(&self, _flow: FlowId) -> VirtualTime {
        self.rank_floor()
    }

    /// Adopts a migrated-in flow: `finish` is the flow's exported
    /// history, already translated onto *this* link's rank axis (see
    /// `statesync::VClockXlat`). After adoption the flow's next rank
    /// must be ≥ `finish`, so its packets keep their relative order
    /// across the move. Policies without per-flow history ignore it.
    fn adopt_flow(&mut self, _flow: FlowId, _finish: VirtualTime) {}
}

/// Builds the dense per-flow weight vector the virtual clocks consume.
///
/// # Panics
///
/// Panics if flow ids are not dense and unique.
fn dense_weights(flows: &[FlowSpec]) -> Vec<f64> {
    let mut weights = vec![0.0; flows.len()];
    for f in flows {
        let idx = f.id.0 as usize;
        assert!(
            idx < flows.len() && weights[idx] == 0.0,
            "flow ids must be dense and unique"
        );
        weights[idx] = f.weight;
    }
    weights
}

/// Weighted fair queueing (PGPS) — the paper's policy and the default.
///
/// Rank = the GPS virtual finishing time of paper eq. (1):
/// `F = max(V(t), F_prev) + L / φ`, computed by [`GpsVirtualClock`].
/// The default scheduler pipeline with this policy is bit-for-bit the
/// pre-policy WFQ pipeline.
#[derive(Debug, Clone, Default)]
pub struct WfqRank {
    /// `None` in the prototype; the live clock after
    /// [`RankPolicy::for_link`].
    clock: Option<GpsVirtualClock>,
}

impl WfqRank {
    /// The live GPS virtual clock (read access for experiments).
    ///
    /// # Panics
    ///
    /// Panics on a prototype that was never built for a link.
    pub fn clock(&self) -> &GpsVirtualClock {
        self.clock.as_ref().expect("policy not built for a link")
    }

    fn clock_mut(&mut self) -> &mut GpsVirtualClock {
        self.clock.as_mut().expect("policy not built for a link")
    }
}

impl RankPolicy for WfqRank {
    fn for_link(&self, flows: &[FlowSpec], link_rate_bps: f64) -> Self {
        Self {
            clock: Some(GpsVirtualClock::new(&dense_weights(flows), link_rate_bps)),
        }
    }

    fn rank(&mut self, pkt: &Packet) -> VirtualTime {
        self.clock_mut()
            .on_arrival(pkt.flow, pkt.size_bits(), pkt.arrival)
            .1
    }

    fn advance(&mut self, now: Time) {
        self.clock_mut().advance(now);
    }

    fn rank_floor(&self) -> VirtualTime {
        self.clock().virtual_now()
    }

    fn tick_scale(&self, link_rate_bps: f64) -> f64 {
        link_rate_bps / 50_000.0
    }

    fn name(&self) -> &'static str {
        "wfq"
    }

    fn state_words(&self) -> Vec<u64> {
        self.clock().state_words()
    }

    fn load_state_words(&mut self, words: &[u64]) {
        self.clock_mut().load_state_words(words);
    }

    fn flow_finish(&self, flow: FlowId) -> VirtualTime {
        self.clock().last_finish_of(flow)
    }

    fn adopt_flow(&mut self, flow: FlowId, finish: VirtualTime) {
        let cur = self.clock().last_finish_of(flow);
        self.clock_mut().set_last_finish(flow, cur.max(finish));
    }
}

/// Start-time fair queueing (Goyal et al.): rank = the packet's virtual
/// **start** tag.
///
/// `S = max(V, F_prev(flow))`, `F(flow) = S + L / φ`, and the virtual
/// time `V` advances to the start tag of each packet as it is served —
/// no per-arrival GPS simulation, which is why STFQ is the rank
/// computation programmable hardware actually ships.
#[derive(Debug, Clone, Default)]
pub struct StfqRank {
    v: f64,
    weights: Vec<f64>,
    last_finish: Vec<f64>,
}

impl RankPolicy for StfqRank {
    fn for_link(&self, flows: &[FlowSpec], _link_rate_bps: f64) -> Self {
        let weights = dense_weights(flows);
        Self {
            v: 0.0,
            last_finish: vec![0.0; weights.len()],
            weights,
        }
    }

    fn rank(&mut self, pkt: &Packet) -> VirtualTime {
        let f = pkt.flow.0 as usize;
        let start = self.v.max(self.last_finish[f]);
        self.last_finish[f] = start + pkt.size_bits() / self.weights[f];
        VirtualTime(start)
    }

    fn on_service(&mut self, _pkt: &Packet, rank: VirtualTime) {
        self.v = self.v.max(rank.value());
    }

    fn rank_floor(&self) -> VirtualTime {
        VirtualTime(self.v)
    }

    fn tick_scale(&self, link_rate_bps: f64) -> f64 {
        link_rate_bps / 50_000.0
    }

    fn name(&self) -> &'static str {
        "stfq"
    }

    fn state_words(&self) -> Vec<u64> {
        let mut words = vec![self.v.to_bits(), self.last_finish.len() as u64];
        words.extend(self.last_finish.iter().map(|f| f.to_bits()));
        words
    }

    fn load_state_words(&mut self, words: &[u64]) {
        let n = self.last_finish.len();
        assert!(
            words.len() == 2 + n && words[1] as usize == n,
            "stfq state for {} flows cannot restore into {n}",
            words.get(1).copied().unwrap_or(0),
        );
        self.v = f64::from_bits(words[0]);
        for (slot, &w) in self.last_finish.iter_mut().zip(&words[2..]) {
            *slot = f64::from_bits(w);
        }
    }

    fn flow_finish(&self, flow: FlowId) -> VirtualTime {
        VirtualTime(self.last_finish[flow.0 as usize])
    }

    fn adopt_flow(&mut self, flow: FlowId, finish: VirtualTime) {
        let f = flow.0 as usize;
        self.last_finish[f] = self.last_finish[f].max(finish.value());
    }
}

/// Shortest remaining processing time: rank = the packet's size in
/// bits, so the shortest queued packet is always served next
/// (size-based preemption happens between packets, not within one).
///
/// A bounded-domain policy: ranks revisit small values forever, so the
/// quantizer never rebases ([`RankPolicy::monotone`] is `false`).
#[derive(Debug, Clone, Default)]
pub struct SrptRank;

impl RankPolicy for SrptRank {
    fn for_link(&self, _flows: &[FlowSpec], _link_rate_bps: f64) -> Self {
        Self
    }

    fn rank(&mut self, pkt: &Packet) -> VirtualTime {
        VirtualTime(pkt.size_bits())
    }

    fn rank_floor(&self) -> VirtualTime {
        VirtualTime::ZERO
    }

    fn monotone(&self) -> bool {
        false
    }

    fn tick_scale(&self, _link_rate_bps: f64) -> f64 {
        // One tick per byte: a 1500-byte packet spans 1500 ticks, well
        // inside even the fabricated 12-bit tag space.
        8.0
    }

    fn name(&self) -> &'static str {
        "srpt"
    }
}

/// FIFO+ (Clark/Shenker/Zhang): rank = the packet's arrival time at the
/// first hop. On one hop this serves in arrival order; across a network
/// the inherited timestamp gives distant flows the priority they lost
/// upstream. Realizing FIFO on a PIFO is what makes the one-queue
/// circuit a drop-in for every discipline in this module.
#[derive(Debug, Clone, Default)]
pub struct FifoPlusRank {
    last_arrival: f64,
}

impl RankPolicy for FifoPlusRank {
    fn for_link(&self, _flows: &[FlowSpec], _link_rate_bps: f64) -> Self {
        Self::default()
    }

    fn rank(&mut self, pkt: &Packet) -> VirtualTime {
        self.last_arrival = pkt.arrival.0;
        VirtualTime(pkt.arrival.0)
    }

    fn rank_floor(&self) -> VirtualTime {
        VirtualTime(self.last_arrival)
    }

    fn tick_scale(&self, link_rate_bps: f64) -> f64 {
        // Ranks are seconds: one tick is the time of 500 bits on the
        // link, fine enough to separate back-to-back packets.
        500.0 / link_rate_bps
    }

    fn name(&self) -> &'static str {
        "fifo+"
    }

    fn state_words(&self) -> Vec<u64> {
        vec![self.last_arrival.to_bits()]
    }

    fn load_state_words(&mut self, words: &[u64]) {
        assert_eq!(words.len(), 1, "fifo+ state is one word");
        self.last_arrival = f64::from_bits(words[0]);
    }
}

/// Strict priority: rank = the flow's priority class, derived from its
/// weight (heavier weight ⇒ higher priority ⇒ smaller rank). Flows with
/// equal weight share one class, FIFO among themselves.
///
/// A bounded-domain policy ([`RankPolicy::monotone`] is `false`): a
/// high-priority arrival must always be able to rank below everything
/// queued.
#[derive(Debug, Clone, Default)]
pub struct StrictPriorityRank {
    /// Flow id → priority class (0 = highest).
    prio_of: Vec<u32>,
}

impl RankPolicy for StrictPriorityRank {
    fn for_link(&self, flows: &[FlowSpec], _link_rate_bps: f64) -> Self {
        let weights = dense_weights(flows);
        // Distinct weights, descending: class 0 is the heaviest.
        let mut distinct: Vec<f64> = weights.clone();
        distinct.sort_by(|a, b| b.total_cmp(a));
        distinct.dedup();
        let prio_of = weights
            .iter()
            .map(|w| {
                distinct
                    .iter()
                    .position(|d| d == w)
                    .expect("weight is in its own distinct set") as u32
            })
            .collect();
        Self { prio_of }
    }

    fn rank(&mut self, pkt: &Packet) -> VirtualTime {
        VirtualTime(f64::from(self.prio_of[pkt.flow.0 as usize]))
    }

    fn rank_floor(&self) -> VirtualTime {
        VirtualTime::ZERO
    }

    fn monotone(&self) -> bool {
        false
    }

    fn tick_scale(&self, _link_rate_bps: f64) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "prio"
    }
}

/// Leaky-bucket shaping order: rank = the time the packet *conforms* to
/// its flow's token rate (`FlowSpec::rate_bps`).
///
/// `η = max(arrival, η_prev) + L / r`: a flow inside its contract gets
/// ranks near its arrival times; a flow bursting above it accumulates
/// bucket debt and sorts behind everyone conforming. The queue stays
/// work-conserving — a PIFO cannot hold packets back — so this is the
/// shaping *order*, not a non-work-conserving shaper.
#[derive(Debug, Clone, Default)]
pub struct LeakyBucketRank {
    /// Flow id → contracted token rate, bits per second.
    rates: Vec<f64>,
    /// Flow id → bucket level: the conforming finish time of the flow's
    /// last packet, in seconds.
    eta: Vec<f64>,
    last_arrival: f64,
}

impl RankPolicy for LeakyBucketRank {
    fn for_link(&self, flows: &[FlowSpec], _link_rate_bps: f64) -> Self {
        let mut rates = vec![0.0; flows.len()];
        for f in flows {
            let idx = f.id.0 as usize;
            assert!(
                idx < flows.len() && rates[idx] == 0.0,
                "flow ids must be dense and unique"
            );
            assert!(
                f.rate_bps > 0.0 && f.rate_bps.is_finite(),
                "leaky-bucket shaping needs a positive contracted rate"
            );
            rates[idx] = f.rate_bps;
        }
        Self {
            eta: vec![0.0; rates.len()],
            rates,
            last_arrival: 0.0,
        }
    }

    fn rank(&mut self, pkt: &Packet) -> VirtualTime {
        let f = pkt.flow.0 as usize;
        self.last_arrival = pkt.arrival.0;
        let conforming = self.eta[f].max(pkt.arrival.0) + pkt.size_bits() / self.rates[f];
        self.eta[f] = conforming;
        VirtualTime(conforming)
    }

    fn rank_floor(&self) -> VirtualTime {
        // Every future rank exceeds its packet's arrival time, and
        // arrivals are non-decreasing.
        VirtualTime(self.last_arrival)
    }

    fn tick_scale(&self, link_rate_bps: f64) -> f64 {
        500.0 / link_rate_bps
    }

    fn name(&self) -> &'static str {
        "leaky"
    }

    fn state_words(&self) -> Vec<u64> {
        let mut words = vec![self.last_arrival.to_bits(), self.eta.len() as u64];
        words.extend(self.eta.iter().map(|e| e.to_bits()));
        words
    }

    fn load_state_words(&mut self, words: &[u64]) {
        let n = self.eta.len();
        assert!(
            words.len() == 2 + n && words[1] as usize == n,
            "leaky state for {} flows cannot restore into {n}",
            words.get(1).copied().unwrap_or(0),
        );
        self.last_arrival = f64::from_bits(words[0]);
        for (slot, &w) in self.eta.iter_mut().zip(&words[2..]) {
            *slot = f64::from_bits(w);
        }
    }

    fn flow_finish(&self, flow: FlowId) -> VirtualTime {
        VirtualTime(self.eta[flow.0 as usize])
    }

    fn adopt_flow(&mut self, flow: FlowId, finish: VirtualTime) {
        let f = flow.0 as usize;
        self.eta[f] = self.eta[f].max(finish.value());
    }
}

/// Two-level hierarchical WFQ: flows are grouped into classes, the link
/// is split between classes in proportion to their aggregate weight,
/// and each class runs its own GPS virtual clock at its share of the
/// link rate. Rank = the flow's finishing tag on its **class** clock.
///
/// Class membership is `flow id % classes` (over the link's dense local
/// ids — under a sharded frontend, each port classes its own local
/// population). With one class the policy degenerates *exactly* to
/// [`WfqRank`]: one clock, the full weight vector, the full link rate.
#[derive(Debug, Clone)]
pub struct HierarchicalWfqRank {
    /// Configured class count (clamped to the flow count at build).
    classes: usize,
    /// One GPS clock per class, running at the class's share of the
    /// link rate. Empty in the prototype.
    clocks: Vec<GpsVirtualClock>,
    /// Flow id → class index. Empty in the prototype.
    class_of: Vec<usize>,
}

impl Default for HierarchicalWfqRank {
    /// A two-class prototype — the smallest genuinely hierarchical
    /// configuration.
    fn default() -> Self {
        Self::with_classes(2)
    }
}

impl HierarchicalWfqRank {
    /// A prototype with an explicit class count (clamped to the flow
    /// population at [`RankPolicy::for_link`] time; 1 degenerates to
    /// flat WFQ).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn with_classes(classes: usize) -> Self {
        assert!(classes > 0, "at least one class required");
        Self {
            classes,
            clocks: Vec::new(),
            class_of: Vec::new(),
        }
    }

    /// The class a flow is assigned to (after [`RankPolicy::for_link`]).
    pub fn class_of(&self, flow: u32) -> Option<usize> {
        self.class_of.get(flow as usize).copied()
    }
}

impl RankPolicy for HierarchicalWfqRank {
    fn for_link(&self, flows: &[FlowSpec], link_rate_bps: f64) -> Self {
        let weights = dense_weights(flows);
        let classes = self.classes.min(flows.len()).max(1);
        let class_of: Vec<usize> = (0..flows.len()).map(|f| f % classes).collect();
        let total: f64 = weights.iter().sum();
        let clocks = (0..classes)
            .map(|c| {
                let class_weight: f64 = weights
                    .iter()
                    .enumerate()
                    .filter(|&(f, _)| class_of[f] == c)
                    .map(|(_, &w)| w)
                    .sum();
                // Each class clock sees the full dense weight vector but
                // only its members' arrivals, so GPS virtual time inside
                // the class advances exactly as if the others were idle.
                GpsVirtualClock::new(&weights, link_rate_bps * class_weight / total)
            })
            .collect();
        Self {
            classes: self.classes,
            clocks,
            class_of,
        }
    }

    fn rank(&mut self, pkt: &Packet) -> VirtualTime {
        let class = self.class_of[pkt.flow.0 as usize];
        self.clocks[class]
            .on_arrival(pkt.flow, pkt.size_bits(), pkt.arrival)
            .1
    }

    fn advance(&mut self, now: Time) {
        for clock in &mut self.clocks {
            clock.advance(now);
        }
    }

    fn rank_floor(&self) -> VirtualTime {
        self.clocks
            .iter()
            .map(GpsVirtualClock::virtual_now)
            .min()
            .unwrap_or(VirtualTime::ZERO)
    }

    fn tick_scale(&self, link_rate_bps: f64) -> f64 {
        link_rate_bps / 50_000.0
    }

    fn name(&self) -> &'static str {
        "hwfq"
    }

    fn state_words(&self) -> Vec<u64> {
        let mut words = vec![self.clocks.len() as u64];
        for clock in &self.clocks {
            let s = clock.state_words();
            words.push(s.len() as u64);
            words.extend(s);
        }
        words
    }

    fn load_state_words(&mut self, words: &[u64]) {
        assert!(
            words.first().copied() == Some(self.clocks.len() as u64),
            "hwfq state for {} classes cannot restore into {}",
            words.first().copied().unwrap_or(0),
            self.clocks.len(),
        );
        let mut at = 1;
        for clock in &mut self.clocks {
            let len = words[at] as usize;
            at += 1;
            clock.load_state_words(&words[at..at + len]);
            at += len;
        }
        assert_eq!(at, words.len(), "trailing words in hwfq state");
    }

    fn flow_finish(&self, flow: FlowId) -> VirtualTime {
        self.clocks[self.class_of[flow.0 as usize]].last_finish_of(flow)
    }

    fn adopt_flow(&mut self, flow: FlowId, finish: VirtualTime) {
        let class = self.class_of[flow.0 as usize];
        let cur = self.clocks[class].last_finish_of(flow);
        self.clocks[class].set_last_finish(flow, cur.max(finish));
    }
}

/// Every shipped policy behind one concrete type, for runtime selection
/// (the CLI's `--policy` flag): one monomorphization instead of one per
/// policy, at the cost of a per-packet `match`.
#[derive(Debug, Clone)]
pub enum AnyPolicy {
    /// [`WfqRank`].
    Wfq(WfqRank),
    /// [`StfqRank`].
    Stfq(StfqRank),
    /// [`SrptRank`].
    Srpt(SrptRank),
    /// [`FifoPlusRank`].
    FifoPlus(FifoPlusRank),
    /// [`StrictPriorityRank`].
    Prio(StrictPriorityRank),
    /// [`LeakyBucketRank`].
    Leaky(LeakyBucketRank),
    /// [`HierarchicalWfqRank`].
    Hwfq(HierarchicalWfqRank),
}

impl Default for AnyPolicy {
    fn default() -> Self {
        Self::Wfq(WfqRank::default())
    }
}

impl AnyPolicy {
    /// Every accepted policy name, in the order the CLI documents them.
    pub const NAMES: [&'static str; 7] = ["wfq", "stfq", "srpt", "fifo+", "prio", "leaky", "hwfq"];

    /// A prototype for `name`, or `None` for an unknown name (see
    /// [`AnyPolicy::NAMES`]).
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name {
            "wfq" => Self::Wfq(WfqRank::default()),
            "stfq" => Self::Stfq(StfqRank::default()),
            "srpt" => Self::Srpt(SrptRank),
            "fifo+" => Self::FifoPlus(FifoPlusRank::default()),
            "prio" => Self::Prio(StrictPriorityRank::default()),
            "leaky" => Self::Leaky(LeakyBucketRank::default()),
            "hwfq" => Self::Hwfq(HierarchicalWfqRank::default()),
            _ => return None,
        })
    }
}

macro_rules! delegate {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyPolicy::Wfq($p) => $body,
            AnyPolicy::Stfq($p) => $body,
            AnyPolicy::Srpt($p) => $body,
            AnyPolicy::FifoPlus($p) => $body,
            AnyPolicy::Prio($p) => $body,
            AnyPolicy::Leaky($p) => $body,
            AnyPolicy::Hwfq($p) => $body,
        }
    };
}

impl RankPolicy for AnyPolicy {
    fn for_link(&self, flows: &[FlowSpec], link_rate_bps: f64) -> Self {
        match self {
            Self::Wfq(p) => Self::Wfq(p.for_link(flows, link_rate_bps)),
            Self::Stfq(p) => Self::Stfq(p.for_link(flows, link_rate_bps)),
            Self::Srpt(p) => Self::Srpt(p.for_link(flows, link_rate_bps)),
            Self::FifoPlus(p) => Self::FifoPlus(p.for_link(flows, link_rate_bps)),
            Self::Prio(p) => Self::Prio(p.for_link(flows, link_rate_bps)),
            Self::Leaky(p) => Self::Leaky(p.for_link(flows, link_rate_bps)),
            Self::Hwfq(p) => Self::Hwfq(p.for_link(flows, link_rate_bps)),
        }
    }

    fn rank(&mut self, pkt: &Packet) -> VirtualTime {
        delegate!(self, p => p.rank(pkt))
    }

    fn on_service(&mut self, pkt: &Packet, rank: VirtualTime) {
        delegate!(self, p => p.on_service(pkt, rank))
    }

    fn advance(&mut self, now: Time) {
        delegate!(self, p => p.advance(now))
    }

    fn rank_floor(&self) -> VirtualTime {
        delegate!(self, p => p.rank_floor())
    }

    fn monotone(&self) -> bool {
        delegate!(self, p => p.monotone())
    }

    fn tick_scale(&self, link_rate_bps: f64) -> f64 {
        delegate!(self, p => p.tick_scale(link_rate_bps))
    }

    fn name(&self) -> &'static str {
        delegate!(self, p => p.name())
    }

    fn state_words(&self) -> Vec<u64> {
        delegate!(self, p => p.state_words())
    }

    fn load_state_words(&mut self, words: &[u64]) {
        delegate!(self, p => p.load_state_words(words))
    }

    fn flow_finish(&self, flow: FlowId) -> VirtualTime {
        delegate!(self, p => p.flow_finish(flow))
    }

    fn adopt_flow(&mut self, flow: FlowId, finish: VirtualTime) {
        delegate!(self, p => p.adopt_flow(flow, finish))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::FlowId;

    fn flows(weights: &[f64]) -> Vec<FlowSpec> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| FlowSpec::new(FlowId(i as u32), w, 1e6))
            .collect()
    }

    fn pkt(flow: u32, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(at),
            seq: 0,
        }
    }

    #[test]
    fn wfq_rank_matches_the_raw_virtual_clock() {
        let fl = flows(&[1.0, 3.0]);
        let mut policy = WfqRank::default().for_link(&fl, 1e6);
        let mut clock = GpsVirtualClock::new(&[1.0, 3.0], 1e6);
        for i in 0..40u32 {
            let p = pkt(i % 2, f64::from(i) * 1e-4, 200 + 37 * i);
            let want = clock.on_arrival(p.flow, p.size_bits(), p.arrival).1;
            assert_eq!(policy.rank(&p), want, "packet {i}");
            assert_eq!(policy.rank_floor(), clock.virtual_now());
        }
    }

    #[test]
    fn stfq_start_tags_are_monotone_per_flow_and_v_advances() {
        let fl = flows(&[1.0, 2.0]);
        let mut p = StfqRank::default().for_link(&fl, 1e6);
        let r0 = p.rank(&pkt(0, 0.0, 500));
        let r1 = p.rank(&pkt(0, 0.0, 500));
        assert_eq!(r0, VirtualTime::ZERO);
        assert_eq!(r1.value(), 4000.0, "second packet starts at F_prev");
        // Serving the 4000-rank packet advances V: flow 1's next start
        // is at least V.
        p.on_service(&pkt(0, 0.0, 500), r1);
        assert_eq!(p.rank_floor().value(), 4000.0);
        assert_eq!(p.rank(&pkt(1, 0.0, 500)).value(), 4000.0);
    }

    #[test]
    fn srpt_and_prio_are_bounded_domain() {
        let fl = flows(&[4.0, 1.0, 4.0]);
        let mut srpt = SrptRank.for_link(&fl, 1e6);
        assert!(!RankPolicy::monotone(&srpt));
        assert_eq!(srpt.rank(&pkt(0, 0.0, 100)).value(), 800.0);
        let mut prio = StrictPriorityRank::default().for_link(&fl, 1e6);
        assert!(!RankPolicy::monotone(&prio));
        // Weight 4 flows share class 0; weight 1 is class 1.
        assert_eq!(prio.rank(&pkt(0, 0.0, 100)).value(), 0.0);
        assert_eq!(prio.rank(&pkt(1, 0.0, 100)).value(), 1.0);
        assert_eq!(prio.rank(&pkt(2, 0.0, 100)).value(), 0.0);
    }

    #[test]
    fn leaky_bucket_accumulates_debt_above_contract() {
        let fl = flows(&[1.0, 1.0]); // 1 Mb/s contracted each
        let mut p = LeakyBucketRank::default().for_link(&fl, 10e6);
        // Flow 0 bursts 3 x 1250 B back-to-back: 10 ms of tokens each.
        let r1 = p.rank(&pkt(0, 0.0, 1250));
        let r2 = p.rank(&pkt(0, 0.0, 1250));
        let r3 = p.rank(&pkt(0, 0.0, 1250));
        assert!((r1.value() - 0.01).abs() < 1e-12);
        assert!((r2.value() - 0.02).abs() < 1e-12);
        assert!((r3.value() - 0.03).abs() < 1e-12);
        // A conforming flow arriving later still ranks first.
        let r = p.rank(&pkt(1, 0.005, 1250));
        assert!((r.value() - 0.015).abs() < 1e-12);
        assert!(r < r2);
    }

    #[test]
    fn hierarchical_with_one_class_is_flat_wfq() {
        let fl = flows(&[1.0, 3.0, 2.0]);
        let mut h = HierarchicalWfqRank::with_classes(1).for_link(&fl, 1e6);
        let mut w = WfqRank::default().for_link(&fl, 1e6);
        for i in 0..60u32 {
            let p = pkt(i % 3, f64::from(i) * 1e-4, 100 + 53 * i);
            assert_eq!(h.rank(&p), w.rank(&p), "packet {i}");
            assert_eq!(h.rank_floor(), w.rank_floor());
        }
    }

    #[test]
    fn hierarchical_classes_split_the_link() {
        let fl = flows(&[1.0, 1.0, 1.0, 1.0]);
        let h = HierarchicalWfqRank::with_classes(2).for_link(&fl, 1e6);
        assert_eq!(h.class_of(0), Some(0));
        assert_eq!(h.class_of(1), Some(1));
        assert_eq!(h.class_of(2), Some(0));
        assert_eq!(h.class_of(3), Some(1));
        // Class count is clamped to the population.
        let h = HierarchicalWfqRank::with_classes(9).for_link(&fl, 1e6);
        assert_eq!(h.class_of(3), Some(3));
    }

    #[test]
    fn state_words_round_trip_every_policy() {
        // Drive each policy through a mixed arrival/service history,
        // snapshot it, load the snapshot into a freshly built twin, and
        // check both emit identical ranks from there on.
        let fl = flows(&[1.0, 3.0, 2.0]);
        for name in AnyPolicy::NAMES {
            let proto = AnyPolicy::by_name(name).expect(name);
            let mut live = proto.for_link(&fl, 1e6);
            for i in 0..30u32 {
                let p = pkt(i % 3, f64::from(i) * 1e-4, 200 + 31 * i);
                let r = live.rank(&p);
                if i % 4 == 0 {
                    live.on_service(&p, r);
                }
            }
            let words = live.state_words();
            let mut twin = proto.for_link(&fl, 1e6);
            twin.load_state_words(&words);
            assert_eq!(twin.state_words(), words, "{name}: reload changed state");
            assert_eq!(twin.rank_floor(), live.rank_floor(), "{name}");
            for i in 30..60u32 {
                let p = pkt(i % 3, f64::from(i) * 1e-4, 200 + 31 * i);
                assert_eq!(twin.rank(&p), live.rank(&p), "{name} packet {i}");
            }
        }
    }

    #[test]
    fn state_words_reject_the_wrong_population() {
        let mut small = StfqRank::default().for_link(&flows(&[1.0]), 1e6);
        let big = StfqRank::default().for_link(&flows(&[1.0, 2.0]), 1e6);
        let words = big.state_words();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            small.load_state_words(&words)
        }));
        assert!(result.is_err(), "cross-population restore must panic");
    }

    #[test]
    fn adopt_flow_keeps_per_flow_ranks_monotone() {
        // A migrated-in flow whose translated history sits ahead of the
        // destination clock must rank at or after that history.
        let fl = flows(&[1.0, 1.0]);
        for name in AnyPolicy::NAMES {
            let proto = AnyPolicy::by_name(name).expect(name);
            let mut p = proto.for_link(&fl, 1e6);
            // Local traffic on flow 1 moves the destination clock.
            for i in 0..5u32 {
                let r = p.rank(&pkt(1, f64::from(i) * 1e-4, 400));
                p.on_service(&pkt(1, f64::from(i) * 1e-4, 400), r);
            }
            let inherited = VirtualTime(p.rank_floor().value() + 1000.0);
            p.adopt_flow(FlowId(0), inherited);
            assert!(
                p.flow_finish(FlowId(0)) >= p.rank_floor(),
                "{name}: exported finish below floor"
            );
            if matches!(name, "wfq" | "stfq" | "leaky" | "hwfq") {
                let r = p.rank(&pkt(0, 5e-4, 400));
                assert!(
                    r >= inherited,
                    "{name}: post-adoption rank {r} precedes inherited {inherited}"
                );
            }
        }
    }

    #[test]
    fn adopt_flow_never_moves_history_backwards() {
        let fl = flows(&[1.0, 1.0]);
        let mut p = WfqRank::default().for_link(&fl, 1e6);
        let r = p.rank(&pkt(0, 0.0, 1500));
        // Adopting an older (smaller) finish than the flow already has
        // must keep the larger one.
        p.adopt_flow(FlowId(0), VirtualTime(r.value() - 500.0));
        assert_eq!(p.flow_finish(FlowId(0)), r);
    }

    #[test]
    fn any_policy_round_trips_names() {
        for name in AnyPolicy::NAMES {
            let proto = AnyPolicy::by_name(name).expect(name);
            assert_eq!(proto.name(), name);
        }
        assert!(AnyPolicy::by_name("nope").is_none());
        let fl = flows(&[1.0, 2.0]);
        let mut p = AnyPolicy::by_name("stfq").unwrap().for_link(&fl, 1e6);
        assert_eq!(p.rank(&pkt(0, 0.0, 500)), VirtualTime::ZERO);
        assert!(p.monotone());
        assert!(!AnyPolicy::by_name("srpt").unwrap().monotone());
    }
}
