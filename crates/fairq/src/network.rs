//! Multi-hop network simulation: chained schedulers.
//!
//! The paper's guarantee is stated *end to end*: "WFQ … allow[s] a worst
//! case end-to-end queueing delay to be guaranteed for connections"
//! (§I-B). This module chains per-hop link simulations so that claim can
//! be measured: departures from hop *h* become arrivals at hop *h+1*,
//! and the Parekh–Gallager multi-node bound
//!
//! `D ≤ σ/g + H·L_max/g' + Σ_h L_max/R_h`  (all hops WFQ, ρ ≤ g)
//!
//! — in its common simplified equal-hop form `σ/g + H·L_max/R` for g
//! equal to the bottleneck share — bounds the measured worst case.

use traffic::{Packet, Time};

use crate::link::{Departure, LinkSim};
use crate::scheduler::Scheduler;

/// A path of store-and-forward hops, each a rate + scheduler pair.
///
/// # Example
///
/// ```
/// use fairq::{NetworkSim, Wfq};
/// use traffic::{FlowId, FlowSpec, Packet, Time};
///
/// let flows = [FlowSpec::new(FlowId(0), 1.0, 1e6)];
/// let mut net = NetworkSim::new();
/// net.add_hop(1e6, Wfq::new(&flows, 1e6));
/// net.add_hop(1e6, Wfq::new(&flows, 1e6));
/// let trace = vec![Packet { flow: FlowId(0), size_bytes: 125, arrival: Time(0.0), seq: 0 }];
/// let deps = net.run(&trace);
/// // Two hops of 1 ms transmission each.
/// assert_eq!(deps[0].finish, Time(0.002));
/// ```
#[derive(Default)]
pub struct NetworkSim {
    hops: Vec<(f64, Box<dyn Scheduler>)>,
}

impl std::fmt::Debug for NetworkSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetworkSim({} hops)", self.hops.len())
    }
}

impl NetworkSim {
    /// Creates an empty path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a hop served at `rate_bps` by `scheduler`.
    pub fn add_hop(&mut self, rate_bps: f64, scheduler: impl Scheduler + 'static) -> &mut Self {
        assert!(
            rate_bps > 0.0 && rate_bps.is_finite(),
            "rate must be positive and finite"
        );
        self.hops.push((rate_bps, Box::new(scheduler)));
        self
    }

    /// Number of hops on the path.
    pub fn hops(&self) -> usize {
        self.hops.len()
    }

    /// Runs the trace through every hop in order; returns the final-hop
    /// departures (per packet, in final service order). Intermediate
    /// departures become the next hop's arrivals with their original
    /// flow, size, and sequence number.
    ///
    /// # Panics
    ///
    /// Panics if no hops were added or the trace is unsorted.
    pub fn run(&mut self, trace: &[Packet]) -> Vec<Departure> {
        assert!(!self.hops.is_empty(), "add at least one hop");
        let mut arrivals: Vec<Packet> = trace.to_vec();
        let mut departures = Vec::new();
        for (rate, sched) in self.hops.drain(..) {
            let mut sim = LinkSim::new(rate, sched);
            departures = sim.run(&arrivals);
            // Next hop sees this hop's finish times as arrivals.
            arrivals = departures
                .iter()
                .map(|d| Packet {
                    arrival: d.finish,
                    ..d.packet
                })
                .collect();
            arrivals.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.seq.cmp(&b.seq)));
        }
        departures
    }
}

/// End-to-end delay of each packet across a [`NetworkSim::run`]: final
/// departure minus original arrival, keyed by sequence number.
pub fn end_to_end_delays(trace: &[Packet], final_departures: &[Departure]) -> Vec<f64> {
    let finish: std::collections::HashMap<u64, Time> = final_departures
        .iter()
        .map(|d| (d.packet.seq, d.finish))
        .collect();
    trace
        .iter()
        .map(|p| (finish[&p.seq] - p.arrival).seconds())
        .collect()
}

/// The multi-node Parekh–Gallager bound in its equal-guarantee form:
/// `σ/g + (H−1)·L_i,max/g + Σ_h L_max/R_h` for a (σ, ρ)-shaped flow with
/// guaranteed rate `g` at every one of `hop_rates.len()` WFQ hops
/// (valid when ρ ≤ g; `li_max` is the flow's own largest packet,
/// `l_max` the largest packet on the path).
pub fn pg_end_to_end_bound(
    sigma_bits: f64,
    g_bps: f64,
    li_max_bits: f64,
    l_max_bits: f64,
    hop_rates: &[f64],
) -> f64 {
    assert!(!hop_rates.is_empty() && g_bps > 0.0);
    let hops = hop_rates.len() as f64;
    sigma_bits / g_bps
        + (hops - 1.0) * li_max_bits / g_bps
        + hop_rates.iter().map(|r| l_max_bits / r).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::scheduler::Fifo;
    use crate::timestamp::Wfq;
    use traffic::{generate, ArrivalProcess, FlowId, FlowSpec, SizeDist, TokenBucket};

    fn pkt(seq: u64, flow: u32, at: f64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(at),
            seq,
        }
    }

    #[test]
    fn single_hop_equals_link_sim() {
        let flows = [FlowSpec::new(FlowId(0), 1.0, 1e6)];
        let trace = vec![pkt(0, 0, 0.0, 125), pkt(1, 0, 0.0, 125)];
        let mut net = NetworkSim::new();
        net.add_hop(1e6, Wfq::new(&flows, 1e6));
        let a = net.run(&trace);
        let b = LinkSim::new(1e6, Wfq::new(&flows, 1e6)).run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn hops_add_store_and_forward_latency() {
        let flows = [FlowSpec::new(FlowId(0), 1.0, 1e6)];
        let trace = vec![pkt(0, 0, 0.0, 1250)]; // 10 ms per hop
        let mut net = NetworkSim::new();
        for _ in 0..3 {
            net.add_hop(1e6, Wfq::new(&flows, 1e6));
        }
        let deps = net.run(&trace);
        assert!((deps[0].finish.seconds() - 0.03).abs() < 1e-9);
    }

    #[test]
    fn mismatched_hop_rates_bottleneck_cleanly() {
        let flows = [FlowSpec::new(FlowId(0), 1.0, 1e6)];
        let trace: Vec<Packet> = (0..10).map(|i| pkt(i, 0, 0.0, 1250)).collect();
        let mut net = NetworkSim::new();
        net.add_hop(2e6, Wfq::new(&flows, 2e6)); // fast ingress
        net.add_hop(1e6, Wfq::new(&flows, 1e6)); // 1 Mb/s bottleneck
        let deps = net.run(&trace);
        // Makespan set by the bottleneck: 100 kb at 1 Mb/s, plus one
        // 5 ms store-and-forward offset from hop 1.
        let last = deps.iter().map(|d| d.finish.seconds()).fold(0.0, f64::max);
        assert!((last - 0.105).abs() < 1e-9, "makespan {last}");
    }

    /// The end-to-end guarantee, measured: a shaped flow through three
    /// WFQ hops with hostile cross-traffic at every hop stays within the
    /// multi-node PG bound; the same path with FIFO hops does not.
    #[test]
    fn shaped_flow_meets_the_end_to_end_bound() {
        let rate = 1e6;
        let flows = vec![
            FlowSpec::new(FlowId(0), 1.0, 200_000.0).size(SizeDist::Fixed(500)),
            FlowSpec::new(FlowId(1), 1.0, 900_000.0)
                .size(SizeDist::Fixed(1500))
                .arrivals(ArrivalProcess::OnOff {
                    on_mean_s: 0.04,
                    off_mean_s: 0.02,
                }),
        ];
        let trace = generate(&flows, 1.0, 17);
        let hop_rates = [rate, rate, rate];

        let mut wfq_net = NetworkSim::new();
        for _ in 0..hop_rates.len() {
            wfq_net.add_hop(rate, Wfq::new(&flows, rate));
        }
        let deps = wfq_net.run(&trace);
        let delays = end_to_end_delays(&trace, &deps);
        let worst_flow0 = trace
            .iter()
            .zip(&delays)
            .filter(|(p, _)| p.flow == FlowId(0))
            .map(|(_, d)| *d)
            .fold(0.0, f64::max);

        let g = metrics::guaranteed_rate(&flows, FlowId(0), rate);
        let bucket = TokenBucket::fit(&trace, FlowId(0), 200_000.0).unwrap();
        let bound = pg_end_to_end_bound(
            bucket.burst_bits(),
            g,
            500.0 * 8.0,
            1500.0 * 8.0,
            &hop_rates,
        );
        assert!(
            worst_flow0 <= bound + 1e-9,
            "measured {worst_flow0} exceeds end-to-end bound {bound}"
        );

        // FIFO hops: the burst at each hop compounds past the bound.
        let mut fifo_net = NetworkSim::new();
        for _ in 0..hop_rates.len() {
            fifo_net.add_hop(rate, Fifo::new());
        }
        let deps = fifo_net.run(&trace);
        let delays = end_to_end_delays(&trace, &deps);
        let fifo_worst = trace
            .iter()
            .zip(&delays)
            .filter(|(p, _)| p.flow == FlowId(0))
            .map(|(_, d)| *d)
            .fold(0.0, f64::max);
        assert!(
            fifo_worst > bound,
            "FIFO ({fifo_worst}) unexpectedly within the WFQ bound ({bound})"
        );
    }

    #[test]
    #[should_panic(expected = "add at least one hop")]
    fn empty_path_rejected() {
        let _ = NetworkSim::new().run(&[]);
    }
}
