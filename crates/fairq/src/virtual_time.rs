//! The GPS virtual clock — the algorithm inside the paper's WFQ tag
//! computation circuit (eq. (1), reference \[8\]).

use std::collections::BTreeMap;
use std::fmt;

use traffic::{FlowId, Time};

/// GPS virtual time, in bits-per-unit-weight.
///
/// Finishing tags are virtual times: packet *k* of flow *i* gets
/// `F = max(V(arrival), F_prev) + L/φᵢ`. The sorter stores a quantized
/// form of these values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VirtualTime(pub f64);

impl VirtualTime {
    /// Virtual time zero.
    pub const ZERO: VirtualTime = VirtualTime(0.0);

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The larger of two virtual times.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for VirtualTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for VirtualTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VirtualTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V={:.6}", self.0)
    }
}

/// Incremental tracker of the GPS virtual time V(t) of paper eq. (1).
///
/// V advances at rate `R / Σφᵢ` over the *busy* sessions — sessions whose
/// GPS backlog has not yet drained. Draining a session is itself a
/// virtual-time event, so advancing real time runs the classic iterated
/// deletion: repeatedly find the next session whose last finishing tag V
/// will reach, advance to it, and drop the session from the busy set.
///
/// This is exactly the computation the paper's tag computation circuit
/// \[8\] performs, including its dependence on `F_min` — the smallest tag
/// still in the sorter — via the session-drain events.
///
/// # Example
///
/// ```
/// use fairq::GpsVirtualClock;
/// use traffic::{FlowId, Time};
///
/// let mut clock = GpsVirtualClock::new(&[1.0, 1.0], 1_000_000.0);
/// // 500-byte packet on flow 0 at t=0: F = 0 + 4000 bits / weight 1.
/// let (s, f) = clock.on_arrival(FlowId(0), 4000.0, Time(0.0));
/// assert_eq!(s.value(), 0.0);
/// assert_eq!(f.value(), 4000.0);
/// ```
#[derive(Debug, Clone)]
pub struct GpsVirtualClock {
    weights: Vec<f64>,
    rate_bps: f64,
    v: f64,
    t_last: f64,
    /// Per-flow largest finishing tag handed out so far.
    last_finish: Vec<f64>,
    /// Busy sessions keyed by their drain virtual time (last finish tag).
    /// Values are flow indices; keys are unique per flow by construction
    /// (ties broken with the flow index in the key).
    busy: BTreeMap<(VirtualTime, u32), ()>,
    /// Current key of each busy flow, if busy.
    busy_key: Vec<Option<VirtualTime>>,
    sum_phi_busy: f64,
    /// Breakpoints of the piecewise-linear V(t) trajectory, recorded for
    /// virtual→real inversion when enabled (the fluid GPS reference
    /// needs it). Monotone in both coordinates.
    breakpoints: Vec<(f64, f64)>,
    record_segments: bool,
}

impl GpsVirtualClock {
    /// Creates a clock for flows `0..weights.len()` on a link of
    /// `rate_bps`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is non-positive, or the
    /// rate is non-positive.
    pub fn new(weights: &[f64], rate_bps: f64) -> Self {
        assert!(!weights.is_empty(), "at least one flow required");
        assert!(
            weights.iter().all(|w| *w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        assert!(
            rate_bps > 0.0 && rate_bps.is_finite(),
            "rate must be positive and finite"
        );
        Self {
            weights: weights.to_vec(),
            rate_bps,
            v: 0.0,
            t_last: 0.0,
            last_finish: vec![0.0; weights.len()],
            busy: BTreeMap::new(),
            busy_key: vec![None; weights.len()],
            sum_phi_busy: 0.0,
            breakpoints: vec![(0.0, 0.0)],
            record_segments: false,
        }
    }

    /// Enables segment recording for virtual→real inversion (used by the
    /// fluid GPS reference).
    pub(crate) fn recording(mut self) -> Self {
        self.record_segments = true;
        self
    }

    /// The current virtual time (as of the last processed event).
    pub fn virtual_now(&self) -> VirtualTime {
        VirtualTime(self.v)
    }

    /// Number of GPS-busy sessions.
    pub fn busy_sessions(&self) -> usize {
        self.busy.len()
    }

    /// Advances the clock to real time `to`, processing session drains.
    ///
    /// # Panics
    ///
    /// Panics if `to` is before a previously processed event.
    pub fn advance(&mut self, to: Time) {
        let to = to.seconds();
        assert!(
            to >= self.t_last - 1e-12,
            "time went backwards: {to} < {}",
            self.t_last
        );
        let to = to.max(self.t_last);
        loop {
            if self.busy.is_empty() {
                // Idle: V holds (a zero-slope plateau).
                self.t_last = to;
                self.push_breakpoint();
                return;
            }
            let slope = self.rate_bps / self.sum_phi_busy;
            let (&(drain_v, flow_idx), _) = self.busy.iter().next().expect("non-empty");
            let t_hit = self.t_last + (drain_v.0 - self.v) / slope;
            if t_hit <= to {
                // The head session drains before (or at) `to`.
                self.v = drain_v.0;
                self.t_last = t_hit;
                self.push_breakpoint();
                self.busy.remove(&(drain_v, flow_idx));
                self.busy_key[flow_idx as usize] = None;
                self.sum_phi_busy -= self.weights[flow_idx as usize];
                if self.busy.is_empty() {
                    self.sum_phi_busy = 0.0; // kill accumulated error
                }
            } else {
                self.v += (to - self.t_last) * slope;
                self.t_last = to;
                self.push_breakpoint();
                return;
            }
        }
    }

    /// Processes a packet arrival: advances to `at`, computes the GPS
    /// start and finishing tags, and updates the busy set.
    ///
    /// # Panics
    ///
    /// Panics if the flow id is out of range or `at` precedes an earlier
    /// event.
    pub fn on_arrival(
        &mut self,
        flow: FlowId,
        size_bits: f64,
        at: Time,
    ) -> (VirtualTime, VirtualTime) {
        let idx = flow.0 as usize;
        assert!(idx < self.weights.len(), "unknown {flow}");
        self.advance(at);
        let start = self.v.max(self.last_finish[idx]);
        let finish = start + size_bits / self.weights[idx];
        self.last_finish[idx] = finish;
        // Reposition the flow in the busy set under its new drain tag.
        if let Some(old) = self.busy_key[idx].take() {
            self.busy.remove(&(old, flow.0));
        } else {
            self.sum_phi_busy += self.weights[idx];
        }
        self.busy.insert((VirtualTime(finish), flow.0), ());
        self.busy_key[idx] = Some(VirtualTime(finish));
        (VirtualTime(start), VirtualTime(finish))
    }

    /// Advances until every busy session drains; returns the real time at
    /// which the GPS system empties.
    pub fn drain(&mut self) -> Time {
        while let Some((&(drain_v, _), _)) = self.busy.iter().next().map(|kv| (kv.0, ())) {
            let slope = self.rate_bps / self.sum_phi_busy;
            let t_hit = self.t_last + (drain_v.0 - self.v) / slope;
            self.advance(Time(t_hit));
        }
        Time(self.t_last)
    }

    /// Maps a virtual time to the earliest real time at which V reaches
    /// it. Requires segment recording and `vt` at or below the current V.
    pub(crate) fn real_time_of(&self, vt: VirtualTime) -> Time {
        debug_assert!(self.record_segments, "recording not enabled");
        let target = vt.0;
        // First breakpoint at or above the target V.
        let idx = self.breakpoints.partition_point(|&(_, v)| v < target);
        if idx == 0 {
            return Time(self.breakpoints[0].0);
        }
        assert!(
            idx < self.breakpoints.len(),
            "virtual time {target} not reached yet (V = {})",
            self.v
        );
        let (t0, v0) = self.breakpoints[idx - 1];
        let (t1, v1) = self.breakpoints[idx];
        if v1 == v0 {
            Time(t0)
        } else {
            Time(t0 + (target - v0) / (v1 - v0) * (t1 - t0))
        }
    }

    /// The per-flow largest finishing tag handed out so far (the state
    /// a flow migration exports).
    ///
    /// # Panics
    ///
    /// Panics if the flow id is out of range.
    pub fn last_finish_of(&self, flow: FlowId) -> VirtualTime {
        let idx = flow.0 as usize;
        assert!(idx < self.weights.len(), "unknown {flow}");
        VirtualTime(self.last_finish[idx])
    }

    /// Overwrites one flow's last finishing tag, keeping the busy set
    /// consistent: the flow is busy exactly while its tag is ahead of
    /// V. This is how a migrated-in flow is adopted — its translated
    /// finish from the source shard becomes its history here, so its
    /// next tag is `max(V, finish) + L/φ` and the flow's packets keep
    /// their relative order across the move.
    ///
    /// # Panics
    ///
    /// Panics if the flow id is out of range or the tag is non-finite.
    pub fn set_last_finish(&mut self, flow: FlowId, v: VirtualTime) {
        let idx = flow.0 as usize;
        assert!(idx < self.weights.len(), "unknown {flow}");
        assert!(v.0.is_finite(), "finish tag must be finite, got {v}");
        if let Some(old) = self.busy_key[idx].take() {
            self.busy.remove(&(old, flow.0));
            self.sum_phi_busy -= self.weights[idx];
            if self.busy.is_empty() {
                self.sum_phi_busy = 0.0; // kill accumulated error
            }
        }
        self.last_finish[idx] = v.0;
        if v.0 > self.v {
            self.busy.insert((v, flow.0), ());
            self.busy_key[idx] = Some(v);
            self.sum_phi_busy += self.weights[idx];
        }
    }

    /// Serializes the clock's mutable state as checkpoint words: V,
    /// the last event time, every per-flow finish tag, and the busy
    /// flags. Configuration (weights, rate) is *not* included — a
    /// restore rebuilds the clock for the same link first and then
    /// loads these words. Segment recording is excluded too (the fluid
    /// GPS reference records; scheduler clocks never do).
    pub fn state_words(&self) -> Vec<u64> {
        let n = self.weights.len();
        let mut words = Vec::with_capacity(3 + 2 * n);
        words.push(self.v.to_bits());
        words.push(self.t_last.to_bits());
        words.push(n as u64);
        words.extend(self.last_finish.iter().map(|f| f.to_bits()));
        words.extend(self.busy_key.iter().map(|k| u64::from(k.is_some())));
        words
    }

    /// Restores the state captured by [`GpsVirtualClock::state_words`]
    /// into a clock built for the same flows and link. The busy set and
    /// its aggregate weight are rebuilt from the flags, so the restored
    /// clock's V trajectory continues exactly where the source left
    /// off.
    ///
    /// # Panics
    ///
    /// Panics if the words do not describe a clock over the same number
    /// of flows (a checkpoint CRC guards against corruption upstream;
    /// this guards against restoring into the wrong link).
    pub fn load_state_words(&mut self, words: &[u64]) {
        let n = self.weights.len();
        assert!(
            words.len() == 3 + 2 * n && words[2] as usize == n,
            "clock state for {} flows cannot restore into {n}",
            words.get(2).copied().unwrap_or(0),
        );
        self.v = f64::from_bits(words[0]);
        self.t_last = f64::from_bits(words[1]);
        self.busy.clear();
        self.sum_phi_busy = 0.0;
        for i in 0..n {
            self.last_finish[i] = f64::from_bits(words[3 + i]);
            self.busy_key[i] = None;
            if words[3 + n + i] != 0 {
                let key = VirtualTime(self.last_finish[i]);
                self.busy.insert((key, i as u32), ());
                self.busy_key[i] = Some(key);
                self.sum_phi_busy += self.weights[i];
            }
        }
        self.breakpoints = vec![(self.t_last, self.v)];
    }

    fn push_breakpoint(&mut self) {
        if !self.record_segments {
            return;
        }
        let point = (self.t_last, self.v);
        if self.breakpoints.last() != Some(&point) {
            self.breakpoints.push(point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_tags_accumulate() {
        let mut c = GpsVirtualClock::new(&[2.0], 1e6);
        let (s1, f1) = c.on_arrival(FlowId(0), 8000.0, Time(0.0));
        assert_eq!(s1, VirtualTime(0.0));
        assert_eq!(f1, VirtualTime(4000.0)); // 8000 bits / weight 2
                                             // Back-to-back arrival queues behind the first.
        let (s2, f2) = c.on_arrival(FlowId(0), 8000.0, Time(0.0));
        assert_eq!(s2, f1);
        assert_eq!(f2, VirtualTime(8000.0));
    }

    #[test]
    fn virtual_time_slows_with_more_busy_sessions() {
        let mut c = GpsVirtualClock::new(&[1.0, 1.0], 1e6);
        // Keep both flows busy with big packets.
        c.on_arrival(FlowId(0), 1e6, Time(0.0));
        c.on_arrival(FlowId(1), 1e6, Time(0.0));
        // Two unit-weight sessions: V advances at R/2 per second.
        c.advance(Time(1.0));
        assert!((c.virtual_now().value() - 0.5e6).abs() < 1.0);
    }

    #[test]
    fn sessions_drain_and_speed_recovers() {
        let mut c = GpsVirtualClock::new(&[1.0, 1.0], 1e6);
        c.on_arrival(FlowId(0), 100_000.0, Time(0.0)); // F = 100k
        c.on_arrival(FlowId(1), 500_000.0, Time(0.0)); // F = 500k
        assert_eq!(c.busy_sessions(), 2);
        // Flow 0 drains when V = 100k: at t = 0.2 s (slope R/2 = 500k/s).
        c.advance(Time(0.2));
        assert_eq!(c.busy_sessions(), 1);
        // After that V runs at full rate for flow 1: V(0.3) = 100k + 0.1*1e6.
        c.advance(Time(0.3));
        assert!((c.virtual_now().value() - 200_000.0).abs() < 1.0);
        let drained_at = c.drain();
        // Flow 1 finishes at V=500k: 0.3 + 300k/1e6 = 0.6 s.
        assert!((drained_at.seconds() - 0.6).abs() < 1e-9);
        assert_eq!(c.busy_sessions(), 0);
    }

    #[test]
    fn arrival_after_idle_starts_at_current_v() {
        let mut c = GpsVirtualClock::new(&[1.0], 1e6);
        c.on_arrival(FlowId(0), 1000.0, Time(0.0));
        c.drain();
        let v_after = c.virtual_now();
        let (s, _) = c.on_arrival(FlowId(0), 1000.0, Time(10.0));
        // V froze during idle; the new start tag is the frozen V, not the
        // flow's old finish (which V already passed).
        assert_eq!(s, v_after);
    }

    #[test]
    fn new_tags_never_precede_smallest_in_system() {
        // The property the paper's backup path relies on (§III-A): tags
        // are >= the smallest tag yet to depart.
        let mut c = GpsVirtualClock::new(&[1.0, 5.0, 2.0], 1e6);
        let mut state = 7u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut t = 0.0;
        let mut outstanding: Vec<(f64, f64)> = Vec::new(); // (finish, tag)
        for _ in 0..500 {
            t += (rnd() % 1000) as f64 * 1e-6;
            let flow = (rnd() % 3) as u32;
            let bits = 400.0 + (rnd() % 12000) as f64;
            let (_, f) = c.on_arrival(FlowId(flow), bits, Time(t));
            // Smallest outstanding tag (GPS still to finish): any tag
            // with virtual finish > V now.
            let v = c.virtual_now().value();
            outstanding.retain(|&(fin, _)| fin > v);
            if let Some(min_out) = outstanding
                .iter()
                .map(|&(_, tag)| tag)
                .min_by(f64::total_cmp)
            {
                assert!(
                    f.value() >= min_out - 1e-6,
                    "tag {f} precedes smallest outstanding {min_out}"
                );
            }
            outstanding.push((f.value(), f.value()));
        }
    }

    #[test]
    fn recording_inverts_virtual_to_real() {
        let mut c = GpsVirtualClock::new(&[1.0, 1.0], 1e6).recording();
        c.on_arrival(FlowId(0), 200_000.0, Time(0.0));
        c.on_arrival(FlowId(1), 200_000.0, Time(0.0));
        c.drain();
        // Both flows busy: V slope 500k/s until both drain at V=200k.
        let t = c.real_time_of(VirtualTime(100_000.0));
        assert!((t.seconds() - 0.2).abs() < 1e-9, "got {t}");
        let t = c.real_time_of(VirtualTime(200_000.0));
        assert!((t.seconds() - 0.4).abs() < 1e-9, "got {t}");
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_reversal_rejected() {
        let mut c = GpsVirtualClock::new(&[1.0], 1e6);
        c.advance(Time(1.0));
        c.advance(Time(0.5));
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn unknown_flow_rejected() {
        let mut c = GpsVirtualClock::new(&[1.0], 1e6);
        c.on_arrival(FlowId(9), 100.0, Time(0.0));
    }
}
