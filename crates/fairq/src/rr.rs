//! The round-robin family: WRR, DRR, and MDRR (paper §I-B).
//!
//! These are the schedulers the paper argues *against* for full QoS:
//! WRR needs the mean packet size in advance, and none of the family can
//! bound delay for variable-size packets the way fair queueing does —
//! which experiment E10 demonstrates quantitatively.

use std::collections::VecDeque;

use traffic::{FlowId, FlowSpec, Packet, Time};

use crate::scheduler::Scheduler;

/// Weighted round robin \[2\]: flow *i* sends `nᵢ` packets per round, with
/// `nᵢ` derived from the weights normalized by each flow's *mean* packet
/// size — the advance knowledge requirement the paper criticizes.
#[derive(Debug, Clone)]
pub struct Wrr {
    queues: Vec<VecDeque<Packet>>,
    /// Packets each flow may send per round.
    per_round: Vec<u32>,
    /// Remaining credit in the current round, per flow.
    credit: Vec<u32>,
    cursor: usize,
    backlog: usize,
}

impl Wrr {
    /// Builds per-round packet counts from the specs' weights and
    /// *declared* mean packet sizes (`spec.sizes.mean_bytes()`), smallest
    /// share normalized to one packet per round.
    ///
    /// # Panics
    ///
    /// Panics if flow ids are not dense indices.
    pub fn new(flows: &[FlowSpec]) -> Self {
        let n = flows.len();
        let mut rate = vec![0.0f64; n];
        for f in flows {
            let idx = f.id.0 as usize;
            assert!(
                idx < n && rate[idx] == 0.0,
                "flow ids must be dense and unique"
            );
            rate[idx] = f.weight / f.sizes.mean_bytes();
        }
        let min_rate = rate.iter().cloned().fold(f64::INFINITY, f64::min);
        let per_round: Vec<u32> = rate
            .iter()
            .map(|r| ((r / min_rate).round() as u32).max(1))
            .collect();
        Self {
            queues: vec![VecDeque::new(); n],
            credit: per_round.clone(),
            per_round,
            cursor: 0,
            backlog: 0,
        }
    }

    /// Packets per round granted to `flow`.
    pub fn per_round(&self, flow: FlowId) -> u32 {
        self.per_round[flow.0 as usize]
    }
}

impl Scheduler for Wrr {
    fn name(&self) -> &'static str {
        "WRR"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        self.queues[pkt.flow.0 as usize].push_back(pkt);
        self.backlog += 1;
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        if self.backlog == 0 {
            return None;
        }
        let n = self.queues.len();
        // At most two full sweeps: one to exhaust stale credit, one after
        // the round restarts.
        for _ in 0..=2 * n {
            let i = self.cursor;
            if self.credit[i] > 0 && !self.queues[i].is_empty() {
                self.credit[i] -= 1;
                if self.credit[i] == 0 || self.queues[i].len() == 1 {
                    self.advance_cursor(i);
                }
                self.backlog -= 1;
                return self.queues[i].pop_front();
            }
            self.advance_cursor(i);
        }
        unreachable!("WRR scan failed with non-empty backlog");
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

impl Wrr {
    fn advance_cursor(&mut self, from: usize) {
        self.credit[from] = 0;
        self.cursor = (from + 1) % self.queues.len();
        if self.cursor == 0 {
            // New round: refresh everyone's credit.
            self.credit.copy_from_slice(&self.per_round);
        }
    }
}

/// Deficit round robin \[3\]: byte-accurate rounds without knowing packet
/// sizes in advance. Each visit adds a weight-proportional quantum to the
/// flow's deficit; packets are sent while the deficit covers them.
#[derive(Debug, Clone)]
pub struct Drr {
    queues: Vec<VecDeque<Packet>>,
    quantum: Vec<f64>,
    deficit: Vec<f64>,
    /// Backlogged flows awaiting a visit, in round order.
    active: VecDeque<usize>,
    /// Flow currently being visited, if its deficit still has credit.
    visiting: Option<usize>,
    backlog: usize,
}

impl Drr {
    /// Creates a DRR scheduler; `base_quantum_bytes` is the quantum of a
    /// weight-1.0 flow (use at least the MTU to keep rounds O(1)).
    ///
    /// # Panics
    ///
    /// Panics if flow ids are not dense or the quantum is not positive.
    pub fn new(flows: &[FlowSpec], base_quantum_bytes: f64) -> Self {
        assert!(base_quantum_bytes > 0.0, "quantum must be positive");
        let n = flows.len();
        let mut quantum = vec![0.0; n];
        for f in flows {
            let idx = f.id.0 as usize;
            assert!(
                idx < n && quantum[idx] == 0.0,
                "flow ids must be dense and unique"
            );
            quantum[idx] = f.weight * base_quantum_bytes;
        }
        Self {
            queues: vec![VecDeque::new(); n],
            deficit: vec![0.0; n],
            quantum,
            active: VecDeque::new(),
            visiting: None,
            backlog: 0,
        }
    }
}

impl Scheduler for Drr {
    fn name(&self) -> &'static str {
        "DRR"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let idx = pkt.flow.0 as usize;
        let was_empty = self.queues[idx].is_empty();
        self.queues[idx].push_back(pkt);
        self.backlog += 1;
        if was_empty && self.visiting != Some(idx) {
            self.active.push_back(idx);
        }
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        if self.backlog == 0 {
            return None;
        }
        loop {
            let flow = match self.visiting {
                Some(f) => f,
                None => {
                    let f = self
                        .active
                        .pop_front()
                        .expect("backlog implies active flows");
                    self.deficit[f] += self.quantum[f];
                    self.visiting = Some(f);
                    f
                }
            };
            let hol_bytes = f64::from(
                self.queues[flow]
                    .front()
                    .expect("active flow has packets")
                    .size_bytes,
            );
            if self.deficit[flow] >= hol_bytes {
                self.deficit[flow] -= hol_bytes;
                self.backlog -= 1;
                let pkt = self.queues[flow].pop_front();
                if self.queues[flow].is_empty() {
                    // Shreedhar–Varghese: an emptied flow forfeits its
                    // deficit and leaves the round.
                    self.deficit[flow] = 0.0;
                    self.visiting = None;
                }
                return pkt;
            }
            // Deficit exhausted: rotate to the back of the round.
            self.visiting = None;
            self.active.push_back(flow);
            // Next loop iteration visits the following flow and tops up
            // its deficit — deficits grow monotonically, so this
            // terminates.
        }
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

/// Modified deficit round robin: DRR plus one strict-priority low-latency
/// queue — the Cisco extension the paper cites for VoIP prioritization.
#[derive(Debug, Clone)]
pub struct Mdrr {
    priority_flow: usize,
    priority_queue: VecDeque<Packet>,
    inner: Drr,
}

impl Mdrr {
    /// Creates an MDRR scheduler with `priority` as the strict-priority
    /// low-latency queue; all other flows share DRR rounds.
    ///
    /// # Panics
    ///
    /// Panics if `priority` is not one of the flows.
    pub fn new(flows: &[FlowSpec], base_quantum_bytes: f64, priority: FlowId) -> Self {
        assert!(
            flows.iter().any(|f| f.id == priority),
            "priority flow {priority} not among the flows"
        );
        Self {
            priority_flow: priority.0 as usize,
            priority_queue: VecDeque::new(),
            inner: Drr::new(flows, base_quantum_bytes),
        }
    }
}

impl Scheduler for Mdrr {
    fn name(&self) -> &'static str {
        "MDRR"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        if pkt.flow.0 as usize == self.priority_flow {
            self.priority_queue.push_back(pkt);
        } else {
            self.inner.on_arrival(pkt);
        }
    }

    fn select(&mut self, now: Time) -> Option<Packet> {
        if let Some(pkt) = self.priority_queue.pop_front() {
            return Some(pkt);
        }
        self.inner.select(now)
    }

    fn backlog(&self) -> usize {
        self.priority_queue.len() + self.inner.backlog()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::SizeDist;

    fn pkt(seq: u64, flow: u32, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(0.0),
            seq,
        }
    }

    fn specs(weights: &[f64]) -> Vec<FlowSpec> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| FlowSpec::new(FlowId(i as u32), w, 1e6).size(SizeDist::Fixed(500)))
            .collect()
    }

    #[test]
    fn wrr_round_allocation_follows_weights() {
        let wrr = Wrr::new(&specs(&[1.0, 3.0]));
        assert_eq!(wrr.per_round(FlowId(0)), 1);
        assert_eq!(wrr.per_round(FlowId(1)), 3);
    }

    #[test]
    fn wrr_serves_weighted_shares_of_fixed_packets() {
        let mut s = Wrr::new(&specs(&[1.0, 3.0]));
        for i in 0..8 {
            s.on_arrival(pkt(i, 0, 500));
            s.on_arrival(pkt(100 + i, 1, 500));
        }
        let first8: Vec<u32> = std::iter::from_fn(|| s.select(Time(0.0)))
            .take(8)
            .map(|p| p.flow.0)
            .collect();
        let f1 = first8.iter().filter(|&&f| f == 1).count();
        assert_eq!(f1, 6, "flow 1 should get 3 of every 4 slots: {first8:?}");
    }

    #[test]
    fn wrr_normalizes_by_mean_packet_size() {
        // Equal weights but flow 1 declares packets twice as large: it
        // gets half the packets per round.
        let flows = vec![
            FlowSpec::new(FlowId(0), 1.0, 1e6).size(SizeDist::Fixed(500)),
            FlowSpec::new(FlowId(1), 1.0, 1e6).size(SizeDist::Fixed(1000)),
        ];
        let wrr = Wrr::new(&flows);
        assert_eq!(wrr.per_round(FlowId(0)), 2);
        assert_eq!(wrr.per_round(FlowId(1)), 1);
    }

    #[test]
    fn drr_is_byte_fair_with_mixed_sizes() {
        // Flow 0 sends big packets, flow 1 small ones; equal weights must
        // yield equal *bytes*, i.e. 1 big per 3 small at 1500 vs 500.
        let mut s = Drr::new(&specs(&[1.0, 1.0]), 1500.0);
        for i in 0..6 {
            s.on_arrival(pkt(i, 0, 1500));
        }
        for i in 0..18 {
            s.on_arrival(pkt(100 + i, 1, 500));
        }
        let mut bytes = [0u64; 2];
        for _ in 0..12 {
            let p = s.select(Time(0.0)).unwrap();
            bytes[p.flow.0 as usize] += u64::from(p.size_bytes);
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "byte shares should be equal: {bytes:?}"
        );
    }

    #[test]
    fn drr_carries_deficit_across_rounds() {
        // Quantum 800 < packet 1500: a flow must accumulate two rounds of
        // deficit before sending. With only one flow this still works.
        let mut s = Drr::new(&specs(&[1.0]), 800.0);
        s.on_arrival(pkt(0, 0, 1500));
        assert_eq!(s.select(Time(0.0)).unwrap().seq, 0);
    }

    #[test]
    fn mdrr_priority_queue_preempts_rounds() {
        let flows = specs(&[1.0, 1.0, 1.0]);
        let mut s = Mdrr::new(&flows, 1500.0, FlowId(2));
        s.on_arrival(pkt(0, 0, 500));
        s.on_arrival(pkt(1, 1, 500));
        s.on_arrival(pkt(2, 2, 500));
        s.on_arrival(pkt(3, 2, 500));
        let order: Vec<u64> = std::iter::from_fn(|| s.select(Time(0.0)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(&order[..2], &[2, 3], "LLQ first: {order:?}");
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn round_robins_drain_completely() {
        let flows = specs(&[1.0, 2.0, 4.0]);
        let mk: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Wrr::new(&flows)),
            Box::new(Drr::new(&flows, 1500.0)),
            Box::new(Mdrr::new(&flows, 1500.0, FlowId(0))),
        ];
        for mut s in mk {
            for i in 0..30 {
                s.on_arrival(pkt(i, (i % 3) as u32, 300 + (i as u32 % 5) * 250));
            }
            let mut count = 0;
            while s.select(Time(0.0)).is_some() {
                count += 1;
            }
            assert_eq!(count, 30, "{} lost packets", s.name());
            assert_eq!(s.backlog(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "priority flow")]
    fn mdrr_requires_valid_priority() {
        let _ = Mdrr::new(&specs(&[1.0]), 1500.0, FlowId(7));
    }
}
