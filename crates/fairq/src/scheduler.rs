//! The scheduler abstraction and the FIFO baseline.

use std::collections::VecDeque;

use traffic::{Packet, Time};

/// A work-conserving packet scheduler for one output link.
///
/// The driving [`LinkSim`](crate::LinkSim) feeds arrivals in time order
/// via [`Scheduler::on_arrival`] and, whenever the link goes idle, asks
/// [`Scheduler::select`] for the next packet to transmit. Selection is
/// non-preemptive: once selected, a packet occupies the link for its full
/// transmission time.
///
/// Implementations must be work-conserving — `select` returns `Some`
/// whenever [`Scheduler::backlog`] is non-zero.
pub trait Scheduler {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Accepts a packet at its arrival time (`pkt.arrival`). Arrivals are
    /// fed in non-decreasing time order.
    fn on_arrival(&mut self, pkt: Packet);

    /// Chooses (and removes) the next packet to transmit at `now`.
    fn select(&mut self, now: Time) -> Option<Packet>;

    /// Number of queued packets.
    fn backlog(&self) -> usize;
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_arrival(&mut self, pkt: Packet) {
        (**self).on_arrival(pkt);
    }

    fn select(&mut self, now: Time) -> Option<Packet> {
        (**self).select(now)
    }

    fn backlog(&self) -> usize {
        (**self).backlog()
    }
}

/// First-in first-out: the no-QoS baseline of the best-effort Internet
/// the paper's introduction contrasts against.
///
/// # Example
///
/// ```
/// use fairq::{Fifo, Scheduler};
/// use traffic::{FlowId, Packet, Time};
///
/// let mut s = Fifo::new();
/// s.on_arrival(Packet { flow: FlowId(1), size_bytes: 100, arrival: Time(0.0), seq: 0 });
/// s.on_arrival(Packet { flow: FlowId(2), size_bytes: 50, arrival: Time(0.1), seq: 1 });
/// assert_eq!(s.select(Time(0.2)).unwrap().seq, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    queue: VecDeque<Packet>,
}

impl Fifo {
    /// Creates an empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        self.queue.push_back(pkt);
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        self.queue.pop_front()
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::FlowId;

    fn pkt(seq: u64, flow: u32, at: f64) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: 100,
            arrival: Time(at),
            seq,
        }
    }

    #[test]
    fn fifo_preserves_arrival_order_across_flows() {
        let mut s = Fifo::new();
        for (i, f) in [3u32, 1, 2, 1].iter().enumerate() {
            s.on_arrival(pkt(i as u64, *f, i as f64));
        }
        assert_eq!(s.backlog(), 4);
        let order: Vec<u64> = std::iter::from_fn(|| s.select(Time(10.0)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(s.backlog(), 0);
        assert_eq!(s.select(Time(10.0)), None);
    }

    #[test]
    fn fifo_name() {
        assert_eq!(Fifo::new().name(), "FIFO");
    }
}
