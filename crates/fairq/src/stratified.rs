//! Stratified round robin (SRR) and frame-based fair queueing (FBFQ) —
//! the last two schedulers the paper discusses.
//!
//! * **SRR** (Ramabhadran & Pasquale, paper ref. \[11\]) was motivated by
//!   exactly the bottleneck this repository's circuit removes: "a
//!   primary reason given for developing SRR was the bottleneck of
//!   sorting tags in fair queueing". It sidesteps sorting by grouping
//!   flows into weight *strata* (class *k* holds flows whose weight
//!   share is in `(2^-k, 2^-(k-1)]`) and scheduling classes with a
//!   deadline wheel of period `2^k`; within a class, plain round robin.
//!   The price, which the paper calls out, is that fairness is only
//!   resolved to a factor of two: flows in one class are served equally
//!   however their weights differ within the stratum, and "the number
//!   of traffic classes is greatly limited".
//! * **FBFQ** (Stiliadis & Varma, paper ref. \[7\]) is a rate-proportional
//!   server "less complex than WFQ, but almost as fair": packets carry
//!   start/finish *potentials*, the system potential advances with real
//!   service and is recalibrated at frame boundaries, and service is by
//!   smallest finishing potential. Implemented here in its standard
//!   simplified form (per-service potential update + frame
//!   recalibration).

use std::collections::{BTreeSet, VecDeque};

use traffic::{FlowSpec, Packet, Time};

use crate::scheduler::Scheduler;
use crate::virtual_time::VirtualTime;

/// Number of weight strata SRR maintains (weight shares below
/// `2^-MAX_CLASSES` land in the last class).
const MAX_CLASSES: u32 = 16;

/// Stratified round robin: class-wheel scheduling over weight strata.
///
/// # Example
///
/// ```
/// use fairq::{Scheduler, StratifiedRr};
/// use traffic::{FlowId, FlowSpec};
///
/// let flows = [
///     FlowSpec::new(FlowId(0), 8.0, 1e6), // heavy: frequent class
///     FlowSpec::new(FlowId(1), 1.0, 1e6), // light: rare class
/// ];
/// let srr = StratifiedRr::new(&flows);
/// assert!(srr.class_of(FlowId(0)) < srr.class_of(FlowId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct StratifiedRr {
    queues: Vec<VecDeque<Packet>>,
    /// Stratum of each flow (1-based exponent).
    class: Vec<u32>,
    /// Round-robin cursor within each class.
    class_members: Vec<Vec<usize>>,
    class_cursor: Vec<usize>,
    /// Deadline wheel: (next_deadline, class) for classes with backlog.
    wheel: BTreeSet<(u64, u32)>,
    next_deadline: Vec<u64>,
    /// Classes currently on the wheel.
    on_wheel: Vec<bool>,
    backlog: usize,
}

impl StratifiedRr {
    /// Creates an SRR scheduler for `flows`.
    ///
    /// # Panics
    ///
    /// Panics if flow ids are not dense indices.
    pub fn new(flows: &[FlowSpec]) -> Self {
        let n = flows.len();
        let total: f64 = flows.iter().map(|f| f.weight).sum();
        let mut class = vec![0u32; n];
        for f in flows {
            let idx = f.id.0 as usize;
            assert!(
                idx < n && class[idx] == 0,
                "flow ids must be dense and unique"
            );
            let share = f.weight / total;
            // Smallest k with share > 2^-k  =>  k = ceil(-log2 share).
            let k = (-share.log2()).ceil().max(1.0) as u32;
            class[idx] = k.min(MAX_CLASSES);
        }
        let mut class_members = vec![Vec::new(); (MAX_CLASSES + 1) as usize];
        for (i, &k) in class.iter().enumerate() {
            class_members[k as usize].push(i);
        }
        Self {
            queues: vec![VecDeque::new(); n],
            class,
            class_members,
            class_cursor: vec![0; (MAX_CLASSES + 1) as usize],
            wheel: BTreeSet::new(),
            next_deadline: vec![0; (MAX_CLASSES + 1) as usize],
            on_wheel: vec![false; (MAX_CLASSES + 1) as usize],
            backlog: 0,
        }
    }

    /// The stratum a flow was assigned to (1 = heaviest).
    pub fn class_of(&self, flow: traffic::FlowId) -> u32 {
        self.class[flow.0 as usize]
    }

    fn class_backlogged(&self, k: u32) -> bool {
        self.class_members[k as usize]
            .iter()
            .any(|&f| !self.queues[f].is_empty())
    }

    fn enroll(&mut self, k: u32, now_slot: u64) {
        if !self.on_wheel[k as usize] {
            // A class re-entering the wheel resumes no earlier than now.
            let d = self.next_deadline[k as usize].max(now_slot);
            self.next_deadline[k as usize] = d;
            self.wheel.insert((d, k));
            self.on_wheel[k as usize] = true;
        }
    }
}

impl Scheduler for StratifiedRr {
    fn name(&self) -> &'static str {
        "SRR"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let idx = pkt.flow.0 as usize;
        let k = self.class[idx];
        self.queues[idx].push_back(pkt);
        self.backlog += 1;
        let now_slot = self.wheel.iter().next().map(|&(d, _)| d).unwrap_or(0);
        self.enroll(k, now_slot);
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        if self.backlog == 0 {
            return None;
        }
        // Earliest-deadline backlogged class wins the slot.
        let &(deadline, k) = self
            .wheel
            .iter()
            .next()
            .expect("backlog implies wheel entries");
        self.wheel.remove(&(deadline, k));
        debug_assert!(self.class_backlogged(k), "wheel class without backlog");
        // Round robin within the class: one packet per slot.
        let members = &self.class_members[k as usize];
        let mut cursor = self.class_cursor[k as usize];
        let pkt = loop {
            let flow = members[cursor % members.len()];
            cursor += 1;
            if let Some(p) = self.queues[flow].pop_front() {
                break p;
            }
        };
        self.class_cursor[k as usize] = cursor % members.len();
        self.backlog -= 1;
        // Class k recurs with period 2^(k-1): heavier strata get
        // exponentially more slots.
        self.next_deadline[k as usize] = deadline + (1u64 << (k - 1));
        if self.class_backlogged(k) {
            self.wheel.insert((self.next_deadline[k as usize], k));
        } else {
            self.on_wheel[k as usize] = false;
        }
        Some(pkt)
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

/// Frame-based fair queueing: timestamped service ordered by finishing
/// potential, with the cheap frame-recalibrated system potential of
/// Stiliadis & Varma.
#[derive(Debug, Clone)]
pub struct Fbfq {
    /// Normalized rate share of each flow.
    share: Vec<f64>,
    rate_bps: f64,
    /// System potential, in seconds of normalized service.
    potential: f64,
    /// Potential units per frame.
    frame: f64,
    frame_end: f64,
    last_finish: Vec<VirtualTime>,
    queues: Vec<VecDeque<(Packet, VirtualTime, VirtualTime)>>,
    /// Heads ordered by finishing potential.
    hol: BTreeSet<(VirtualTime, u32)>,
    backlog: usize,
}

impl Fbfq {
    /// Creates an FBFQ scheduler for `flows` on a link of `rate_bps`,
    /// with a frame of `frame_bytes` worth of link time.
    ///
    /// # Panics
    ///
    /// Panics if flow ids are not dense or parameters are not positive.
    pub fn new(flows: &[FlowSpec], rate_bps: f64, frame_bytes: f64) -> Self {
        assert!(rate_bps > 0.0 && frame_bytes > 0.0);
        let n = flows.len();
        let total: f64 = flows.iter().map(|f| f.weight).sum();
        let mut share = vec![0.0; n];
        for f in flows {
            let idx = f.id.0 as usize;
            assert!(
                idx < n && share[idx] == 0.0,
                "flow ids must be dense and unique"
            );
            share[idx] = f.weight / total;
        }
        let frame = frame_bytes * 8.0 / rate_bps;
        Self {
            share,
            rate_bps,
            potential: 0.0,
            frame,
            frame_end: frame,
            last_finish: vec![VirtualTime::ZERO; n],
            queues: vec![VecDeque::new(); n],
            hol: BTreeSet::new(),
            backlog: 0,
        }
    }

    fn recalibrate(&mut self) {
        // Frame rule: once every backlogged head has started beyond the
        // current frame, the system potential jumps to the frame
        // boundary (the O(1) catch-up that replaces WFQ's exact clock).
        while self.backlog > 0 {
            let min_start = self
                .hol
                .iter()
                .filter_map(|&(_, f)| self.queues[f as usize].front())
                .map(|&(_, s, _)| s)
                .min()
                .unwrap_or(VirtualTime(self.potential));
            if min_start.0 >= self.frame_end {
                self.potential = self.potential.max(self.frame_end);
                self.frame_end += self.frame;
            } else {
                break;
            }
        }
    }
}

impl Scheduler for Fbfq {
    fn name(&self) -> &'static str {
        "FBFQ"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let idx = pkt.flow.0 as usize;
        let start = VirtualTime(self.potential).max(self.last_finish[idx]);
        let service = pkt.size_bits() / (self.share[idx] * self.rate_bps);
        let finish = VirtualTime(start.0 + service);
        self.last_finish[idx] = finish;
        if self.queues[idx].is_empty() {
            self.hol.insert((finish, pkt.flow.0));
        }
        self.queues[idx].push_back((pkt, start, finish));
        self.backlog += 1;
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        let &(finish, flow) = self.hol.iter().next()?;
        self.hol.remove(&(finish, flow));
        let (pkt, _, _) = self.queues[flow as usize]
            .pop_front()
            .expect("indexed head exists");
        if let Some(&(_, _, f)) = self.queues[flow as usize].front() {
            self.hol.insert((f, flow));
        }
        self.backlog -= 1;
        // Potential advances with the real service just committed.
        self.potential += pkt.size_bits() / self.rate_bps;
        self.recalibrate();
        Some(pkt)
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::FlowId;

    fn pkt(seq: u64, flow: u32, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(0.0),
            seq,
        }
    }

    fn specs(weights: &[f64]) -> Vec<FlowSpec> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| FlowSpec::new(FlowId(i as u32), w, 1e6))
            .collect()
    }

    #[test]
    fn srr_classifies_by_weight_share() {
        // Shares: 8/16, 4/16, 2/16, 1/16, 1/16 => classes 1, 2, 3, 4, 4.
        let s = StratifiedRr::new(&specs(&[8.0, 4.0, 2.0, 1.0, 1.0]));
        assert_eq!(s.class_of(FlowId(0)), 1);
        assert_eq!(s.class_of(FlowId(1)), 2);
        assert_eq!(s.class_of(FlowId(2)), 3);
        assert_eq!(s.class_of(FlowId(3)), 4);
        assert_eq!(s.class_of(FlowId(4)), 4);
    }

    #[test]
    fn srr_heavier_class_gets_exponentially_more_slots() {
        // Flow 0 share 8/11 (class 1, period 1); flow 1 share 2/11
        // (class 3, period 4); flow 2 share 1/11 (class 4, period 8).
        let mut s = StratifiedRr::new(&specs(&[8.0, 2.0, 1.0]));
        for i in 0..200 {
            s.on_arrival(pkt(i, 0, 500));
            s.on_arrival(pkt(1000 + i, 1, 500));
            s.on_arrival(pkt(2000 + i, 2, 500));
        }
        let mut counts = [0u32; 3];
        for _ in 0..80 {
            let p = s.select(Time(0.0)).unwrap();
            counts[p.flow.0 as usize] += 1;
        }
        // Period ratios 1:4:8 => slot counts roughly 8:2:1.
        assert!(counts[0] > 3 * counts[1], "{counts:?}");
        assert!(counts[1] >= counts[2], "{counts:?}");
    }

    #[test]
    fn srr_is_only_fair_to_a_factor_of_two() {
        // The paper's criticism: two flows whose weights differ by 1.9x
        // but share a stratum are served identically.
        let flows = specs(&[4.0, 3.9, 2.05]); // shares ~0.402/0.392/0.206
        let s = StratifiedRr::new(&flows);
        assert_eq!(s.class_of(FlowId(0)), s.class_of(FlowId(1)));
        let mut s = StratifiedRr::new(&flows);
        for i in 0..300 {
            for f in 0..3 {
                s.on_arrival(pkt(i * 3 + f, f as u32, 500));
            }
        }
        let mut counts = [0u32; 3];
        for _ in 0..120 {
            counts[s.select(Time(0.0)).unwrap().flow.0 as usize] += 1;
        }
        // Same class => equal service despite the weight gap.
        assert_eq!(counts[0], counts[1], "{counts:?}");
    }

    #[test]
    fn srr_drains_and_reenters_cleanly() {
        let mut s = StratifiedRr::new(&specs(&[4.0, 1.0]));
        s.on_arrival(pkt(0, 0, 100));
        assert_eq!(s.select(Time(0.0)).unwrap().seq, 0);
        assert_eq!(s.select(Time(0.0)), None);
        s.on_arrival(pkt(1, 1, 100));
        s.on_arrival(pkt(2, 0, 100));
        let mut got: Vec<u64> = std::iter::from_fn(|| s.select(Time(0.0)))
            .map(|p| p.seq)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn fbfq_orders_by_finishing_potential() {
        let mut s = Fbfq::new(&specs(&[1.0, 1.0]), 1e6, 1500.0);
        s.on_arrival(pkt(0, 0, 1500)); // F large
        s.on_arrival(pkt(1, 1, 100)); // F small
        assert_eq!(s.select(Time(0.0)).unwrap().seq, 1);
        assert_eq!(s.select(Time(0.0)).unwrap().seq, 0);
    }

    #[test]
    fn fbfq_weighted_shares_under_saturation() {
        let mut s = Fbfq::new(&specs(&[3.0, 1.0]), 1e6, 1500.0);
        for i in 0..300 {
            s.on_arrival(pkt(i, 0, 500));
            s.on_arrival(pkt(1000 + i, 1, 500));
        }
        let mut bytes = [0u64; 2];
        for _ in 0..100 {
            let p = s.select(Time(0.0)).unwrap();
            bytes[p.flow.0 as usize] += u64::from(p.size_bytes);
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((2.3..3.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fbfq_potential_recalibrates_after_idle_flows() {
        let mut s = Fbfq::new(&specs(&[1.0, 1.0]), 1e6, 150.0);
        // Run one flow long enough to cross several frames.
        for i in 0..20 {
            s.on_arrival(pkt(i, 0, 1500));
        }
        for _ in 0..20 {
            s.select(Time(0.0)).unwrap();
        }
        let p_before = s.potential;
        // A newcomer must start near the recalibrated potential, not at
        // zero (no unbounded catch-up burst).
        s.on_arrival(pkt(99, 1, 1500));
        let (_, start, _) = s.queues[1].front().copied().unwrap();
        assert!(start.0 >= p_before - 1e-9, "start {start} vs P {p_before}");
    }

    #[test]
    fn fbfq_drains_completely() {
        let mut s = Fbfq::new(&specs(&[2.0, 1.0, 1.0]), 1e6, 1500.0);
        for i in 0..60 {
            s.on_arrival(pkt(i, (i % 3) as u32, 200 + (i as u32 % 7) * 150));
        }
        let mut count = 0;
        while s.select(Time(0.0)).is_some() {
            count += 1;
        }
        assert_eq!(count, 60);
        assert_eq!(s.backlog(), 0);
    }
}
