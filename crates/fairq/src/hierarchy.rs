//! Hierarchical link sharing: H-WF²Q+ and CBQ.
//!
//! The paper cites both: class-based queueing "adopts a hierarchical
//! approach" to DRR (ref. \[4\]), and the WF²Q+ paper it builds on is
//! titled *"Hierarchical packet fair queueing algorithms"* (ref. \[6\]).
//! Both share one shape — a two-level tree where *classes* share the
//! link and *flows* share their class — and both slot straight into the
//! sort/retrieve architecture, since each level just produces more tags
//! to sort.
//!
//! * [`HierarchicalWf2q`] — WF²Q+ at both levels: the class level treats
//!   each class's next departure as a packet of a weighted super-flow;
//!   the flow level is an independent WF²Q+ instance per class.
//! * [`Cbq`] — deficit round robin at both levels: byte-quantum rounds
//!   across classes, then across the flows of the chosen class.

use std::collections::VecDeque;

use traffic::{FlowId, FlowSpec, Packet, Time};

use crate::scheduler::Scheduler;
use crate::virtual_time::VirtualTime;

/// Assignment of flows to link-sharing classes.
///
/// `class_of[i]` is the class index of flow *i*; `class_weights[k]` the
/// share of class *k* at the link level.
#[derive(Debug, Clone)]
pub struct ClassMap {
    class_of: Vec<usize>,
    class_weights: Vec<f64>,
}

impl ClassMap {
    /// Builds a class map.
    ///
    /// # Panics
    ///
    /// Panics if any class index is out of range, a class has no flows,
    /// or a weight is not positive.
    pub fn new(class_of: Vec<usize>, class_weights: Vec<f64>) -> Self {
        assert!(!class_weights.is_empty(), "at least one class required");
        assert!(
            class_weights.iter().all(|w| *w > 0.0 && w.is_finite()),
            "class weights must be positive and finite"
        );
        assert!(
            class_of.iter().all(|&k| k < class_weights.len()),
            "class index out of range"
        );
        for k in 0..class_weights.len() {
            assert!(class_of.contains(&k), "class {k} has no member flows");
        }
        Self {
            class_of,
            class_weights,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.class_weights.len()
    }

    /// The class of a flow.
    pub fn class_of(&self, flow: FlowId) -> usize {
        self.class_of[flow.0 as usize]
    }
}

/// One flow's queue with WF²Q+ tags, inside a class.
#[derive(Debug, Clone)]
struct FlowState {
    queue: VecDeque<(Packet, VirtualTime, VirtualTime)>,
    last_finish: VirtualTime,
    weight: f64,
}

/// WF²Q+ state for one class's flows.
#[derive(Debug, Clone)]
struct ClassInner {
    flows: Vec<FlowState>,
    /// Original flow id → index into `flows`.
    local_of: Vec<Option<usize>>,
    v: VirtualTime,
    phi_total: f64,
    last_bits: f64,
    backlog: usize,
}

impl ClassInner {
    fn new(members: Vec<usize>, specs: &[FlowSpec], all: usize) -> Self {
        let mut local_of = vec![None; all];
        let mut flows = Vec::with_capacity(members.len());
        let mut phi_total = 0.0;
        for (local, &orig) in members.iter().enumerate() {
            local_of[orig] = Some(local);
            let w = specs
                .iter()
                .find(|f| f.id.0 as usize == orig)
                .expect("member flow present")
                .weight;
            phi_total += w;
            flows.push(FlowState {
                queue: VecDeque::new(),
                last_finish: VirtualTime::ZERO,
                weight: w,
            });
        }
        Self {
            flows,
            local_of,
            v: VirtualTime::ZERO,
            phi_total,
            last_bits: 0.0,
            backlog: 0,
        }
    }

    fn push(&mut self, pkt: Packet) {
        let local = self.local_of[pkt.flow.0 as usize].expect("flow in class");
        let f = &mut self.flows[local];
        let start = self.v.max(f.last_finish);
        let finish = VirtualTime(start.0 + pkt.size_bits() / f.weight);
        f.last_finish = finish;
        f.queue.push_back((pkt, start, finish));
        self.backlog += 1;
    }

    /// The flow WF²Q+ would serve next, without mutating state.
    fn peek(&self) -> Option<usize> {
        let v_eps = VirtualTime(self.v.0 + self.v.0.abs() * 1e-9 + 1e-9);
        let mut best: Option<(VirtualTime, usize)> = None;
        let mut fallback: Option<(VirtualTime, usize)> = None;
        for (local, f) in self.flows.iter().enumerate() {
            if let Some(&(_, s, fin)) = f.queue.front() {
                if s <= v_eps && best.is_none_or(|(bf, _)| fin < bf) {
                    best = Some((fin, local));
                }
                if fallback.is_none_or(|(bf, _)| fin < bf) {
                    fallback = Some((fin, local));
                }
            }
        }
        best.or(fallback).map(|(_, local)| local)
    }

    /// Size in bits of the packet [`ClassInner::peek`] would emit.
    fn head_bits(&self) -> Option<f64> {
        self.peek()
            .and_then(|local| self.flows[local].queue.front())
            .map(|(p, _, _)| p.size_bits())
    }

    fn pop(&mut self) -> Option<Packet> {
        if self.backlog == 0 {
            return None;
        }
        // WF²Q+ clock update first: the previous packet's service has
        // completed by this service opportunity.
        let advanced = VirtualTime(self.v.0 + self.last_bits / self.phi_total);
        let floor = self
            .flows
            .iter()
            .filter_map(|f| f.queue.front())
            .map(|&(_, s, _)| s)
            .min()
            .unwrap_or(advanced);
        self.v = advanced.max(floor);
        self.last_bits = 0.0; // consumed
        let local = self.peek()?;
        let (pkt, _, _) = self.flows[local].queue.pop_front().expect("peeked head");
        self.backlog -= 1;
        self.last_bits = pkt.size_bits();
        Some(pkt)
    }
}

/// Two-level hierarchical WF²Q+ (paper ref. \[6\]).
///
/// # Example
///
/// ```
/// use fairq::{ClassMap, HierarchicalWf2q, Scheduler};
/// use traffic::{FlowId, FlowSpec, Packet, Time};
///
/// // Two classes: premium (3/4 of the link) and best-effort (1/4).
/// let flows = [
///     FlowSpec::new(FlowId(0), 1.0, 1e6),
///     FlowSpec::new(FlowId(1), 1.0, 1e6),
/// ];
/// let map = ClassMap::new(vec![0, 1], vec![3.0, 1.0]);
/// let mut h = HierarchicalWf2q::new(&flows, map);
/// h.on_arrival(Packet { flow: FlowId(0), size_bytes: 500, arrival: Time(0.0), seq: 0 });
/// h.on_arrival(Packet { flow: FlowId(1), size_bytes: 500, arrival: Time(0.0), seq: 1 });
/// // The premium class's finishing tag is smaller: it goes first.
/// assert_eq!(h.select(Time(0.0)).unwrap().seq, 0);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalWf2q {
    map: ClassMap,
    inner: Vec<ClassInner>,
    /// Class-level WF²Q+ tags: (start, finish, head-seq used for tag).
    class_tags: Vec<Option<(VirtualTime, VirtualTime)>>,
    class_last_finish: Vec<VirtualTime>,
    v: VirtualTime,
    phi_total: f64,
    last_bits: f64,
    backlog: usize,
}

impl HierarchicalWf2q {
    /// Creates the hierarchy for `flows` with the given class map.
    ///
    /// # Panics
    ///
    /// Panics if flow ids are not dense or the map does not cover them.
    pub fn new(flows: &[FlowSpec], map: ClassMap) -> Self {
        let n = flows.len();
        assert_eq!(map.class_of.len(), n, "class map must cover every flow");
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); map.classes()];
        for f in flows {
            members[map.class_of(f.id)].push(f.id.0 as usize);
        }
        let inner = members
            .into_iter()
            .map(|m| ClassInner::new(m, flows, n))
            .collect();
        let phi_total = map.class_weights.iter().sum();
        Self {
            class_tags: vec![None; map.classes()],
            class_last_finish: vec![VirtualTime::ZERO; map.classes()],
            inner,
            map,
            v: VirtualTime::ZERO,
            phi_total,
            last_bits: 0.0,
            backlog: 0,
        }
    }

    /// Recomputes class `k`'s link-level tag from its current head.
    fn retag(&mut self, k: usize) {
        match self.inner[k].head_bits() {
            Some(bits) => {
                let start = self.v.max(self.class_last_finish[k]);
                let finish = VirtualTime(start.0 + bits / self.map.class_weights[k]);
                self.class_tags[k] = Some((start, finish));
            }
            None => self.class_tags[k] = None,
        }
    }
}

impl Scheduler for HierarchicalWf2q {
    fn name(&self) -> &'static str {
        "H-WF2Q+"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let k = self.map.class_of(pkt.flow);
        let head_before = self.inner[k].peek();
        self.inner[k].push(pkt);
        self.backlog += 1;
        // A new head (or a previously idle class) needs a fresh tag.
        if self.class_tags[k].is_none() || self.inner[k].peek() != head_before {
            self.retag(k);
        }
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        if self.backlog == 0 {
            return None;
        }
        // Link-level clock update first (the previous service is done).
        let advanced = VirtualTime(self.v.0 + self.last_bits / self.phi_total);
        let floor = self
            .class_tags
            .iter()
            .filter_map(|t| t.map(|(s, _)| s))
            .min()
            .unwrap_or(advanced);
        self.v = advanced.max(floor);
        // WF²Q+ across classes.
        let v_eps = VirtualTime(self.v.0 + self.v.0.abs() * 1e-9 + 1e-9);
        let mut best: Option<(VirtualTime, usize)> = None;
        let mut fallback: Option<(VirtualTime, usize)> = None;
        for (k, tag) in self.class_tags.iter().enumerate() {
            if let Some((s, f)) = *tag {
                if s <= v_eps && best.is_none_or(|(bf, _)| f < bf) {
                    best = Some((f, k));
                }
                if fallback.is_none_or(|(bf, _)| f < bf) {
                    fallback = Some((f, k));
                }
            }
        }
        let (finish, k) = best.or(fallback)?;
        let pkt = self.inner[k].pop().expect("tagged class has backlog");
        self.backlog -= 1;
        self.class_last_finish[k] = finish;
        self.last_bits = pkt.size_bits();
        self.retag(k);
        Some(pkt)
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

/// Per-flow DRR state inside a CBQ class (Shreedhar–Varghese visits:
/// one quantum top-up per visit, rotate when it is spent).
#[derive(Debug, Clone)]
struct DrrLevel {
    queues: Vec<VecDeque<Packet>>,
    quantum: Vec<f64>,
    deficit: Vec<f64>,
    active: VecDeque<usize>,
    visiting: Option<usize>,
    backlog: usize,
}

impl DrrLevel {
    fn new(quanta: Vec<f64>) -> Self {
        Self {
            queues: vec![VecDeque::new(); quanta.len()],
            deficit: vec![0.0; quanta.len()],
            quantum: quanta,
            active: VecDeque::new(),
            visiting: None,
            backlog: 0,
        }
    }

    fn push(&mut self, idx: usize, pkt: Packet) {
        if self.queues[idx].is_empty() && self.visiting != Some(idx) && !self.active.contains(&idx)
        {
            self.active.push_back(idx);
        }
        self.queues[idx].push_back(pkt);
        self.backlog += 1;
    }

    /// Serves one packet by DRR rounds.
    fn pop(&mut self) -> Option<Packet> {
        if self.backlog == 0 {
            return None;
        }
        loop {
            let idx = match self.visiting {
                Some(i) => i,
                None => {
                    let i = self
                        .active
                        .pop_front()
                        .expect("backlog implies active entries");
                    self.deficit[i] += self.quantum[i]; // once per visit
                    self.visiting = Some(i);
                    i
                }
            };
            let hol = f64::from(
                self.queues[idx]
                    .front()
                    .expect("visited queue has packets")
                    .size_bytes,
            );
            if self.deficit[idx] >= hol {
                self.deficit[idx] -= hol;
                self.backlog -= 1;
                let pkt = self.queues[idx].pop_front();
                if self.queues[idx].is_empty() {
                    // Emptied flows forfeit their deficit and leave.
                    self.deficit[idx] = 0.0;
                    self.visiting = None;
                }
                return pkt;
            }
            // Quantum spent: the visit ends, rotate to the round's tail.
            self.visiting = None;
            self.active.push_back(idx);
        }
    }
}

/// Class-based queueing: hierarchical DRR (paper ref. \[4\]).
///
/// Classes share the link by byte quanta proportional to class weights;
/// flows share their class likewise. Round-robin simplicity at both
/// levels — and round-robin's delay behaviour at both levels, which is
/// the paper's §I-B point about the whole family.
#[derive(Debug, Clone)]
pub struct Cbq {
    map: ClassMap,
    /// Top level: classes as DRR "flows"; byte deficits at class level.
    class_level: DrrLevel,
    /// Bottom level: per-class DRR over member flows (local ids).
    inner: Vec<DrrLevel>,
    local_of: Vec<usize>,
    backlog: usize,
}

impl Cbq {
    /// Creates a CBQ scheduler; `base_quantum_bytes` is the quantum of a
    /// weight-1.0 entity at either level.
    ///
    /// # Panics
    ///
    /// Panics if flow ids are not dense or the map does not cover them.
    pub fn new(flows: &[FlowSpec], map: ClassMap, base_quantum_bytes: f64) -> Self {
        assert!(base_quantum_bytes > 0.0, "quantum must be positive");
        let n = flows.len();
        assert_eq!(map.class_of.len(), n, "class map must cover every flow");
        let class_quanta: Vec<f64> = map
            .class_weights
            .iter()
            .map(|w| w * base_quantum_bytes)
            .collect();
        let mut local_of = vec![0usize; n];
        let mut inner = Vec::with_capacity(map.classes());
        for k in 0..map.classes() {
            let mut quanta = Vec::new();
            for f in flows.iter().filter(|f| map.class_of(f.id) == k) {
                local_of[f.id.0 as usize] = quanta.len();
                quanta.push(f.weight * base_quantum_bytes);
            }
            inner.push(DrrLevel::new(quanta));
        }
        Self {
            class_level: DrrLevel::new(class_quanta),
            inner,
            local_of,
            map,
            backlog: 0,
        }
    }
}

impl Scheduler for Cbq {
    fn name(&self) -> &'static str {
        "CBQ"
    }

    fn on_arrival(&mut self, pkt: Packet) {
        let k = self.map.class_of(pkt.flow);
        let local = self.local_of[pkt.flow.0 as usize];
        // The class level tracks a shadow packet per real packet so its
        // byte deficits stay exact.
        self.class_level.push(k, pkt);
        self.inner[k].push(local, pkt);
        self.backlog += 1;
    }

    fn select(&mut self, _now: Time) -> Option<Packet> {
        // The class level decides which class's bytes go next; the class
        // decides which of its flows supplies them.
        let shadow = self.class_level.pop()?;
        let k = self.map.class_of(shadow.flow);
        let pkt = self.inner[k].pop().expect("levels stay in sync");
        self.backlog -= 1;
        Some(pkt)
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, flow: u32, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(flow),
            size_bytes: bytes,
            arrival: Time(0.0),
            seq,
        }
    }

    fn specs(weights: &[f64]) -> Vec<FlowSpec> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| FlowSpec::new(FlowId(i as u32), w, 1e6))
            .collect()
    }

    /// Four flows, two classes: class 0 gets 3/4 of the link; within
    /// each class, equal flows.
    fn two_classes() -> (Vec<FlowSpec>, ClassMap) {
        (
            specs(&[1.0, 1.0, 1.0, 1.0]),
            ClassMap::new(vec![0, 0, 1, 1], vec![3.0, 1.0]),
        )
    }

    fn byte_shares(sched: &mut dyn Scheduler, serves: usize, flows: usize) -> Vec<u64> {
        let mut bytes = vec![0u64; flows];
        for _ in 0..serves {
            let p = sched.select(Time(0.0)).expect("backlogged");
            bytes[p.flow.0 as usize] += u64::from(p.size_bytes);
        }
        bytes
    }

    #[test]
    fn hwf2q_divides_link_by_class_then_flow() {
        let (fl, map) = two_classes();
        let mut h = HierarchicalWf2q::new(&fl, map);
        for i in 0..400 {
            for f in 0..4u32 {
                h.on_arrival(pkt(u64::from(f) * 1000 + i, f, 500));
            }
        }
        let bytes = byte_shares(&mut h, 160, 4);
        let class0 = bytes[0] + bytes[1];
        let class1 = bytes[2] + bytes[3];
        let ratio = class0 as f64 / class1 as f64;
        assert!(
            (2.4..3.6).contains(&ratio),
            "class ratio {ratio}: {bytes:?}"
        );
        // Equal flows within a class.
        assert!(
            (bytes[0] as f64 / bytes[1] as f64 - 1.0).abs() < 0.3,
            "{bytes:?}"
        );
        assert!(
            (bytes[2] as f64 / bytes[3] as f64 - 1.0).abs() < 0.3,
            "{bytes:?}"
        );
    }

    #[test]
    fn hwf2q_isolation_within_class() {
        // A hog in class 0 cannot take bandwidth from class 1, and within
        // class 0 its sibling still gets its share.
        let (fl, map) = two_classes();
        let mut h = HierarchicalWf2q::new(&fl, map);
        for i in 0..1000 {
            h.on_arrival(pkt(i, 0, 1500)); // hog
        }
        for i in 0..50 {
            h.on_arrival(pkt(10_000 + i, 1, 100));
            h.on_arrival(pkt(20_000 + i, 2, 100));
        }
        let bytes = byte_shares(&mut h, 120, 4);
        assert!(bytes[1] > 0, "sibling starved: {bytes:?}");
        assert!(bytes[2] > 0, "other class starved: {bytes:?}");
    }

    #[test]
    fn hwf2q_drains_completely() {
        let (fl, map) = two_classes();
        let mut h = HierarchicalWf2q::new(&fl, map);
        for i in 0..80 {
            h.on_arrival(pkt(i, (i % 4) as u32, 200 + (i as u32 % 5) * 200));
        }
        let mut n = 0;
        while h.select(Time(0.0)).is_some() {
            n += 1;
        }
        assert_eq!(n, 80);
        assert_eq!(h.backlog(), 0);
    }

    #[test]
    fn cbq_divides_bytes_by_class_quanta() {
        let (fl, map) = two_classes();
        let mut c = Cbq::new(&fl, map, 1500.0);
        for i in 0..400 {
            for f in 0..4u32 {
                c.on_arrival(pkt(u64::from(f) * 1000 + i, f, 500));
            }
        }
        let bytes = byte_shares(&mut c, 160, 4);
        let ratio = (bytes[0] + bytes[1]) as f64 / (bytes[2] + bytes[3]) as f64;
        assert!(
            (2.3..3.7).contains(&ratio),
            "class ratio {ratio}: {bytes:?}"
        );
    }

    #[test]
    fn cbq_drains_with_mixed_sizes() {
        let (fl, map) = two_classes();
        let mut c = Cbq::new(&fl, map, 1500.0);
        for i in 0..100 {
            c.on_arrival(pkt(i, (i % 4) as u32, 40 + (i as u32 * 13) % 1460));
        }
        let mut n = 0;
        while c.select(Time(0.0)).is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    #[should_panic(expected = "class 1 has no member flows")]
    fn empty_class_rejected() {
        let _ = ClassMap::new(vec![0, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn class_map_accessors() {
        let map = ClassMap::new(vec![0, 1, 0], vec![2.0, 1.0]);
        assert_eq!(map.classes(), 2);
        assert_eq!(map.class_of(FlowId(1)), 1);
    }
}
