//! Family-wide behavioural contracts, across every scheduler the crate
//! ships — the properties a downstream user silently relies on when
//! swapping one algorithm for another.

use fairq::{
    Cbq, ClassMap, Drr, Fbfq, Fifo, HierarchicalWf2q, LinkSim, Mdrr, Scfq, Scheduler, Sfq,
    StratifiedRr, Wf2q, Wf2qPlus, Wfq, Wrr,
};
use traffic::{generate, ArrivalProcess, FlowId, FlowSpec, SizeDist, Time};

fn flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec::new(FlowId(0), 4.0, 300_000.0).size(SizeDist::Fixed(140)),
        FlowSpec::new(FlowId(1), 2.0, 400_000.0)
            .size(SizeDist::Imix)
            .arrivals(ArrivalProcess::Poisson),
        FlowSpec::new(FlowId(2), 1.0, 500_000.0)
            .size(SizeDist::Bimodal {
                small: 40,
                large: 1500,
                p_small: 0.3,
            })
            .arrivals(ArrivalProcess::OnOff {
                on_mean_s: 0.02,
                off_mean_s: 0.02,
            }),
        FlowSpec::new(FlowId(3), 1.0, 200_000.0).size(SizeDist::Fixed(900)),
    ]
}

fn family(fl: &[FlowSpec], rate: f64) -> Vec<Box<dyn Scheduler>> {
    let map = ClassMap::new((0..fl.len()).map(|i| i % 2).collect(), vec![3.0, 1.0]);
    vec![
        Box::new(Fifo::new()),
        Box::new(Wrr::new(fl)),
        Box::new(Drr::new(fl, 1500.0)),
        Box::new(Mdrr::new(fl, 1500.0, FlowId(0))),
        Box::new(StratifiedRr::new(fl)),
        Box::new(Fbfq::new(fl, rate, 1500.0)),
        Box::new(Scfq::new(fl)),
        Box::new(Sfq::new(fl)),
        Box::new(Wfq::new(fl, rate)),
        Box::new(Wf2q::new(fl, rate)),
        Box::new(Wf2qPlus::new(fl)),
        Box::new(HierarchicalWf2q::new(fl, map.clone())),
        Box::new(Cbq::new(fl, map, 1500.0)),
    ]
}

/// Every scheduler: conservation, per-flow FIFO, non-preemptive service,
/// and a sane busy-period makespan, on a realistic mixed trace.
#[test]
fn family_contracts_hold_on_mixed_traffic() {
    let fl = flows();
    let rate = 1_000_000.0;
    let trace = generate(&fl, 1.0, 2026);
    assert!(trace.len() > 300, "workload too thin: {}", trace.len());
    let total_bits: f64 = trace.iter().map(|p| p.size_bits()).sum();
    for sched in family(&fl, rate) {
        let name = sched.name();
        let deps = LinkSim::new(rate, sched).run(&trace);
        assert_eq!(deps.len(), trace.len(), "{name}: conservation");
        let mut last_seq = std::collections::HashMap::new();
        let mut busy_bits = 0.0;
        for d in &deps {
            assert!(d.finish > d.start, "{name}: zero-time service");
            assert!(d.start >= d.packet.arrival, "{name}: served before arrival");
            if let Some(prev) = last_seq.insert(d.packet.flow, d.packet.seq) {
                assert!(prev < d.packet.seq, "{name}: per-flow FIFO violated");
            }
            busy_bits += d.packet.size_bits();
        }
        assert!((busy_bits - total_bits).abs() < 1e-6);
        // Work conservation: the last departure cannot be later than
        // first arrival + total service + total idle-gap allowance; the
        // LinkSim already asserts the strong form, here we check the
        // makespan is at least the physical minimum.
        let last = deps.iter().map(|d| d.finish.seconds()).fold(0.0, f64::max);
        assert!(
            last + 1e-9 >= total_bits / rate,
            "{name}: impossible makespan"
        );
    }
}

/// Every weighted scheduler gives the weight-4 flow at least as much
/// saturated-window service as the weight-1 flow with the same offered
/// load (coarse ordering — the precise shares differ by family).
#[test]
fn weights_are_respected_in_the_coarse_order() {
    let fl = vec![
        FlowSpec::new(FlowId(0), 4.0, 800_000.0).size(SizeDist::Fixed(500)),
        FlowSpec::new(FlowId(1), 1.0, 800_000.0).size(SizeDist::Fixed(500)),
    ];
    let rate = 800_000.0; // heavily oversubscribed
    let trace = generate(&fl, 1.0, 99);
    for sched in family(&fl, rate) {
        let name = sched.name();
        if name == "FIFO" {
            continue; // the unweighted baseline
        }
        let deps = LinkSim::new(rate, sched).run(&trace);
        let mut bytes = [0u64; 2];
        for d in deps.iter().filter(|d| d.finish <= Time(1.0)) {
            bytes[d.packet.flow.0 as usize] += u64::from(d.packet.size_bytes);
        }
        assert!(
            bytes[0] > bytes[1],
            "{name}: weight 4 flow got {} vs {}",
            bytes[0],
            bytes[1]
        );
    }
}
